/**
 * @file
 * The micro-op record consumed by the CPU model.
 *
 * The framework simulates at micro-op granularity with a fused 1:1
 * instruction/micro-op mapping (each retired MicroOp increments both
 * inst_retired.any and uops_retired.all). The taxonomy mirrors the
 * categories the paper's perf flags distinguish: memory loads/stores
 * (mem_uops_retired.*) and the five br_inst_exec.* branch subtypes.
 */

#ifndef SPEC17_ISA_UOP_HH_
#define SPEC17_ISA_UOP_HH_

#include <cstdint>
#include <string>

namespace spec17 {
namespace isa {

/** Functional class of a micro-op. */
enum class UopClass : std::uint8_t
{
    IntAlu,   //!< single-cycle integer op
    IntMul,   //!< pipelined integer multiply
    IntDiv,   //!< unpipelined integer divide
    FpAdd,    //!< pipelined FP add/sub
    FpMul,    //!< pipelined FP multiply / FMA
    FpDiv,    //!< unpipelined FP divide / sqrt
    Load,     //!< memory read
    Store,    //!< memory write
    Branch,   //!< control transfer (see BranchKind)
};

/** Number of UopClass enumerators. */
inline constexpr std::size_t kNumUopClasses = 9;

/**
 * Branch subtype, matching the br_inst_exec.* perf events the paper
 * uses for its Table VIII characteristics.
 */
enum class BranchKind : std::uint8_t
{
    None,                   //!< not a branch
    Conditional,            //!< direction-predicted conditional
    DirectJump,             //!< unconditional direct jump
    DirectNearCall,         //!< direct call
    IndirectJumpNonCallRet, //!< indirect jump (e.g. switch tables)
    IndirectNearReturn,     //!< return
};

/** Number of real branch kinds (excluding None). */
inline constexpr std::size_t kNumBranchKinds = 5;

/** Human-readable class name. */
std::string uopClassName(UopClass cls);

/** Human-readable branch-kind name. */
std::string branchKindName(BranchKind kind);

/** One dynamic micro-op. */
struct MicroOp
{
    UopClass cls = UopClass::IntAlu;
    BranchKind branch = BranchKind::None;

    /** Instruction address (used by I-cache and branch predictors). */
    std::uint64_t pc = 0;

    /** Effective address for Load/Store; 0 otherwise. */
    std::uint64_t effAddr = 0;

    /** Access size in bytes for Load/Store. */
    std::uint8_t size = 0;

    /** Resolved direction for Branch micro-ops. */
    bool taken = false;

    /** Resolved target for taken branches. */
    std::uint64_t target = 0;

    /**
     * True when this op's input depends on an in-flight load (e.g.
     * the address of a pointer-chase load, or a branch condition fed
     * by a load). The core model serializes such ops behind the
     * producing load instead of overlapping them.
     */
    bool depOnLoad = false;

    /**
     * True when this op reads the result of the immediately preceding
     * op (a serial dependency chain). The density of such ops is the
     * workload's inherent ILP limit, independent of memory behaviour.
     */
    bool depOnPrev = false;

    bool isLoad() const { return cls == UopClass::Load; }
    bool isStore() const { return cls == UopClass::Store; }
    bool isMemory() const { return isLoad() || isStore(); }
    bool isBranch() const { return cls == UopClass::Branch; }
    bool
    isConditionalBranch() const
    {
        return branch == BranchKind::Conditional;
    }
};

/** Convenience factory for a plain ALU op at @p pc. */
MicroOp makeAlu(std::uint64_t pc, UopClass cls = UopClass::IntAlu);

/** Convenience factory for a load. */
MicroOp makeLoad(std::uint64_t pc, std::uint64_t addr,
                 std::uint8_t size = 8, bool dep_on_load = false);

/** Convenience factory for a store. */
MicroOp makeStore(std::uint64_t pc, std::uint64_t addr,
                  std::uint8_t size = 8);

/** Convenience factory for a branch. */
MicroOp makeBranch(std::uint64_t pc, BranchKind kind, bool taken,
                   std::uint64_t target, bool dep_on_load = false);

} // namespace isa
} // namespace spec17

#endif // SPEC17_ISA_UOP_HH_
