#include "isa/uop.hh"

#include "util/logging.hh"

namespace spec17 {
namespace isa {

std::string
uopClassName(UopClass cls)
{
    switch (cls) {
      case UopClass::IntAlu: return "int_alu";
      case UopClass::IntMul: return "int_mul";
      case UopClass::IntDiv: return "int_div";
      case UopClass::FpAdd: return "fp_add";
      case UopClass::FpMul: return "fp_mul";
      case UopClass::FpDiv: return "fp_div";
      case UopClass::Load: return "load";
      case UopClass::Store: return "store";
      case UopClass::Branch: return "branch";
    }
    SPEC17_PANIC("unknown UopClass");
}

std::string
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::None: return "none";
      case BranchKind::Conditional: return "conditional";
      case BranchKind::DirectJump: return "direct_jmp";
      case BranchKind::DirectNearCall: return "direct_near_call";
      case BranchKind::IndirectJumpNonCallRet:
        return "indirect_jump_non_call_ret";
      case BranchKind::IndirectNearReturn: return "indirect_near_return";
    }
    SPEC17_PANIC("unknown BranchKind");
}

MicroOp
makeAlu(std::uint64_t pc, UopClass cls)
{
    SPEC17_ASSERT(cls != UopClass::Load && cls != UopClass::Store
                      && cls != UopClass::Branch,
                  "makeAlu with non-ALU class");
    MicroOp op;
    op.cls = cls;
    op.pc = pc;
    return op;
}

MicroOp
makeLoad(std::uint64_t pc, std::uint64_t addr, std::uint8_t size,
         bool dep_on_load)
{
    MicroOp op;
    op.cls = UopClass::Load;
    op.pc = pc;
    op.effAddr = addr;
    op.size = size;
    op.depOnLoad = dep_on_load;
    return op;
}

MicroOp
makeStore(std::uint64_t pc, std::uint64_t addr, std::uint8_t size)
{
    MicroOp op;
    op.cls = UopClass::Store;
    op.pc = pc;
    op.effAddr = addr;
    op.size = size;
    return op;
}

MicroOp
makeBranch(std::uint64_t pc, BranchKind kind, bool taken,
           std::uint64_t target, bool dep_on_load)
{
    SPEC17_ASSERT(kind != BranchKind::None, "branch needs a real kind");
    MicroOp op;
    op.cls = UopClass::Branch;
    op.branch = kind;
    op.pc = pc;
    op.taken = taken;
    op.target = target;
    op.depOnLoad = dep_on_load;
    return op;
}

} // namespace isa
} // namespace spec17
