#include "core/redundancy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace core {

RedundancyAnalysis
analyzeRedundancy(const std::vector<suite::PairResult> &results,
                  const RedundancyOptions &options)
{
    SPEC17_ASSERT(options.varianceFraction > 0.0
                      && options.varianceFraction <= 1.0,
                  "variance fraction out of range");

    RedundancyAnalysis out;
    const stats::Matrix observations =
        pcaFeatureMatrix(results, out.sourceIndex);
    SPEC17_ASSERT(observations.rows() >= 2,
                  "redundancy analysis needs at least two pairs");

    out.pairNames.reserve(out.sourceIndex.size());
    out.pairSeconds.reserve(out.sourceIndex.size());
    for (std::size_t index : out.sourceIndex) {
        out.pairNames.push_back(results[index].name);
        out.pairSeconds.push_back(results[index].seconds);
    }

    out.pca = stats::computePca(observations);
    out.numComponents = std::max(
        options.minComponents,
        out.pca.componentsForVariance(options.varianceFraction));
    out.numComponents =
        std::min(out.numComponents, out.pca.scores.cols());
    out.pcScores = out.pca.truncatedScores(out.numComponents);

    out.dendrogram = cluster::agglomerate(out.pcScores, options.linkage);
    out.factors = stats::summarizeFactors(
        out.pca, pcaFeatureNames(), out.numComponents);
    return out;
}

} // namespace core
} // namespace spec17
