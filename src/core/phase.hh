/**
 * @file
 * Phase analysis -- the paper's stated future work ("explore their
 * phase behavior in order to identify the applications' simulation
 * phases"), implemented SimPoint-style over simulated perf counters:
 *
 *  1. execute the workload in fixed-size intervals, collecting the
 *     counter delta of each interval;
 *  2. turn each delta into a normalized signature (mix and rate
 *     vector);
 *  3. hierarchically cluster the signatures and cut at the smallest
 *     k whose SSE drop flattens;
 *  4. report per-phase weights and the representative interval
 *     closest to each phase centroid (the "simulation point").
 */

#ifndef SPEC17_CORE_PHASE_HH_
#define SPEC17_CORE_PHASE_HH_

#include <cstdint>
#include <vector>

#include "cluster/hierarchical.hh"
#include "counters/perf_event.hh"
#include "sim/system_config.hh"
#include "trace/source.hh"

namespace spec17 {
namespace core {

/** Signature dimensionality (see signatureNames()). */
inline constexpr std::size_t kPhaseSignatureDims = 8;

/** Labels of the signature dimensions. */
const std::vector<std::string> &phaseSignatureNames();

/** One executed interval. */
struct IntervalRecord
{
    std::uint64_t firstOp = 0;   //!< first micro-op of the interval
    std::uint64_t numOps = 0;    //!< micro-ops executed in it
    double ipc = 0.0;
    /** Normalized signature used for clustering. */
    std::vector<double> signature;
};

/** One detected phase. */
struct Phase
{
    std::size_t id = 0;
    /** Interval indices belonging to this phase, ascending. */
    std::vector<std::size_t> intervals;
    /** Fraction of all executed micro-ops spent in this phase. */
    double weight = 0.0;
    /** Mean IPC over the phase's intervals. */
    double meanIpc = 0.0;
    /** Interval index closest to the phase centroid: the phase's
     *  simulation point. */
    std::size_t representative = 0;
};

/** Configuration of the analysis. */
struct PhaseOptions
{
    /** Micro-ops per interval. */
    std::uint64_t intervalOps = 100'000;
    /**
     * Micro-ops executed before interval collection starts. Without
     * it, the cold-cache start-up transient reads as a phase of its
     * own.
     */
    std::uint64_t warmupOps = 0;
    /** Upper bound on detected phases. */
    std::size_t maxPhases = 8;
    /**
     * Cut rule: accept the smallest cluster count whose residual SSE
     * falls below this fraction of the one-cluster SSE -- i.e. the
     * phases must explain at least (1 - threshold) of the signature
     * variance. A workload where no cut achieves that is treated as
     * single-phase (uniform behaviour plus noise).
     */
    double residualVarianceThreshold = 0.15;
    /**
     * Absolute significance floor: a cut is only a phase boundary if
     * some two phase centroids are at least this far apart in
     * signature space (IPC is O(1), rates are O(0..1)). Without it,
     * any structured-but-tiny drift would read as phases.
     */
    double minPhaseSeparation = 0.25;
    cluster::Linkage linkage = cluster::Linkage::Ward;
};

/** Full result. */
struct PhaseAnalysis
{
    std::vector<IntervalRecord> intervals;
    std::vector<Phase> phases;
    /** Per-interval phase id (parallel to intervals). */
    std::vector<std::size_t> labels;

    /**
     * Estimated whole-run IPC from simulating only the phase
     * representatives, weighted by phase weight -- the quantity
     * SimPoint-style sampling actually ships.
     */
    double sampledIpcEstimate() const;
    /** True whole-run IPC over all intervals (ops-weighted). */
    double fullIpc() const;
};

/**
 * Runs @p source on a fresh simulator of @p config in intervals and
 * detects phases.
 */
PhaseAnalysis analyzePhases(trace::TraceSource &source,
                            const sim::SystemConfig &config,
                            const PhaseOptions &options = {});

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_PHASE_HH_
