/**
 * @file
 * Suite-level aggregation and CPU2017-vs-CPU2006 comparison, the
 * machinery behind the paper's Tables III-VII and the correlation
 * observations in Section IV.
 */

#ifndef SPEC17_CORE_COMPARE_HH_
#define SPEC17_CORE_COMPARE_HH_

#include <string>
#include <vector>

#include "core/metrics.hh"

namespace spec17 {
namespace core {

/** Mean and sample standard deviation of one metric. */
struct AggregateStat
{
    double mean = 0.0;
    double stddev = 0.0;
};

/** Aggregates of every Section-IV metric over a set of pairs. */
struct SuiteAggregates
{
    std::size_t count = 0;
    AggregateStat ipc;
    AggregateStat loadPct;
    AggregateStat storePct;
    AggregateStat branchPct;
    AggregateStat l1MissPct;
    AggregateStat l2MissPct;
    AggregateStat l3MissPct;
    AggregateStat mispredictPct;
    AggregateStat rssGiB;
    AggregateStat vszGiB;
    double totalSeconds = 0.0;
    double meanInstrBillions = 0.0;
    double meanSeconds = 0.0;
};

/** Aggregates over @p metrics (errored pairs must be pre-filtered). */
SuiteAggregates aggregate(const std::vector<Metrics> &metrics);

/** Integer-suite subset (rate int + speed int). */
std::vector<Metrics> intSubset(const std::vector<Metrics> &metrics);

/** FP-suite subset (rate fp + speed fp). */
std::vector<Metrics> fpSubset(const std::vector<Metrics> &metrics);

/**
 * Pearson correlation between a metric field and IPC across pairs --
 * the paper reports RSS -0.465, VSZ -0.510, L1 -0.282, L2 -0.479,
 * L3 -0.137 for the CPU17 ref pairs.
 */
double correlationWithIpc(const std::vector<Metrics> &metrics,
                          double Metrics::*field);

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_COMPARE_HH_
