/**
 * @file
 * Section V of the paper: redundancy analysis. Runs PCA over the 20
 * Table-VIII characteristics of a result set, keeps the leading
 * principal components (the paper keeps 4, explaining 76.321% of
 * variance), and hierarchically clusters the pairs in PC space.
 */

#ifndef SPEC17_CORE_REDUNDANCY_HH_
#define SPEC17_CORE_REDUNDANCY_HH_

#include <string>
#include <vector>

#include "cluster/hierarchical.hh"
#include "core/pca_features.hh"
#include "stats/factor.hh"
#include "stats/pca.hh"

namespace spec17 {
namespace core {

/** Configuration of the redundancy analysis. */
struct RedundancyOptions
{
    /**
     * Keep the smallest number of PCs whose cumulative explained
     * variance reaches this fraction (paper: 4 PCs at 0.76321), but
     * at least @ref minComponents.
     */
    double varianceFraction = 0.76;
    std::size_t minComponents = 2;
    /** Clustering linkage over PC coordinates. */
    cluster::Linkage linkage = cluster::Linkage::Average;
};

/** Output of a redundancy analysis over one set of pairs. */
struct RedundancyAnalysis
{
    /** Names of the analyzed (non-errored) pairs, row order. */
    std::vector<std::string> pairNames;
    /** Execution time (paper-scale seconds) per analyzed pair. */
    std::vector<double> pairSeconds;
    /** Indices of analyzed pairs into the original result vector. */
    std::vector<std::size_t> sourceIndex;

    /** The PCA over the standardized Table-VIII characteristics. */
    stats::PcaResult pca;
    /** Retained component count. */
    std::size_t numComponents = 0;
    /** Scores truncated to the retained components [pairs x k]. */
    stats::Matrix pcScores;

    /** Merge history of the hierarchical clustering in PC space. */
    cluster::Dendrogram dendrogram{1, {}};

    /** Factor summaries of the retained components (paper Fig. 8). */
    std::vector<stats::FactorSummary> factors;
};

/**
 * Runs the full Section-V pipeline over @p results (errored pairs are
 * dropped, as the paper does).
 */
RedundancyAnalysis analyzeRedundancy(
    const std::vector<suite::PairResult> &results,
    const RedundancyOptions &options = {});

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_REDUNDANCY_HH_
