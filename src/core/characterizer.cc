#include "core/characterizer.hh"

#include "util/logging.hh"

namespace spec17 {
namespace core {

using workloads::InputSize;
using workloads::SuiteGeneration;

Characterizer::Characterizer(CharacterizerOptions options)
    : runner_(options.runner),
      cache_(options.cachePath, options.resume),
      pairObserver_(std::move(options.pairObserver))
{
    cache_.setShard(options.shard);
}

const std::vector<workloads::WorkloadProfile> &
Characterizer::suiteOf(SuiteGeneration generation) const
{
    return generation == SuiteGeneration::Cpu2017
        ? workloads::cpu2017Suite()
        : workloads::cpu2006Suite();
}

const std::vector<suite::PairResult> &
Characterizer::results(SuiteGeneration generation, InputSize size)
{
    const auto key = std::make_pair(static_cast<int>(generation),
                                    static_cast<int>(size));
    auto it = memo_.find(key);
    if (it == memo_.end()) {
        it = memo_.emplace(key, cache_.runOrLoad(runner_,
                                                 suiteOf(generation),
                                                 size,
                                                 pairObserver_)).first;
    }
    return it->second;
}

std::vector<Metrics>
Characterizer::metrics(SuiteGeneration generation, InputSize size)
{
    return deriveMetrics(results(generation, size));
}

std::vector<const suite::PairResult *>
Characterizer::failures(SuiteGeneration generation, InputSize size)
{
    std::vector<const suite::PairResult *> affected;
    for (const auto &result : results(generation, size)) {
        if (result.errored || !result.failures.empty())
            affected.push_back(&result);
    }
    return affected;
}

RedundancyAnalysis
Characterizer::redundancyFor(bool speed, const RedundancyOptions &options)
{
    const auto &all = results(SuiteGeneration::Cpu2017, InputSize::Ref);
    std::vector<suite::PairResult> slice;
    for (const auto &result : all) {
        const bool is_speed =
            workloads::isSpeedSuite(result.profile->suite);
        if (is_speed == speed)
            slice.push_back(result);
    }
    SPEC17_ASSERT(!slice.empty(), "no pairs in requested slice");
    return analyzeRedundancy(slice, options);
}

RedundancyAnalysis
Characterizer::redundancyAll(const RedundancyOptions &options)
{
    return analyzeRedundancy(
        results(SuiteGeneration::Cpu2017, InputSize::Ref), options);
}

} // namespace core
} // namespace spec17
