/**
 * @file
 * The paper's Table VIII: the 20 microarchitecture-independent
 * characteristics fed to the PCA. Absolute event counts are reported
 * at paper scale (the measured rates extrapolated to the pair's full
 * instruction count), so magnitudes separate big and small workloads
 * exactly as in the paper.
 */

#ifndef SPEC17_CORE_PCA_FEATURES_HH_
#define SPEC17_CORE_PCA_FEATURES_HH_

#include <string>
#include <vector>

#include "stats/matrix.hh"
#include "suite/runner.hh"

namespace spec17 {
namespace core {

/** Number of PCA input characteristics (paper Table VIII). */
inline constexpr std::size_t kNumPcaFeatures = 20;

/** The Table VIII characteristic names, in feature-vector order. */
const std::vector<std::string> &pcaFeatureNames();

/** Extracts the 20-characteristic vector for one pair. */
std::vector<double> pcaFeatureVector(const suite::PairResult &result);

/**
 * Builds the observation matrix (one row per non-errored pair) for a
 * result set; @p kept receives the indices of the rows kept (into
 * @p results), so callers can map matrix rows back to pairs.
 */
stats::Matrix pcaFeatureMatrix(
    const std::vector<suite::PairResult> &results,
    std::vector<std::size_t> &kept);

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_PCA_FEATURES_HH_
