/**
 * @file
 * Section V-C of the paper: suggesting a representative subset. The
 * cluster count is chosen at the Pareto knee of the SSE-vs-execution-
 * time sweep, and each cluster is represented by its shortest-running
 * member (the paper's rule), yielding Table X.
 */

#ifndef SPEC17_CORE_SUBSET_HH_
#define SPEC17_CORE_SUBSET_HH_

#include <string>
#include <vector>

#include "cluster/sse.hh"
#include "core/redundancy.hh"

namespace spec17 {
namespace core {

/** One selected representative. */
struct Representative
{
    std::string name;               //!< pair display name
    double seconds = 0.0;           //!< its execution time
    std::vector<std::string> covers; //!< other members of its cluster
};

/** A suggested subset for one analysis (e.g. all rate pairs). */
struct SubsetSuggestion
{
    /** The SSE / subset-time sweep over every cluster count. */
    std::vector<cluster::TradeoffPoint> sweep;
    /** Index into @ref sweep of the Pareto-knee choice. */
    std::size_t chosen = 0;
    /** Selected representatives, cluster order. */
    std::vector<Representative> representatives;

    /** Execution time of the subset, seconds. */
    double subsetSeconds = 0.0;
    /** Execution time of the full pair set, seconds. */
    double fullSeconds = 0.0;
    /** Percent execution time saved vs running everything. */
    double savingPct() const;

    std::size_t numClusters() const { return representatives.size(); }
};

/**
 * Applies the paper's subsetting rule to a redundancy analysis.
 *
 * @param analysis PCA + clustering output for one pair set.
 * @param forced_clusters if nonzero, bypass the Pareto knee and cut
 *        at this cluster count (used for sensitivity studies).
 */
SubsetSuggestion suggestSubset(const RedundancyAnalysis &analysis,
                               std::size_t forced_clusters = 0);

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_SUBSET_HH_
