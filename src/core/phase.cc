#include "core/phase.hh"

#include <algorithm>
#include <cmath>

#include "cluster/sse.hh"
#include "sim/simulator.hh"
#include "stats/matrix.hh"
#include "util/logging.hh"

namespace spec17 {
namespace core {

using counters::CounterSet;
using counters::PerfEvent;

const std::vector<std::string> &
phaseSignatureNames()
{
    static const std::vector<std::string> names = {
        "ipc",        "load_frac",   "store_frac", "branch_frac",
        "l1_missrate", "l2_missrate", "l3_missrate", "mispredict_rate",
    };
    SPEC17_ASSERT(names.size() == kPhaseSignatureDims,
                  "signature names out of sync");
    return names;
}

namespace {

std::vector<double>
signatureOf(const CounterSet &delta, double cycles)
{
    auto get = [&](PerfEvent event) {
        return static_cast<double>(delta.get(event));
    };
    auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    const double instr = get(PerfEvent::InstRetiredAny);
    const double loads = get(PerfEvent::MemUopsRetiredAllLoads);
    const double l1m = get(PerfEvent::MemLoadUopsRetiredL1Miss);
    const double l2m = get(PerfEvent::MemLoadUopsRetiredL2Miss);
    const double branches = get(PerfEvent::BrInstExecAllBranches);
    return {
        ratio(instr, cycles),
        ratio(loads, instr),
        ratio(get(PerfEvent::MemUopsRetiredAllStores), instr),
        ratio(branches, instr),
        ratio(l1m, loads),
        ratio(l2m, l1m),
        ratio(get(PerfEvent::MemLoadUopsRetiredL3Miss), l2m),
        ratio(get(PerfEvent::BrMispExecAllBranches), branches),
    };
}

} // namespace

double
PhaseAnalysis::fullIpc() const
{
    double ops = 0.0, weighted = 0.0;
    for (const IntervalRecord &interval : intervals) {
        ops += static_cast<double>(interval.numOps);
        weighted += interval.ipc * static_cast<double>(interval.numOps);
    }
    return ops > 0.0 ? weighted / ops : 0.0;
}

double
PhaseAnalysis::sampledIpcEstimate() const
{
    double estimate = 0.0;
    for (const Phase &phase : phases)
        estimate += phase.weight * intervals[phase.representative].ipc;
    return estimate;
}

PhaseAnalysis
analyzePhases(trace::TraceSource &source, const sim::SystemConfig &config,
              const PhaseOptions &options)
{
    SPEC17_ASSERT(options.intervalOps >= 1000,
                  "intervals too small to have stable signatures");
    SPEC17_ASSERT(options.maxPhases >= 1, "need at least one phase");

    PhaseAnalysis out;
    sim::CpuSimulator simulator(config);
    if (options.warmupOps > 0)
        simulator.step(source, options.warmupOps);

    // ---- 1-2: execute in intervals, collect signatures ----
    CounterSet previous = simulator.snapshot();
    double prev_cycles = simulator.core().cycles();
    std::uint64_t first_op = options.warmupOps;
    for (;;) {
        const std::uint64_t consumed =
            simulator.step(source, options.intervalOps);
        if (consumed == 0)
            break;
        const CounterSet now = simulator.snapshot();
        const double cycles = simulator.core().cycles();
        const CounterSet delta = now.diff(previous);

        IntervalRecord interval;
        interval.firstOp = first_op;
        interval.numOps = consumed;
        const double interval_cycles = cycles - prev_cycles;
        interval.ipc = interval_cycles > 0.0
            ? static_cast<double>(
                  delta.get(PerfEvent::InstRetiredAny))
                / interval_cycles
            : 0.0;
        interval.signature = signatureOf(delta, interval_cycles);
        out.intervals.push_back(std::move(interval));

        previous = now;
        prev_cycles = cycles;
        first_op += consumed;
        if (consumed < options.intervalOps)
            break;
    }
    SPEC17_ASSERT(!out.intervals.empty(), "trace produced no intervals");

    // A very short run (or maxPhases == 1) degenerates gracefully.
    const std::size_t n = out.intervals.size();
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (const IntervalRecord &interval : out.intervals)
        rows.push_back(interval.signature);
    const stats::Matrix points = stats::Matrix::fromRows(rows);

    // ---- 3: cluster; pick the smallest k explaining the variance --
    const cluster::Dendrogram dendrogram =
        cluster::agglomerate(points, options.linkage);
    const std::size_t k_max = std::min(options.maxPhases, n);
    std::size_t k = 1;
    const double sse_one =
        cluster::sumSquaredError(points, dendrogram.cut(1));
    // A candidate cut must both explain the variance and separate
    // its centroids by a material absolute distance.
    auto max_centroid_separation = [&](std::size_t candidate) {
        const auto labels = dendrogram.cut(candidate);
        stats::Matrix centroids(candidate, kPhaseSignatureDims);
        std::vector<std::size_t> count(candidate, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++count[labels[i]];
            for (std::size_t d = 0; d < kPhaseSignatureDims; ++d)
                centroids.at(labels[i], d) += points.at(i, d);
        }
        for (std::size_t g = 0; g < candidate; ++g)
            for (std::size_t d = 0; d < kPhaseSignatureDims; ++d)
                centroids.at(g, d) /= double(count[g]);
        double separation = 0.0;
        for (std::size_t a = 0; a < candidate; ++a)
            for (std::size_t b = a + 1; b < candidate; ++b)
                separation = std::max(
                    separation, cluster::euclidean(centroids, a, b));
        return separation;
    };

    if (sse_one > 1e-9) {
        for (std::size_t candidate = 2; candidate <= k_max;
             ++candidate) {
            const double sse = cluster::sumSquaredError(
                points, dendrogram.cut(candidate));
            if (sse > options.residualVarianceThreshold * sse_one)
                continue;
            if (max_centroid_separation(candidate)
                >= options.minPhaseSeparation) {
                k = candidate;
            }
            break; // variance explained; accept or stay single-phase
        }
    }
    out.labels = dendrogram.cut(k);

    // ---- 4: summarize phases, pick representatives ----
    std::uint64_t total_ops = 0;
    for (const IntervalRecord &interval : out.intervals)
        total_ops += interval.numOps;

    for (std::size_t phase_id = 0; phase_id < k; ++phase_id) {
        Phase phase;
        phase.id = phase_id;
        std::vector<double> centroid(kPhaseSignatureDims, 0.0);
        std::uint64_t phase_ops = 0;
        double ipc_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (out.labels[i] != phase_id)
                continue;
            phase.intervals.push_back(i);
            phase_ops += out.intervals[i].numOps;
            ipc_sum += out.intervals[i].ipc;
            for (std::size_t d = 0; d < kPhaseSignatureDims; ++d)
                centroid[d] += out.intervals[i].signature[d];
        }
        SPEC17_ASSERT(!phase.intervals.empty(), "empty phase ",
                      phase_id);
        for (double &component : centroid)
            component /= static_cast<double>(phase.intervals.size());
        phase.weight = static_cast<double>(phase_ops)
            / static_cast<double>(total_ops);
        phase.meanIpc =
            ipc_sum / static_cast<double>(phase.intervals.size());

        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i : phase.intervals) {
            double dist = 0.0;
            for (std::size_t d = 0; d < kPhaseSignatureDims; ++d) {
                const double diff =
                    out.intervals[i].signature[d] - centroid[d];
                dist += diff * diff;
            }
            if (dist < best) {
                best = dist;
                phase.representative = i;
            }
        }
        out.phases.push_back(std::move(phase));
    }
    return out;
}

} // namespace core
} // namespace spec17
