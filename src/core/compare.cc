#include "core/compare.hh"

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace spec17 {
namespace core {

namespace {

AggregateStat
statOf(const std::vector<Metrics> &metrics, double Metrics::*field)
{
    const std::vector<double> values = extract(metrics, field);
    AggregateStat out;
    out.mean = stats::mean(values);
    out.stddev = stats::stddev(values);
    return out;
}

} // namespace

SuiteAggregates
aggregate(const std::vector<Metrics> &metrics)
{
    SPEC17_ASSERT(!metrics.empty(), "aggregate of empty metric set");
    SuiteAggregates out;
    out.count = metrics.size();
    out.ipc = statOf(metrics, &Metrics::ipc);
    out.loadPct = statOf(metrics, &Metrics::loadPct);
    out.storePct = statOf(metrics, &Metrics::storePct);
    out.branchPct = statOf(metrics, &Metrics::branchPct);
    out.l1MissPct = statOf(metrics, &Metrics::l1MissPct);
    out.l2MissPct = statOf(metrics, &Metrics::l2MissPct);
    out.l3MissPct = statOf(metrics, &Metrics::l3MissPct);
    out.mispredictPct = statOf(metrics, &Metrics::mispredictPct);
    out.rssGiB = statOf(metrics, &Metrics::rssGiB);
    out.vszGiB = statOf(metrics, &Metrics::vszGiB);
    for (const Metrics &m : metrics)
        out.totalSeconds += m.seconds;
    out.meanInstrBillions =
        stats::mean(extract(metrics, &Metrics::instrBillions));
    out.meanSeconds = stats::mean(extract(metrics, &Metrics::seconds));
    return out;
}

std::vector<Metrics>
intSubset(const std::vector<Metrics> &metrics)
{
    std::vector<Metrics> out;
    for (const Metrics &m : metrics) {
        if (workloads::isIntSuite(m.suite))
            out.push_back(m);
    }
    return out;
}

std::vector<Metrics>
fpSubset(const std::vector<Metrics> &metrics)
{
    std::vector<Metrics> out;
    for (const Metrics &m : metrics) {
        if (!workloads::isIntSuite(m.suite))
            out.push_back(m);
    }
    return out;
}

double
correlationWithIpc(const std::vector<Metrics> &metrics,
                   double Metrics::*field)
{
    return stats::pearson(extract(metrics, field),
                          extract(metrics, &Metrics::ipc));
}

} // namespace core
} // namespace spec17
