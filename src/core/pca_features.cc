#include "core/pca_features.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace spec17 {
namespace core {

using counters::PerfEvent;

const std::vector<std::string> &
pcaFeatureNames()
{
    static const std::vector<std::string> names = {
        "inst_retired.any",
        "mem_uops_retired.all_loads",
        "mem_uops_retired.all_stores",
        "load_uops(%)",
        "store_uops(%)",
        "total_mem_uops(%)",
        "br_inst_exec.all_branches",
        "branch_inst(%)",
        "br_inst_exec.all_conditional",
        "br_inst_exec.all_direct_jmp",
        "br_inst_exec.all_direct_near_call",
        "br_inst_exec.all_indirect_jump_non_call_ret",
        "br_inst_exec.all_indirect_near_return",
        "branch_conditional(%)",
        "branch_direct_jump(%)",
        "branch_near_call(%)",
        "branch_indirect_jump_non_call_ret(%)",
        "branch_indirect_near_return(%)",
        "rss",
        "vsz",
    };
    SPEC17_ASSERT(names.size() == kNumPcaFeatures,
                  "feature name table out of sync");
    return names;
}

std::vector<double>
pcaFeatureVector(const suite::PairResult &result)
{
    const auto &c = result.counters;
    auto get = [&](PerfEvent event) {
        return static_cast<double>(c.get(event));
    };

    const double sim_instr = get(PerfEvent::InstRetiredAny);
    SPEC17_ASSERT(sim_instr > 0.0, result.name, ": empty result");
    // Extrapolate sampled counts to the pair's paper-scale run.
    const double scale =
        result.instrBillions * kBillion / sim_instr;

    const double uops = get(PerfEvent::UopsRetiredAll);
    const double loads = get(PerfEvent::MemUopsRetiredAllLoads);
    const double stores = get(PerfEvent::MemUopsRetiredAllStores);
    const double branches = get(PerfEvent::BrInstExecAllBranches);
    const double cond = get(PerfEvent::BrInstExecAllConditional);
    const double djmp = get(PerfEvent::BrInstExecAllDirectJmp);
    const double call = get(PerfEvent::BrInstExecAllDirectNearCall);
    const double ijmp =
        get(PerfEvent::BrInstExecAllIndirectJumpNonCallRet);
    const double iret = get(PerfEvent::BrInstExecAllIndirectNearReturn);

    auto pct = [](double a, double b) {
        return b > 0.0 ? 100.0 * a / b : 0.0;
    };

    return {
        sim_instr * scale,
        loads * scale,
        stores * scale,
        pct(loads, uops),
        pct(stores, uops),
        pct(loads + stores, uops),
        branches * scale,
        pct(branches, uops),
        cond * scale,
        djmp * scale,
        call * scale,
        ijmp * scale,
        iret * scale,
        pct(cond, branches),
        pct(djmp, branches),
        pct(call, branches),
        pct(ijmp, branches),
        pct(iret, branches),
        get(PerfEvent::RssBytes),
        get(PerfEvent::VszBytes),
    };
}

stats::Matrix
pcaFeatureMatrix(const std::vector<suite::PairResult> &results,
                 std::vector<std::size_t> &kept)
{
    kept.clear();
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].errored)
            continue;
        kept.push_back(i);
        rows.push_back(pcaFeatureVector(results[i]));
    }
    SPEC17_ASSERT(!rows.empty(), "no collectable pairs in result set");
    return stats::Matrix::fromRows(rows);
}

} // namespace core
} // namespace spec17
