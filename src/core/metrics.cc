#include "core/metrics.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace spec17 {
namespace core {

using counters::PerfEvent;

namespace {

double
ratioPct(double numerator, double denominator)
{
    return denominator > 0.0 ? 100.0 * numerator / denominator : 0.0;
}

} // namespace

Metrics
deriveMetrics(const suite::PairResult &result)
{
    SPEC17_ASSERT(result.profile != nullptr, "result without profile");
    const auto &c = result.counters;
    auto get = [&](PerfEvent event) {
        return static_cast<double>(c.get(event));
    };

    Metrics m;
    m.name = result.name;
    m.suite = result.profile->suite;
    m.size = result.size;
    m.errored = result.errored;
    m.ipc = result.ipc();
    m.instrBillions = result.instrBillions;
    m.seconds = result.seconds;

    const double uops = get(PerfEvent::UopsRetiredAll);
    const double loads = get(PerfEvent::MemUopsRetiredAllLoads);
    const double stores = get(PerfEvent::MemUopsRetiredAllStores);
    const double branches = get(PerfEvent::BrInstExecAllBranches);
    m.loadPct = ratioPct(loads, uops);
    m.storePct = ratioPct(stores, uops);
    m.branchPct = ratioPct(branches, uops);
    m.condBranchPct =
        ratioPct(get(PerfEvent::BrInstExecAllConditional), branches);

    const double l1_miss = get(PerfEvent::MemLoadUopsRetiredL1Miss);
    const double l2_miss = get(PerfEvent::MemLoadUopsRetiredL2Miss);
    const double l3_miss = get(PerfEvent::MemLoadUopsRetiredL3Miss);
    m.l1MissPct = ratioPct(l1_miss, loads);
    m.l2MissPct = ratioPct(l2_miss, l1_miss);
    m.l3MissPct = ratioPct(l3_miss, l2_miss);

    m.mispredictPct =
        ratioPct(get(PerfEvent::BrMispExecAllBranches), branches);

    m.rssGiB = get(PerfEvent::RssBytes) / static_cast<double>(kGiB);
    m.vszGiB = get(PerfEvent::VszBytes) / static_cast<double>(kGiB);
    return m;
}

std::vector<Metrics>
deriveMetrics(const std::vector<suite::PairResult> &results)
{
    std::vector<Metrics> out;
    out.reserve(results.size());
    for (const auto &result : results)
        out.push_back(deriveMetrics(result));
    return out;
}

std::vector<Metrics>
withoutErrored(const std::vector<Metrics> &metrics)
{
    std::vector<Metrics> out;
    out.reserve(metrics.size());
    for (const Metrics &m : metrics) {
        if (!m.errored)
            out.push_back(m);
    }
    return out;
}

std::vector<Metrics>
bySuite(const std::vector<Metrics> &metrics, workloads::SuiteKind kind)
{
    std::vector<Metrics> out;
    for (const Metrics &m : metrics) {
        if (m.suite == kind)
            out.push_back(m);
    }
    return out;
}

std::vector<Metrics>
averageByApplication(const std::vector<Metrics> &metrics)
{
    // Group rows by base application name, preserving first-seen
    // order.
    std::vector<Metrics> out;
    std::vector<int> counts;
    auto base_name = [](const std::string &name) {
        const auto pos = name.rfind("-in");
        return pos == std::string::npos ? name : name.substr(0, pos);
    };
    static constexpr double Metrics::*kFields[] = {
        &Metrics::ipc,         &Metrics::instrBillions,
        &Metrics::seconds,     &Metrics::loadPct,
        &Metrics::storePct,    &Metrics::branchPct,
        &Metrics::condBranchPct, &Metrics::l1MissPct,
        &Metrics::l2MissPct,   &Metrics::l3MissPct,
        &Metrics::mispredictPct, &Metrics::rssGiB,
        &Metrics::vszGiB,
    };
    for (const Metrics &m : metrics) {
        const std::string app = base_name(m.name);
        std::size_t slot = out.size();
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (out[i].name == app) {
                slot = i;
                break;
            }
        }
        if (slot == out.size()) {
            Metrics fresh = m;
            fresh.name = app;
            out.push_back(fresh);
            counts.push_back(1);
        } else {
            for (double Metrics::*field : kFields)
                out[slot].*field += m.*field;
            ++counts[slot];
        }
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        for (double Metrics::*field : kFields)
            out[i].*field /= counts[i];
    }
    return out;
}

std::vector<double>
extract(const std::vector<Metrics> &metrics, double Metrics::*field)
{
    std::vector<double> out;
    out.reserve(metrics.size());
    for (const Metrics &m : metrics)
        out.push_back(m.*field);
    return out;
}

} // namespace core
} // namespace spec17
