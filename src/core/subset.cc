#include "core/subset.hh"

#include <limits>

#include "util/logging.hh"

namespace spec17 {
namespace core {

double
SubsetSuggestion::savingPct()const
{
    if (fullSeconds <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - subsetSeconds / fullSeconds);
}

SubsetSuggestion
suggestSubset(const RedundancyAnalysis &analysis,
              std::size_t forced_clusters)
{
    const std::size_t n = analysis.pairNames.size();
    SPEC17_ASSERT(n >= 1, "subset of an empty analysis");
    SPEC17_ASSERT(analysis.pairSeconds.size() == n,
                  "analysis seconds out of sync");

    SubsetSuggestion out;
    out.sweep = cluster::sweepTradeoff(analysis.pcScores,
                                       analysis.dendrogram,
                                       analysis.pairSeconds);
    if (forced_clusters > 0) {
        SPEC17_ASSERT(forced_clusters <= n,
                      "forced cluster count exceeds pair count");
        out.chosen = forced_clusters - 1; // sweep[k-1].numClusters == k
        SPEC17_ASSERT(out.sweep[out.chosen].numClusters
                          == forced_clusters,
                      "sweep ordering violated");
    } else {
        out.chosen = cluster::paretoKnee(out.sweep);
    }

    const std::size_t k = out.sweep[out.chosen].numClusters;
    const auto groups = analysis.dendrogram.clustersAt(k);
    out.fullSeconds = 0.0;
    for (double s : analysis.pairSeconds)
        out.fullSeconds += s;

    out.subsetSeconds = 0.0;
    for (const auto &group : groups) {
        Representative rep;
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_leaf = group.front();
        for (std::size_t leaf : group) {
            if (analysis.pairSeconds[leaf] < best) {
                best = analysis.pairSeconds[leaf];
                best_leaf = leaf;
            }
        }
        rep.name = analysis.pairNames[best_leaf];
        rep.seconds = best;
        for (std::size_t leaf : group) {
            if (leaf != best_leaf)
                rep.covers.push_back(analysis.pairNames[leaf]);
        }
        out.subsetSeconds += best;
        out.representatives.push_back(std::move(rep));
    }
    return out;
}

} // namespace core
} // namespace spec17
