/**
 * @file
 * Derived per-pair metrics: the quantities Section IV of the paper
 * reports (IPC, instruction-mix percentages, per-level cache miss
 * rates, branch mispredict rate, footprints, execution time), computed
 * from a PairResult's raw counters.
 */

#ifndef SPEC17_CORE_METRICS_HH_
#define SPEC17_CORE_METRICS_HH_

#include <string>
#include <vector>

#include "suite/runner.hh"

namespace spec17 {
namespace core {

/** All Section-IV metrics for one application-input pair. */
struct Metrics
{
    std::string name;
    workloads::SuiteKind suite = workloads::SuiteKind::RateInt;
    workloads::InputSize size = workloads::InputSize::Ref;
    bool errored = false;

    double ipc = 0.0;
    double instrBillions = 0.0;
    double seconds = 0.0;

    /** @name Instruction mix, percent of micro-ops */
    /// @{
    double loadPct = 0.0;
    double storePct = 0.0;
    double branchPct = 0.0;
    /// @}
    /** Conditional share of branches, percent. */
    double condBranchPct = 0.0;

    /** @name Load miss rates, percent (paper Fig. 5 definitions) */
    /// @{
    double l1MissPct = 0.0;  //!< l1_miss / loads
    double l2MissPct = 0.0;  //!< l2_miss / l1_miss
    double l3MissPct = 0.0;  //!< l3_miss / l2_miss
    /// @}

    /** Branch mispredict rate, percent of branches (Fig. 6). */
    double mispredictPct = 0.0;

    double rssGiB = 0.0;
    double vszGiB = 0.0;
};

/** Derives the Section-IV metrics from one pair's counters. */
Metrics deriveMetrics(const suite::PairResult &result);

/** Derives metrics for a whole result set, preserving order. */
std::vector<Metrics> deriveMetrics(
    const std::vector<suite::PairResult> &results);

/**
 * Drops pairs the paper could not collect (627.cam4_s and the
 * perlbench test.pl inputs), as the paper's aggregates do.
 */
std::vector<Metrics> withoutErrored(const std::vector<Metrics> &metrics);

/** Metrics restricted to one mini-suite. */
std::vector<Metrics> bySuite(const std::vector<Metrics> &metrics,
                             workloads::SuiteKind kind);

/** Extracts one field from a metric list (e.g. for mean/stddev). */
std::vector<double> extract(const std::vector<Metrics> &metrics,
                            double Metrics::*field);

/**
 * Averages the inputs of each application into one row per
 * application ("For the applications with multiple inputs, we have
 * reported the average values ... across all the inputs", paper
 * Section IV). Names lose their "-inN" suffix.
 */
std::vector<Metrics> averageByApplication(
    const std::vector<Metrics> &metrics);

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_METRICS_HH_
