/**
 * @file
 * Top-level facade tying the whole study together: runs (or loads
 * from cache) suite sweeps and hands out metrics and redundancy
 * analyses. This is the entry point examples and benches use.
 */

#ifndef SPEC17_CORE_CHARACTERIZER_HH_
#define SPEC17_CORE_CHARACTERIZER_HH_

#include <map>
#include <string>
#include <vector>

#include "core/compare.hh"
#include "core/metrics.hh"
#include "core/redundancy.hh"
#include "core/subset.hh"
#include "suite/result_cache.hh"

namespace spec17 {
namespace core {

/** Configuration of a characterization session. */
struct CharacterizerOptions
{
    suite::RunnerOptions runner;
    /** Result-cache base path; empty disables caching. */
    std::string cachePath = suite::ResultCache::defaultPath();
    /** Resume interrupted sweeps from the on-disk journal instead of
     *  restarting them (crash-safe checkpointed sweeps). */
    bool resume = false;
    /** Run only one shard of each sweep's pair cross-product,
     *  journaled to a per-shard file (default 1/1 = whole sweep).
     *  Shard journals merge back via `spec17 merge`. */
    suite::ShardSpec shard;
    /** Notified after each pair of a simulated sweep (live progress
     *  reporting); never invoked on full cache hits. */
    suite::SuiteRunner::PairObserver pairObserver;
};

/**
 * One characterization session: memoizes suite sweeps per
 * (generation, input size) in memory and persists them via the
 * on-disk result cache, so repeated queries are free.
 */
class Characterizer
{
  public:
    explicit Characterizer(CharacterizerOptions options = {});

    /** Results for every pair of a suite at an input size. */
    const std::vector<suite::PairResult> &results(
        workloads::SuiteGeneration generation, workloads::InputSize size);

    /** Derived Section-IV metrics (including errored pairs, marked). */
    std::vector<Metrics> metrics(workloads::SuiteGeneration generation,
                                 workloads::InputSize size);

    /**
     * Pairs of the sweep that errored or needed retries, for failure
     * summaries. Pointers borrow from the memoized results and stay
     * valid for the session's lifetime.
     */
    std::vector<const suite::PairResult *> failures(
        workloads::SuiteGeneration generation, workloads::InputSize size);

    /**
     * Redundancy analysis over a filtered slice of the CPU2017 ref
     * pairs: the paper analyses rate (rate int + rate fp) and speed
     * (speed int + speed fp) separately for Figs. 9-10 / Table X.
     * @param speed true for the speed pairs, false for rate.
     */
    RedundancyAnalysis redundancyFor(bool speed,
                                     const RedundancyOptions &options
                                     = {});

    /** Redundancy analysis over ALL CPU2017 ref pairs (Figs. 7-8). */
    RedundancyAnalysis redundancyAll(const RedundancyOptions &options
                                     = {});

    const suite::SuiteRunner &runner() const { return runner_; }

  private:
    const std::vector<workloads::WorkloadProfile> &suiteOf(
        workloads::SuiteGeneration generation) const;

    suite::SuiteRunner runner_;
    suite::ResultCache cache_;
    suite::SuiteRunner::PairObserver pairObserver_;
    std::map<std::pair<int, int>, std::vector<suite::PairResult>> memo_;
};

} // namespace core
} // namespace spec17

#endif // SPEC17_CORE_CHARACTERIZER_HH_
