#include "sim/simulator.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

using counters::PerfEvent;

double
SimResult::ipc() const
{
    const std::uint64_t cycles_counted =
        counters.get(PerfEvent::CpuClkUnhaltedRefTsc);
    if (cycles_counted == 0)
        return 0.0;
    return static_cast<double>(counters.get(PerfEvent::InstRetiredAny))
        / static_cast<double>(cycles_counted);
}

CpuSimulator::CpuSimulator(const SystemConfig &config, std::uint64_t seed,
                           std::shared_ptr<SetAssocCache> shared_l3,
                           std::shared_ptr<MemoryBus> shared_bus)
    : config_(config),
      hierarchy_(config.hierarchy, std::move(shared_l3), seed),
      branches_(makeDirectionPredictor(config.branchPredictor,
                                       config.tage)),
      core_(config.core, std::move(shared_bus)), dtlb_(config.dtlb),
      itlb_(config.itlb),
      // The same-line data memo is illegal under an L1D prefetcher
      // (skipped repeats would starve its training stream) and under
      // utag way prediction (an aliasing earlier way mispredicts every
      // repeat, so skipped repeats would dodge real penalty cycles).
      // MRU way prediction keeps it legal -- the memo'd line is by
      // construction the set's MRU way -- and an L2-only prefetcher
      // keeps it legal too, since skipped repeats are L1 hits it never
      // observes.
      dataMemoLegal_(hierarchy_.prefetcher() == nullptr
                     && config.hierarchy.l1d.wayPredictor
                            != WayPredictor::Utag)
{
    // Way prediction is modeled on the L1D load path only (timing and
    // stats); other levels would collect stats the batched lane's
    // inst memo cannot reproduce.
    SPEC17_ASSERT(config.hierarchy.l1i.wayPredictor == WayPredictor::None
                      && config.hierarchy.l2.wayPredictor
                             == WayPredictor::None
                      && config.hierarchy.l3.wayPredictor
                             == WayPredictor::None,
                  "way prediction is supported on the L1D only");
    instMemo_.assign(config.hierarchy.l1i.numSets(), kNoLine);
    dataMemo_.assign(config.hierarchy.l1d.numSets(), kNoLine);
    dataMemoDirty_.assign(config.hierarchy.l1d.numSets(), 0);
    pcPageSeen_.assign(kPcPageSeenSlots, kNoLine);
    dataPageSeen_.assign(kDataPageSeenSlots, kNoLine);
}

void
CpuSimulator::setBatchOps(std::size_t batch_ops)
{
    if (batch_ops == 0) {
        // Contained degradation, not a panic: the knob is results-
        // invariant, so the nearest legal value loses nothing.
        warn("batch size 0 is meaningless; clamping to 1");
        batch_ops = 1;
    }
    batchOps_ = batch_ops;
}

void
CpuSimulator::invalidateLineMemos()
{
    std::fill(instMemo_.begin(), instMemo_.end(), kNoLine);
    std::fill(dataMemo_.begin(), dataMemo_.end(), kNoLine);
    std::fill(dataMemoDirty_.begin(), dataMemoDirty_.end(),
              std::uint8_t{0});
}

void
CpuSimulator::consume(const isa::MicroOp &op)
{
    counters_.add(PerfEvent::InstRetiredAny);
    counters_.add(PerfEvent::UopsRetiredAll);

    // Instruction fetch: one L1I access per retired op; only count a
    // fetch stall for new lines to avoid charging every sequential op.
    const HitLevel fetch_level = hierarchy_.accessInst(op.pc);
    footprint_.touch(op.pc);
    unsigned fetch_stall = 0;
    if (fetch_level != HitLevel::L1) {
        const unsigned latency = hierarchy_.latencyOf(fetch_level);
        const unsigned hidden = config_.core.frontendBufferCycles;
        fetch_stall = latency > hidden ? latency - hidden : 0;
    }
    if (config_.enableTlb) {
        const TlbOutcome itlb_outcome = itlb_.access(op.pc);
        fetch_stall += itlb_outcome.extraLatency;
        if (!itlb_outcome.l1Hit && !itlb_outcome.l2Hit)
            counters_.add(PerfEvent::ItlbMissesWalk);
    }

    unsigned mem_latency = 0;
    bool l1_miss = false;
    bool mispredicted = false;
    bool dram_access = false;
    double dram_lines = 1.0;

    if (op.isLoad()) {
        counters_.add(PerfEvent::MemUopsRetiredAllLoads);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, false, op.pc);
        footprint_.touch(op.effAddr);
        // lastDataWayPenalty() is zero unless the L1D way predictor
        // just mispredicted this access's hit way.
        mem_latency =
            hierarchy_.latencyOf(level) + hierarchy_.lastDataWayPenalty();
        l1_miss = level != HitLevel::L1;
        dram_access = level == HitLevel::Memory;
        if (config_.enableTlb) {
            const TlbOutcome dtlb_outcome = dtlb_.access(op.effAddr);
            mem_latency += dtlb_outcome.extraLatency;
            // A translation longer than the L1 hit pipeline behaves
            // like a miss for overlap purposes.
            l1_miss |= dtlb_outcome.extraLatency > 0;
            if (!dtlb_outcome.l1Hit && !dtlb_outcome.l2Hit)
                counters_.add(PerfEvent::DtlbLoadMissesWalk);
        }
        switch (level) {
          case HitLevel::L1:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit);
            break;
          case HitLevel::L2:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit);
            break;
          case HitLevel::L3:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit);
            break;
          case HitLevel::Memory:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss);
            break;
        }
    } else if (op.isStore()) {
        counters_.add(PerfEvent::MemUopsRetiredAllStores);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, true, op.pc);
        footprint_.touch(op.effAddr);
        if (level == HitLevel::Memory) {
            // Write-allocate RFO read now, dirty writeback later.
            dram_access = true;
            dram_lines = 2.0;
        }
    } else if (op.isBranch()) {
        counters_.add(PerfEvent::BrInstExecAllBranches);
        switch (op.branch) {
          case isa::BranchKind::Conditional:
            counters_.add(PerfEvent::BrInstExecAllConditional);
            break;
          case isa::BranchKind::DirectJump:
            counters_.add(PerfEvent::BrInstExecAllDirectJmp);
            break;
          case isa::BranchKind::DirectNearCall:
            counters_.add(PerfEvent::BrInstExecAllDirectNearCall);
            break;
          case isa::BranchKind::IndirectJumpNonCallRet:
            counters_.add(
                PerfEvent::BrInstExecAllIndirectJumpNonCallRet);
            break;
          case isa::BranchKind::IndirectNearReturn:
            counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn);
            break;
          case isa::BranchKind::None:
            SPEC17_PANIC("branch with kind None reached simulator");
        }
        mispredicted = branches_.execute(op);
        if (mispredicted)
            counters_.add(PerfEvent::BrMispExecAllBranches);
    }

    core_.retire(op, mem_latency, l1_miss, fetch_stall, mispredicted,
                 dram_access, dram_lines);
}

void
CpuSimulator::consumeBatch(std::size_t n)
{
    // Equivalent to n consume() calls over batch_'s first n lane
    // slots, restructured into tight per-component passes so each
    // loop walks only the lanes its component consumes and the
    // compiler can vectorize the lane arithmetic. Identity is argued
    // pass by pass against the per-op order consume() would produce:
    //  - Cache pass: L1I and L1D share L2/L3, so the fetch access and
    //    the data access of one op MUST stay interleaved in op order
    //    within a single pass -- splitting them would reorder the
    //    shared-level access sequence. The per-set line memos live
    //    here (an access to a set's MRU line is an L1 hit whose
    //    replacement-state update is a no-op, see
    //    SetAssocCache::creditHits for the policy-by-policy proof;
    //    writes only skip when the line is known dirty; the data memo
    //    is disabled when a prefetcher is configured).
    //  - TLB passes: itlb_ is fed only by the pc sequence and dtlb_
    //    only by load addresses; neither shares state with anything
    //    else, so hoisting each into its own in-order pass leaves
    //    every TLB's observed access sequence unchanged.
    //  - Branch pass: only branch ops touch the branch unit, and the
    //    pass visits them in op order, so the predictor/BTB see the
    //    exact consume() sequence.
    //  - Footprint pass: the page set is idempotent and its contents
    //    are order-independent (observed only via rssBytes at step
    //    boundaries), so pc and data touches run as two sub-passes,
    //    each filtered through a local last-page memo.
    //  - Retire pass: retirement carries serial cross-op core state,
    //    so it stays a final in-order pass fed by the per-op scratch
    //    lanes (fetchStall_/memLatency_/l1Miss_/mispredicted_/dram_)
    //    the earlier passes staged -- the same per-op scalars the
    //    fused loop handed retire().
    //  - Counter increments accumulate in locals and flush once per
    //    batch (adds are commutative, observed only at step
    //    boundaries, and batches never straddle a step boundary).
    const unsigned inst_shift = static_cast<unsigned>(
        std::countr_zero(config_.hierarchy.l1i.lineBytes));
    const unsigned data_shift = static_cast<unsigned>(
        std::countr_zero(config_.hierarchy.l1d.lineBytes));
    const unsigned hidden = config_.core.frontendBufferCycles;
    const bool tlb = config_.enableTlb;

    // Hoisted HitLevel -> latency / fetch-stall tables (HitLevel is a
    // dense 0..3 enum). An L1 fetch hit never stalls regardless of
    // its latency, hence the explicit zero.
    unsigned lat[4];
    unsigned stall_of[4];
    for (unsigned v = 0; v < 4; ++v) {
        lat[v] = hierarchy_.latencyOf(static_cast<HitLevel>(v));
        stall_of[v] = lat[v] > hidden ? lat[v] - hidden : 0;
    }
    stall_of[static_cast<std::size_t>(HitLevel::L1)] = 0;

    if (fetchStall_.size() < n) {
        fetchStall_.resize(n);
        memLatency_.resize(n);
        l1Miss_.resize(n);
        mispredicted_.resize(n);
        dram_.resize(n);
        branchIdx_.resize(n);
        memIdx_.resize(n);
    }

    // Raw __restrict views of every lane the passes walk. Several
    // scratch lanes are byte-typed, and a plain std::uint8_t store may
    // alias anything (unsigned char is the universal-aliasing type),
    // which would force the compiler to reload every hoisted pointer
    // and memo value after each store -- measurably dominating the
    // pass loops. The restrict qualification restores the no-overlap
    // guarantee the distinct vectors trivially satisfy.
    const std::uint64_t *__restrict const pcs = batch_.pc.data();
    const std::uint64_t *__restrict const addrs = batch_.addr.data();
    const std::uint64_t *__restrict const targets = batch_.target.data();
    const isa::UopClass *__restrict const classes = batch_.cls.data();
    const isa::BranchKind *__restrict const kindv = batch_.kind.data();
    const std::uint8_t *__restrict const takenv = batch_.taken.data();
    const std::uint8_t *__restrict const dep_load =
        batch_.depOnLoad.data();
    const std::uint8_t *__restrict const dep_prev =
        batch_.depOnPrev.data();
    unsigned *__restrict const fetch_stall = fetchStall_.data();
    unsigned *__restrict const mem_lat = memLatency_.data();
    std::uint8_t *__restrict const l1_missed = l1Miss_.data();
    std::uint8_t *__restrict const mispred = mispredicted_.data();
    std::uint8_t *__restrict const dram_code = dram_.data();
    std::uint64_t *__restrict const inst_memo = instMemo_.data();
    std::uint64_t *__restrict const data_memo = dataMemo_.data();
    std::uint8_t *__restrict const data_memo_dirty =
        dataMemoDirty_.data();
    const SetAssocCache &l1i = hierarchy_.l1i();
    const SetAssocCache &l1d = hierarchy_.l1d();
    const bool data_memo_legal = dataMemoLegal_;
    const bool way_pred = hierarchy_.hasWayPrediction();

    std::uint64_t inst_repeat_hits = 0;
    std::uint64_t data_repeat_hits = 0;
    std::uint64_t data_repeat_load_hits = 0;
    std::uint64_t num_loads = 0;
    std::uint64_t num_stores = 0;
    std::uint64_t loads_at[4] = {0, 0, 0, 0};
    std::uint32_t *__restrict const branch_idx = branchIdx_.data();
    std::uint32_t *__restrict const mem_idx = memIdx_.data();
    std::size_t branch_count = 0;
    std::size_t mem_count = 0;

    // The scratch lanes default to zero for every op; the cache pass
    // then stores only the exceptional values (memory latencies, L1
    // misses, DRAM transfers, non-L1 fetch stalls), turning three
    // always-taken scalar stores per op into vectorized fills plus
    // rare stores.
    std::memset(fetch_stall, 0, n * sizeof(fetch_stall[0]));
    std::memset(mem_lat, 0, n * sizeof(mem_lat[0]));
    std::memset(l1_missed, 0, n);
    std::memset(dram_code, 0, n);

    // Cache pass: fetch + data per op, interleaved in op order. As a
    // by-product of its class dispatch it records the branch and
    // memory op index lists the later passes walk.
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pc = pcs[i];
        const std::uint64_t fetch_line = pc >> inst_shift;
        const std::uint64_t iset = l1i.setOfLine(fetch_line);
        if (inst_memo[iset] == fetch_line) {
            ++inst_repeat_hits;
        } else {
            const HitLevel fetch_level = hierarchy_.accessInstFast(pc);
            inst_memo[iset] = fetch_line;
            const unsigned stall =
                stall_of[static_cast<std::size_t>(fetch_level)];
            if (stall != 0)
                fetch_stall[i] = stall;
        }

        const isa::UopClass cls = classes[i];
        if (cls == isa::UopClass::Load) {
            ++num_loads;
            mem_idx[mem_count++] = static_cast<std::uint32_t>(i);
            const std::uint64_t addr = addrs[i];
            const std::uint64_t line = addr >> data_shift;
            const std::uint64_t dset = l1d.setOfLine(line);
            HitLevel level = HitLevel::L1;
            unsigned way_penalty = 0;
            if (data_memo_legal && data_memo[dset] == line) {
                // Memo-skipped repeats predict correctly under MRU
                // (the memo'd line is the set's MRU way), so they
                // carry no penalty; utag disables the memo instead.
                ++data_repeat_hits;
                ++data_repeat_load_hits;
            } else {
                level = hierarchy_.accessDataFast(addr, false, pc);
                if (way_pred)
                    way_penalty = l1d.lastWayPenalty();
                data_memo[dset] = line;
                data_memo_dirty[dset] = 0;
            }
            ++loads_at[static_cast<std::size_t>(level)];
            mem_lat[i] = lat[static_cast<std::size_t>(level)] + way_penalty;
            if (level != HitLevel::L1) {
                l1_missed[i] = 1;
                if (level == HitLevel::Memory)
                    dram_code[i] = 1;
            }
        } else if (cls == isa::UopClass::Store) {
            ++num_stores;
            mem_idx[mem_count++] = static_cast<std::uint32_t>(i);
            const std::uint64_t addr = addrs[i];
            const std::uint64_t line = addr >> data_shift;
            const std::uint64_t dset = l1d.setOfLine(line);
            if (data_memo_legal && data_memo[dset] == line
                && data_memo_dirty[dset] != 0) {
                ++data_repeat_hits;
            } else {
                const HitLevel level =
                    hierarchy_.accessDataFast(addr, true, pc);
                data_memo[dset] = line;
                data_memo_dirty[dset] = 1;
                // Write-allocate RFO read now, dirty writeback later.
                if (level == HitLevel::Memory)
                    dram_code[i] = 2;
            }
        } else if (cls == isa::UopClass::Branch) {
            branch_idx[branch_count++] = static_cast<std::uint32_t>(i);
        }
    }

    // TLB passes: itlb over the pc lane, dtlb over load addresses.
    std::uint64_t itlb_walks = 0;
    std::uint64_t dtlb_walks = 0;
    if (tlb) {
        for (std::size_t i = 0; i < n; ++i) {
            const TlbOutcome outcome = itlb_.access(pcs[i]);
            fetch_stall[i] += outcome.extraLatency;
            if (!outcome.l1Hit && !outcome.l2Hit)
                ++itlb_walks;
        }
        for (std::size_t j = 0; j < mem_count; ++j) {
            const std::size_t i = mem_idx[j];
            if (classes[i] != isa::UopClass::Load)
                continue;
            const TlbOutcome outcome = dtlb_.access(addrs[i]);
            mem_lat[i] += outcome.extraLatency;
            // A translation longer than the L1 hit pipeline behaves
            // like a miss for overlap purposes.
            l1_missed[i] |= outcome.extraLatency > 0;
            if (!outcome.l1Hit && !outcome.l2Hit)
                ++dtlb_walks;
        }
    }

    // Branch pass: walks the branch index list in op order, so the
    // predictor/BTB see the exact consume() sequence.
    std::fill(mispred, mispred + n, std::uint8_t{0});
    const std::uint64_t num_branches = branch_count;
    std::uint64_t num_mispredicts = 0;
    std::uint64_t kinds[isa::kNumBranchKinds + 1] = {};
    for (std::size_t j = 0; j < branch_count; ++j) {
        const std::size_t i = branch_idx[j];
        const isa::BranchKind kind = kindv[i];
        SPEC17_ASSERT(kind != isa::BranchKind::None,
                      "branch with kind None reached simulator");
        ++kinds[static_cast<std::size_t>(kind)];
        if (branches_.execute(kind, pcs[i], takenv[i] != 0,
                              targets[i])) {
            mispred[i] = 1;
            ++num_mispredicts;
        }
    }

    // Footprint pass: pc sub-pass, then data sub-pass, each with a
    // local last-page filter backed by a direct-mapped seen-page
    // filter (see pcPageSeen_) so already-counted pages skip the
    // footprint hash probe entirely (inserts are idempotent).
    {
        std::uint64_t *__restrict const pc_seen = pcPageSeen_.data();
        std::uint64_t *__restrict const data_seen = dataPageSeen_.data();
        std::uint64_t last_pc_page = ~std::uint64_t(0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t page =
                pcs[i] / FootprintTracker::kPageBytes;
            if (page == last_pc_page)
                continue;
            last_pc_page = page;
            std::uint64_t &slot = pc_seen[page % kPcPageSeenSlots];
            if (slot != page) {
                slot = page;
                footprint_.touch(pcs[i]);
            }
        }
        std::uint64_t last_data_page = ~std::uint64_t(0);
        for (std::size_t j = 0; j < mem_count; ++j) {
            const std::size_t i = mem_idx[j];
            const std::uint64_t page =
                addrs[i] / FootprintTracker::kPageBytes;
            if (page == last_data_page)
                continue;
            last_data_page = page;
            std::uint64_t &slot = data_seen[page % kDataPageSeenSlots];
            if (slot != page) {
                slot = page;
                footprint_.touch(addrs[i]);
            }
        }
    }

    // Retire pass: serial core timing fed by the staged scratch
    // lanes, with the cross-op state register-hoisted for the whole
    // batch (see CoreModel::retireBatch).
    core_.retireBatch(classes, dep_load, dep_prev, mem_lat, l1_missed,
                      fetch_stall, mispred, dram_code, n);

    if (inst_repeat_hits != 0)
        hierarchy_.creditInstHits(inst_repeat_hits);
    if (data_repeat_hits != 0)
        hierarchy_.creditDataHits(data_repeat_hits);
    if (way_pred && data_repeat_load_hits != 0)
        hierarchy_.creditDataWayPredictions(data_repeat_load_hits);
    if (tlb) {
        counters_.add(PerfEvent::ItlbMissesWalk, itlb_walks);
        counters_.add(PerfEvent::DtlbLoadMissesWalk, dtlb_walks);
    }

    // Counter flush.
    counters_.add(PerfEvent::InstRetiredAny, n);
    counters_.add(PerfEvent::UopsRetiredAll, n);
    counters_.add(PerfEvent::MemUopsRetiredAllLoads, num_loads);
    counters_.add(PerfEvent::MemUopsRetiredAllStores, num_stores);
    const std::uint64_t l2 =
        loads_at[static_cast<std::size_t>(HitLevel::L2)];
    const std::uint64_t l3 =
        loads_at[static_cast<std::size_t>(HitLevel::L3)];
    const std::uint64_t mem =
        loads_at[static_cast<std::size_t>(HitLevel::Memory)];
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit,
                  loads_at[static_cast<std::size_t>(HitLevel::L1)]);
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss, l2 + l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit, l2);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss, l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit, l3);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss, mem);
    counters_.add(PerfEvent::BrInstExecAllBranches, num_branches);
    counters_.add(
        PerfEvent::BrInstExecAllConditional,
        kinds[static_cast<std::size_t>(isa::BranchKind::Conditional)]);
    counters_.add(
        PerfEvent::BrInstExecAllDirectJmp,
        kinds[static_cast<std::size_t>(isa::BranchKind::DirectJump)]);
    counters_.add(PerfEvent::BrInstExecAllDirectNearCall,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::DirectNearCall)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectJumpNonCallRet,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectJumpNonCallRet)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectNearReturn)]);
    counters_.add(PerfEvent::BrMispExecAllBranches, num_mispredicts);
}

void
CpuSimulator::prefillData(std::uint64_t base, std::uint64_t bytes,
                          HitLevel level)
{
    SPEC17_ASSERT(level != HitLevel::Memory,
                  "prefill to memory is a no-op");
    hierarchy_.setL3Context(l3Context_);
    const unsigned line = config_.hierarchy.l1d.lineBytes;
    const std::uint64_t first = base / line * line;
    for (std::uint64_t addr = first; addr < base + bytes; addr += line)
        hierarchy_.fillTo(addr, level);
    // fillTo can evict the memo'd data line.
    invalidateLineMemos();
}

std::uint64_t
CpuSimulator::step(trace::TraceSource &source, std::uint64_t max_ops)
{
    if (unbatched_)
        return stepUnbatched(source, max_ops);
    // Re-assert this core's shared-L3 context: a sibling core's chunk
    // may have moved the shared cache's active context since our last
    // chunk. No-op for a private L3.
    hierarchy_.setL3Context(l3Context_);
    std::uint64_t consumed = 0;
    while (consumed < max_ops) {
        // Clamping each batch to the remaining budget keeps step()'s
        // exact op-count contract: telemetry sampling boundaries and
        // watchdog checks (both applied between step() calls) observe
        // identical counts on either lane.
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(batchOps_, max_ops - consumed));
        const std::size_t got = source.nextBatchSoA(batch_, 0, want);
        if (got != 0)
            consumeBatch(got);
        consumed += got;
        if (got < want)
            break;
    }
    return consumed;
}

std::uint64_t
CpuSimulator::stepUnbatched(trace::TraceSource &source,
                            std::uint64_t max_ops)
{
    // The per-op lane bypasses the memos' bookkeeping, so they must
    // not survive into a later batched step.
    invalidateLineMemos();
    hierarchy_.setL3Context(l3Context_);
    isa::MicroOp op;
    std::uint64_t consumed = 0;
    while (consumed < max_ops && source.next(op)) {
        consume(op);
        ++consumed;
    }
    return consumed;
}

counters::CounterSet
CpuSimulator::snapshot() const
{
    counters::CounterSet snap = counters_;
    snap.set(PerfEvent::CpuClkUnhaltedRefTsc,
             static_cast<std::uint64_t>(core_.cycles()));
    snap.raiseTo(PerfEvent::RssBytes, footprint_.rssBytes());
    return snap;
}

SimResult
CpuSimulator::finish(const trace::TraceSource &source)
{
    SimResult result;
    result.counters = snapshot();
    result.counters.raiseTo(
        PerfEvent::VszBytes,
        std::max(source.virtualReserveBytes(), footprint_.rssBytes()));
    result.cycles = core_.cycles();
    result.seconds = core_.secondsFor(result.cycles);
    return result;
}

SimResult
CpuSimulator::run(trace::TraceSource &source)
{
    constexpr std::uint64_t kChunk = 1 << 20;
    while (step(source, kChunk) == kChunk) {
    }
    return finish(source);
}

} // namespace sim
} // namespace spec17
