#include "sim/simulator.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

using counters::PerfEvent;

double
SimResult::ipc() const
{
    const std::uint64_t cycles_counted =
        counters.get(PerfEvent::CpuClkUnhaltedRefTsc);
    if (cycles_counted == 0)
        return 0.0;
    return static_cast<double>(counters.get(PerfEvent::InstRetiredAny))
        / static_cast<double>(cycles_counted);
}

CpuSimulator::CpuSimulator(const SystemConfig &config, std::uint64_t seed,
                           std::shared_ptr<SetAssocCache> shared_l3,
                           std::shared_ptr<MemoryBus> shared_bus)
    : config_(config),
      hierarchy_(config.hierarchy, std::move(shared_l3), seed),
      branches_(makeDirectionPredictor(config.branchPredictor)),
      core_(config.core, std::move(shared_bus)), dtlb_(config.dtlb),
      itlb_(config.itlb),
      dataMemoLegal_(hierarchy_.prefetcher() == nullptr)
{
    instMemo_.assign(config.hierarchy.l1i.numSets(), kNoLine);
    dataMemo_.assign(config.hierarchy.l1d.numSets(), kNoLine);
    dataMemoDirty_.assign(config.hierarchy.l1d.numSets(), 0);
}

void
CpuSimulator::setBatchOps(std::size_t batch_ops)
{
    SPEC17_ASSERT(batch_ops >= 1, "batch size must be >= 1");
    batchOps_ = batch_ops;
}

void
CpuSimulator::invalidateLineMemos()
{
    std::fill(instMemo_.begin(), instMemo_.end(), kNoLine);
    std::fill(dataMemo_.begin(), dataMemo_.end(), kNoLine);
    std::fill(dataMemoDirty_.begin(), dataMemoDirty_.end(),
              std::uint8_t{0});
}

void
CpuSimulator::consume(const isa::MicroOp &op)
{
    counters_.add(PerfEvent::InstRetiredAny);
    counters_.add(PerfEvent::UopsRetiredAll);

    // Instruction fetch: one L1I access per retired op; only count a
    // fetch stall for new lines to avoid charging every sequential op.
    const HitLevel fetch_level = hierarchy_.accessInst(op.pc);
    footprint_.touch(op.pc);
    unsigned fetch_stall = 0;
    if (fetch_level != HitLevel::L1) {
        const unsigned latency = hierarchy_.latencyOf(fetch_level);
        const unsigned hidden = config_.core.frontendBufferCycles;
        fetch_stall = latency > hidden ? latency - hidden : 0;
    }
    if (config_.enableTlb) {
        const TlbOutcome itlb_outcome = itlb_.access(op.pc);
        fetch_stall += itlb_outcome.extraLatency;
        if (!itlb_outcome.l1Hit && !itlb_outcome.l2Hit)
            counters_.add(PerfEvent::ItlbMissesWalk);
    }

    unsigned mem_latency = 0;
    bool l1_miss = false;
    bool mispredicted = false;
    bool dram_access = false;
    double dram_lines = 1.0;

    if (op.isLoad()) {
        counters_.add(PerfEvent::MemUopsRetiredAllLoads);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, false, op.pc);
        footprint_.touch(op.effAddr);
        mem_latency = hierarchy_.latencyOf(level);
        l1_miss = level != HitLevel::L1;
        dram_access = level == HitLevel::Memory;
        if (config_.enableTlb) {
            const TlbOutcome dtlb_outcome = dtlb_.access(op.effAddr);
            mem_latency += dtlb_outcome.extraLatency;
            // A translation longer than the L1 hit pipeline behaves
            // like a miss for overlap purposes.
            l1_miss |= dtlb_outcome.extraLatency > 0;
            if (!dtlb_outcome.l1Hit && !dtlb_outcome.l2Hit)
                counters_.add(PerfEvent::DtlbLoadMissesWalk);
        }
        switch (level) {
          case HitLevel::L1:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit);
            break;
          case HitLevel::L2:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit);
            break;
          case HitLevel::L3:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit);
            break;
          case HitLevel::Memory:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss);
            break;
        }
    } else if (op.isStore()) {
        counters_.add(PerfEvent::MemUopsRetiredAllStores);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, true, op.pc);
        footprint_.touch(op.effAddr);
        if (level == HitLevel::Memory) {
            // Write-allocate RFO read now, dirty writeback later.
            dram_access = true;
            dram_lines = 2.0;
        }
    } else if (op.isBranch()) {
        counters_.add(PerfEvent::BrInstExecAllBranches);
        switch (op.branch) {
          case isa::BranchKind::Conditional:
            counters_.add(PerfEvent::BrInstExecAllConditional);
            break;
          case isa::BranchKind::DirectJump:
            counters_.add(PerfEvent::BrInstExecAllDirectJmp);
            break;
          case isa::BranchKind::DirectNearCall:
            counters_.add(PerfEvent::BrInstExecAllDirectNearCall);
            break;
          case isa::BranchKind::IndirectJumpNonCallRet:
            counters_.add(
                PerfEvent::BrInstExecAllIndirectJumpNonCallRet);
            break;
          case isa::BranchKind::IndirectNearReturn:
            counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn);
            break;
          case isa::BranchKind::None:
            SPEC17_PANIC("branch with kind None reached simulator");
        }
        mispredicted = branches_.execute(op);
        if (mispredicted)
            counters_.add(PerfEvent::BrMispExecAllBranches);
    }

    core_.retire(op, mem_latency, l1_miss, fetch_stall, mispredicted,
                 dram_access, dram_lines);
}

void
CpuSimulator::consumeBatch(const isa::MicroOp *ops, std::size_t n)
{
    // Equivalent to n consume() calls, fused into one pass in op
    // order so every component (caches, TLBs, branch unit, footprint,
    // core) sees exactly the access sequence consume() would produce.
    // The only restructurings vs consume():
    //  - counter increments accumulate in locals and flush once per
    //    batch (adds are commutative, observed only at step
    //    boundaries, and batches never straddle a step boundary);
    //  - per-set line memos: an access to the line that is its L1
    //    set's most-recently-used way is an L1 hit whose
    //    replacement-state update is a no-op (see
    //    SetAssocCache::creditHits for the policy-by-policy proof),
    //    so it is skipped and bulk-credited. Writes are only skipped
    //    when the line is known dirty; the data memo is disabled
    //    entirely when a prefetcher is configured (fills can evict
    //    any L1D line and the prefetcher must observe every load);
    //  - footprint touches are filtered through local page memos
    //    (inserts into the page set are idempotent).
    const unsigned inst_shift = static_cast<unsigned>(
        std::countr_zero(config_.hierarchy.l1i.lineBytes));
    const unsigned data_shift = static_cast<unsigned>(
        std::countr_zero(config_.hierarchy.l1d.lineBytes));
    const unsigned hidden = config_.core.frontendBufferCycles;
    const bool tlb = config_.enableTlb;
    std::uint64_t inst_repeat_hits = 0;
    std::uint64_t data_repeat_hits = 0;
    std::uint64_t num_loads = 0;
    std::uint64_t num_stores = 0;
    std::uint64_t loads_at[4] = {0, 0, 0, 0};
    std::uint64_t itlb_walks = 0;
    std::uint64_t dtlb_walks = 0;
    std::uint64_t num_branches = 0;
    std::uint64_t num_mispredicts = 0;
    std::uint64_t kinds[isa::kNumBranchKinds + 1] = {};
    std::uint64_t last_pc_page = ~std::uint64_t(0);
    std::uint64_t last_data_page = ~std::uint64_t(0);

    for (std::size_t i = 0; i < n; ++i) {
        const isa::MicroOp &op = ops[i];

        // Instruction fetch.
        const std::uint64_t fetch_line = op.pc >> inst_shift;
        const std::uint64_t iset =
            hierarchy_.l1i().setOfLine(fetch_line);
        HitLevel fetch_level = HitLevel::L1;
        if (instMemo_[iset] == fetch_line) {
            ++inst_repeat_hits;
        } else {
            fetch_level = hierarchy_.accessInstFast(op.pc);
            instMemo_[iset] = fetch_line;
        }
        const std::uint64_t pc_page =
            op.pc / FootprintTracker::kPageBytes;
        if (pc_page != last_pc_page) {
            footprint_.touch(op.pc);
            last_pc_page = pc_page;
        }
        unsigned fetch_stall = 0;
        if (fetch_level != HitLevel::L1) {
            const unsigned latency = hierarchy_.latencyOf(fetch_level);
            fetch_stall = latency > hidden ? latency - hidden : 0;
        }
        if (tlb) {
            const TlbOutcome itlb_outcome = itlb_.access(op.pc);
            fetch_stall += itlb_outcome.extraLatency;
            if (!itlb_outcome.l1Hit && !itlb_outcome.l2Hit)
                ++itlb_walks;
        }

        unsigned mem_latency = 0;
        bool l1_miss = false;
        bool mispredicted = false;
        bool dram_access = false;
        double dram_lines = 1.0;

        if (op.isLoad()) {
            ++num_loads;
            const std::uint64_t line = op.effAddr >> data_shift;
            const std::uint64_t dset =
                hierarchy_.l1d().setOfLine(line);
            HitLevel level = HitLevel::L1;
            if (dataMemoLegal_ && dataMemo_[dset] == line) {
                ++data_repeat_hits;
            } else {
                level = hierarchy_.accessDataFast(op.effAddr, false,
                                                  op.pc);
                dataMemo_[dset] = line;
                dataMemoDirty_[dset] = 0;
            }
            const std::uint64_t data_page =
                op.effAddr / FootprintTracker::kPageBytes;
            if (data_page != last_data_page) {
                footprint_.touch(op.effAddr);
                last_data_page = data_page;
            }
            ++loads_at[static_cast<std::size_t>(level)];
            mem_latency = hierarchy_.latencyOf(level);
            l1_miss = level != HitLevel::L1;
            dram_access = level == HitLevel::Memory;
            if (tlb) {
                const TlbOutcome dtlb_outcome =
                    dtlb_.access(op.effAddr);
                mem_latency += dtlb_outcome.extraLatency;
                // A translation longer than the L1 hit pipeline
                // behaves like a miss for overlap purposes.
                l1_miss |= dtlb_outcome.extraLatency > 0;
                if (!dtlb_outcome.l1Hit && !dtlb_outcome.l2Hit)
                    ++dtlb_walks;
            }
        } else if (op.isStore()) {
            ++num_stores;
            const std::uint64_t line = op.effAddr >> data_shift;
            const std::uint64_t dset =
                hierarchy_.l1d().setOfLine(line);
            if (dataMemoLegal_ && dataMemo_[dset] == line
                && dataMemoDirty_[dset] != 0) {
                ++data_repeat_hits;
            } else {
                const HitLevel level =
                    hierarchy_.accessDataFast(op.effAddr, true, op.pc);
                dataMemo_[dset] = line;
                dataMemoDirty_[dset] = 1;
                if (level == HitLevel::Memory) {
                    // Write-allocate RFO read now, dirty writeback
                    // later.
                    dram_access = true;
                    dram_lines = 2.0;
                }
            }
            const std::uint64_t data_page =
                op.effAddr / FootprintTracker::kPageBytes;
            if (data_page != last_data_page) {
                footprint_.touch(op.effAddr);
                last_data_page = data_page;
            }
        } else if (op.isBranch()) {
            SPEC17_ASSERT(op.branch != isa::BranchKind::None,
                          "branch with kind None reached simulator");
            ++num_branches;
            ++kinds[static_cast<std::size_t>(op.branch)];
            if (branches_.execute(op)) {
                mispredicted = true;
                ++num_mispredicts;
            }
        }

        core_.retireInline(op, mem_latency, l1_miss, fetch_stall,
                           mispredicted, dram_access, dram_lines);
    }

    if (inst_repeat_hits != 0)
        hierarchy_.creditInstHits(inst_repeat_hits);
    if (data_repeat_hits != 0)
        hierarchy_.creditDataHits(data_repeat_hits);
    if (tlb) {
        counters_.add(PerfEvent::ItlbMissesWalk, itlb_walks);
        counters_.add(PerfEvent::DtlbLoadMissesWalk, dtlb_walks);
    }

    // Counter flush.
    counters_.add(PerfEvent::InstRetiredAny, n);
    counters_.add(PerfEvent::UopsRetiredAll, n);
    counters_.add(PerfEvent::MemUopsRetiredAllLoads, num_loads);
    counters_.add(PerfEvent::MemUopsRetiredAllStores, num_stores);
    const std::uint64_t l2 =
        loads_at[static_cast<std::size_t>(HitLevel::L2)];
    const std::uint64_t l3 =
        loads_at[static_cast<std::size_t>(HitLevel::L3)];
    const std::uint64_t mem =
        loads_at[static_cast<std::size_t>(HitLevel::Memory)];
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit,
                  loads_at[static_cast<std::size_t>(HitLevel::L1)]);
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss, l2 + l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit, l2);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss, l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit, l3);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss, mem);
    counters_.add(PerfEvent::BrInstExecAllBranches, num_branches);
    counters_.add(
        PerfEvent::BrInstExecAllConditional,
        kinds[static_cast<std::size_t>(isa::BranchKind::Conditional)]);
    counters_.add(
        PerfEvent::BrInstExecAllDirectJmp,
        kinds[static_cast<std::size_t>(isa::BranchKind::DirectJump)]);
    counters_.add(PerfEvent::BrInstExecAllDirectNearCall,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::DirectNearCall)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectJumpNonCallRet,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectJumpNonCallRet)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectNearReturn)]);
    counters_.add(PerfEvent::BrMispExecAllBranches, num_mispredicts);
}

void
CpuSimulator::prefillData(std::uint64_t base, std::uint64_t bytes,
                          HitLevel level)
{
    SPEC17_ASSERT(level != HitLevel::Memory,
                  "prefill to memory is a no-op");
    hierarchy_.setL3Context(l3Context_);
    const unsigned line = config_.hierarchy.l1d.lineBytes;
    const std::uint64_t first = base / line * line;
    for (std::uint64_t addr = first; addr < base + bytes; addr += line)
        hierarchy_.fillTo(addr, level);
    // fillTo can evict the memo'd data line.
    invalidateLineMemos();
}

std::uint64_t
CpuSimulator::step(trace::TraceSource &source, std::uint64_t max_ops)
{
    if (unbatched_)
        return stepUnbatched(source, max_ops);
    // Re-assert this core's shared-L3 context: a sibling core's chunk
    // may have moved the shared cache's active context since our last
    // chunk. No-op for a private L3.
    hierarchy_.setL3Context(l3Context_);
    if (batchBuf_.size() < batchOps_)
        batchBuf_.resize(batchOps_);
    std::uint64_t consumed = 0;
    while (consumed < max_ops) {
        // Clamping each batch to the remaining budget keeps step()'s
        // exact op-count contract: telemetry sampling boundaries and
        // watchdog checks (both applied between step() calls) observe
        // identical counts on either lane.
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(batchOps_, max_ops - consumed));
        const std::size_t got = source.nextBatch(batchBuf_.data(), want);
        if (got != 0)
            consumeBatch(batchBuf_.data(), got);
        consumed += got;
        if (got < want)
            break;
    }
    return consumed;
}

std::uint64_t
CpuSimulator::stepUnbatched(trace::TraceSource &source,
                            std::uint64_t max_ops)
{
    // The per-op lane bypasses the memos' bookkeeping, so they must
    // not survive into a later batched step.
    invalidateLineMemos();
    hierarchy_.setL3Context(l3Context_);
    isa::MicroOp op;
    std::uint64_t consumed = 0;
    while (consumed < max_ops && source.next(op)) {
        consume(op);
        ++consumed;
    }
    return consumed;
}

counters::CounterSet
CpuSimulator::snapshot() const
{
    counters::CounterSet snap = counters_;
    snap.set(PerfEvent::CpuClkUnhaltedRefTsc,
             static_cast<std::uint64_t>(core_.cycles()));
    snap.raiseTo(PerfEvent::RssBytes, footprint_.rssBytes());
    return snap;
}

SimResult
CpuSimulator::finish(const trace::TraceSource &source)
{
    SimResult result;
    result.counters = snapshot();
    result.counters.raiseTo(
        PerfEvent::VszBytes,
        std::max(source.virtualReserveBytes(), footprint_.rssBytes()));
    result.cycles = core_.cycles();
    result.seconds = core_.secondsFor(result.cycles);
    return result;
}

SimResult
CpuSimulator::run(trace::TraceSource &source)
{
    constexpr std::uint64_t kChunk = 1 << 20;
    while (step(source, kChunk) == kChunk) {
    }
    return finish(source);
}

} // namespace sim
} // namespace spec17
