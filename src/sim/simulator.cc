#include "sim/simulator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

using counters::PerfEvent;

double
SimResult::ipc() const
{
    const std::uint64_t cycles_counted =
        counters.get(PerfEvent::CpuClkUnhaltedRefTsc);
    if (cycles_counted == 0)
        return 0.0;
    return static_cast<double>(counters.get(PerfEvent::InstRetiredAny))
        / static_cast<double>(cycles_counted);
}

CpuSimulator::CpuSimulator(const SystemConfig &config, std::uint64_t seed,
                           std::shared_ptr<SetAssocCache> shared_l3,
                           std::shared_ptr<MemoryBus> shared_bus)
    : config_(config),
      hierarchy_(config.hierarchy, std::move(shared_l3), seed),
      branches_(makeDirectionPredictor(config.branchPredictor)),
      core_(config.core, std::move(shared_bus)), dtlb_(config.dtlb),
      itlb_(config.itlb)
{
}

void
CpuSimulator::consume(const isa::MicroOp &op)
{
    counters_.add(PerfEvent::InstRetiredAny);
    counters_.add(PerfEvent::UopsRetiredAll);

    // Instruction fetch: one L1I access per retired op; only count a
    // fetch stall for new lines to avoid charging every sequential op.
    const HitLevel fetch_level = hierarchy_.accessInst(op.pc);
    footprint_.touch(op.pc);
    unsigned fetch_stall = 0;
    if (fetch_level != HitLevel::L1) {
        const unsigned latency = hierarchy_.latencyOf(fetch_level);
        const unsigned hidden = config_.core.frontendBufferCycles;
        fetch_stall = latency > hidden ? latency - hidden : 0;
    }
    if (config_.enableTlb) {
        const TlbOutcome itlb_outcome = itlb_.access(op.pc);
        fetch_stall += itlb_outcome.extraLatency;
        if (!itlb_outcome.l1Hit && !itlb_outcome.l2Hit)
            counters_.add(PerfEvent::ItlbMissesWalk);
    }

    unsigned mem_latency = 0;
    bool l1_miss = false;
    bool mispredicted = false;
    bool dram_access = false;
    double dram_lines = 1.0;

    if (op.isLoad()) {
        counters_.add(PerfEvent::MemUopsRetiredAllLoads);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, false, op.pc);
        footprint_.touch(op.effAddr);
        mem_latency = hierarchy_.latencyOf(level);
        l1_miss = level != HitLevel::L1;
        dram_access = level == HitLevel::Memory;
        if (config_.enableTlb) {
            const TlbOutcome dtlb_outcome = dtlb_.access(op.effAddr);
            mem_latency += dtlb_outcome.extraLatency;
            // A translation longer than the L1 hit pipeline behaves
            // like a miss for overlap purposes.
            l1_miss |= dtlb_outcome.extraLatency > 0;
            if (!dtlb_outcome.l1Hit && !dtlb_outcome.l2Hit)
                counters_.add(PerfEvent::DtlbLoadMissesWalk);
        }
        switch (level) {
          case HitLevel::L1:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit);
            break;
          case HitLevel::L2:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit);
            break;
          case HitLevel::L3:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit);
            break;
          case HitLevel::Memory:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss);
            break;
        }
    } else if (op.isStore()) {
        counters_.add(PerfEvent::MemUopsRetiredAllStores);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, true, op.pc);
        footprint_.touch(op.effAddr);
        if (level == HitLevel::Memory) {
            // Write-allocate RFO read now, dirty writeback later.
            dram_access = true;
            dram_lines = 2.0;
        }
    } else if (op.isBranch()) {
        counters_.add(PerfEvent::BrInstExecAllBranches);
        switch (op.branch) {
          case isa::BranchKind::Conditional:
            counters_.add(PerfEvent::BrInstExecAllConditional);
            break;
          case isa::BranchKind::DirectJump:
            counters_.add(PerfEvent::BrInstExecAllDirectJmp);
            break;
          case isa::BranchKind::DirectNearCall:
            counters_.add(PerfEvent::BrInstExecAllDirectNearCall);
            break;
          case isa::BranchKind::IndirectJumpNonCallRet:
            counters_.add(
                PerfEvent::BrInstExecAllIndirectJumpNonCallRet);
            break;
          case isa::BranchKind::IndirectNearReturn:
            counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn);
            break;
          case isa::BranchKind::None:
            SPEC17_PANIC("branch with kind None reached simulator");
        }
        mispredicted = branches_.execute(op);
        if (mispredicted)
            counters_.add(PerfEvent::BrMispExecAllBranches);
    }

    core_.retire(op, mem_latency, l1_miss, fetch_stall, mispredicted,
                 dram_access, dram_lines);
}

void
CpuSimulator::prefillData(std::uint64_t base, std::uint64_t bytes,
                          HitLevel level)
{
    SPEC17_ASSERT(level != HitLevel::Memory,
                  "prefill to memory is a no-op");
    const unsigned line = config_.hierarchy.l1d.lineBytes;
    const std::uint64_t first = base / line * line;
    for (std::uint64_t addr = first; addr < base + bytes; addr += line)
        hierarchy_.fillTo(addr, level);
}

std::uint64_t
CpuSimulator::step(trace::TraceSource &source, std::uint64_t max_ops)
{
    isa::MicroOp op;
    std::uint64_t consumed = 0;
    while (consumed < max_ops && source.next(op)) {
        consume(op);
        ++consumed;
    }
    return consumed;
}

counters::CounterSet
CpuSimulator::snapshot() const
{
    counters::CounterSet snap = counters_;
    snap.set(PerfEvent::CpuClkUnhaltedRefTsc,
             static_cast<std::uint64_t>(core_.cycles()));
    snap.raiseTo(PerfEvent::RssBytes, footprint_.rssBytes());
    return snap;
}

SimResult
CpuSimulator::finish(const trace::TraceSource &source)
{
    SimResult result;
    result.counters = snapshot();
    result.counters.raiseTo(
        PerfEvent::VszBytes,
        std::max(source.virtualReserveBytes(), footprint_.rssBytes()));
    result.cycles = core_.cycles();
    result.seconds = core_.secondsFor(result.cycles);
    return result;
}

SimResult
CpuSimulator::run(trace::TraceSource &source)
{
    constexpr std::uint64_t kChunk = 1 << 20;
    while (step(source, kChunk) == kChunk) {
    }
    return finish(source);
}

} // namespace sim
} // namespace spec17
