#include "sim/simulator.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

using counters::PerfEvent;

double
SimResult::ipc() const
{
    const std::uint64_t cycles_counted =
        counters.get(PerfEvent::CpuClkUnhaltedRefTsc);
    if (cycles_counted == 0)
        return 0.0;
    return static_cast<double>(counters.get(PerfEvent::InstRetiredAny))
        / static_cast<double>(cycles_counted);
}

CpuSimulator::CpuSimulator(const SystemConfig &config, std::uint64_t seed,
                           std::shared_ptr<SetAssocCache> shared_l3,
                           std::shared_ptr<MemoryBus> shared_bus,
                           CpuSimulator *recycle, bool recycle_dirty)
    : config_(config),
      hierarchy_(config.hierarchy, std::move(shared_l3), seed,
                 recycle ? &recycle->hierarchy_ : nullptr,
                 recycle_dirty),
      branches_(makeDirectionPredictor(config.branchPredictor,
                                       config.tage)),
      core_(config.core, std::move(shared_bus)), dtlb_(config.dtlb),
      itlb_(config.itlb),
      // The same-line data memo is illegal under an L1D prefetcher
      // (skipped repeats would starve its training stream) and under
      // utag way prediction (an aliasing earlier way mispredicts every
      // repeat, so skipped repeats would dodge real penalty cycles).
      // MRU way prediction keeps it legal -- the memo'd line is by
      // construction the set's MRU way -- and an L2-only prefetcher
      // keeps it legal too, since skipped repeats are L1 hits it never
      // observes.
      dataMemoLegal_(hierarchy_.prefetcher() == nullptr
                     && config.hierarchy.l1d.wayPredictor
                            != WayPredictor::Utag)
{
    // Way prediction is modeled on the L1D load path only (timing and
    // stats); other levels would collect stats the batched lane's
    // inst memo cannot reproduce.
    SPEC17_ASSERT(config.hierarchy.l1i.wayPredictor == WayPredictor::None
                      && config.hierarchy.l2.wayPredictor
                             == WayPredictor::None
                      && config.hierarchy.l3.wayPredictor
                             == WayPredictor::None,
                  "way prediction is supported on the L1D only");
    if (recycle != nullptr) {
        // Adopt the donor's batch, scratch and memo buffers; every
        // one is re-assigned or lazily resized below, so only warm
        // pages carry over, never state.
        batch_ = std::move(recycle->batch_);
        fetchStall_ = std::move(recycle->fetchStall_);
        memLatency_ = std::move(recycle->memLatency_);
        l1Miss_ = std::move(recycle->l1Miss_);
        mispredicted_ = std::move(recycle->mispredicted_);
        dram_ = std::move(recycle->dram_);
        branchIdx_ = std::move(recycle->branchIdx_);
        memIdx_ = std::move(recycle->memIdx_);
        instMemo_ = std::move(recycle->instMemo_);
        dataMemo_ = std::move(recycle->dataMemo_);
        dataMemoDirty_ = std::move(recycle->dataMemoDirty_);
        pcPageSeen_ = std::move(recycle->pcPageSeen_);
        dataPageSeen_ = std::move(recycle->dataPageSeen_);
    }
    instMemo_.assign(config.hierarchy.l1i.numSets(), kNoLine);
    dataMemo_.assign(config.hierarchy.l1d.numSets(), kNoLine);
    dataMemoDirty_.assign(config.hierarchy.l1d.numSets(), 0);
    pcPageSeen_.assign(kPcPageSeenSlots, kNoLine);
    dataPageSeen_.assign(kDataPageSeenSlots, kNoLine);
}

void
CpuSimulator::setBatchOps(std::size_t batch_ops)
{
    if (batch_ops == 0) {
        // Contained degradation, not a panic: the knob is results-
        // invariant, so the nearest legal value loses nothing.
        warn("batch size 0 is meaningless; clamping to 1");
        batch_ops = 1;
    }
    batchOps_ = batch_ops;
}

void
CpuSimulator::invalidateLineMemos()
{
    std::fill(instMemo_.begin(), instMemo_.end(), kNoLine);
    std::fill(dataMemo_.begin(), dataMemo_.end(), kNoLine);
    std::fill(dataMemoDirty_.begin(), dataMemoDirty_.end(),
              std::uint8_t{0});
}

void
CpuSimulator::consume(const isa::MicroOp &op)
{
    counters_.add(PerfEvent::InstRetiredAny);
    counters_.add(PerfEvent::UopsRetiredAll);

    // Instruction fetch: one L1I access per retired op; only count a
    // fetch stall for new lines to avoid charging every sequential op.
    const HitLevel fetch_level = hierarchy_.accessInst(op.pc);
    footprint_.touch(op.pc);
    unsigned fetch_stall = 0;
    if (fetch_level != HitLevel::L1) {
        const unsigned latency = hierarchy_.latencyOf(fetch_level);
        const unsigned hidden = config_.core.frontendBufferCycles;
        fetch_stall = latency > hidden ? latency - hidden : 0;
    }
    if (config_.enableTlb) {
        const TlbOutcome itlb_outcome = itlb_.access(op.pc);
        fetch_stall += itlb_outcome.extraLatency;
        if (!itlb_outcome.l1Hit && !itlb_outcome.l2Hit)
            counters_.add(PerfEvent::ItlbMissesWalk);
    }

    unsigned mem_latency = 0;
    bool l1_miss = false;
    bool mispredicted = false;
    bool dram_access = false;
    double dram_lines = 1.0;

    if (op.isLoad()) {
        counters_.add(PerfEvent::MemUopsRetiredAllLoads);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, false, op.pc);
        footprint_.touch(op.effAddr);
        // lastDataWayPenalty() is zero unless the L1D way predictor
        // just mispredicted this access's hit way.
        mem_latency =
            hierarchy_.latencyOf(level) + hierarchy_.lastDataWayPenalty();
        l1_miss = level != HitLevel::L1;
        dram_access = level == HitLevel::Memory;
        if (config_.enableTlb) {
            const TlbOutcome dtlb_outcome = dtlb_.access(op.effAddr);
            mem_latency += dtlb_outcome.extraLatency;
            // A translation longer than the L1 hit pipeline behaves
            // like a miss for overlap purposes.
            l1_miss |= dtlb_outcome.extraLatency > 0;
            if (!dtlb_outcome.l1Hit && !dtlb_outcome.l2Hit)
                counters_.add(PerfEvent::DtlbLoadMissesWalk);
        }
        switch (level) {
          case HitLevel::L1:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit);
            break;
          case HitLevel::L2:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit);
            break;
          case HitLevel::L3:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit);
            break;
          case HitLevel::Memory:
            counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss);
            counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss);
            break;
        }
    } else if (op.isStore()) {
        counters_.add(PerfEvent::MemUopsRetiredAllStores);
        const HitLevel level =
            hierarchy_.accessData(op.effAddr, true, op.pc);
        footprint_.touch(op.effAddr);
        if (level == HitLevel::Memory) {
            // Write-allocate RFO read now, dirty writeback later.
            dram_access = true;
            dram_lines = 2.0;
        }
    } else if (op.isBranch()) {
        counters_.add(PerfEvent::BrInstExecAllBranches);
        switch (op.branch) {
          case isa::BranchKind::Conditional:
            counters_.add(PerfEvent::BrInstExecAllConditional);
            break;
          case isa::BranchKind::DirectJump:
            counters_.add(PerfEvent::BrInstExecAllDirectJmp);
            break;
          case isa::BranchKind::DirectNearCall:
            counters_.add(PerfEvent::BrInstExecAllDirectNearCall);
            break;
          case isa::BranchKind::IndirectJumpNonCallRet:
            counters_.add(
                PerfEvent::BrInstExecAllIndirectJumpNonCallRet);
            break;
          case isa::BranchKind::IndirectNearReturn:
            counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn);
            break;
          case isa::BranchKind::None:
            SPEC17_PANIC("branch with kind None reached simulator");
        }
        mispredicted = branches_.execute(op);
        if (mispredicted)
            counters_.add(PerfEvent::BrMispExecAllBranches);
    }

    core_.retire(op, mem_latency, l1_miss, fetch_stall, mispredicted,
                 dram_access, dram_lines);
}

void
CpuSimulator::consumeBatch(const trace::MicroOpBatch &lanes,
                           std::size_t base, std::size_t n,
                           MemoryLaneLog *record)
{
    // Equivalent to n consume() calls over lane slots [base, base+n)
    // of @p lanes, restructured into tight per-component passes so each
    // loop walks only the lanes its component consumes and the
    // compiler can vectorize the lane arithmetic. Identity is argued
    // pass by pass against the per-op order consume() would produce:
    //  - Cache pass: L1I and L1D share L2/L3, so the fetch access and
    //    the data access of one op MUST stay interleaved in op order
    //    within a single pass -- splitting them would reorder the
    //    shared-level access sequence. The per-set line memos live
    //    here (an access to a set's MRU line is an L1 hit whose
    //    replacement-state update is a no-op, see
    //    SetAssocCache::creditHits for the policy-by-policy proof;
    //    writes only skip when the line is known dirty; the data memo
    //    is disabled when a prefetcher is configured).
    //  - TLB passes: itlb_ is fed only by the pc sequence and dtlb_
    //    only by load addresses; neither shares state with anything
    //    else, so hoisting each into its own in-order pass leaves
    //    every TLB's observed access sequence unchanged.
    //  - Branch pass: only branch ops touch the branch unit, and the
    //    pass visits them in op order, so the predictor/BTB see the
    //    exact consume() sequence.
    //  - Footprint pass: the page set is idempotent and its contents
    //    are order-independent (observed only via rssBytes at step
    //    boundaries), so pc and data touches run as two sub-passes,
    //    each filtered through a local last-page memo.
    //  - Retire pass: retirement carries serial cross-op core state,
    //    so it stays a final in-order pass fed by the per-op scratch
    //    lanes (fetchStall_/memLatency_/l1Miss_/mispredicted_/dram_)
    //    the earlier passes staged -- the same per-op scalars the
    //    fused loop handed retire().
    //  - Counter increments accumulate in locals and flush once per
    //    batch (adds are commutative, observed only at step
    //    boundaries, and batches never straddle a step boundary).
    const unsigned inst_shift = static_cast<unsigned>(
        std::countr_zero(config_.hierarchy.l1i.lineBytes));
    const unsigned data_shift = static_cast<unsigned>(
        std::countr_zero(config_.hierarchy.l1d.lineBytes));
    const unsigned hidden = config_.core.frontendBufferCycles;
    const bool tlb = config_.enableTlb;

    // Hoisted HitLevel -> latency / fetch-stall tables (HitLevel is a
    // dense 0..3 enum). An L1 fetch hit never stalls regardless of
    // its latency, hence the explicit zero.
    unsigned lat[4];
    unsigned stall_of[4];
    for (unsigned v = 0; v < 4; ++v) {
        lat[v] = hierarchy_.latencyOf(static_cast<HitLevel>(v));
        stall_of[v] = lat[v] > hidden ? lat[v] - hidden : 0;
    }
    stall_of[static_cast<std::size_t>(HitLevel::L1)] = 0;

    if (fetchStall_.size() < n) {
        fetchStall_.resize(n);
        memLatency_.resize(n);
        l1Miss_.resize(n);
        mispredicted_.resize(n);
        dram_.resize(n);
        branchIdx_.resize(n);
        memIdx_.resize(n);
    }

    // Raw __restrict views of every lane the passes walk. Several
    // scratch lanes are byte-typed, and a plain std::uint8_t store may
    // alias anything (unsigned char is the universal-aliasing type),
    // which would force the compiler to reload every hoisted pointer
    // and memo value after each store -- measurably dominating the
    // pass loops. The restrict qualification restores the no-overlap
    // guarantee the distinct vectors trivially satisfy.
    const std::uint64_t *__restrict const pcs = lanes.pc.data() + base;
    const std::uint64_t *__restrict const addrs =
        lanes.addr.data() + base;
    const std::uint64_t *__restrict const targets =
        lanes.target.data() + base;
    const isa::UopClass *__restrict const classes =
        lanes.cls.data() + base;
    const isa::BranchKind *__restrict const kindv =
        lanes.kind.data() + base;
    const std::uint8_t *__restrict const takenv =
        lanes.taken.data() + base;
    const std::uint8_t *__restrict const dep_load =
        lanes.depOnLoad.data() + base;
    const std::uint8_t *__restrict const dep_prev =
        lanes.depOnPrev.data() + base;
    unsigned *__restrict const fetch_stall = fetchStall_.data();
    unsigned *__restrict const mem_lat = memLatency_.data();
    std::uint8_t *__restrict const l1_missed = l1Miss_.data();
    std::uint8_t *__restrict const mispred = mispredicted_.data();
    std::uint8_t *__restrict const dram_code = dram_.data();
    std::uint64_t *__restrict const inst_memo = instMemo_.data();
    std::uint64_t *__restrict const data_memo = dataMemo_.data();
    std::uint8_t *__restrict const data_memo_dirty =
        dataMemoDirty_.data();
    const SetAssocCache &l1i = hierarchy_.l1i();
    const SetAssocCache &l1d = hierarchy_.l1d();
    const bool data_memo_legal = dataMemoLegal_;
    const bool way_pred = hierarchy_.hasWayPrediction();

    std::uint64_t inst_repeat_hits = 0;
    std::uint64_t data_repeat_hits = 0;
    std::uint64_t data_repeat_load_hits = 0;
    std::uint64_t num_loads = 0;
    std::uint64_t num_stores = 0;
    std::uint64_t loads_at[4] = {0, 0, 0, 0};
    std::uint32_t *__restrict const branch_idx = branchIdx_.data();
    std::uint32_t *__restrict const mem_idx = memIdx_.data();
    std::size_t branch_count = 0;
    std::size_t mem_count = 0;

    // The scratch lanes default to zero for every op; the cache pass
    // then stores only the exceptional values (memory latencies, L1
    // misses, DRAM transfers, non-L1 fetch stalls), turning three
    // always-taken scalar stores per op into vectorized fills plus
    // rare stores.
    std::memset(fetch_stall, 0, n * sizeof(fetch_stall[0]));
    std::memset(mem_lat, 0, n * sizeof(mem_lat[0]));
    std::memset(l1_missed, 0, n);
    std::memset(dram_code, 0, n);

    // Cache pass: fetch + data per op, interleaved in op order. As a
    // by-product of its class dispatch it records the branch and
    // memory op index lists the later passes walk.
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pc = pcs[i];
        const std::uint64_t fetch_line = pc >> inst_shift;
        const std::uint64_t iset = l1i.setOfLine(fetch_line);
        if (inst_memo[iset] == fetch_line) {
            ++inst_repeat_hits;
        } else {
            const HitLevel fetch_level = hierarchy_.accessInstFast(pc);
            inst_memo[iset] = fetch_line;
            const unsigned stall =
                stall_of[static_cast<std::size_t>(fetch_level)];
            if (stall != 0)
                fetch_stall[i] = stall;
        }

        const isa::UopClass cls = classes[i];
        if (cls == isa::UopClass::Load) {
            ++num_loads;
            mem_idx[mem_count++] = static_cast<std::uint32_t>(i);
            const std::uint64_t addr = addrs[i];
            const std::uint64_t line = addr >> data_shift;
            const std::uint64_t dset = l1d.setOfLine(line);
            HitLevel level = HitLevel::L1;
            unsigned way_penalty = 0;
            if (data_memo_legal && data_memo[dset] == line) {
                // Memo-skipped repeats predict correctly under MRU
                // (the memo'd line is the set's MRU way), so they
                // carry no penalty; utag disables the memo instead.
                ++data_repeat_hits;
                ++data_repeat_load_hits;
            } else {
                level = hierarchy_.accessDataFast(addr, false, pc);
                if (way_pred)
                    way_penalty = l1d.lastWayPenalty();
                data_memo[dset] = line;
                data_memo_dirty[dset] = 0;
            }
            ++loads_at[static_cast<std::size_t>(level)];
            mem_lat[i] = lat[static_cast<std::size_t>(level)] + way_penalty;
            if (level != HitLevel::L1) {
                l1_missed[i] = 1;
                if (level == HitLevel::Memory)
                    dram_code[i] = 1;
            }
        } else if (cls == isa::UopClass::Store) {
            ++num_stores;
            mem_idx[mem_count++] = static_cast<std::uint32_t>(i);
            const std::uint64_t addr = addrs[i];
            const std::uint64_t line = addr >> data_shift;
            const std::uint64_t dset = l1d.setOfLine(line);
            if (data_memo_legal && data_memo[dset] == line
                && data_memo_dirty[dset] != 0) {
                ++data_repeat_hits;
            } else {
                const HitLevel level =
                    hierarchy_.accessDataFast(addr, true, pc);
                data_memo[dset] = line;
                data_memo_dirty[dset] = 1;
                // Write-allocate RFO read now, dirty writeback later.
                if (level == HitLevel::Memory)
                    dram_code[i] = 2;
            }
        } else if (cls == isa::UopClass::Branch) {
            branch_idx[branch_count++] = static_cast<std::uint32_t>(i);
        }
    }

    // TLB passes: itlb over the pc lane, dtlb over load addresses.
    std::uint64_t itlb_walks = 0;
    std::uint64_t dtlb_walks = 0;
    if (tlb) {
        for (std::size_t i = 0; i < n; ++i) {
            const TlbOutcome outcome = itlb_.access(pcs[i]);
            fetch_stall[i] += outcome.extraLatency;
            if (!outcome.l1Hit && !outcome.l2Hit)
                ++itlb_walks;
        }
        for (std::size_t j = 0; j < mem_count; ++j) {
            const std::size_t i = mem_idx[j];
            if (classes[i] != isa::UopClass::Load)
                continue;
            const TlbOutcome outcome = dtlb_.access(addrs[i]);
            mem_lat[i] += outcome.extraLatency;
            // A translation longer than the L1 hit pipeline behaves
            // like a miss for overlap purposes.
            l1_missed[i] |= outcome.extraLatency > 0;
            if (!outcome.l1Hit && !outcome.l2Hit)
                ++dtlb_walks;
        }
    }

    // Lane recording: the scratch lanes are now final (only the
    // branch pass still writes, and only to mispred), so a clone-
    // group sibling replaying the identical stream can import them
    // plus the counter deltas instead of re-running the cache and
    // TLB passes. One bulk append per lane.
    if (record != nullptr) {
        MemoryLaneLog::Batch b;
        b.n = static_cast<std::uint32_t>(n);
        b.laneOffset =
            static_cast<std::uint32_t>(record->fetchStall.size());
        b.memOffset = static_cast<std::uint32_t>(record->memIdx.size());
        b.memCount = static_cast<std::uint32_t>(mem_count);
        b.branchOffset =
            static_cast<std::uint32_t>(record->branchIdx.size());
        b.branchCount = static_cast<std::uint32_t>(branch_count);
        b.numLoads = num_loads;
        b.numStores = num_stores;
        for (unsigned v = 0; v < 4; ++v)
            b.loadsAt[v] = loads_at[v];
        b.itlbWalks = itlb_walks;
        b.dtlbWalks = dtlb_walks;
        record->fetchStall.insert(record->fetchStall.end(), fetch_stall,
                                  fetch_stall + n);
        record->memLatency.insert(record->memLatency.end(), mem_lat,
                                  mem_lat + n);
        record->l1Miss.insert(record->l1Miss.end(), l1_missed,
                              l1_missed + n);
        record->dram.insert(record->dram.end(), dram_code,
                            dram_code + n);
        record->memIdx.insert(record->memIdx.end(), mem_idx,
                              mem_idx + mem_count);
        record->branchIdx.insert(record->branchIdx.end(), branch_idx,
                                 branch_idx + branch_count);
        record->batches.push_back(b);
    }

    // Branch pass: walks the branch index list in op order, so the
    // predictor/BTB see the exact consume() sequence.
    std::fill(mispred, mispred + n, std::uint8_t{0});
    const std::uint64_t num_branches = branch_count;
    std::uint64_t num_mispredicts = 0;
    std::uint64_t kinds[isa::kNumBranchKinds + 1] = {};
    for (std::size_t j = 0; j < branch_count; ++j) {
        const std::size_t i = branch_idx[j];
        const isa::BranchKind kind = kindv[i];
        SPEC17_ASSERT(kind != isa::BranchKind::None,
                      "branch with kind None reached simulator");
        ++kinds[static_cast<std::size_t>(kind)];
        if (branches_.execute(kind, pcs[i], takenv[i] != 0,
                              targets[i])) {
            mispred[i] = 1;
            ++num_mispredicts;
        }
    }

    // Footprint pass: pc sub-pass, then data sub-pass, each with a
    // local last-page filter backed by a direct-mapped seen-page
    // filter (see pcPageSeen_) so already-counted pages skip the
    // footprint hash probe entirely (inserts are idempotent).
    {
        std::uint64_t *__restrict const pc_seen = pcPageSeen_.data();
        std::uint64_t *__restrict const data_seen = dataPageSeen_.data();
        std::uint64_t last_pc_page = ~std::uint64_t(0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t page =
                pcs[i] / FootprintTracker::kPageBytes;
            if (page == last_pc_page)
                continue;
            last_pc_page = page;
            std::uint64_t &slot = pc_seen[page % kPcPageSeenSlots];
            if (slot != page) {
                slot = page;
                footprint_.touch(pcs[i]);
            }
        }
        std::uint64_t last_data_page = ~std::uint64_t(0);
        for (std::size_t j = 0; j < mem_count; ++j) {
            const std::size_t i = mem_idx[j];
            const std::uint64_t page =
                addrs[i] / FootprintTracker::kPageBytes;
            if (page == last_data_page)
                continue;
            last_data_page = page;
            std::uint64_t &slot = data_seen[page % kDataPageSeenSlots];
            if (slot != page) {
                slot = page;
                footprint_.touch(addrs[i]);
            }
        }
    }

    // Retire pass: serial core timing fed by the staged scratch
    // lanes, with the cross-op state register-hoisted for the whole
    // batch (see CoreModel::retireBatch).
    core_.retireBatch(classes, dep_load, dep_prev, mem_lat, l1_missed,
                      fetch_stall, mispred, dram_code, n);

    if (inst_repeat_hits != 0)
        hierarchy_.creditInstHits(inst_repeat_hits);
    if (data_repeat_hits != 0)
        hierarchy_.creditDataHits(data_repeat_hits);
    if (way_pred && data_repeat_load_hits != 0)
        hierarchy_.creditDataWayPredictions(data_repeat_load_hits);
    if (tlb) {
        counters_.add(PerfEvent::ItlbMissesWalk, itlb_walks);
        counters_.add(PerfEvent::DtlbLoadMissesWalk, dtlb_walks);
    }

    // Counter flush.
    counters_.add(PerfEvent::InstRetiredAny, n);
    counters_.add(PerfEvent::UopsRetiredAll, n);
    counters_.add(PerfEvent::MemUopsRetiredAllLoads, num_loads);
    counters_.add(PerfEvent::MemUopsRetiredAllStores, num_stores);
    const std::uint64_t l2 =
        loads_at[static_cast<std::size_t>(HitLevel::L2)];
    const std::uint64_t l3 =
        loads_at[static_cast<std::size_t>(HitLevel::L3)];
    const std::uint64_t mem =
        loads_at[static_cast<std::size_t>(HitLevel::Memory)];
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit,
                  loads_at[static_cast<std::size_t>(HitLevel::L1)]);
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss, l2 + l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit, l2);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss, l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit, l3);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss, mem);
    counters_.add(PerfEvent::BrInstExecAllBranches, num_branches);
    counters_.add(
        PerfEvent::BrInstExecAllConditional,
        kinds[static_cast<std::size_t>(isa::BranchKind::Conditional)]);
    counters_.add(
        PerfEvent::BrInstExecAllDirectJmp,
        kinds[static_cast<std::size_t>(isa::BranchKind::DirectJump)]);
    counters_.add(PerfEvent::BrInstExecAllDirectNearCall,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::DirectNearCall)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectJumpNonCallRet,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectJumpNonCallRet)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectNearReturn)]);
    counters_.add(PerfEvent::BrMispExecAllBranches, num_mispredicts);
}

void
CpuSimulator::consumeBatchImported(const trace::MicroOpBatch &lanes,
                                   std::size_t base, std::size_t n,
                                   const MemoryLaneLog &log,
                                   std::size_t &cursor)
{
    // The imported half of consumeBatch: the cache and TLB passes --
    // deterministic functions of the op stream and the (identical)
    // hierarchy/TLB configuration -- are replaced by the leader's
    // recorded lanes and counter deltas, consumed in place. The
    // branch, footprint and retire passes below are copied verbatim
    // from consumeBatch, fed by the imported lanes, so this
    // simulator's predictor state, footprint and core timing are
    // exact. The hierarchy and TLBs are never touched.
    SPEC17_ASSERT(cursor < log.batches.size(),
                  "memory-lane log exhausted: the sibling's batch "
                  "schedule diverged from its leader's");
    const MemoryLaneLog::Batch &b = log.batches[cursor++];
    SPEC17_ASSERT(b.n == n,
                  "memory-lane batch size diverged from the log (have ",
                  n, ", recorded ", b.n, ")");

    const std::uint64_t *__restrict const pcs = lanes.pc.data() + base;
    const std::uint64_t *__restrict const addrs =
        lanes.addr.data() + base;
    const std::uint64_t *__restrict const targets =
        lanes.target.data() + base;
    const isa::UopClass *__restrict const classes =
        lanes.cls.data() + base;
    const isa::BranchKind *__restrict const kindv =
        lanes.kind.data() + base;
    const std::uint8_t *__restrict const takenv =
        lanes.taken.data() + base;
    const std::uint8_t *__restrict const dep_load =
        lanes.depOnLoad.data() + base;
    const std::uint8_t *__restrict const dep_prev =
        lanes.depOnPrev.data() + base;

    const unsigned *__restrict const fetch_stall =
        log.fetchStall.data() + b.laneOffset;
    const unsigned *__restrict const mem_lat =
        log.memLatency.data() + b.laneOffset;
    const std::uint8_t *__restrict const l1_missed =
        log.l1Miss.data() + b.laneOffset;
    const std::uint8_t *__restrict const dram_code =
        log.dram.data() + b.laneOffset;
    const std::uint32_t *__restrict const mem_idx =
        log.memIdx.data() + b.memOffset;
    const std::uint32_t *__restrict const branch_idx =
        log.branchIdx.data() + b.branchOffset;

    if (mispredicted_.size() < n)
        mispredicted_.resize(n);
    std::uint8_t *__restrict const mispred = mispredicted_.data();

    // Branch pass (verbatim from consumeBatch).
    std::fill(mispred, mispred + n, std::uint8_t{0});
    const std::uint64_t num_branches = b.branchCount;
    std::uint64_t num_mispredicts = 0;
    std::uint64_t kinds[isa::kNumBranchKinds + 1] = {};
    for (std::size_t j = 0; j < b.branchCount; ++j) {
        const std::size_t i = branch_idx[j];
        const isa::BranchKind kind = kindv[i];
        SPEC17_ASSERT(kind != isa::BranchKind::None,
                      "branch with kind None reached simulator");
        ++kinds[static_cast<std::size_t>(kind)];
        if (branches_.execute(kind, pcs[i], takenv[i] != 0,
                              targets[i])) {
            mispred[i] = 1;
            ++num_mispredicts;
        }
    }

    // Footprint pass (verbatim from consumeBatch).
    {
        std::uint64_t *__restrict const pc_seen = pcPageSeen_.data();
        std::uint64_t *__restrict const data_seen = dataPageSeen_.data();
        std::uint64_t last_pc_page = ~std::uint64_t(0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t page =
                pcs[i] / FootprintTracker::kPageBytes;
            if (page == last_pc_page)
                continue;
            last_pc_page = page;
            std::uint64_t &slot = pc_seen[page % kPcPageSeenSlots];
            if (slot != page) {
                slot = page;
                footprint_.touch(pcs[i]);
            }
        }
        std::uint64_t last_data_page = ~std::uint64_t(0);
        for (std::size_t j = 0; j < b.memCount; ++j) {
            const std::size_t i = mem_idx[j];
            const std::uint64_t page =
                addrs[i] / FootprintTracker::kPageBytes;
            if (page == last_data_page)
                continue;
            last_data_page = page;
            std::uint64_t &slot = data_seen[page % kDataPageSeenSlots];
            if (slot != page) {
                slot = page;
                footprint_.touch(addrs[i]);
            }
        }
    }

    // Retire pass on the imported lanes.
    core_.retireBatch(classes, dep_load, dep_prev, mem_lat, l1_missed,
                      fetch_stall, mispred, dram_code, n);

    // Counter flush: cache/TLB deltas from the log, branch counts
    // from this simulator's own branch pass. The hierarchy stat
    // credits consumeBatch performs are intentionally absent -- this
    // simulator's hierarchy holds no observable state.
    if (config_.enableTlb) {
        counters_.add(PerfEvent::ItlbMissesWalk, b.itlbWalks);
        counters_.add(PerfEvent::DtlbLoadMissesWalk, b.dtlbWalks);
    }
    counters_.add(PerfEvent::InstRetiredAny, n);
    counters_.add(PerfEvent::UopsRetiredAll, n);
    counters_.add(PerfEvent::MemUopsRetiredAllLoads, b.numLoads);
    counters_.add(PerfEvent::MemUopsRetiredAllStores, b.numStores);
    const std::uint64_t l2 =
        b.loadsAt[static_cast<std::size_t>(HitLevel::L2)];
    const std::uint64_t l3 =
        b.loadsAt[static_cast<std::size_t>(HitLevel::L3)];
    const std::uint64_t mem =
        b.loadsAt[static_cast<std::size_t>(HitLevel::Memory)];
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Hit,
                  b.loadsAt[static_cast<std::size_t>(HitLevel::L1)]);
    counters_.add(PerfEvent::MemLoadUopsRetiredL1Miss, l2 + l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Hit, l2);
    counters_.add(PerfEvent::MemLoadUopsRetiredL2Miss, l3 + mem);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Hit, l3);
    counters_.add(PerfEvent::MemLoadUopsRetiredL3Miss, mem);
    counters_.add(PerfEvent::BrInstExecAllBranches, num_branches);
    counters_.add(
        PerfEvent::BrInstExecAllConditional,
        kinds[static_cast<std::size_t>(isa::BranchKind::Conditional)]);
    counters_.add(
        PerfEvent::BrInstExecAllDirectJmp,
        kinds[static_cast<std::size_t>(isa::BranchKind::DirectJump)]);
    counters_.add(PerfEvent::BrInstExecAllDirectNearCall,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::DirectNearCall)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectJumpNonCallRet,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectJumpNonCallRet)]);
    counters_.add(PerfEvent::BrInstExecAllIndirectNearReturn,
                  kinds[static_cast<std::size_t>(
                      isa::BranchKind::IndirectNearReturn)]);
    counters_.add(PerfEvent::BrMispExecAllBranches, num_mispredicts);
}

void
CpuSimulator::prefillData(std::uint64_t base, std::uint64_t bytes,
                          HitLevel level)
{
    SPEC17_ASSERT(level != HitLevel::Memory,
                  "prefill to memory is a no-op");
    hierarchy_.setL3Context(l3Context_);
    const unsigned line = config_.hierarchy.l1d.lineBytes;
    const std::uint64_t first = base / line * line;
    for (std::uint64_t addr = first; addr < base + bytes; addr += line)
        hierarchy_.fillTo(addr, level);
    // fillTo can evict the memo'd data line.
    invalidateLineMemos();
}

void
CpuSimulator::copyPrefillFrom(const CpuSimulator &other)
{
    // Prefill fills caches only: cloning before any demand traffic
    // (cycles still zero on both sides) transplants exactly the state
    // a matching prefillData sequence would have built here.
    SPEC17_ASSERT(core_.cycles() == 0.0 && other.core_.cycles() == 0.0,
                  "prefill cloning requires pristine simulators");
    hierarchy_.copyStateFrom(other.hierarchy_);
    // fillTo can evict the memo'd lines (same reset as prefillData).
    invalidateLineMemos();
}

std::uint64_t
CpuSimulator::step(trace::TraceSource &source, std::uint64_t max_ops)
{
    if (unbatched_)
        return stepUnbatched(source, max_ops);
    return stepBatched(source, max_ops, nullptr, nullptr, nullptr);
}

std::uint64_t
CpuSimulator::stepRecording(trace::TraceSource &source,
                            std::uint64_t max_ops, MemoryLaneLog &log)
{
    SPEC17_ASSERT(!unbatched_,
                  "lane recording requires the batched lane");
    return stepBatched(source, max_ops, &log, nullptr, nullptr);
}

std::uint64_t
CpuSimulator::stepImporting(trace::TraceSource &source,
                            std::uint64_t max_ops,
                            const MemoryLaneLog &log, std::size_t &cursor)
{
    SPEC17_ASSERT(!unbatched_,
                  "lane importing requires the batched lane");
    return stepBatched(source, max_ops, nullptr, &log, &cursor);
}

std::uint64_t
CpuSimulator::stepBatched(trace::TraceSource &source,
                          std::uint64_t max_ops, MemoryLaneLog *record,
                          const MemoryLaneLog *import,
                          std::size_t *cursor)
{
    // Re-assert this core's shared-L3 context: a sibling core's chunk
    // may have moved the shared cache's active context since our last
    // chunk. No-op for a private L3.
    hierarchy_.setL3Context(l3Context_);
    std::uint64_t consumed = 0;
    while (consumed < max_ops) {
        // Clamping each batch to the remaining budget keeps step()'s
        // exact op-count contract: telemetry sampling boundaries and
        // watchdog checks (both applied between step() calls) observe
        // identical counts on either lane.
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(batchOps_, max_ops - consumed));
        // Zero-copy first: a source with resident lanes (the replay
        // arena) hands back a view and the passes consume it in
        // place; everything else is staged through batch_ as before.
        std::size_t at = 0;
        std::size_t got = 0;
        if (const trace::MicroOpBatch *view =
                source.nextLanes(want, at, got)) {
            if (got != 0) {
                if (import != nullptr)
                    consumeBatchImported(*view, at, got, *import,
                                         *cursor);
                else
                    consumeBatch(*view, at, got, record);
            }
        } else {
            got = source.nextBatchSoA(batch_, 0, want);
            if (got != 0) {
                if (import != nullptr)
                    consumeBatchImported(batch_, 0, got, *import,
                                         *cursor);
                else
                    consumeBatch(batch_, 0, got, record);
            }
        }
        consumed += got;
        if (got < want)
            break;
    }
    return consumed;
}

std::uint64_t
CpuSimulator::stepUnbatched(trace::TraceSource &source,
                            std::uint64_t max_ops)
{
    // The per-op lane bypasses the memos' bookkeeping, so they must
    // not survive into a later batched step.
    invalidateLineMemos();
    hierarchy_.setL3Context(l3Context_);
    isa::MicroOp op;
    std::uint64_t consumed = 0;
    while (consumed < max_ops && source.next(op)) {
        consume(op);
        ++consumed;
    }
    return consumed;
}

counters::CounterSet
CpuSimulator::snapshot() const
{
    counters::CounterSet snap = counters_;
    snap.set(PerfEvent::CpuClkUnhaltedRefTsc,
             static_cast<std::uint64_t>(core_.cycles()));
    snap.raiseTo(PerfEvent::RssBytes, footprint_.rssBytes());
    return snap;
}

SimResult
CpuSimulator::finish(const trace::TraceSource &source)
{
    SimResult result;
    result.counters = snapshot();
    result.counters.raiseTo(
        PerfEvent::VszBytes,
        std::max(source.virtualReserveBytes(), footprint_.rssBytes()));
    result.cycles = core_.cycles();
    result.seconds = core_.secondsFor(result.cycles);
    return result;
}

SimResult
CpuSimulator::run(trace::TraceSource &source)
{
    constexpr std::uint64_t kChunk = 1 << 20;
    while (step(source, kChunk) == kChunk) {
    }
    return finish(source);
}

} // namespace sim
} // namespace spec17
