/**
 * @file
 * Whole-system configuration, defaulting to the paper's Table I
 * machine (Intel Xeon E5-2650L v3, Haswell).
 */

#ifndef SPEC17_SIM_SYSTEM_CONFIG_HH_
#define SPEC17_SIM_SYSTEM_CONFIG_HH_

#include <string>

#include "sim/branch.hh"
#include "sim/core_model.hh"
#include "sim/hierarchy.hh"
#include "sim/tlb.hh"

namespace spec17 {
namespace sim {

/** Core + hierarchy + branch predictor selection. */
struct SystemConfig
{
    CoreParams core;
    HierarchyConfig hierarchy;
    /** Direction predictor:
     *  static-taken|bimodal|gshare|tournament|tage. */
    std::string branchPredictor = "tournament";
    /** TAGE geometry, used when branchPredictor == "tage". */
    TageConfig tage;
    /**
     * Two-level TLB modelling. Disabled in the Table-I baseline (the
     * paper's counter set has no TLB events); the ablation bench
     * turns it on.
     */
    bool enableTlb = false;
    TlbConfig dtlb;
    TlbConfig itlb{128, 1024, 4096, 7, 30};

    /**
     * The experimental machine of the paper's Table I: Haswell,
     * 32 KB 8-way L1I/L1D, 256 KB 8-way L2, 30 MB shared L3, 64 B
     * lines, 4-wide OoO at 1.8 GHz.
     */
    static SystemConfig haswellXeonE52650Lv3();

    /** Multi-line human-readable echo of the configuration. */
    std::string describe() const;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_SYSTEM_CONFIG_HH_
