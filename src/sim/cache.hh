/**
 * @file
 * Set-associative cache model with pluggable replacement policies.
 *
 * Models tag state only (no data): enough to reproduce hit/miss
 * behaviour, evictions and writeback traffic, which is all the
 * characterization consumes.
 */

#ifndef SPEC17_SIM_CACHE_HH_
#define SPEC17_SIM_CACHE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"

namespace spec17 {
namespace sim {

/** Replacement policy of a cache. */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,      //!< true least-recently-used
    TreePlru, //!< tree pseudo-LRU (requires power-of-two ways)
    Random,   //!< uniform random victim
};

/** Human-readable policy name. */
std::string replacementPolicyName(ReplacementPolicy policy);

/**
 * Way-prediction scheme of a set-associative cache. Way prediction
 * guesses the hit way before the full tag compare resolves; a wrong
 * guess costs extra cycles (CacheConfig::wayMispredictPenalty) that
 * the owning hierarchy folds into the access latency.
 */
enum class WayPredictor : std::uint8_t
{
    None, //!< no prediction, every hit pays the base latency
    Mru,  //!< per-set most-recently-used way
    Utag, //!< per-way 8-bit partial tag, first match predicts
};

/** Human-readable way-predictor name ("none"/"mru"/"utag"). */
std::string wayPredictorName(WayPredictor kind);

/** Parses "none"/"mru"/"utag"; fatal on anything else. */
WayPredictor wayPredictorFromName(const std::string &name);

/** Static parameters of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    /** Load-to-use latency in core cycles when this level hits. */
    unsigned hitLatency = 4;
    /** Way-prediction scheme (fatal with assoc == 1: a direct-mapped
     *  cache has nothing to predict). */
    WayPredictor wayPredictor = WayPredictor::None;
    /** Extra cycles a hit pays when the predicted way was wrong. */
    unsigned wayMispredictPenalty = 2;

    /** Number of sets; panics if the geometry is inconsistent. */
    std::uint64_t numSets() const;
};

/** Running counters of one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchFills = 0;
    /** Demand hits that consumed a prefetched (not yet demanded)
     *  line; the line is re-marked as demand-owned on first use. */
    std::uint64_t prefetchUseful = 0;
    /** Subset of prefetchUseful whose line was filled by the L2
     *  prefetcher (fill owner code 2) rather than the L1 one. */
    std::uint64_t prefetchUsefulByL2 = 0;
    /** Demand hits that consulted the way predictor. */
    std::uint64_t wayPredictions = 0;
    /** Predicted-way misses among those (extra latency paid). */
    std::uint64_t wayMispredicts = 0;
    /** Total extra cycles charged for way mispredictions. */
    std::uint64_t wayPenaltyCycles = 0;

    std::uint64_t accesses() const { return hits + misses; }
    /** misses / accesses, or 0 when never accessed. */
    double missRate() const;
};

/**
 * Per-context accounting of a shared cache (the multicore L3): which
 * context hit/missed, which context's allocation replaced whose line.
 * Attribution follows the *allocating* context -- an eviction is
 * charged to the context that needed the way, and additionally
 * recorded as inflicted/suffered when victim and allocator belong to
 * different contexts. That split is what makes contention visible:
 * `evictionsSuffered` counts lines a context lost to its co-runners.
 */
struct CacheContextStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Valid lines this context's allocations replaced (any owner). */
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    /** Evictions whose victim line belonged to another context. */
    std::uint64_t evictionsInflicted = 0;
    /** This context's resident lines evicted by other contexts. */
    std::uint64_t evictionsSuffered = 0;

    std::uint64_t accesses() const { return hits + misses; }
    /** misses / accesses, or 0 when never accessed. */
    double missRate() const;
};

/**
 * A single set-associative, write-back, write-allocate cache.
 * Thread-unsafe by design (the simulator is single-threaded).
 */
class SetAssocCache
{
  public:
    /**
     * @param config geometry and policy.
     * @param seed randomness seed (only used by Random replacement).
     * @param recycle optional dead cache whose heap buffers this one
     *        adopts before re-initializing them -- the constructed
     *        state is bit-identical to a fresh construction (every
     *        lane is re-assigned), but matching geometries skip the
     *        large page-faulting allocations that dominate cache
     *        construction cost. The donor is left empty and must not
     *        be used again. Multi-point simulation fan-out recycles
     *        each finished point's caches this way.
     * @param recycle_dirty skip the line/recency lane resets: the
     *        lanes keep whatever bytes they adopted (or value-
     *        initialized) and the caller PROMISES to copy-assign the
     *        complete cache state from a same-config cache before the
     *        first access. Fan-out clone-group siblings use this --
     *        their construction image is immediately overwritten by
     *        the group leader's prefilled state, so resetting ~8 MB
     *        of L3 lanes first is pure memory traffic.
     */
    explicit SetAssocCache(CacheConfig config, std::uint64_t seed = 0,
                           SetAssocCache *recycle = nullptr,
                           bool recycle_dirty = false);

    /**
     * Performs a demand access.
     * @param addr byte address.
     * @param is_write true for stores (sets the dirty bit).
     * @return true on hit. On miss the line is allocated, possibly
     *         evicting (and counting a writeback for a dirty victim).
     */
    bool access(std::uint64_t addr, bool is_write);

    /**
     * Division-free access() used by the simulator's batched fast
     * lane: identical semantics, stats, replacement updates and RNG
     * draws, but the set/tag decomposition runs on precomputed
     * shifts (and a constant-divisor multiply for the odd set-count
     * factor) instead of the three 64-bit divisions access() pays
     * per level. Inline so the batched memory pass can keep the
     * whole L1-hit path in one compilation unit.
     */
    bool accessFast(std::uint64_t addr, bool is_write)
    {
        const std::uint64_t la = addr >> lineShift_;
        const SetTag st = decompose(la);
        const std::size_t base = st.set * config_.assoc;
        const unsigned way = findWay(&tags_[base], st.tag);
        if (way != config_.assoc) {
            ++stats_.hits;
            if (trackContexts_)
                ++ctxStats_[ctx_].hits;
            if (wayPred_ != WayPredictor::None) {
                // Way prediction accelerates the load-use path; store
                // hits drain through the write buffer and neither
                // consult the predictor nor pay a penalty.
                if (is_write)
                    lastWayPenalty_ = 0;
                else
                    notePrediction(st.set, base, way);
            }
            if (trackPrefetch_)
                notePrefetchHit(base + way);
            dirty_[base + way] |= is_write;
            touchImpl(st.set, way);
            return true;
        }
        ++stats_.misses;
        if (trackContexts_)
            ++ctxStats_[ctx_].misses;
        if (wayPred_ != WayPredictor::None)
            lastWayPenalty_ = 0;
        const std::size_t index = allocateInto(st.set, st.tag);
        // access() reaches the same state via its post-allocate dirty
        // store: the freshly allocated line IS the matching line.
        if (is_write)
            dirty_[index] = true;
        return false;
    }

    /** Checks residency without disturbing replacement state. */
    bool probe(std::uint64_t addr) const;

    /**
     * Credits @p n demand hits to the stats without walking the
     * arrays or touching replacement state. Only valid when the
     * caller has proven the accesses would have hit AND left the
     * cache state behaviourally unchanged -- i.e. repeated accesses
     * to a line that is the most recently used way of its set.
     * Re-touching a set's MRU way is invisible to every policy's
     * future victim choices: under LRU its stamp is already the
     * set's maximum (raising it, or skipping the global counter
     * increment, preserves the strict within-set stamp order the
     * victim scan compares); under tree-PLRU the way's path bits
     * already point away from it, so setting them again is a no-op;
     * Random ignores recency entirely. The simulator's batched lane
     * relies on this through its per-set line memos (see
     * docs/performance.md). Way-prediction stats for credited load
     * repeats are added separately via creditWayPredictions.
     */
    void creditHits(std::uint64_t n) { stats_.hits += n; }

    /**
     * Credit @p n correct (penalty-free) way predictions for
     * memo-skipped load repeats. Legal only under MRU prediction: a
     * memo'd line IS the set's MRU way by the creditHits argument, so
     * the predictor would have named its way. Utag prediction has no
     * such guarantee and the simulator disables the memo instead.
     */
    void creditWayPredictions(std::uint64_t n)
    {
        stats_.wayPredictions += n;
    }

    /** Set index of a line address (addr >> lineShift); lets the
     *  batched lane key its per-set memos exactly as this cache maps
     *  lines to sets. */
    std::uint64_t setOfLine(std::uint64_t line_addr) const
    {
        return decompose(line_addr).set;
    }

    /**
     * Installs a line without counting a demand hit/miss (prefetch
     * fill path). Counts prefetchFills; a resident line just has its
     * recency refreshed (and keeps its current fill owner).
     * @param owner fill-owner code recorded when prefetch-use
     *        tracking is on: 0 = neutral (warmup prefill), 1 = L1
     *        prefetcher, 2 = L2 prefetcher.
     */
    void fill(std::uint64_t addr, unsigned owner = 0);

    /**
     * Enables the prefetched-line owner lane so demand hits on
     * prefetched lines are counted (CacheStats::prefetchUseful).
     * Must be called before the first access; the hierarchy enables
     * it on every cache a configured prefetcher fills.
     */
    void enablePrefetchTracking();

    /**
     * Extra cycles the most recent demand access paid for a way
     * misprediction (0 on a correct prediction, on any miss, and
     * always when way prediction is off). The hierarchy folds this
     * into the access latency.
     */
    unsigned lastWayPenalty() const { return lastWayPenalty_; }

    /** The 8-bit partial tag utag prediction compares (tests). */
    static std::uint8_t utagOf(std::uint64_t tag)
    {
        return static_cast<std::uint8_t>(
            (tag ^ (tag >> 8) ^ (tag >> 16)) & 0xff);
    }

    /** Invalidates everything and clears per-line state (not stats). */
    void flushAll();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

    /** @name Shared-cache contexts (multicore L3 attribution)
     *
     * A shared cache can attribute its traffic to the context (core)
     * performing each access: per-context hit/miss/eviction stats,
     * per-line ownership and occupancy, and a CAT-style way-partition
     * mask per context modeled on Intel RDT `schemata` bitmasks. A
     * context's mask restricts which ways its *allocations* may claim
     * (victim selection); hits are unrestricted, exactly like
     * hardware CAT. With tracking off (the default, and every private
     * cache) none of this state exists and the access paths are
     * unchanged -- the golden byte-identity tests pin that. */
    /// @{

    /** Owner bytes are uint8; contexts beyond this would alias. */
    static constexpr unsigned kMaxContexts = 255;

    /**
     * Enables per-context attribution for @p num_contexts contexts
     * (1 <= n <= kMaxContexts, assoc <= 32 for the mask word). Must
     * be called before the first access; every context starts with
     * the full way mask (no partition) and context 0 active.
     */
    void enableContextTracking(unsigned num_contexts);

    /** Contexts registered; 0 when tracking is disabled. */
    unsigned numContexts() const
    {
        return static_cast<unsigned>(ctxStats_.size());
    }

    /** Selects the context subsequent accesses are attributed to.
     *  With tracking disabled only context 0 is legal (no-op). */
    void setContext(unsigned ctx);

    unsigned context() const { return ctx_; }

    /**
     * Sets context @p ctx's allocation way mask (bit w = way w may be
     * claimed). Panics on an empty mask or one naming ways beyond the
     * associativity -- the two illegal schemata shapes. The mask set
     * {context -> mask} is semantics (it changes victim choices), so
     * runners must fold it into their config keys.
     */
    void setWayMask(unsigned ctx, std::uint32_t mask);

    std::uint32_t wayMask(unsigned ctx) const;

    /** Mask naming every way ((1 << assoc) - 1). */
    std::uint32_t fullWayMask() const
    {
        return config_.assoc >= 32
            ? ~std::uint32_t{0}
            : (std::uint32_t{1} << config_.assoc) - 1;
    }

    const CacheContextStats &contextStats(unsigned ctx) const;

    /** Valid lines currently owned by @p ctx (allocation owner). */
    std::uint64_t contextOccupancy(unsigned ctx) const;

    /// @}

  private:
    /** Tag slot value of an invalid way. A real tag is line_addr /
     *  numSets and the geometry keeps it far below 2^64, so the
     *  sentinel never collides (asserted on allocation); the way scan
     *  therefore needs no separate valid bit. */
    static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint64_t setIndex(std::uint64_t line_addr) const;
    std::uint64_t tagOf(std::uint64_t line_addr) const;
    /** Index into the line lanes for @p addr, or SIZE_MAX if the
     *  line is not resident. */
    std::size_t findIndex(std::uint64_t addr) const;
    /** Chooses a victim way in @p set according to the policy. */
    unsigned victimWay(std::uint64_t set);
    /** victimWay() restricted to the active context's way mask; only
     *  reached when some context runs under a partial mask. */
    unsigned victimWayMasked(std::uint64_t set);
    void touch(std::uint64_t set, unsigned way);
    /** TreePlru part of touch(); out of line, it is off the common
     *  LRU path. */
    void plruTouch(std::uint64_t set, unsigned way);
    /** Allocates @p addr into the cache, updating eviction stats;
     *  returns the allocated line's lane index. */
    std::size_t allocate(std::uint64_t addr);
    /** allocate() body with the set/tag already decomposed; returns
     *  the allocated line's lane index so accessFast can set the
     *  dirty bit without another way scan. */
    std::size_t allocateInto(std::uint64_t set, std::uint64_t tag);

    /** Way holding @p tag among the @p base tag lane of one set, or
     *  assoc when absent. Branchless: tags within a set are unique
     *  (and kNoTag never matches), so the scan has no ordering or
     *  early-exit semantics to preserve -- it compiles to a chain of
     *  conditional moves (and, for the ubiquitous 8-way geometry,
     *  a fully unrolled SIMD-friendly form) instead of the
     *  mispredict-prone early-exit loop over AoS line structs the
     *  cache used before its tag lane split. */
    unsigned findWay(const std::uint64_t *base, std::uint64_t tag) const
    {
        if (config_.assoc == 8) {
            unsigned way = 8;
            for (unsigned w = 0; w < 8; ++w)
                way = base[w] == tag ? w : way;
            return way;
        }
        unsigned way = config_.assoc;
        for (unsigned w = 0; w < config_.assoc; ++w)
            way = base[w] == tag ? w : way;
        return way;
    }

    /** Inline body of touch(); shared by both lanes. */
    void touchImpl(std::uint64_t set, unsigned way)
    {
        stamps_[set * config_.assoc + way] = ++stampCounter_;
        if (config_.policy == ReplacementPolicy::TreePlru)
            plruTouch(set, way);
        if (wayPred_ == WayPredictor::Mru)
            mruWay_[set] = static_cast<std::uint8_t>(way);
    }

    /** First way whose partial tag matches @p utag (valid ways only),
     *  or assoc when none does. An aliasing earlier way steals the
     *  prediction -- the utag scheme's characteristic mispredict. */
    unsigned utagPredict(std::size_t base, std::uint8_t utag) const
    {
        for (unsigned w = 0; w < config_.assoc; ++w) {
            if (tags_[base + w] != kNoTag && utags_[base + w] == utag)
                return w;
        }
        return config_.assoc;
    }

    /** Way-prediction accounting for a demand hit at @p way: counts
     *  the prediction, charges the mispredict penalty, and records it
     *  for lastWayPenalty(). Shared by both access lanes. */
    void notePrediction(std::uint64_t set, std::size_t base,
                        unsigned way)
    {
        ++stats_.wayPredictions;
        const unsigned predicted = wayPred_ == WayPredictor::Mru
            ? mruWay_[set]
            : utagPredict(base, utagOf(tags_[base + way]));
        if (predicted != way) {
            ++stats_.wayMispredicts;
            stats_.wayPenaltyCycles += config_.wayMispredictPenalty;
            lastWayPenalty_ = config_.wayMispredictPenalty;
        } else {
            lastWayPenalty_ = 0;
        }
    }

    /** Prefetch-use accounting for a demand hit: first demand use of
     *  a prefetched line counts it useful and hands the line to
     *  demand ownership. Shared by both access lanes. */
    void notePrefetchHit(std::size_t index)
    {
        const std::uint8_t owner = prefetchOwner_[index];
        if (owner == 0)
            return;
        ++stats_.prefetchUseful;
        stats_.prefetchUsefulByL2 += owner == 2;
        prefetchOwner_[index] = 0;
    }

    struct SetTag
    {
        std::uint64_t set;
        std::uint64_t tag;
    };

    /**
     * Computes (line_addr % numSets_, line_addr / numSets_) without
     * dividing by the runtime set count. With numSets_ = odd * 2^s,
     * write line_addr = high * 2^s + low (low < 2^s) and
     * high = q * odd + r (r < odd); then
     *   line_addr = q * numSets_ + (r * 2^s + low),
     * and r * 2^s + low < numSets_, so set = (r << s) | low and
     * tag = q -- bit-identical to the modulo/division the reference
     * path computes. The switch pins the odd factors of the standard
     * geometries (1 for power-of-two caches, 3 for the 30 MB L3) to
     * compile-time constants the compiler turns into multiplies.
     */
    SetTag decompose(std::uint64_t line_addr) const
    {
        const std::uint64_t high = line_addr >> setShift_;
        const std::uint64_t low = line_addr & setLowMask_;
        std::uint64_t q, r;
        switch (setOdd_) {
          case 1: q = high; r = 0; break;
          case 3: q = high / 3; r = high % 3; break;
          case 5: q = high / 5; r = high % 5; break;
          case 7: q = high / 7; r = high % 7; break;
          default: q = high / setOdd_; r = high % setOdd_; break;
        }
        return {(r << setShift_) | low, q};
    }

    CacheConfig config_;
    std::uint64_t numSets_;
    /** @name Precomputed shifts for the division-free fast path */
    /// @{
    unsigned lineShift_ = 0;    //!< log2(lineBytes)
    unsigned setShift_ = 0;     //!< trailing zero bits of numSets_
    std::uint64_t setOdd_ = 1;  //!< numSets_ >> setShift_ (odd)
    std::uint64_t setLowMask_ = 0; //!< (1 << setShift_) - 1
    /// @}
    /** @name Per-line state, split into parallel lanes
     *  numSets x assoc, row-major; one set's tags share a cache line
     *  so the way scan is one contiguous 64-byte read for the 8-way
     *  levels (the AoS Line struct spread them over three). */
    /// @{
    std::vector<std::uint64_t> tags_;   //!< kNoTag = invalid way
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> stamps_; //!< LRU recency stamps
    /** Per-way 8-bit partial tags (utag way prediction only). */
    std::vector<std::uint8_t> utags_;
    /** Fill-owner code per line (prefetch tracking only): 0 = demand,
     *  1 = L1 prefetcher, 2 = L2 prefetcher. */
    std::vector<std::uint8_t> prefetchOwner_;
    /// @}
    std::vector<std::uint8_t> plruBits_; //!< assoc-1 bits per set
    /** MRU way per set (MRU way prediction only). */
    std::vector<std::uint8_t> mruWay_;
    std::uint64_t stampCounter_ = 0;
    WayPredictor wayPred_ = WayPredictor::None;
    bool trackPrefetch_ = false;
    unsigned lastWayPenalty_ = 0;
    Rng rng_;
    CacheStats stats_;

    /** @name Shared-cache context state (empty unless enabled) */
    /// @{
    bool trackContexts_ = false;
    /** True when any context's mask is partial: allocations must take
     *  the masked victim path. Recomputed by setWayMask(). */
    bool maskedAlloc_ = false;
    unsigned ctx_ = 0;
    std::vector<CacheContextStats> ctxStats_;
    std::vector<std::uint64_t> ctxOccupancy_;
    std::vector<std::uint32_t> ctxMasks_;
    /** Allocation owner of each line (parallel to the line lanes). */
    std::vector<std::uint8_t> owner_;
    /// @}
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_CACHE_HH_
