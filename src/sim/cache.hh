/**
 * @file
 * Set-associative cache model with pluggable replacement policies.
 *
 * Models tag state only (no data): enough to reproduce hit/miss
 * behaviour, evictions and writeback traffic, which is all the
 * characterization consumes.
 */

#ifndef SPEC17_SIM_CACHE_HH_
#define SPEC17_SIM_CACHE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"

namespace spec17 {
namespace sim {

/** Replacement policy of a cache. */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,      //!< true least-recently-used
    TreePlru, //!< tree pseudo-LRU (requires power-of-two ways)
    Random,   //!< uniform random victim
};

/** Human-readable policy name. */
std::string replacementPolicyName(ReplacementPolicy policy);

/** Static parameters of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    /** Load-to-use latency in core cycles when this level hits. */
    unsigned hitLatency = 4;

    /** Number of sets; panics if the geometry is inconsistent. */
    std::uint64_t numSets() const;
};

/** Running counters of one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchFills = 0;

    std::uint64_t accesses() const { return hits + misses; }
    /** misses / accesses, or 0 when never accessed. */
    double missRate() const;
};

/**
 * A single set-associative, write-back, write-allocate cache.
 * Thread-unsafe by design (the simulator is single-threaded).
 */
class SetAssocCache
{
  public:
    /**
     * @param config geometry and policy.
     * @param seed randomness seed (only used by Random replacement).
     */
    explicit SetAssocCache(CacheConfig config, std::uint64_t seed = 0);

    /**
     * Performs a demand access.
     * @param addr byte address.
     * @param is_write true for stores (sets the dirty bit).
     * @return true on hit. On miss the line is allocated, possibly
     *         evicting (and counting a writeback for a dirty victim).
     */
    bool access(std::uint64_t addr, bool is_write);

    /** Checks residency without disturbing replacement state. */
    bool probe(std::uint64_t addr) const;

    /**
     * Installs a line without counting a demand hit/miss (prefetch
     * fill path). Counts prefetchFills; a resident line just has its
     * recency refreshed.
     */
    void fill(std::uint64_t addr);

    /** Invalidates everything and clears per-line state (not stats). */
    void flushAll();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint64_t setIndex(std::uint64_t line_addr) const;
    std::uint64_t tagOf(std::uint64_t line_addr) const;
    Line *findLine(std::uint64_t addr);
    const Line *findLine(std::uint64_t addr) const;
    /** Chooses a victim way in @p set according to the policy. */
    unsigned victimWay(std::uint64_t set);
    void touch(std::uint64_t set, unsigned way);
    /** Allocates @p addr into the cache, updating eviction stats. */
    void allocate(std::uint64_t addr);

    CacheConfig config_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;          //!< numSets x assoc, row-major
    std::vector<std::uint8_t> plruBits_; //!< assoc-1 bits per set
    std::uint64_t stampCounter_ = 0;
    Rng rng_;
    CacheStats stats_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_CACHE_HH_
