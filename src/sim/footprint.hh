/**
 * @file
 * Memory-footprint tracking. The paper polls `ps -o vsz,rss` while
 * the benchmark runs and reports the maxima; we track the resident
 * set exactly, as the set of distinct 4 KiB pages the workload
 * touches, and take VSZ from the trace's declared reservation.
 */

#ifndef SPEC17_SIM_FOOTPRINT_HH_
#define SPEC17_SIM_FOOTPRINT_HH_

#include <cstdint>
#include <vector>

namespace spec17 {
namespace sim {

/**
 * Tracks distinct pages touched (instruction and data).
 *
 * The page set is an open-addressing hash table (linear probing,
 * power-of-two capacity): touch() sits on the simulator's per-op hot
 * path, where node-based std::unordered_set insertion cost dominated.
 * Only the set's *content* is observable (pagesTouched / rssBytes),
 * so the table layout is free to differ from any particular std
 * implementation.
 */
class FootprintTracker
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    FootprintTracker() : slots_(kInitialSlots, kEmpty) {}

    /** Records a touched byte address. */
    void
    touch(std::uint64_t addr)
    {
        const std::uint64_t page = addr / kPageBytes;
        if (page == lastPage_)
            return; // fast path: consecutive touches to one page
        lastPage_ = page;
        insert(page);
    }

    /** Distinct pages touched so far. */
    std::uint64_t pagesTouched() const { return count_; }

    /** Resident set size in bytes. */
    std::uint64_t rssBytes() const { return count_ * kPageBytes; }

    void
    clear()
    {
        slots_.assign(kInitialSlots, kEmpty);
        count_ = 0;
        lastPage_ = kEmpty;
    }

  private:
    /** Page numbers are addr >> 12, so all-ones never occurs. */
    static constexpr std::uint64_t kEmpty = ~std::uint64_t(0);
    static constexpr std::size_t kInitialSlots = 1024;

    /** Fibonacci-style mix so strided page sequences spread. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x *= 0x9e3779b97f4a7c15ULL;
        return x ^ (x >> 32);
    }

    void
    insert(std::uint64_t page)
    {
        const std::uint64_t mask = slots_.size() - 1;
        std::uint64_t i = mix(page) & mask;
        for (;;) {
            const std::uint64_t slot = slots_[i];
            if (slot == page)
                return;
            if (slot == kEmpty)
                break;
            i = (i + 1) & mask;
        }
        slots_[i] = page;
        ++count_;
        // Grow at 70% load to keep probe chains short.
        if (count_ * 10 >= slots_.size() * 7)
            grow();
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, kEmpty);
        const std::uint64_t mask = slots_.size() - 1;
        for (std::uint64_t page : old) {
            if (page == kEmpty)
                continue;
            std::uint64_t i = mix(page) & mask;
            while (slots_[i] != kEmpty)
                i = (i + 1) & mask;
            slots_[i] = page;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::uint64_t count_ = 0;
    std::uint64_t lastPage_ = kEmpty;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_FOOTPRINT_HH_
