/**
 * @file
 * Memory-footprint tracking. The paper polls `ps -o vsz,rss` while
 * the benchmark runs and reports the maxima; we track the resident
 * set exactly, as the set of distinct 4 KiB pages the workload
 * touches, and take VSZ from the trace's declared reservation.
 */

#ifndef SPEC17_SIM_FOOTPRINT_HH_
#define SPEC17_SIM_FOOTPRINT_HH_

#include <cstdint>
#include <unordered_set>

namespace spec17 {
namespace sim {

/** Tracks distinct pages touched (instruction and data). */
class FootprintTracker
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Records a touched byte address. */
    void
    touch(std::uint64_t addr)
    {
        const std::uint64_t page = addr / kPageBytes;
        if (page == lastPage_)
            return; // fast path: consecutive touches to one page
        lastPage_ = page;
        pages_.insert(page);
    }

    /** Distinct pages touched so far. */
    std::uint64_t pagesTouched() const { return pages_.size(); }

    /** Resident set size in bytes. */
    std::uint64_t rssBytes() const { return pages_.size() * kPageBytes; }

    void
    clear()
    {
        pages_.clear();
        lastPage_ = ~std::uint64_t(0);
    }

  private:
    std::unordered_set<std::uint64_t> pages_;
    std::uint64_t lastPage_ = ~std::uint64_t(0);
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_FOOTPRINT_HH_
