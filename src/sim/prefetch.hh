/**
 * @file
 * Hardware prefetchers. The paper's machine (Haswell) ships stream
 * and stride prefetchers; we model next-line and per-PC stride
 * variants that can be attached to the data-side hierarchy, and use
 * them in the ablation benches.
 */

#ifndef SPEC17_SIM_PREFETCH_HH_
#define SPEC17_SIM_PREFETCH_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spec17 {
namespace sim {

/**
 * Prefetcher interface: observes demand load addresses and proposes
 * line addresses to fill.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observes a demand access and appends prefetch candidates
     * (byte addresses) to @p out.
     * @param pc load PC (stride prefetchers train per PC).
     * @param addr demand byte address.
     * @param was_miss whether the demand access missed L1.
     */
    virtual void observe(std::uint64_t pc, std::uint64_t addr,
                         bool was_miss,
                         std::vector<std::uint64_t> &out) = 0;

    virtual std::string name() const = 0;

    /** Total prefetches issued. */
    std::uint64_t issued() const { return issued_; }

  protected:
    std::uint64_t issued_ = 0;
};

/**
 * Fetches line N+1 whenever the demand stream enters a new line
 * (tagged next-line): a sequential sweep keeps exactly one line of
 * lookahead in flight and suffers only the first compulsory miss.
 */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned line_bytes = 64);

    void observe(std::uint64_t pc, std::uint64_t addr, bool was_miss,
                 std::vector<std::uint64_t> &out) override;
    std::string name() const override { return "next-line"; }

  private:
    unsigned lineBytes_;
    std::uint64_t lastLine_ = ~std::uint64_t(0);
};

/**
 * Per-PC stride prefetcher: learns (last address, stride) per load PC
 * and issues @p degree prefetches ahead once the stride repeats.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    StridePrefetcher(unsigned table_bits = 10, unsigned degree = 2,
                     unsigned line_bytes = 64);

    void observe(std::uint64_t pc, std::uint64_t addr, bool was_miss,
                 std::vector<std::uint64_t> &out) override;
    std::string name() const override { return "stride"; }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::vector<Entry> table_;
    std::size_t mask_;
    unsigned degree_;
    unsigned lineBytes_;
};

/** Factory over {"none", "next-line", "stride"}; "none" -> nullptr. */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &name);

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_PREFETCH_HH_
