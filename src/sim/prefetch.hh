/**
 * @file
 * Hardware prefetchers. The paper's machine (Haswell) ships stream
 * and stride prefetchers; we model next-line, per-PC stride and
 * confidence-trained stream variants that can be attached to the
 * data-side hierarchy (stream at L1D or L2), and use them in the
 * ablation benches and the uarch explorer.
 */

#ifndef SPEC17_SIM_PREFETCH_HH_
#define SPEC17_SIM_PREFETCH_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spec17 {
namespace sim {

/**
 * Prefetcher interface: observes demand load addresses and proposes
 * line addresses to fill.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observes a demand access and appends prefetch candidates
     * (byte addresses) to @p out.
     * @param pc load PC (stride prefetchers train per PC).
     * @param addr demand byte address.
     * @param was_miss whether the demand access missed L1.
     */
    virtual void observe(std::uint64_t pc, std::uint64_t addr,
                         bool was_miss,
                         std::vector<std::uint64_t> &out) = 0;

    virtual std::string name() const = 0;

    /** Total prefetches issued. The matching useful count (demand
     *  hits that consumed a prefetched line) is kept by the filled
     *  cache per owner lane -- CacheStats::prefetchUseful /
     *  prefetchUsefulByL2 -- because only the cache sees the hit;
     *  accuracy = useful / issued. */
    std::uint64_t issued() const { return issued_; }

    /**
     * Demand misses on lines this prefetcher had already issued: the
     * fill did not survive until the demand arrived (evicted before
     * use). Fills are instantaneous in this model, so "late" is the
     * issued-but-evicted case, detected against a recent-issue window.
     */
    std::uint64_t late() const { return late_; }

  protected:
    std::uint64_t issued_ = 0;
    std::uint64_t late_ = 0;
};

/**
 * Fetches line N+1 whenever the demand stream enters a new line
 * (tagged next-line): a sequential sweep keeps exactly one line of
 * lookahead in flight and suffers only the first compulsory miss.
 */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned line_bytes = 64);

    void observe(std::uint64_t pc, std::uint64_t addr, bool was_miss,
                 std::vector<std::uint64_t> &out) override;
    std::string name() const override { return "next-line"; }

  private:
    unsigned lineBytes_;
    std::uint64_t lastLine_ = ~std::uint64_t(0);
};

/**
 * Per-PC stride prefetcher: learns (last address, stride) per load PC
 * and issues @p degree prefetches ahead once the stride repeats.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    StridePrefetcher(unsigned table_bits = 10, unsigned degree = 2,
                     unsigned line_bytes = 64);

    void observe(std::uint64_t pc, std::uint64_t addr, bool was_miss,
                 std::vector<std::uint64_t> &out) override;
    std::string name() const override { return "stride"; }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::vector<Entry> table_;
    std::size_t mask_;
    unsigned degree_;
    unsigned lineBytes_;
};

/**
 * Stream-prefetcher knobs. degree and distance are semantic knobs:
 * both are printed by SystemConfig::describe() and therefore members
 * of the result-cache config key.
 */
struct StreamConfig
{
    /** Concurrent stream trackers. */
    unsigned streams = 8;
    /** Prefetches issued per trained observation. */
    unsigned degree = 4;
    /** How far ahead of the demand frontier a stream may run (lines);
     *  also the window within which an access matches a stream. */
    unsigned distance = 16;
    /** Confirmations in one direction before issuing. */
    unsigned trainThreshold = 2;
    unsigned lineBytes = 64;
};

/**
 * Confidence-trained stream prefetcher: tracks up to streams
 * concurrent unit-line access streams (either direction), confirms a
 * direction trainThreshold times, then keeps a window of distance
 * lines in flight ahead of the demand frontier, issuing at most
 * degree lines per observation. Streams allocate on demand misses
 * (LRU victim, deterministic) but advance on every access so a stream
 * keeps running ahead once its fills start hitting.
 */
class StreamPrefetcher : public Prefetcher
{
  public:
    explicit StreamPrefetcher(const StreamConfig &config = StreamConfig());

    void observe(std::uint64_t pc, std::uint64_t addr, bool was_miss,
                 std::vector<std::uint64_t> &out) override;
    std::string name() const override { return "stream"; }

    const StreamConfig &config() const { return config_; }

  private:
    struct Stream
    {
        std::uint64_t lastLine = 0;
        std::uint64_t issuedUpTo = 0;  // furthest line issued, in dir
        std::uint64_t stamp = 0;       // LRU
        int dir = 0;                   // +1 / -1 / 0 (untrained)
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    void issueAhead(Stream &s, std::vector<std::uint64_t> &out);
    bool inRecent(std::uint64_t line) const;
    void pushRecent(std::uint64_t line);

    StreamConfig config_;
    std::vector<Stream> streams_;
    std::vector<std::uint64_t> recent_;  // ring of issued lines
    std::size_t recentHead_ = 0;
    std::uint64_t tick_ = 0;
};

/**
 * Factory over {"none", "next-line", "stride", "stream"};
 * "none" -> nullptr.
 */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &name);

/** As above, with explicit stream knobs for name == "stream". */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &name,
                                           const StreamConfig &stream);

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_PREFETCH_HH_
