/**
 * @file
 * Single-core trace-driven CPU simulator: wires the trace source,
 * branch unit, cache hierarchy, footprint tracker and core timing
 * model together and populates a perf CounterSet, the simulated
 * equivalent of running one application under `perf stat`.
 */

#ifndef SPEC17_SIM_SIMULATOR_HH_
#define SPEC17_SIM_SIMULATOR_HH_

#include <memory>
#include <vector>

#include "counters/perf_event.hh"
#include "sim/branch.hh"
#include "sim/core_model.hh"
#include "sim/footprint.hh"
#include "sim/hierarchy.hh"
#include "sim/system_config.hh"
#include "sim/tlb.hh"
#include "trace/source.hh"

namespace spec17 {
namespace sim {

/** Outcome of one simulated run. */
struct SimResult
{
    counters::CounterSet counters;
    double cycles = 0.0;
    double seconds = 0.0;

    /** inst_retired.any / cpu_clk_unhalted.ref_tsc, the paper's IPC. */
    double ipc() const;
};

/**
 * Recorded memory-side outcomes of a stepped chunk, batch by batch:
 * the post-TLB scratch lanes (fetch stall, memory latency, L1-miss
 * and DRAM flags), the op-index lists, and the counter deltas the
 * cache and TLB passes produced. A simulator with the identical
 * hierarchy, TLB and core configuration consuming the identical
 * micro-op stream computes exactly these values -- so a clone-group
 * sibling in multi-point fan-out can import the leader's log
 * (stepImporting) instead of running its own cache and TLB passes,
 * and needs no prefilled cache state at all. Only the branch unit
 * (and the timing it feeds) runs per sibling.
 *
 * One log records one stepped chunk; clear() and reuse it per chunk
 * so the lane buffers stay allocated.
 */
struct MemoryLaneLog
{
    /** One consumeBatch call's worth of recorded outcomes. */
    struct Batch
    {
        std::uint32_t n = 0; //!< ops in the batch (alignment check)
        std::uint32_t laneOffset = 0;   //!< into the per-op lanes
        std::uint32_t memOffset = 0;    //!< into memIdx
        std::uint32_t memCount = 0;
        std::uint32_t branchOffset = 0; //!< into branchIdx
        std::uint32_t branchCount = 0;
        std::uint64_t numLoads = 0;
        std::uint64_t numStores = 0;
        std::uint64_t loadsAt[4] = {0, 0, 0, 0};
        std::uint64_t itlbWalks = 0;
        std::uint64_t dtlbWalks = 0;
    };

    std::vector<Batch> batches;
    /** Per-op lanes, all batches concatenated (see Batch::laneOffset). */
    std::vector<unsigned> fetchStall;
    std::vector<unsigned> memLatency;
    std::vector<std::uint8_t> l1Miss;
    std::vector<std::uint8_t> dram;
    /** Op-index lists (indices are within their batch). */
    std::vector<std::uint32_t> memIdx;
    std::vector<std::uint32_t> branchIdx;

    void
    clear()
    {
        batches.clear();
        fetchStall.clear();
        memLatency.clear();
        l1Miss.clear();
        dram.clear();
        memIdx.clear();
        branchIdx.clear();
    }
};

/**
 * One core with private L1I/L1D/L2 and an (optionally shared) L3.
 * Construct per run; state is not reusable across runs.
 */
class CpuSimulator
{
  public:
    /**
     * @param config machine description.
     * @param seed randomness seed for stochastic components.
     * @param shared_l3 optional L3 shared with other simulators.
     * @param shared_bus optional DRAM channel shared with other
     *        simulators (multicore bandwidth contention).
     * @param recycle optional dead simulator whose large heap buffers
     *        (cache lanes, batch lanes, scratch, memos) this one
     *        adopts before re-initializing them. Results are
     *        bit-identical to a fresh construction -- recycling only
     *        skips page-faulting allocations, which dominate
     *        construction cost in multi-point fan-out loops. The
     *        donor must not be used afterwards.
     * @param recycle_dirty skip resetting the cache-hierarchy lanes
     *        at construction; ONLY legal when the caller immediately
     *        calls copyPrefillFrom() (which copy-assigns the complete
     *        cache state) before the simulator consumes any traffic.
     *        Fan-out clone-group siblings pass true: resetting
     *        megabytes of lanes that the leader's state overwrites a
     *        moment later is pure memory traffic. Requires a private
     *        L3 (copyPrefillFrom does too).
     */
    explicit CpuSimulator(const SystemConfig &config,
                          std::uint64_t seed = 0,
                          std::shared_ptr<SetAssocCache> shared_l3
                          = nullptr,
                          std::shared_ptr<MemoryBus> shared_bus
                          = nullptr,
                          CpuSimulator *recycle = nullptr,
                          bool recycle_dirty = false);

    /**
     * Clones the cache-hierarchy state from @p other, a simulator
     * with the identical SystemConfig that has been prefilled (see
     * prefillData / suite::prefillSteadyState) but has consumed no
     * demand traffic yet. After the call this simulator observes the
     * exact state a matching prefill sequence would have built --
     * multi-point fan-out prefills one group leader per hierarchy
     * configuration and clones the rest.
     */
    void copyPrefillFrom(const CpuSimulator &other);

    /** Runs @p source to exhaustion and returns the counters. */
    SimResult run(trace::TraceSource &source);

    /**
     * Installs the lines of [base, base+bytes) into the hierarchy
     * down to @p level without counting demand traffic -- models the
     * steady-state residency a long-running application would have
     * built before the measured sample begins.
     */
    void prefillData(std::uint64_t base, std::uint64_t bytes,
                     HitLevel level);

    /**
     * Consumes at most @p max_ops micro-ops from @p source (used by
     * the multicore interleaver and phase analysis).
     *
     * Runs on the batched fast lane: ops are pulled through
     * TraceSource::nextBatchSoA() in chunks of batchOps() and consumed
     * in tight per-component lane passes (see consumeBatch). Results
     * are byte-identical to stepUnbatched() at any batch size -- the
     * golden tests enforce it -- and internal batches never overrun
     * @p max_ops, so telemetry sampling intervals and watchdog op
     * budgets (which cap max_ops per call) observe identical op
     * counts.
     *
     * @return number of micro-ops actually consumed.
     */
    std::uint64_t step(trace::TraceSource &source, std::uint64_t max_ops);

    /**
     * Reference lane: pulls and consumes one op at a time through
     * TraceSource::next(). Semantically identical to step(); kept as
     * the executable specification the golden identity tests and
     * bench_hot_path diff the batched lane against.
     */
    std::uint64_t stepUnbatched(trace::TraceSource &source,
                                std::uint64_t max_ops);

    /**
     * step() that additionally appends every batch's memory-side
     * outcomes to @p log (see MemoryLaneLog). Results are identical
     * to step(); recording costs one lane copy per batch. Batched
     * lane only (panics under setUnbatchedStepping).
     */
    std::uint64_t stepRecording(trace::TraceSource &source,
                                std::uint64_t max_ops,
                                MemoryLaneLog &log);

    /**
     * step() for a clone-group sibling: skips the cache and TLB
     * passes entirely and consumes @p log -- recorded by a leader
     * with the identical hierarchy, TLB and core configuration over
     * the identical micro-op stream and the identical batch schedule
     * -- for the memory-side lanes and counters. The branch,
     * footprint and retire passes still run on this simulator, so
     * per-point branch behavior and timing are exact. This
     * simulator's cache hierarchy and TLBs are never touched (they
     * may hold dirty-recycled garbage; see the constructor's
     * recycle_dirty). @p cursor indexes log.batches and advances per
     * consumed batch; reset it to 0 with each fresh log. Panics if
     * the batch schedule diverges from the log.
     */
    std::uint64_t stepImporting(trace::TraceSource &source,
                                std::uint64_t max_ops,
                                const MemoryLaneLog &log,
                                std::size_t &cursor);

    /** Default micro-ops per batch on the fast lane. */
    static constexpr std::size_t kDefaultBatchOps = 256;

    /** Sets the fast-lane batch size; purely an execution-strategy
     *  knob, results do not depend on it. A batch size of 0 is
     *  meaningless and is clamped to 1 with a warning (the contained
     *  degradation matching the knob's results-invariant nature). */
    void setBatchOps(std::size_t batch_ops);
    std::size_t batchOps() const { return batchOps_; }

    /** Routes step() through the per-op reference lane when true. */
    void setUnbatchedStepping(bool unbatched) { unbatched_ = unbatched; }

    /**
     * Binds this core to shared-L3 context @p ctx: every stepped
     * chunk and prefill re-selects it on the (context-tracked) shared
     * cache before touching it, so interleaved cores attribute their
     * L3 traffic correctly. The multicore simulator assigns core c
     * context c; single-core runs keep the default context 0, where
     * the re-selection is a no-op on the untracked private L3.
     */
    void setL3Context(unsigned ctx) { l3Context_ = ctx; }
    unsigned l3Context() const { return l3Context_; }

    /** Snapshot of counters accumulated so far (gauges refreshed). */
    counters::CounterSet snapshot() const;

    /**
     * Direct view of the accumulating counter bank (cycles and the
     * rss/vsz gauges are NOT materialized here -- use snapshot() for
     * a perf-complete view). Cheap enough to poll every interval;
     * this is what the telemetry registry reads.
     */
    const counters::CounterSet &rawCounters() const { return counters_; }

    /** Finalizes after stepping manually. */
    SimResult finish(const trace::TraceSource &source);

    const CoreModel &core() const { return core_; }
    const CacheHierarchy &hierarchy() const { return hierarchy_; }
    const BranchUnit &branchUnit() const { return branches_; }
    const FootprintTracker &footprint() const { return footprint_; }
    const Tlb &dtlb() const { return dtlb_; }
    const Tlb &itlb() const { return itlb_; }

  private:
    void consume(const isa::MicroOp &op);
    /** Batched equivalent of n consume() calls over lane slots
     *  [base, base+n) of @p lanes, restructured into per-component
     *  passes (see the implementation comment for the legality
     *  argument). @p lanes is either the simulator's own batch_ (the
     *  copying pull path) or a source-owned buffer served zero-copy
     *  through TraceSource::nextLanes(). When @p record is set, the
     *  post-TLB lanes and counter deltas are appended to it. */
    void consumeBatch(const trace::MicroOpBatch &lanes,
                      std::size_t base, std::size_t n,
                      MemoryLaneLog *record = nullptr);
    /** Lane-importing equivalent of consumeBatch for clone-group
     *  siblings: branch + footprint + retire passes only, memory-side
     *  lanes and counters read from log.batches[cursor++]. */
    void consumeBatchImported(const trace::MicroOpBatch &lanes,
                              std::size_t base, std::size_t n,
                              const MemoryLaneLog &log,
                              std::size_t &cursor);
    /** Shared batched-lane pull loop behind step()/stepRecording()/
     *  stepImporting(): exactly one of record / (import, cursor) may
     *  be set. */
    std::uint64_t stepBatched(trace::TraceSource &source,
                              std::uint64_t max_ops,
                              MemoryLaneLog *record,
                              const MemoryLaneLog *import,
                              std::size_t *cursor);
    /** Forgets the per-set line memos after any non-batched cache
     *  mutation (reference lane, prefill); a cleared memo only costs
     *  one real access per set to re-establish. */
    void invalidateLineMemos();

    SystemConfig config_;
    CacheHierarchy hierarchy_;
    BranchUnit branches_;
    CoreModel core_;
    FootprintTracker footprint_;
    Tlb dtlb_;
    Tlb itlb_;
    counters::CounterSet counters_;

    /** Shared-L3 context this core's accesses belong to. */
    unsigned l3Context_ = 0;

    /** @name Batched fast lane state */
    /// @{
    std::size_t batchOps_ = kDefaultBatchOps;
    bool unbatched_ = false;
    /** True when no prefetcher is configured: the same-line data memo
     *  is illegal with one (prefetch fills can evict any L1D line and
     *  the prefetcher must observe every load). */
    bool dataMemoLegal_ = false;
    /** SoA lane buffer the fast lane pulls trace chunks into. */
    trace::MicroOpBatch batch_;
    /** @name Per-op scratch lanes staged between consumeBatch passes
     *  (indexed like batch_; resized once, reused every batch). The
     *  cache pass writes fetchStall_/memLatency_/l1Miss_/dram_ for
     *  every op, the TLB passes add to the first three, the branch
     *  pass sets mispredicted_, and the retire pass consumes all
     *  five. dram_ encodes DRAM-channel occupancy: 0 = none, 1 = one
     *  line transfer (load fill), 2 = two (store RFO + writeback). */
    /// @{
    std::vector<unsigned> fetchStall_;
    std::vector<unsigned> memLatency_;
    std::vector<std::uint8_t> l1Miss_;
    std::vector<std::uint8_t> mispredicted_;
    std::vector<std::uint8_t> dram_;
    /** Compact op-index lists the cache pass records as a by-product
     *  of its class dispatch (in op order): branch ops, and memory
     *  (load/store) ops. The branch, dTLB and footprint-data passes
     *  walk these instead of re-scanning all n ops with their own
     *  mispredict-prone class tests. */
    std::vector<std::uint32_t> branchIdx_;
    std::vector<std::uint32_t> memIdx_;
    /// @}
    static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};
    /** Per-set memo of each L1's most-recently-used line (kNoLine =
     *  unknown): an access to the memo'd line is a guaranteed L1 hit
     *  whose replacement-state update is a no-op (re-touching a
     *  set's MRU way; see SetAssocCache::creditHits), so it is
     *  skipped and bulk-credited. */
    std::vector<std::uint64_t> instMemo_;
    std::vector<std::uint64_t> dataMemo_;
    /** Per-set flag: memo'd data line known dirty (last access was a
     *  write). A write may only be memo-skipped then, because
     *  writing a clean line must set its dirty bit. */
    std::vector<std::uint8_t> dataMemoDirty_;
    /** @name Direct-mapped already-touched-page filters
     *  A slot holding page p proves footprint_ already contains p
     *  (slots are set only after a touch), and the footprint page set
     *  only ever grows, so the batched footprint pass may skip the
     *  hash probe for filter hits -- touch() is idempotent. Never
     *  needs invalidation, even across reference-lane steps or
     *  prefills: entries can only go stale toward extra (harmless)
     *  touches, never toward wrongly skipped ones. kNoLine means
     *  empty (pages are addr / 4096, so all-ones never occurs). */
    /// @{
    static constexpr std::size_t kPcPageSeenSlots = 64;
    static constexpr std::size_t kDataPageSeenSlots = 4096;
    std::vector<std::uint64_t> pcPageSeen_;
    std::vector<std::uint64_t> dataPageSeen_;
    /// @}
    /// @}
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_SIMULATOR_HH_
