/**
 * @file
 * Single-core trace-driven CPU simulator: wires the trace source,
 * branch unit, cache hierarchy, footprint tracker and core timing
 * model together and populates a perf CounterSet, the simulated
 * equivalent of running one application under `perf stat`.
 */

#ifndef SPEC17_SIM_SIMULATOR_HH_
#define SPEC17_SIM_SIMULATOR_HH_

#include <memory>

#include "counters/perf_event.hh"
#include "sim/branch.hh"
#include "sim/core_model.hh"
#include "sim/footprint.hh"
#include "sim/hierarchy.hh"
#include "sim/system_config.hh"
#include "sim/tlb.hh"
#include "trace/source.hh"

namespace spec17 {
namespace sim {

/** Outcome of one simulated run. */
struct SimResult
{
    counters::CounterSet counters;
    double cycles = 0.0;
    double seconds = 0.0;

    /** inst_retired.any / cpu_clk_unhalted.ref_tsc, the paper's IPC. */
    double ipc() const;
};

/**
 * One core with private L1I/L1D/L2 and an (optionally shared) L3.
 * Construct per run; state is not reusable across runs.
 */
class CpuSimulator
{
  public:
    /**
     * @param config machine description.
     * @param seed randomness seed for stochastic components.
     * @param shared_l3 optional L3 shared with other simulators.
     * @param shared_bus optional DRAM channel shared with other
     *        simulators (multicore bandwidth contention).
     */
    explicit CpuSimulator(const SystemConfig &config,
                          std::uint64_t seed = 0,
                          std::shared_ptr<SetAssocCache> shared_l3
                          = nullptr,
                          std::shared_ptr<MemoryBus> shared_bus
                          = nullptr);

    /** Runs @p source to exhaustion and returns the counters. */
    SimResult run(trace::TraceSource &source);

    /**
     * Installs the lines of [base, base+bytes) into the hierarchy
     * down to @p level without counting demand traffic -- models the
     * steady-state residency a long-running application would have
     * built before the measured sample begins.
     */
    void prefillData(std::uint64_t base, std::uint64_t bytes,
                     HitLevel level);

    /**
     * Consumes at most @p max_ops micro-ops from @p source (used by
     * the multicore interleaver and phase analysis).
     * @return number of micro-ops actually consumed.
     */
    std::uint64_t step(trace::TraceSource &source, std::uint64_t max_ops);

    /** Snapshot of counters accumulated so far (gauges refreshed). */
    counters::CounterSet snapshot() const;

    /**
     * Direct view of the accumulating counter bank (cycles and the
     * rss/vsz gauges are NOT materialized here -- use snapshot() for
     * a perf-complete view). Cheap enough to poll every interval;
     * this is what the telemetry registry reads.
     */
    const counters::CounterSet &rawCounters() const { return counters_; }

    /** Finalizes after stepping manually. */
    SimResult finish(const trace::TraceSource &source);

    const CoreModel &core() const { return core_; }
    const CacheHierarchy &hierarchy() const { return hierarchy_; }
    const BranchUnit &branchUnit() const { return branches_; }
    const FootprintTracker &footprint() const { return footprint_; }
    const Tlb &dtlb() const { return dtlb_; }
    const Tlb &itlb() const { return itlb_; }

  private:
    void consume(const isa::MicroOp &op);

    SystemConfig config_;
    CacheHierarchy hierarchy_;
    BranchUnit branches_;
    CoreModel core_;
    FootprintTracker footprint_;
    Tlb dtlb_;
    Tlb itlb_;
    counters::CounterSet counters_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_SIMULATOR_HH_
