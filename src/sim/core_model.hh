/**
 * @file
 * Mechanistic out-of-order core timing model (interval-analysis
 * style, after Eyerman/Eeckhout). Rather than simulating every
 * pipeline structure, the model tracks the three first-order limits
 * of a balanced OoO core:
 *
 *  1. dispatch bandwidth (width W): dispatch advances 1/W cycles/uop;
 *  2. the reorder-buffer window: uop i cannot dispatch before uop
 *     i-ROB has completed (an exact retire-limited bound, kept in a
 *     ring buffer of completion times);
 *  3. finite miss concurrency: outstanding cache misses occupy MSHRs,
 *     and dependent (pointer-chase) loads serialize on the producing
 *     load's completion.
 *
 * Branch mispredicts squash the front end: dispatch resumes only
 * after the branch resolves plus a refill penalty. Together these
 * reproduce the qualitative IPC regimes the paper observes (4-wide
 * ILP-bound code near IPC 3, latency-bound pointer chasing below 1).
 */

#ifndef SPEC17_SIM_CORE_MODEL_HH_
#define SPEC17_SIM_CORE_MODEL_HH_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/uop.hh"
#include "util/logging.hh"

namespace spec17 {
namespace sim {

/**
 * Shared DRAM channel: every line transferred from memory (demand
 * fill, store RFO, writeback) occupies the channel for a fixed number
 * of core cycles. Cores sharing one MemoryBus contend for it -- the
 * mechanism behind the speed-fp "memory wall" the paper observes.
 * Core clocks advance loosely in step (the multicore interleaver runs
 * small chunks), so a single shared free-time is a fair approximation.
 */
struct MemoryBus
{
    /** Channel occupancy per 64 B line, in core cycles. */
    double cyclesPerLine = 4.0;
    /** Time at which the channel next becomes free. */
    double freeAt = 0.0;

    /**
     * Acquires the channel at or after @p when for @p lines line
     * transfers; returns the acquisition time.
     */
    double
    acquire(double when, double lines = 1.0)
    {
        const double start = freeAt > when ? freeAt : when;
        freeAt = start + cyclesPerLine * lines;
        return start;
    }
};

/** Core microarchitecture parameters (defaults: Haswell-like). */
struct CoreParams
{
    unsigned dispatchWidth = 4;
    unsigned robSize = 192;
    unsigned numMshrs = 10;
    /** Front-end refill penalty after a resolved mispredict. */
    unsigned mispredictPenalty = 14;
    /** Cycles from dispatch to branch resolution (no load dep). */
    unsigned branchResolveLatency = 8;
    /**
     * Fetch-ahead the decoupled front end hides on an I-cache miss:
     * the charged stall is max(0, miss latency - this).
     */
    unsigned frontendBufferCycles = 8;
    unsigned intAluLatency = 1;
    unsigned intMulLatency = 3;
    unsigned intDivLatency = 22;
    unsigned fpAddLatency = 3;
    unsigned fpMulLatency = 5;
    unsigned fpDivLatency = 24;
    /** Reference clock in GHz (E5-2650L v3 base clock). */
    double frequencyGHz = 1.8;
};

/**
 * Attribution of consumed cycles to first-order causes -- the
 * classic CPI-stack breakdown. Components sum to cycles().
 */
struct CpiStack
{
    double base = 0.0;     //!< dispatch bandwidth (N / width)
    double frontend = 0.0; //!< I-cache / ITLB fetch stalls
    double branch = 0.0;   //!< mispredict resolve + refill
    double memory = 0.0;   //!< ROB blocked on a load miss
    double compute = 0.0;  //!< ROB blocked on compute latency

    double total() const;
    /** Per-instruction stack for @p retired micro-ops. */
    CpiStack perInstruction(std::uint64_t retired) const;
};

/**
 * Per-uop cycle accounting. Feed every retired micro-op through
 * retire() with its resolved memory latency / misprediction flags;
 * read cycles() at the end.
 */
class CoreModel
{
  public:
    /**
     * @param params microarchitecture parameters.
     * @param bus DRAM channel; pass a bus shared between CoreModels
     *        to model multicore bandwidth contention, or nullptr for
     *        a private channel.
     */
    explicit CoreModel(const CoreParams &params,
                       std::shared_ptr<MemoryBus> bus = nullptr);

    /**
     * Accounts one micro-op.
     *
     * @param op the retired micro-op.
     * @param mem_latency for loads: load-to-use latency the hierarchy
     *        reported (hit or miss); ignored for other classes.
     * @param l1_miss for loads: whether the access missed L1 (misses
     *        occupy an MSHR).
     * @param fetch_stall extra front-end cycles charged when the
     *        instruction fetch missed the L1I.
     * @param mispredicted for branches: whether the branch unit
     *        mispredicted it.
     * @param dram_access true when the access (load or store) went
     *        all the way to memory and therefore occupies the DRAM
     *        channel.
     * @param dram_lines line transfers the access implies (a store
     *        miss costs an RFO read plus an eventual writeback).
     */
    void retire(const isa::MicroOp &op, unsigned mem_latency,
                bool l1_miss, unsigned fetch_stall, bool mispredicted,
                bool dram_access = false, double dram_lines = 1.0);

    /**
     * Inline twin of retire(): identical accounting -- retire()
     * delegates to this, so there is exactly one body -- exposed in
     * the header for the simulator's batched fast lane, whose inner
     * loop inlines the per-op accounting instead of paying a call
     * per micro-op. The per-op reference lane keeps calling retire()
     * out of line; the golden identity tests pin both lanes to the
     * same results.
     */
    void
    retireInline(const isa::MicroOp &op, unsigned mem_latency,
                 bool l1_miss, unsigned fetch_stall, bool mispredicted,
                 bool dram_access = false, double dram_lines = 1.0)
    {
        // (2) ROB window: the slot we are about to occupy still holds
        // the completion time of uop (i - robSize); dispatch must wait
        // for it.
        const std::size_t slot = robSlot_;
        if (++robSlot_ == params_.robSize)
            robSlot_ = 0;
        if (robCompletion_[slot] > dispatchCycle_) {
            const double wait = robCompletion_[slot] - dispatchCycle_;
            (robTag_[slot] == kTagMemory ? stack_.memory
                                         : stack_.compute) += wait;
            dispatchCycle_ = robCompletion_[slot];
        }

        // Front-end: I-cache miss stalls fetch/dispatch.
        if (fetch_stall > 0) {
            dispatchCycle_ += fetch_stall;
            stack_.frontend += fetch_stall;
        }

        // (1) dispatch bandwidth.
        dispatchCycle_ += dispatchStep_;
        stack_.base += dispatchStep_;

        double completion;
        switch (op.cls) {
          case isa::UopClass::Load: {
            double start = dispatchCycle_;
            if (op.depOnLoad)
                start = std::max(start, chainReady_);
            if (op.depOnPrev)
                start = std::max(start, computeChainTail_);
            if (l1_miss) {
                // (3) allocate an MSHR: take the earliest-free slot;
                // if every slot is still busy past `start`, stall
                // until one frees up.
                auto slot_it =
                    std::min_element(mshrFree_.begin(), mshrFree_.end());
                start = std::max(start, *slot_it);
                if (dram_access)
                    start = bus_->acquire(start, dram_lines);
                completion = start + mem_latency;
                *slot_it = completion;
            } else {
                completion = start + mem_latency;
            }
            if (op.depOnLoad)
                chainReady_ = completion;
            // Most recent load in program order: the producer proxy
            // for later depOnLoad branches.
            lastLoadCompletion_ = completion;
            break;
          }
          case isa::UopClass::Store:
            // Stores drain through the store buffer off the critical
            // path; they retire one cycle after dispatch, but a store
            // that misses to DRAM still consumes channel bandwidth
            // (RFO plus eventual writeback), delaying later demand
            // fills.
            if (dram_access)
                bus_->acquire(dispatchCycle_, dram_lines);
            completion = dispatchCycle_ + 1.0;
            break;
          case isa::UopClass::Branch: {
            double resolve =
                dispatchCycle_ + params_.branchResolveLatency;
            if (op.depOnLoad) {
                // A branch fed by a load resolves no earlier than the
                // load's data returns (mcf-style late mispredicts).
                resolve = std::max(resolve, lastLoadCompletion_ + 1.0);
            }
            if (mispredicted) {
                const double squash = resolve
                    + params_.mispredictPenalty - dispatchCycle_;
                if (squash > 0.0) {
                    stack_.branch += squash;
                    dispatchCycle_ += squash;
                }
            }
            completion = resolve;
            break;
          }
          default: {
            double start = dispatchCycle_;
            if (op.depOnLoad)
                start = std::max(start, chainReady_);
            if (op.depOnPrev)
                start = std::max(start, computeChainTail_);
            completion = start + latencyOfCompute(op.cls);
            if (op.depOnPrev)
                computeChainTail_ = completion;
            break;
          }
        }

        robCompletion_[slot] = completion;
        robTag_[slot] =
            op.isLoad() && l1_miss ? kTagMemory : kTagCompute;
        maxCompletion_ = std::max(maxCompletion_, completion);
        ++retired_;
    }

    /** Total cycles consumed so far (never less than dispatch time). */
    double cycles() const;

    /** Micro-ops retired so far. */
    std::uint64_t retired() const { return retired_; }

    /**
     * Cycle attribution so far. Components sum to the dispatch-side
     * cycle count (execution tail beyond the last dispatch is
     * attributed to its cause as well).
     */
    const CpiStack &cpiStack() const { return stack_; }

    /** Seconds at the configured clock for @p cycles. */
    double secondsFor(double cycle_count) const;

    const CoreParams &params() const { return params_; }

  private:
    /** ROB-slot attribution classes. */
    static constexpr std::uint8_t kTagCompute = 0;
    static constexpr std::uint8_t kTagMemory = 1;

    unsigned
    latencyOfCompute(isa::UopClass cls) const
    {
        switch (cls) {
          case isa::UopClass::IntAlu: return params_.intAluLatency;
          case isa::UopClass::IntMul: return params_.intMulLatency;
          case isa::UopClass::IntDiv: return params_.intDivLatency;
          case isa::UopClass::FpAdd: return params_.fpAddLatency;
          case isa::UopClass::FpMul: return params_.fpMulLatency;
          case isa::UopClass::FpDiv: return params_.fpDivLatency;
          default:
            SPEC17_PANIC("latencyOfCompute on non-compute class");
        }
    }

    CoreParams params_;
    /** 1 / dispatchWidth, hoisted out of retire(). */
    double dispatchStep_ = 0.25;
    /** Ring index into robCompletion_ (retired_ mod robSize). */
    std::size_t robSlot_ = 0;
    double dispatchCycle_ = 0.0;
    double maxCompletion_ = 0.0;
    /** Completion of the load chain dependent ops wait on. */
    double chainReady_ = 0.0;
    /** Completion time of the most recent load of any kind. */
    double lastLoadCompletion_ = 0.0;
    /**
     * Tail of the serial compute-dependency chain (loop-carried
     * accumulator): every depOnPrev compute op extends it, so a
     * workload with dependency density f sustains f * latency extra
     * cycles per op -- its inherent ILP limit.
     */
    double computeChainTail_ = 0.0;
    std::uint64_t retired_ = 0;
    std::vector<double> robCompletion_; //!< ring buffer, robSize slots
    /** Attribution class of each ROB slot's completion time. */
    std::vector<std::uint8_t> robTag_;
    std::vector<double> mshrFree_;      //!< per-MSHR free timestamps
    std::shared_ptr<MemoryBus> bus_;    //!< DRAM channel (maybe shared)
    CpiStack stack_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_CORE_MODEL_HH_
