/**
 * @file
 * Mechanistic out-of-order core timing model (interval-analysis
 * style, after Eyerman/Eeckhout). Rather than simulating every
 * pipeline structure, the model tracks the three first-order limits
 * of a balanced OoO core:
 *
 *  1. dispatch bandwidth (width W): dispatch advances 1/W cycles/uop;
 *  2. the reorder-buffer window: uop i cannot dispatch before uop
 *     i-ROB has completed (an exact retire-limited bound, kept in a
 *     ring buffer of completion times);
 *  3. finite miss concurrency: outstanding cache misses occupy MSHRs,
 *     and dependent (pointer-chase) loads serialize on the producing
 *     load's completion.
 *
 * Branch mispredicts squash the front end: dispatch resumes only
 * after the branch resolves plus a refill penalty. Together these
 * reproduce the qualitative IPC regimes the paper observes (4-wide
 * ILP-bound code near IPC 3, latency-bound pointer chasing below 1).
 */

#ifndef SPEC17_SIM_CORE_MODEL_HH_
#define SPEC17_SIM_CORE_MODEL_HH_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/uop.hh"
#include "util/logging.hh"

namespace spec17 {
namespace sim {

/**
 * Shared DRAM channel: every line transferred from memory (demand
 * fill, store RFO, writeback) occupies the channel for a fixed number
 * of core cycles. Cores sharing one MemoryBus contend for it -- the
 * mechanism behind the speed-fp "memory wall" the paper observes.
 * Core clocks advance loosely in step (the multicore interleaver runs
 * small chunks), so a single shared free-time is a fair approximation.
 */
struct MemoryBus
{
    /** Channel occupancy per 64 B line, in core cycles. */
    double cyclesPerLine = 4.0;
    /** Time at which the channel next becomes free. */
    double freeAt = 0.0;

    /**
     * Acquires the channel at or after @p when for @p lines line
     * transfers; returns the acquisition time.
     */
    double
    acquire(double when, double lines = 1.0)
    {
        const double start = freeAt > when ? freeAt : when;
        freeAt = start + cyclesPerLine * lines;
        return start;
    }
};

/** Core microarchitecture parameters (defaults: Haswell-like). */
struct CoreParams
{
    unsigned dispatchWidth = 4;
    unsigned robSize = 192;
    unsigned numMshrs = 10;
    /** Front-end refill penalty after a resolved mispredict. */
    unsigned mispredictPenalty = 14;
    /** Cycles from dispatch to branch resolution (no load dep). */
    unsigned branchResolveLatency = 8;
    /**
     * Fetch-ahead the decoupled front end hides on an I-cache miss:
     * the charged stall is max(0, miss latency - this).
     */
    unsigned frontendBufferCycles = 8;
    unsigned intAluLatency = 1;
    unsigned intMulLatency = 3;
    unsigned intDivLatency = 22;
    unsigned fpAddLatency = 3;
    unsigned fpMulLatency = 5;
    unsigned fpDivLatency = 24;
    /** Reference clock in GHz (E5-2650L v3 base clock). */
    double frequencyGHz = 1.8;
};

/**
 * Attribution of consumed cycles to first-order causes -- the
 * classic CPI-stack breakdown. Components sum to cycles().
 */
struct CpiStack
{
    double base = 0.0;     //!< dispatch bandwidth (N / width)
    double frontend = 0.0; //!< I-cache / ITLB fetch stalls
    double branch = 0.0;   //!< mispredict resolve + refill
    double memory = 0.0;   //!< ROB blocked on a load miss
    double compute = 0.0;  //!< ROB blocked on compute latency

    double total() const;
    /** Per-instruction stack for @p retired micro-ops. */
    CpiStack perInstruction(std::uint64_t retired) const;
};

/**
 * Per-uop cycle accounting. Feed every retired micro-op through
 * retire() with its resolved memory latency / misprediction flags;
 * read cycles() at the end.
 */
class CoreModel
{
  public:
    /**
     * @param params microarchitecture parameters.
     * @param bus DRAM channel; pass a bus shared between CoreModels
     *        to model multicore bandwidth contention, or nullptr for
     *        a private channel.
     */
    explicit CoreModel(const CoreParams &params,
                       std::shared_ptr<MemoryBus> bus = nullptr);

    /**
     * Accounts one micro-op.
     *
     * @param op the retired micro-op.
     * @param mem_latency for loads: load-to-use latency the hierarchy
     *        reported (hit or miss); ignored for other classes.
     * @param l1_miss for loads: whether the access missed L1 (misses
     *        occupy an MSHR).
     * @param fetch_stall extra front-end cycles charged when the
     *        instruction fetch missed the L1I.
     * @param mispredicted for branches: whether the branch unit
     *        mispredicted it.
     * @param dram_access true when the access (load or store) went
     *        all the way to memory and therefore occupies the DRAM
     *        channel.
     * @param dram_lines line transfers the access implies (a store
     *        miss costs an RFO read plus an eventual writeback).
     */
    void retire(const isa::MicroOp &op, unsigned mem_latency,
                bool l1_miss, unsigned fetch_stall, bool mispredicted,
                bool dram_access = false, double dram_lines = 1.0);

    /**
     * Inline twin of retire(): identical accounting -- retire()
     * delegates to this, so there is exactly one body -- exposed in
     * the header for the simulator's batched fast lane, whose inner
     * loop inlines the per-op accounting instead of paying a call
     * per micro-op. The per-op reference lane keeps calling retire()
     * out of line; the golden identity tests pin both lanes to the
     * same results.
     */
    void
    retireInline(const isa::MicroOp &op, unsigned mem_latency,
                 bool l1_miss, unsigned fetch_stall, bool mispredicted,
                 bool dram_access = false, double dram_lines = 1.0)
    {
        retireLanes(op.cls, op.depOnLoad, op.depOnPrev, mem_latency,
                    l1_miss, fetch_stall, mispredicted, dram_access,
                    dram_lines);
    }

    /**
     * Lane form of retireInline(): the same accounting taking the
     * three MicroOp fields retirement actually reads (class and the
     * two dependence bits) as scalars, so the batched fast lane's
     * retire pass can feed it straight from SoA lanes without
     * materializing a MicroOp. This is the single real body; both
     * retire() and retireInline() delegate here.
     */
    void
    retireLanes(isa::UopClass cls, bool dep_on_load, bool dep_on_prev,
                unsigned mem_latency, bool l1_miss, unsigned fetch_stall,
                bool mispredicted, bool dram_access = false,
                double dram_lines = 1.0)
    {
        RetireRegs regs = loadRetireRegs();
        const RetireConsts consts = retireConsts();
        retireStep(consts, regs, robCompletion_.data(), robTag_.data(),
                   mshrFree_.data(), cls, dep_on_load, dep_on_prev,
                   mem_latency, l1_miss, fetch_stall, mispredicted,
                   dram_access, dram_lines);
        storeRetireRegs(regs, 1);
    }

    /**
     * Batched retire over SoA scratch lanes: loads the serial core
     * state into registers once, runs the shared retireStep() body
     * for each of the @p n ops, and writes the state back once --
     * instead of a member-field load/store round trip per op. dram
     * codes per op: 0 no DRAM access, 1 one line, 2 RFO plus
     * writeback (two lines). Identical accounting to n retireLanes()
     * calls: both entry points run the same single step body.
     */
    void
    retireBatch(const isa::UopClass *__restrict cls,
                const std::uint8_t *__restrict dep_on_load,
                const std::uint8_t *__restrict dep_on_prev,
                const unsigned *__restrict mem_latency,
                const std::uint8_t *__restrict l1_miss,
                const unsigned *__restrict fetch_stall,
                const std::uint8_t *__restrict mispredicted,
                const std::uint8_t *__restrict dram, std::size_t n)
    {
        RetireRegs regs = loadRetireRegs();
        const RetireConsts consts = retireConsts();
        double *__restrict const rob = robCompletion_.data();
        std::uint8_t *__restrict const tags = robTag_.data();
        double *__restrict const mshr = mshrFree_.data();
        for (std::size_t i = 0; i < n; ++i)
            retireStep(consts, regs, rob, tags, mshr, cls[i],
                       dep_on_load[i] != 0, dep_on_prev[i] != 0,
                       mem_latency[i], l1_miss[i] != 0, fetch_stall[i],
                       mispredicted[i] != 0, dram[i] != 0,
                       dram[i] == 2 ? 2.0 : 1.0);
        storeRetireRegs(regs, n);
    }

    /** Total cycles consumed so far (never less than dispatch time). */
    double cycles() const;

    /** Micro-ops retired so far. */
    std::uint64_t retired() const { return retired_; }

    /**
     * Cycle attribution so far. Components sum to the dispatch-side
     * cycle count (execution tail beyond the last dispatch is
     * attributed to its cause as well).
     */
    const CpiStack &cpiStack() const { return stack_; }

    /** Seconds at the configured clock for @p cycles. */
    double secondsFor(double cycle_count) const;

    const CoreParams &params() const { return params_; }

  private:
    /** ROB-slot attribution classes. */
    static constexpr std::uint8_t kTagCompute = 0;
    static constexpr std::uint8_t kTagMemory = 1;

    /**
     * The serial cross-op retire state, hoisted out of the member
     * fields so retireStep() keeps all of it in registers across a
     * batch. Loaded once per retireLanes()/retireBatch() call and
     * stored back once at the end; the ROB ring, its tags and the
     * MSHR array stay in memory (they are bulk state, passed as
     * restrict pointers).
     */
    struct RetireRegs
    {
        std::size_t robSlot;
        double dispatchCycle;
        double maxCompletion;
        double chainReady;
        double lastLoadCompletion;
        double computeChainTail;
        double base;     //!< CpiStack components
        double frontend;
        double branch;
        double memory;
        double compute;
    };

    /** Loop-invariant retire inputs (parameters as doubles exactly as
     *  the unsigned-to-double conversions in the accounting produce
     *  them, so hoisting cannot change any sum). */
    struct RetireConsts
    {
        std::size_t robSize;
        std::size_t numMshrs;
        double dispatchStep;
        double resolveLatency;
        double mispredictPenalty;
        double computeLat[isa::kNumUopClasses];
        MemoryBus *bus;
    };

    RetireRegs
    loadRetireRegs() const
    {
        return {robSlot_,       dispatchCycle_,
                maxCompletion_, chainReady_,
                lastLoadCompletion_, computeChainTail_,
                stack_.base,    stack_.frontend,
                stack_.branch,  stack_.memory,
                stack_.compute};
    }

    void
    storeRetireRegs(const RetireRegs &r, std::uint64_t retired_delta)
    {
        robSlot_ = r.robSlot;
        dispatchCycle_ = r.dispatchCycle;
        maxCompletion_ = r.maxCompletion;
        chainReady_ = r.chainReady;
        lastLoadCompletion_ = r.lastLoadCompletion;
        computeChainTail_ = r.computeChainTail;
        stack_.base = r.base;
        stack_.frontend = r.frontend;
        stack_.branch = r.branch;
        stack_.memory = r.memory;
        stack_.compute = r.compute;
        retired_ += retired_delta;
    }

    RetireConsts
    retireConsts() const
    {
        RetireConsts k;
        k.robSize = params_.robSize;
        k.numMshrs = mshrFree_.size();
        k.dispatchStep = dispatchStep_;
        k.resolveLatency = params_.branchResolveLatency;
        k.mispredictPenalty = params_.mispredictPenalty;
        for (double &lat : k.computeLat)
            lat = 0.0;
        using C = isa::UopClass;
        for (C cls : {C::IntAlu, C::IntMul, C::IntDiv, C::FpAdd,
                      C::FpMul, C::FpDiv})
            k.computeLat[static_cast<std::size_t>(cls)] =
                latencyOfCompute(cls);
        k.bus = bus_.get();
        return k;
    }

    /**
     * The single retire-accounting body (every public retire surface
     * funnels here). Static: no `this` in scope, so byte-lane stores
     * cannot force member reloads; all serial state lives in @p r.
     */
    static void
    retireStep(const RetireConsts &k, RetireRegs &r,
               double *__restrict rob, std::uint8_t *__restrict tags,
               double *__restrict mshr, isa::UopClass cls,
               bool dep_on_load, bool dep_on_prev, unsigned mem_latency,
               bool l1_miss, unsigned fetch_stall, bool mispredicted,
               bool dram_access, double dram_lines)
    {
        // (2) ROB window: the slot we are about to occupy still holds
        // the completion time of uop (i - robSize); dispatch must wait
        // for it.
        const std::size_t slot = r.robSlot;
        if (++r.robSlot == k.robSize)
            r.robSlot = 0;
        if (rob[slot] > r.dispatchCycle) {
            const double wait = rob[slot] - r.dispatchCycle;
            (tags[slot] == kTagMemory ? r.memory : r.compute) += wait;
            r.dispatchCycle = rob[slot];
        }

        // Front-end: I-cache miss stalls fetch/dispatch.
        if (fetch_stall > 0) {
            r.dispatchCycle += fetch_stall;
            r.frontend += fetch_stall;
        }

        // (1) dispatch bandwidth.
        r.dispatchCycle += k.dispatchStep;
        r.base += k.dispatchStep;

        double completion;
        switch (cls) {
          case isa::UopClass::Load: {
            double start = r.dispatchCycle;
            if (dep_on_load)
                start = std::max(start, r.chainReady);
            if (dep_on_prev)
                start = std::max(start, r.computeChainTail);
            if (l1_miss) {
                // (3) allocate an MSHR: take the earliest-free slot;
                // if every slot is still busy past `start`, stall
                // until one frees up.
                double *slot_it =
                    std::min_element(mshr, mshr + k.numMshrs);
                start = std::max(start, *slot_it);
                if (dram_access)
                    start = k.bus->acquire(start, dram_lines);
                completion = start + mem_latency;
                *slot_it = completion;
            } else {
                completion = start + mem_latency;
            }
            if (dep_on_load)
                r.chainReady = completion;
            // Most recent load in program order: the producer proxy
            // for later depOnLoad branches.
            r.lastLoadCompletion = completion;
            break;
          }
          case isa::UopClass::Store:
            // Stores drain through the store buffer off the critical
            // path; they retire one cycle after dispatch, but a store
            // that misses to DRAM still consumes channel bandwidth
            // (RFO plus eventual writeback), delaying later demand
            // fills.
            if (dram_access)
                k.bus->acquire(r.dispatchCycle, dram_lines);
            completion = r.dispatchCycle + 1.0;
            break;
          case isa::UopClass::Branch: {
            double resolve = r.dispatchCycle + k.resolveLatency;
            if (dep_on_load) {
                // A branch fed by a load resolves no earlier than the
                // load's data returns (mcf-style late mispredicts).
                resolve = std::max(resolve, r.lastLoadCompletion + 1.0);
            }
            if (mispredicted) {
                const double squash =
                    resolve + k.mispredictPenalty - r.dispatchCycle;
                if (squash > 0.0) {
                    r.branch += squash;
                    r.dispatchCycle += squash;
                }
            }
            completion = resolve;
            break;
          }
          default: {
            double start = r.dispatchCycle;
            if (dep_on_load)
                start = std::max(start, r.chainReady);
            if (dep_on_prev)
                start = std::max(start, r.computeChainTail);
            completion =
                start + k.computeLat[static_cast<std::size_t>(cls)];
            if (dep_on_prev)
                r.computeChainTail = completion;
            break;
          }
        }

        rob[slot] = completion;
        tags[slot] = cls == isa::UopClass::Load && l1_miss
            ? kTagMemory
            : kTagCompute;
        r.maxCompletion = std::max(r.maxCompletion, completion);
    }

    unsigned
    latencyOfCompute(isa::UopClass cls) const
    {
        switch (cls) {
          case isa::UopClass::IntAlu: return params_.intAluLatency;
          case isa::UopClass::IntMul: return params_.intMulLatency;
          case isa::UopClass::IntDiv: return params_.intDivLatency;
          case isa::UopClass::FpAdd: return params_.fpAddLatency;
          case isa::UopClass::FpMul: return params_.fpMulLatency;
          case isa::UopClass::FpDiv: return params_.fpDivLatency;
          default:
            SPEC17_PANIC("latencyOfCompute on non-compute class");
        }
    }

    CoreParams params_;
    /** 1 / dispatchWidth, hoisted out of retire(). */
    double dispatchStep_ = 0.25;
    /** Ring index into robCompletion_ (retired_ mod robSize). */
    std::size_t robSlot_ = 0;
    double dispatchCycle_ = 0.0;
    double maxCompletion_ = 0.0;
    /** Completion of the load chain dependent ops wait on. */
    double chainReady_ = 0.0;
    /** Completion time of the most recent load of any kind. */
    double lastLoadCompletion_ = 0.0;
    /**
     * Tail of the serial compute-dependency chain (loop-carried
     * accumulator): every depOnPrev compute op extends it, so a
     * workload with dependency density f sustains f * latency extra
     * cycles per op -- its inherent ILP limit.
     */
    double computeChainTail_ = 0.0;
    std::uint64_t retired_ = 0;
    std::vector<double> robCompletion_; //!< ring buffer, robSize slots
    /** Attribution class of each ROB slot's completion time. */
    std::vector<std::uint8_t> robTag_;
    std::vector<double> mshrFree_;      //!< per-MSHR free timestamps
    std::shared_ptr<MemoryBus> bus_;    //!< DRAM channel (maybe shared)
    CpiStack stack_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_CORE_MODEL_HH_
