/**
 * @file
 * Two-level TLB model (Haswell-like: small fully-associative L1 TLBs
 * backed by a shared L2 TLB, with a fixed page-walk penalty). The
 * paper's counter set does not include TLB events, so the model is
 * disabled in the default Table-I configuration and exercised by the
 * microarchitecture ablation bench; when enabled it populates the
 * dtlb/itlb miss counters and adds walk latency to accesses.
 */

#ifndef SPEC17_SIM_TLB_HH_
#define SPEC17_SIM_TLB_HH_

#include <cstdint>
#include <vector>

namespace spec17 {
namespace sim {

/** Geometry and timing of one two-level TLB. */
struct TlbConfig
{
    unsigned l1Entries = 64;     //!< fully associative
    unsigned l2Entries = 1024;   //!< fully associative (shared level)
    std::uint64_t pageBytes = 4096;
    unsigned l2HitLatency = 7;   //!< extra cycles on an L1 TLB miss
    unsigned walkLatency = 30;   //!< extra cycles on a full miss

    /** Panics on degenerate geometry. */
    void validate() const;
};

/** Result of one translation. */
struct TlbOutcome
{
    bool l1Hit = false;
    bool l2Hit = false;
    /** Extra load-to-use cycles this translation cost. */
    unsigned extraLatency = 0;
};

/** Running statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t walks = 0; //!< missed both levels

    double l1MissRate() const;
    double walkRate() const;
};

/**
 * A two-level LRU TLB. Lookups allocate on miss at both levels
 * (walks fill L2 and L1).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config = {});

    /** Translates the page of @p addr; updates stats and LRU state. */
    TlbOutcome access(std::uint64_t addr);

    const TlbStats &stats() const { return stats_; }
    const TlbConfig &config() const { return config_; }

    /** Drops all translations (context-switch model). */
    void flushAll();

  private:
    /** Fully associative LRU array of page numbers. */
    struct Level
    {
        std::vector<std::uint64_t> pages; //!< front = MRU
        unsigned capacity = 0;

        bool lookupAndTouch(std::uint64_t page);
        void insert(std::uint64_t page);
    };

    TlbConfig config_;
    Level l1_;
    Level l2_;
    TlbStats stats_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_TLB_HH_
