#include "sim/prefetch.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

NextLinePrefetcher::NextLinePrefetcher(unsigned line_bytes)
    : lineBytes_(line_bytes)
{
    SPEC17_ASSERT(line_bytes > 0, "line size must be positive");
}

void
NextLinePrefetcher::observe(std::uint64_t, std::uint64_t addr, bool,
                            std::vector<std::uint64_t> &out)
{
    const std::uint64_t line = addr / lineBytes_;
    if (line == lastLine_)
        return;
    lastLine_ = line;
    out.push_back((line + 1) * lineBytes_);
    ++issued_;
}

StridePrefetcher::StridePrefetcher(unsigned table_bits, unsigned degree,
                                   unsigned line_bytes)
    : table_(std::size_t(1) << table_bits),
      mask_((std::size_t(1) << table_bits) - 1), degree_(degree),
      lineBytes_(line_bytes)
{
    SPEC17_ASSERT(degree >= 1, "stride degree must be >= 1");
}

void
StridePrefetcher::observe(std::uint64_t pc, std::uint64_t addr, bool,
                          std::vector<std::uint64_t> &out)
{
    Entry &entry = table_[(pc >> 2) & mask_];
    const std::uint64_t tag = pc >> 2;
    if (!entry.valid || entry.tag != tag) {
        entry = Entry();
        entry.valid = true;
        entry.tag = tag;
        entry.lastAddr = addr;
        return;
    }

    const std::int64_t stride = static_cast<std::int64_t>(addr)
        - static_cast<std::int64_t>(entry.lastAddr);
    if (stride == entry.stride && stride != 0) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 0;
    }
    entry.lastAddr = addr;

    if (entry.confidence >= 2) {
        for (unsigned d = 1; d <= degree_; ++d) {
            const std::int64_t target = static_cast<std::int64_t>(addr)
                + entry.stride * static_cast<std::int64_t>(d);
            if (target <= 0)
                break;
            out.push_back(static_cast<std::uint64_t>(target)
                          / lineBytes_ * lineBytes_);
            ++issued_;
        }
    }
}

// ---------------------------------------------------------------------
// StreamPrefetcher
// ---------------------------------------------------------------------

namespace {

/** Recent-issue window used for late-prefetch detection. */
constexpr std::size_t kRecentIssueWindow = 64;

} // namespace

StreamPrefetcher::StreamPrefetcher(const StreamConfig &config)
    : config_(config), streams_(config.streams),
      recent_(kRecentIssueWindow, ~std::uint64_t(0))
{
    SPEC17_ASSERT(config.streams >= 1, "stream prefetcher needs a stream");
    SPEC17_ASSERT(config.degree >= 1, "stream degree must be >= 1");
    SPEC17_ASSERT(config.distance >= 1, "stream distance must be >= 1");
    SPEC17_ASSERT(config.trainThreshold >= 1,
                  "stream train threshold must be >= 1");
    SPEC17_ASSERT(config.lineBytes > 0, "line size must be positive");
    SPEC17_ASSERT(config.degree <= config.distance,
                  "stream degree beyond the in-flight window");
}

bool
StreamPrefetcher::inRecent(std::uint64_t line) const
{
    for (std::uint64_t recent : recent_)
        if (recent == line)
            return true;
    return false;
}

void
StreamPrefetcher::pushRecent(std::uint64_t line)
{
    recent_[recentHead_] = line;
    recentHead_ = (recentHead_ + 1) % recent_.size();
}

void
StreamPrefetcher::issueAhead(Stream &s, std::vector<std::uint64_t> &out)
{
    for (unsigned n = 0; n < config_.degree; ++n) {
        std::uint64_t next;
        if (s.dir > 0) {
            next = s.issuedUpTo + 1;
            if (next > s.lastLine + config_.distance)
                break;
        } else {
            if (s.issuedUpTo == 0 ||
                s.issuedUpTo - 1 + config_.distance < s.lastLine)
                break;
            next = s.issuedUpTo - 1;
        }
        s.issuedUpTo = next;
        out.push_back(next * config_.lineBytes);
        ++issued_;
        pushRecent(next);
    }
}

void
StreamPrefetcher::observe(std::uint64_t, std::uint64_t addr,
                          bool was_miss, std::vector<std::uint64_t> &out)
{
    const std::uint64_t line = addr / config_.lineBytes;
    ++tick_;

    // A miss on a line we already issued means the fill was evicted
    // before the demand arrived -- the model's "late prefetch".
    if (was_miss && inRecent(line))
        ++late_;

    // First stream whose frontier is within the window wins
    // (deterministic scan order).
    Stream *match = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(line)
            - static_cast<std::int64_t>(s.lastLine);
        if (delta == 0) {
            s.stamp = tick_;
            return;  // same line again: nothing new to learn
        }
        if (delta >= -static_cast<std::int64_t>(config_.distance) &&
            delta <= static_cast<std::int64_t>(config_.distance)) {
            match = &s;
            break;
        }
    }

    if (match != nullptr) {
        const std::int64_t delta = static_cast<std::int64_t>(line)
            - static_cast<std::int64_t>(match->lastLine);
        const int dir = delta > 0 ? 1 : -1;
        if (match->dir == dir) {
            if (match->confidence < 3)
                ++match->confidence;
        } else if (match->dir == 0) {
            match->dir = dir;
            match->confidence = 1;
        } else if (match->confidence > 0) {
            --match->confidence;
        } else {
            match->dir = dir;
            match->confidence = 1;
            match->issuedUpTo = line;
        }
        if (match->dir == dir) {
            match->lastLine = line;
            // Demand may outrun the issue frontier; never re-issue
            // lines behind the demand point.
            if ((dir > 0 && match->issuedUpTo < line) ||
                (dir < 0 && match->issuedUpTo > line))
                match->issuedUpTo = line;
            if (match->confidence >= config_.trainThreshold)
                issueAhead(*match, out);
        }
        match->stamp = tick_;
        return;
    }

    // Only demand misses open a new stream (the classic miss-stream
    // allocation); hits without a matching stream are noise.
    if (!was_miss)
        return;
    Stream *victim = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (victim == nullptr || s.stamp < victim->stamp)
            victim = &s;
    }
    *victim = Stream();
    victim->valid = true;
    victim->lastLine = line;
    victim->issuedUpTo = line;
    victim->stamp = tick_;
}

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name)
{
    return makePrefetcher(name, StreamConfig());
}

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name, const StreamConfig &stream)
{
    if (name == "none")
        return nullptr;
    if (name == "next-line")
        return std::make_unique<NextLinePrefetcher>();
    if (name == "stride")
        return std::make_unique<StridePrefetcher>();
    if (name == "stream")
        return std::make_unique<StreamPrefetcher>(stream);
    SPEC17_FATAL("unknown prefetcher '", name,
                 "' (want none|next-line|stride|stream)");
}

} // namespace sim
} // namespace spec17
