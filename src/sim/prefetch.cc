#include "sim/prefetch.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

NextLinePrefetcher::NextLinePrefetcher(unsigned line_bytes)
    : lineBytes_(line_bytes)
{
    SPEC17_ASSERT(line_bytes > 0, "line size must be positive");
}

void
NextLinePrefetcher::observe(std::uint64_t, std::uint64_t addr, bool,
                            std::vector<std::uint64_t> &out)
{
    const std::uint64_t line = addr / lineBytes_;
    if (line == lastLine_)
        return;
    lastLine_ = line;
    out.push_back((line + 1) * lineBytes_);
    ++issued_;
}

StridePrefetcher::StridePrefetcher(unsigned table_bits, unsigned degree,
                                   unsigned line_bytes)
    : table_(std::size_t(1) << table_bits),
      mask_((std::size_t(1) << table_bits) - 1), degree_(degree),
      lineBytes_(line_bytes)
{
    SPEC17_ASSERT(degree >= 1, "stride degree must be >= 1");
}

void
StridePrefetcher::observe(std::uint64_t pc, std::uint64_t addr, bool,
                          std::vector<std::uint64_t> &out)
{
    Entry &entry = table_[(pc >> 2) & mask_];
    const std::uint64_t tag = pc >> 2;
    if (!entry.valid || entry.tag != tag) {
        entry = Entry();
        entry.valid = true;
        entry.tag = tag;
        entry.lastAddr = addr;
        return;
    }

    const std::int64_t stride = static_cast<std::int64_t>(addr)
        - static_cast<std::int64_t>(entry.lastAddr);
    if (stride == entry.stride && stride != 0) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 0;
    }
    entry.lastAddr = addr;

    if (entry.confidence >= 2) {
        for (unsigned d = 1; d <= degree_; ++d) {
            const std::int64_t target = static_cast<std::int64_t>(addr)
                + entry.stride * static_cast<std::int64_t>(d);
            if (target <= 0)
                break;
            out.push_back(static_cast<std::uint64_t>(target)
                          / lineBytes_ * lineBytes_);
            ++issued_;
        }
    }
}

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name)
{
    if (name == "none")
        return nullptr;
    if (name == "next-line")
        return std::make_unique<NextLinePrefetcher>();
    if (name == "stride")
        return std::make_unique<StridePrefetcher>();
    SPEC17_FATAL("unknown prefetcher '", name,
                 "' (want none|next-line|stride)");
}

} // namespace sim
} // namespace spec17
