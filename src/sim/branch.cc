#include "sim/branch.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

namespace {

/** 2-bit saturating counter helpers; >= 2 means predict taken. */
std::uint8_t
saturate(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace

// ---------------------------------------------------------------------
// StaticTakenPredictor
// ---------------------------------------------------------------------

bool
StaticTakenPredictor::predict(std::uint64_t)
{
    return true;
}

void
StaticTakenPredictor::update(std::uint64_t, bool)
{
}

// ---------------------------------------------------------------------
// BimodalPredictor
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : table_(std::size_t(1) << table_bits, 1),
      mask_((std::size_t(1) << table_bits) - 1)
{
    SPEC17_ASSERT(table_bits >= 4 && table_bits <= 24,
                  "bimodal table bits out of sane range");
}

std::size_t
BimodalPredictor::index(std::uint64_t pc) const
{
    return (pc >> 2) & mask_;
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = table_[index(pc)];
    counter = saturate(counter, taken);
}

// ---------------------------------------------------------------------
// GsharePredictor
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned table_bits,
                                 unsigned history_bits)
    : table_(std::size_t(1) << table_bits, 1),
      mask_((std::size_t(1) << table_bits) - 1),
      historyMask_((std::uint64_t(1) << history_bits) - 1)
{
    SPEC17_ASSERT(table_bits >= 4 && table_bits <= 24,
                  "gshare table bits out of sane range");
    SPEC17_ASSERT(history_bits <= table_bits,
                  "gshare history longer than table index");
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return ((pc >> 2) ^ history_) & mask_;
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = table_[index(pc)];
    counter = saturate(counter, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

// ---------------------------------------------------------------------
// TournamentPredictor
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(unsigned table_bits,
                                         unsigned history_bits)
    : bimodal_(table_bits), gshare_(table_bits, history_bits),
      chooser_(std::size_t(1) << table_bits, 2),
      mask_((std::size_t(1) << table_bits) - 1)
{
}

bool
TournamentPredictor::predict(std::uint64_t pc)
{
    const bool use_gshare = chooser_[(pc >> 2) & mask_] >= 2;
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken)
{
    const bool bimodal_right = bimodal_.predict(pc) == taken;
    const bool gshare_right = gshare_.predict(pc) == taken;
    std::uint8_t &choice = chooser_[(pc >> 2) & mask_];
    if (gshare_right != bimodal_right)
        choice = saturate(choice, gshare_right);
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &name)
{
    if (name == "static-taken")
        return std::make_unique<StaticTakenPredictor>();
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>();
    if (name == "tournament")
        return std::make_unique<TournamentPredictor>();
    SPEC17_FATAL("unknown direction predictor '", name,
                 "' (want static-taken|bimodal|gshare|tournament)");
}

// ---------------------------------------------------------------------
// BranchUnit
// ---------------------------------------------------------------------

double
BranchStats::mispredictRate() const
{
    return executed ? static_cast<double>(mispredicted)
            / static_cast<double>(executed)
                    : 0.0;
}

BranchUnit::BranchUnit(std::unique_ptr<DirectionPredictor> direction,
                       unsigned btb_bits)
    : direction_(std::move(direction)),
      btb_(std::size_t(1) << btb_bits, 0),
      btbMask_((std::size_t(1) << btb_bits) - 1)
{
    SPEC17_ASSERT(direction_ != nullptr, "BranchUnit needs a predictor");
}

const BranchStats &
BranchUnit::byKind(isa::BranchKind kind) const
{
    return perKind_[static_cast<std::size_t>(kind)];
}

bool
BranchUnit::execute(const isa::MicroOp &op)
{
    SPEC17_ASSERT(op.isBranch(), "BranchUnit fed a non-branch op");
    bool mispredicted = false;

    switch (op.branch) {
      case isa::BranchKind::Conditional: {
        const bool predicted = direction_->predict(op.pc);
        mispredicted = predicted != op.taken;
        direction_->update(op.pc, op.taken);
        break;
      }
      case isa::BranchKind::DirectJump:
      case isa::BranchKind::DirectNearCall:
        // Direct targets are decoded in the front end; treated as
        // always predicted once seen. Model as never mispredicted.
        mispredicted = false;
        break;
      case isa::BranchKind::IndirectJumpNonCallRet: {
        std::uint64_t &entry = btb_[(op.pc >> 2) & btbMask_];
        mispredicted = entry != op.target;
        entry = op.target;
        break;
      }
      case isa::BranchKind::IndirectNearReturn:
        // Idealized return-address stack.
        mispredicted = false;
        break;
      case isa::BranchKind::None:
        SPEC17_PANIC("branch op with BranchKind::None");
    }

    ++totals_.executed;
    totals_.mispredicted += mispredicted;
    BranchStats &ks = perKind_[static_cast<std::size_t>(op.branch)];
    ++ks.executed;
    ks.mispredicted += mispredicted;
    return mispredicted;
}

} // namespace sim
} // namespace spec17
