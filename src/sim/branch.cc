#include "sim/branch.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

// ---------------------------------------------------------------------
// StaticTakenPredictor
// ---------------------------------------------------------------------

bool
StaticTakenPredictor::predict(std::uint64_t)
{
    return true;
}

void
StaticTakenPredictor::update(std::uint64_t, bool)
{
}

// ---------------------------------------------------------------------
// BimodalPredictor
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : table_(std::size_t(1) << table_bits, 1),
      mask_((std::size_t(1) << table_bits) - 1)
{
    SPEC17_ASSERT(table_bits >= 4 && table_bits <= 24,
                  "bimodal table bits out of sane range");
}

// ---------------------------------------------------------------------
// GsharePredictor
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned table_bits,
                                 unsigned history_bits)
    : table_(std::size_t(1) << table_bits, 1),
      mask_((std::size_t(1) << table_bits) - 1),
      historyMask_((std::uint64_t(1) << history_bits) - 1)
{
    SPEC17_ASSERT(table_bits >= 4 && table_bits <= 24,
                  "gshare table bits out of sane range");
    SPEC17_ASSERT(history_bits <= table_bits,
                  "gshare history longer than table index");
}

// ---------------------------------------------------------------------
// TournamentPredictor
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(unsigned table_bits,
                                         unsigned history_bits)
    : bimodal_(table_bits), gshare_(table_bits, history_bits),
      chooser_(std::size_t(1) << table_bits, 2),
      mask_((std::size_t(1) << table_bits) - 1)
{
}

bool
TournamentPredictor::predict(std::uint64_t pc)
{
    const bool use_gshare = chooser_[(pc >> 2) & mask_] >= 2;
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken)
{
    const bool bimodal_right = bimodal_.predict(pc) == taken;
    const bool gshare_right = gshare_.predict(pc) == taken;
    std::uint8_t &choice = chooser_[(pc >> 2) & mask_];
    if (gshare_right != bimodal_right)
        choice = detail::saturateCounter(choice, gshare_right);
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &name)
{
    if (name == "static-taken")
        return std::make_unique<StaticTakenPredictor>();
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>();
    if (name == "tournament")
        return std::make_unique<TournamentPredictor>();
    SPEC17_FATAL("unknown direction predictor '", name,
                 "' (want static-taken|bimodal|gshare|tournament)");
}

// ---------------------------------------------------------------------
// BranchUnit
// ---------------------------------------------------------------------

double
BranchStats::mispredictRate() const
{
    return executed ? static_cast<double>(mispredicted)
            / static_cast<double>(executed)
                    : 0.0;
}

BranchUnit::BranchUnit(std::unique_ptr<DirectionPredictor> direction,
                       unsigned btb_bits)
    : direction_(std::move(direction)),
      tournament_(dynamic_cast<TournamentPredictor *>(direction_.get())),
      btb_(std::size_t(1) << btb_bits, 0),
      btbMask_((std::size_t(1) << btb_bits) - 1)
{
    SPEC17_ASSERT(direction_ != nullptr, "BranchUnit needs a predictor");
}

const BranchStats &
BranchUnit::byKind(isa::BranchKind kind) const
{
    return perKind_[static_cast<std::size_t>(kind)];
}

bool
BranchUnit::execute(const isa::MicroOp &op)
{
    SPEC17_ASSERT(op.isBranch(), "BranchUnit fed a non-branch op");
    return execute(op.branch, op.pc, op.taken, op.target);
}

bool
BranchUnit::predictUpdateSlow(std::uint64_t pc, bool taken)
{
    const bool predicted = direction_->predict(pc);
    direction_->update(pc, taken);
    return predicted;
}

} // namespace sim
} // namespace spec17
