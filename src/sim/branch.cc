#include "sim/branch.hh"

#include <cmath>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

// ---------------------------------------------------------------------
// StaticTakenPredictor
// ---------------------------------------------------------------------

bool
StaticTakenPredictor::predict(std::uint64_t)
{
    return true;
}

void
StaticTakenPredictor::update(std::uint64_t, bool)
{
}

// ---------------------------------------------------------------------
// BimodalPredictor
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : table_(std::size_t(1) << table_bits, 1),
      mask_((std::size_t(1) << table_bits) - 1)
{
    SPEC17_ASSERT(table_bits >= 4 && table_bits <= 24,
                  "bimodal table bits out of sane range");
}

// ---------------------------------------------------------------------
// GsharePredictor
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned table_bits,
                                 unsigned history_bits)
    : table_(std::size_t(1) << table_bits, 1),
      mask_((std::size_t(1) << table_bits) - 1),
      historyMask_((std::uint64_t(1) << history_bits) - 1)
{
    SPEC17_ASSERT(table_bits >= 4 && table_bits <= 24,
                  "gshare table bits out of sane range");
    SPEC17_ASSERT(history_bits <= table_bits,
                  "gshare history longer than table index");
}

// ---------------------------------------------------------------------
// TournamentPredictor
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(unsigned table_bits,
                                         unsigned history_bits)
    : bimodal_(table_bits), gshare_(table_bits, history_bits),
      chooser_(std::size_t(1) << table_bits, 2),
      mask_((std::size_t(1) << table_bits) - 1)
{
}

bool
TournamentPredictor::predict(std::uint64_t pc)
{
    const bool use_gshare = chooser_[(pc >> 2) & mask_] >= 2;
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken)
{
    const bool bimodal_right = bimodal_.predict(pc) == taken;
    const bool gshare_right = gshare_.predict(pc) == taken;
    std::uint8_t &choice = chooser_[(pc >> 2) & mask_];
    if (gshare_right != bimodal_right)
        choice = detail::saturateCounter(choice, gshare_right);
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

// ---------------------------------------------------------------------
// TagePredictor
// ---------------------------------------------------------------------

namespace {

/** 3-bit saturating counter step; >= 4 means predict taken. */
std::uint8_t
saturateCounter3(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 7 ? counter + 1 : 7;
    return counter > 0 ? counter - 1 : 0;
}

/** Useful counters age (halve) every this many updates. */
constexpr std::uint64_t kUsefulAgingPeriod = std::uint64_t(1) << 18;

} // namespace

TagePredictor::TagePredictor(const TageConfig &config)
    : config_(config),
      base_(std::size_t(1) << config.baseBits, 1),
      baseMask_((std::size_t(1) << config.baseBits) - 1),
      tableMask_((std::size_t(1) << config.tableBits) - 1),
      tagMask_(static_cast<std::uint16_t>(
          (std::uint32_t(1) << config.tagBits) - 1))
{
    if (config.historyTables == 0)
        SPEC17_FATAL("tage predictor needs at least one history table "
                     "(historyTables == 0)");
    SPEC17_ASSERT(config.tableBits >= 4 && config.tableBits <= 24,
                  "tage table bits out of sane range");
    SPEC17_ASSERT(config.baseBits >= 4 && config.baseBits <= 24,
                  "tage base table bits out of sane range");
    SPEC17_ASSERT(config.tagBits >= 4 && config.tagBits <= 15,
                  "tage tag bits out of sane range");
    SPEC17_ASSERT(config.minHistory >= 1 &&
                      config.minHistory <= config.maxHistory &&
                      config.maxHistory <= 64,
                  "tage history lengths out of sane range");

    // Geometric history series: L(i) = min * (max/min)^(i/(N-1)),
    // rounded, clamped monotonic. With one table, L(0) = minHistory.
    histLen_.resize(config.historyTables);
    const double ratio = config.historyTables > 1
        ? static_cast<double>(config.maxHistory) / config.minHistory
        : 1.0;
    for (unsigned i = 0; i < config.historyTables; ++i) {
        double exponent = config.historyTables > 1
            ? static_cast<double>(i) / (config.historyTables - 1)
            : 0.0;
        double raw = config.minHistory * std::pow(ratio, exponent);
        unsigned len = static_cast<unsigned>(raw + 0.5);
        if (i > 0 && len <= histLen_[i - 1])
            len = histLen_[i - 1] + 1;
        histLen_[i] = len < 64 ? len : 64;
    }

    tables_.assign(config.historyTables,
                   std::vector<Entry>(std::size_t(1) << config.tableBits));
}

unsigned
TagePredictor::historyLength(unsigned table) const
{
    SPEC17_ASSERT(table < histLen_.size(), "tage table out of range");
    return histLen_[table];
}

std::uint64_t
TagePredictor::fold(std::uint64_t value, unsigned bits)
{
    if (bits >= 64)
        return value;
    const std::uint64_t mask = (std::uint64_t(1) << bits) - 1;
    std::uint64_t folded = 0;
    while (value) {
        folded ^= value & mask;
        value >>= bits;
    }
    return folded;
}

std::size_t
TagePredictor::index(unsigned table, std::uint64_t pc) const
{
    const unsigned len = histLen_[table];
    const std::uint64_t hist = len >= 64
        ? history_
        : history_ & ((std::uint64_t(1) << len) - 1);
    const std::uint64_t addr = pc >> 2;
    return (fold(hist, config_.tableBits) ^ addr ^ (addr >> (table + 1)))
        & tableMask_;
}

std::uint16_t
TagePredictor::tagOf(unsigned table, std::uint64_t pc) const
{
    const unsigned len = histLen_[table];
    const std::uint64_t hist = len >= 64
        ? history_
        : history_ & ((std::uint64_t(1) << len) - 1);
    const std::uint64_t addr = pc >> 2;
    // A different mix than index() so entries that collide on the
    // index still disambiguate on the tag (and vice versa).
    return static_cast<std::uint16_t>(
        (fold(hist, config_.tagBits) ^ addr ^ (addr >> 5)) & tagMask_);
}

TagePredictor::Lookup
TagePredictor::lookup(std::uint64_t pc) const
{
    Lookup l;
    // Scan from the longest history down: the first tag match is the
    // provider, the next one the alternate.
    for (int t = static_cast<int>(config_.historyTables) - 1; t >= 0;
         --t) {
        const std::size_t idx = index(static_cast<unsigned>(t), pc);
        const Entry &e = tables_[static_cast<std::size_t>(t)][idx];
        if (!e.valid || e.tag != tagOf(static_cast<unsigned>(t), pc))
            continue;
        if (l.provider < 0) {
            l.provider = t;
            l.providerIndex = idx;
            l.providerPred = e.ctr >= 4;
        } else {
            l.alt = t;
            l.altIndex = idx;
            l.altPred = e.ctr >= 4;
            break;
        }
    }
    const bool base_pred = base_[(pc >> 2) & baseMask_] >= 2;
    if (l.provider < 0) {
        l.pred = base_pred;
    } else {
        if (l.alt < 0)
            l.altPred = base_pred;
        l.pred = l.providerPred;
    }
    return l;
}

void
TagePredictor::train(const Lookup &l, std::uint64_t pc, bool taken)
{
    const bool mispredicted = l.pred != taken;

    if (l.provider >= 0) {
        Entry &p = tables_[static_cast<std::size_t>(l.provider)]
                          [l.providerIndex];
        // The useful counter only learns when provider and alternate
        // disagree -- that is when the provider entry carried signal.
        if (l.providerPred != l.altPred) {
            if (l.providerPred == taken) {
                if (p.useful < 3)
                    ++p.useful;
            } else if (p.useful > 0) {
                --p.useful;
            }
        }
        p.ctr = saturateCounter3(p.ctr, taken);
    } else {
        std::uint8_t &counter = base_[(pc >> 2) & baseMask_];
        counter = detail::saturateCounter(counter, taken);
    }

    // Allocation on mispredict: claim the first un-useful entry in a
    // longer-history table (deterministic: shortest candidate wins);
    // when every candidate is defended, age them all by one instead.
    if (mispredicted) {
        bool allocated = false;
        for (unsigned t = static_cast<unsigned>(l.provider + 1);
             t < config_.historyTables && !allocated; ++t) {
            Entry &e = tables_[t][index(t, pc)];
            if (e.useful == 0) {
                e.valid = 1;
                e.tag = tagOf(t, pc);
                e.ctr = taken ? 4 : 3;
                e.useful = 0;
                allocated = true;
            }
        }
        if (!allocated) {
            for (unsigned t = static_cast<unsigned>(l.provider + 1);
                 t < config_.historyTables; ++t) {
                Entry &e = tables_[t][index(t, pc)];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    // Periodic aging keeps stale useful bits from pinning the tables.
    if ((++updates_ & (kUsefulAgingPeriod - 1)) == 0) {
        for (auto &table : tables_)
            for (Entry &e : table)
                e.useful >>= 1;
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
}

bool
TagePredictor::predict(std::uint64_t pc)
{
    return lookup(pc).pred;
}

void
TagePredictor::update(std::uint64_t pc, bool taken)
{
    // Recomputes the lookup predict() just did; state is unchanged in
    // between, so the fused predictAndUpdate() below is exactly this
    // two-call sequence with the lookup hoisted.
    train(lookup(pc), pc, taken);
}

bool
TagePredictor::predictAndUpdate(std::uint64_t pc, bool taken)
{
    const Lookup l = lookup(pc);
    train(l, pc, taken);
    return l.pred;
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &name)
{
    return makeDirectionPredictor(name, TageConfig());
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &name, const TageConfig &tage)
{
    if (name == "static-taken")
        return std::make_unique<StaticTakenPredictor>();
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>();
    if (name == "tournament")
        return std::make_unique<TournamentPredictor>();
    if (name == "tage")
        return std::make_unique<TagePredictor>(tage);
    SPEC17_FATAL("unknown direction predictor '", name,
                 "' (want static-taken|bimodal|gshare|tournament|tage)");
}

// ---------------------------------------------------------------------
// BranchUnit
// ---------------------------------------------------------------------

double
BranchStats::mispredictRate() const
{
    return executed ? static_cast<double>(mispredicted)
            / static_cast<double>(executed)
                    : 0.0;
}

BranchUnit::BranchUnit(std::unique_ptr<DirectionPredictor> direction,
                       unsigned btb_bits)
    : direction_(std::move(direction)),
      tournament_(dynamic_cast<TournamentPredictor *>(direction_.get())),
      tage_(dynamic_cast<TagePredictor *>(direction_.get())),
      btb_(std::size_t(1) << btb_bits, 0),
      btbMask_((std::size_t(1) << btb_bits) - 1)
{
    SPEC17_ASSERT(direction_ != nullptr, "BranchUnit needs a predictor");
}

const BranchStats &
BranchUnit::byKind(isa::BranchKind kind) const
{
    return perKind_[static_cast<std::size_t>(kind)];
}

bool
BranchUnit::execute(const isa::MicroOp &op)
{
    SPEC17_ASSERT(op.isBranch(), "BranchUnit fed a non-branch op");
    return execute(op.branch, op.pc, op.taken, op.target);
}

bool
BranchUnit::predictUpdateSlow(std::uint64_t pc, bool taken)
{
    const bool predicted = direction_->predict(pc);
    direction_->update(pc, taken);
    return predicted;
}

} // namespace sim
} // namespace spec17
