#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

std::string
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::TreePlru: return "tree-plru";
      case ReplacementPolicy::Random: return "random";
    }
    SPEC17_PANIC("unknown ReplacementPolicy");
}

std::string
wayPredictorName(WayPredictor kind)
{
    switch (kind) {
      case WayPredictor::None: return "none";
      case WayPredictor::Mru: return "mru";
      case WayPredictor::Utag: return "utag";
    }
    SPEC17_PANIC("unknown WayPredictor");
}

WayPredictor
wayPredictorFromName(const std::string &name)
{
    if (name == "none")
        return WayPredictor::None;
    if (name == "mru")
        return WayPredictor::Mru;
    if (name == "utag")
        return WayPredictor::Utag;
    SPEC17_FATAL("unknown way predictor '", name,
                 "' (want none|mru|utag)");
}

std::uint64_t
CacheConfig::numSets() const
{
    SPEC17_ASSERT(lineBytes > 0 && (lineBytes & (lineBytes - 1)) == 0,
                  name, ": line size must be a power of two");
    SPEC17_ASSERT(assoc > 0, name, ": associativity must be positive");
    SPEC17_ASSERT(sizeBytes % (static_cast<std::uint64_t>(assoc)
                               * lineBytes) == 0,
                  name, ": size not divisible by assoc * line");
    // Non-power-of-two set counts are allowed (the 30 MB 20-way L3
    // has 24576 sets); indexing falls back to modulo for them.
    return sizeBytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
}

double
CacheStats::missRate() const
{
    const std::uint64_t total = accesses();
    return total ? static_cast<double>(misses)
            / static_cast<double>(total)
                 : 0.0;
}

double
CacheContextStats::missRate() const
{
    const std::uint64_t total = accesses();
    return total ? static_cast<double>(misses)
            / static_cast<double>(total)
                 : 0.0;
}

SetAssocCache::SetAssocCache(CacheConfig config, std::uint64_t seed,
                             SetAssocCache *recycle, bool recycle_dirty)
    : config_(std::move(config)), numSets_(config_.numSets()),
      lineShift_(static_cast<unsigned>(
          std::countr_zero(config_.lineBytes))),
      setShift_(static_cast<unsigned>(std::countr_zero(numSets_))),
      setOdd_(numSets_ >> setShift_),
      setLowMask_((std::uint64_t{1} << setShift_) - 1),
      wayPred_(config_.wayPredictor),
      rng_(deriveSeed(seed, config_.name))
{
    if (recycle != nullptr) {
        // Adopt the dead cache's heap buffers. Every lane is assigned
        // its fresh-construction image below, so only warm pages are
        // inherited, never state.
        tags_ = std::move(recycle->tags_);
        dirty_ = std::move(recycle->dirty_);
        stamps_ = std::move(recycle->stamps_);
        utags_ = std::move(recycle->utags_);
        prefetchOwner_ = std::move(recycle->prefetchOwner_);
        plruBits_ = std::move(recycle->plruBits_);
        mruWay_ = std::move(recycle->mruWay_);
    }
    if (config_.policy == ReplacementPolicy::TreePlru)
        SPEC17_ASSERT((config_.assoc & (config_.assoc - 1)) == 0,
                      config_.name,
                      ": tree-PLRU requires power-of-two ways");
    if (wayPred_ != WayPredictor::None && config_.assoc < 2)
        SPEC17_FATAL(config_.name, ": way prediction (",
                     wayPredictorName(wayPred_),
                     ") is contradictory with assoc == 1 -- a "
                     "direct-mapped cache has nothing to predict");

    const std::size_t lanes =
        static_cast<std::size_t>(numSets_) * config_.assoc;
    if (recycle_dirty) {
        // The caller promised an immediate full-state copy-assign, so
        // only lane *sizes* matter: resize touches nothing when the
        // donor's geometry matches and writes only the grown tail
        // otherwise. The fresh-construction reset below would memset
        // the same megabytes operator= is about to overwrite.
        tags_.resize(lanes);
        dirty_.resize(lanes);
        stamps_.resize(lanes);
        prefetchOwner_.clear();
        plruBits_.resize(config_.policy == ReplacementPolicy::TreePlru
                             ? numSets_ * (config_.assoc - 1)
                             : 0);
        mruWay_.resize(wayPred_ == WayPredictor::Mru ? numSets_ : 0);
        utags_.resize(wayPred_ == WayPredictor::Utag ? lanes : 0);
        return;
    }
    tags_.assign(lanes, kNoTag);
    dirty_.assign(lanes, 0);
    stamps_.assign(lanes, 0);
    utags_.clear();
    prefetchOwner_.clear();
    plruBits_.clear();
    mruWay_.clear();
    if (config_.policy == ReplacementPolicy::TreePlru)
        plruBits_.assign(numSets_ * (config_.assoc - 1), 0);
    if (wayPred_ == WayPredictor::Mru)
        mruWay_.assign(numSets_, 0);
    else if (wayPred_ == WayPredictor::Utag)
        utags_.assign(lanes, 0);
}

void
SetAssocCache::enablePrefetchTracking()
{
    SPEC17_ASSERT(stats_.accesses() == 0 && stats_.prefetchFills == 0,
                  config_.name,
                  ": enable prefetch tracking before the first access");
    trackPrefetch_ = true;
    prefetchOwner_.assign(tags_.size(), 0);
}

void
SetAssocCache::enableContextTracking(unsigned num_contexts)
{
    SPEC17_ASSERT(!trackContexts_,
                  config_.name, ": context tracking already enabled");
    SPEC17_ASSERT(num_contexts >= 1 && num_contexts <= kMaxContexts,
                  config_.name, ": context count ", num_contexts,
                  " out of range [1, ", kMaxContexts, "]");
    SPEC17_ASSERT(config_.assoc <= 32,
                  config_.name,
                  ": way masks need assoc <= 32, have ", config_.assoc);
    SPEC17_ASSERT(stats_.accesses() == 0 && stats_.prefetchFills == 0,
                  config_.name,
                  ": enable context tracking before the first access");
    trackContexts_ = true;
    ctx_ = 0;
    ctxStats_.assign(num_contexts, CacheContextStats());
    ctxOccupancy_.assign(num_contexts, 0);
    ctxMasks_.assign(num_contexts, fullWayMask());
    owner_.assign(tags_.size(), 0);
    maskedAlloc_ = false;
}

void
SetAssocCache::setContext(unsigned ctx)
{
    if (!trackContexts_) {
        SPEC17_ASSERT(ctx == 0, config_.name,
                      ": context ", ctx,
                      " selected without context tracking");
        return;
    }
    SPEC17_ASSERT(ctx < ctxStats_.size(), config_.name, ": context ",
                  ctx, " out of range (", ctxStats_.size(),
                  " contexts)");
    ctx_ = ctx;
}

void
SetAssocCache::setWayMask(unsigned ctx, std::uint32_t mask)
{
    SPEC17_ASSERT(trackContexts_, config_.name,
                  ": way masks need context tracking enabled");
    SPEC17_ASSERT(ctx < ctxStats_.size(), config_.name, ": context ",
                  ctx, " out of range (", ctxStats_.size(),
                  " contexts)");
    SPEC17_ASSERT(mask != 0, config_.name, ": context ", ctx,
                  " way mask must name at least one way");
    SPEC17_ASSERT((mask & ~fullWayMask()) == 0, config_.name,
                  ": context ", ctx, " way mask 0x", std::hex, mask,
                  std::dec, " names ways beyond the ", config_.assoc,
                  "-way associativity");
    ctxMasks_[ctx] = mask;
    maskedAlloc_ = false;
    for (const std::uint32_t m : ctxMasks_)
        maskedAlloc_ |= m != fullWayMask();
}

std::uint32_t
SetAssocCache::wayMask(unsigned ctx) const
{
    SPEC17_ASSERT(ctx < ctxMasks_.size(), config_.name, ": context ",
                  ctx, " out of range (", ctxMasks_.size(),
                  " contexts)");
    return ctxMasks_[ctx];
}

const CacheContextStats &
SetAssocCache::contextStats(unsigned ctx) const
{
    SPEC17_ASSERT(ctx < ctxStats_.size(), config_.name, ": context ",
                  ctx, " out of range (", ctxStats_.size(),
                  " contexts)");
    return ctxStats_[ctx];
}

std::uint64_t
SetAssocCache::contextOccupancy(unsigned ctx) const
{
    SPEC17_ASSERT(ctx < ctxOccupancy_.size(), config_.name,
                  ": context ", ctx, " out of range (",
                  ctxOccupancy_.size(), " contexts)");
    return ctxOccupancy_[ctx];
}

std::uint64_t
SetAssocCache::lineAddr(std::uint64_t addr) const
{
    return addr / config_.lineBytes;
}

std::uint64_t
SetAssocCache::setIndex(std::uint64_t line_addr) const
{
    if ((numSets_ & (numSets_ - 1)) == 0)
        return line_addr & (numSets_ - 1);
    return line_addr % numSets_;
}

std::uint64_t
SetAssocCache::tagOf(std::uint64_t line_addr) const
{
    return line_addr / numSets_;
}

std::size_t
SetAssocCache::findIndex(std::uint64_t addr) const
{
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = setIndex(la);
    const std::uint64_t tag = tagOf(la);
    const std::size_t base = set * config_.assoc;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (tags_[base + way] == tag)
            return base + way;
    }
    return SIZE_MAX;
}

void
SetAssocCache::touch(std::uint64_t set, unsigned way)
{
    touchImpl(set, way);
}

void
SetAssocCache::plruTouch(std::uint64_t set, unsigned way)
{
    // Walk root-to-leaf, pointing each node away from this way.
    std::uint8_t *bits = &plruBits_[set * (config_.assoc - 1)];
    unsigned node = 0;
    unsigned lo = 0, hi = config_.assoc;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        if (way < mid) {
            bits[node] = 1; // protect left, point victim right
            node = 2 * node + 1;
            hi = mid;
        } else {
            bits[node] = 0; // protect right, point victim left
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

unsigned
SetAssocCache::victimWay(std::uint64_t set)
{
    const std::size_t base = set * config_.assoc;
    // Invalid ways are always preferred victims.
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (tags_[base + way] == kNoTag)
            return way;
    }
    switch (config_.policy) {
      case ReplacementPolicy::Lru: {
        unsigned victim = 0;
        for (unsigned way = 1; way < config_.assoc; ++way) {
            if (stamps_[base + way] < stamps_[base + victim])
                victim = way;
        }
        return victim;
      }
      case ReplacementPolicy::TreePlru: {
        const std::uint8_t *bits = &plruBits_[set * (config_.assoc - 1)];
        unsigned node = 0;
        unsigned lo = 0, hi = config_.assoc;
        while (hi - lo > 1) {
            const unsigned mid = (lo + hi) / 2;
            if (bits[node] == 0) { // victim pointer: left
                node = 2 * node + 1;
                hi = mid;
            } else {
                node = 2 * node + 2;
                lo = mid;
            }
        }
        return lo;
      }
      case ReplacementPolicy::Random:
        return static_cast<unsigned>(rng_.nextBounded(config_.assoc));
    }
    SPEC17_PANIC("unknown ReplacementPolicy");
}

unsigned
SetAssocCache::victimWayMasked(std::uint64_t set)
{
    const std::uint32_t mask = ctxMasks_[ctx_];
    const std::size_t base = set * config_.assoc;
    // Invalid allowed ways are always preferred victims, in the same
    // way order the unmasked scan uses.
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if ((mask >> way & 1u) && tags_[base + way] == kNoTag)
            return way;
    }
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::TreePlru: {
        // Tree-PLRU's victim pointer can walk outside a partial mask,
        // so under masks both recency policies pick the oldest stamp
        // among the allowed ways (stamps are maintained for every
        // policy). This is the documented partial-mask deviation:
        // with the full mask the unmasked victimWay() path runs and
        // tree-PLRU keeps its exact pointer-chase behaviour.
        unsigned victim = config_.assoc;
        for (unsigned way = 0; way < config_.assoc; ++way) {
            if (!(mask >> way & 1u))
                continue;
            if (victim == config_.assoc
                || stamps_[base + way] < stamps_[base + victim])
                victim = way;
        }
        SPEC17_ASSERT(victim < config_.assoc, config_.name,
                      ": empty way mask reached victim selection");
        return victim;
      }
      case ReplacementPolicy::Random: {
        const unsigned allowed = static_cast<unsigned>(
            std::popcount(mask));
        unsigned pick =
            static_cast<unsigned>(rng_.nextBounded(allowed));
        for (unsigned way = 0; way < config_.assoc; ++way) {
            if (!(mask >> way & 1u))
                continue;
            if (pick == 0)
                return way;
            --pick;
        }
        SPEC17_PANIC(config_.name,
                     ": masked random victim ran past the mask");
      }
    }
    SPEC17_PANIC("unknown ReplacementPolicy");
}

std::size_t
SetAssocCache::allocate(std::uint64_t addr)
{
    const std::uint64_t la = lineAddr(addr);
    return allocateInto(setIndex(la), tagOf(la));
}

std::size_t
SetAssocCache::allocateInto(std::uint64_t set, std::uint64_t tag)
{
    SPEC17_ASSERT(tag != kNoTag, config_.name,
                  ": tag collides with the invalid-way sentinel");
    const unsigned way =
        maskedAlloc_ ? victimWayMasked(set) : victimWay(set);
    const std::size_t index = set * config_.assoc + way;
    if (tags_[index] != kNoTag) {
        ++stats_.evictions;
        if (dirty_[index])
            ++stats_.writebacks;
        if (trackContexts_) {
            CacheContextStats &mine = ctxStats_[ctx_];
            ++mine.evictions;
            if (dirty_[index])
                ++mine.writebacks;
            const unsigned prev = owner_[index];
            --ctxOccupancy_[prev];
            if (prev != ctx_) {
                ++mine.evictionsInflicted;
                ++ctxStats_[prev].evictionsSuffered;
            }
        }
    }
    if (trackContexts_) {
        owner_[index] = static_cast<std::uint8_t>(ctx_);
        ++ctxOccupancy_[ctx_];
    }
    tags_[index] = tag;
    dirty_[index] = 0;
    if (wayPred_ == WayPredictor::Utag)
        utags_[index] = utagOf(tag);
    if (trackPrefetch_)
        prefetchOwner_[index] = 0;  // demand allocation by default
    touch(set, way);
    return index;
}

bool
SetAssocCache::access(std::uint64_t addr, bool is_write)
{
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = setIndex(la);
    const std::uint64_t tag = tagOf(la);
    const std::size_t base = set * config_.assoc;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (tags_[base + way] == tag) {
            ++stats_.hits;
            if (trackContexts_)
                ++ctxStats_[ctx_].hits;
            if (wayPred_ != WayPredictor::None) {
                if (is_write)
                    lastWayPenalty_ = 0;
                else
                    notePrediction(set, base, way);
            }
            if (trackPrefetch_)
                notePrefetchHit(base + way);
            dirty_[base + way] |= is_write;
            touch(set, way);
            return true;
        }
    }
    ++stats_.misses;
    if (trackContexts_)
        ++ctxStats_[ctx_].misses;
    if (wayPred_ != WayPredictor::None)
        lastWayPenalty_ = 0;
    const std::size_t index = allocateInto(set, tag);
    if (is_write)
        dirty_[index] = true;
    return false;
}

bool
SetAssocCache::probe(std::uint64_t addr) const
{
    return findIndex(addr) != SIZE_MAX;
}

void
SetAssocCache::fill(std::uint64_t addr, unsigned owner)
{
    ++stats_.prefetchFills;
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = setIndex(la);
    const std::uint64_t tag = tagOf(la);
    const std::size_t base = set * config_.assoc;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (tags_[base + way] == tag) {
            touch(set, way);
            return;
        }
    }
    const std::size_t index = allocate(addr);
    if (trackPrefetch_)
        prefetchOwner_[index] = static_cast<std::uint8_t>(owner);
}

void
SetAssocCache::flushAll()
{
    tags_.assign(tags_.size(), kNoTag);
    dirty_.assign(dirty_.size(), 0);
    stamps_.assign(stamps_.size(), 0);
    if (!plruBits_.empty())
        plruBits_.assign(plruBits_.size(), 0);
    if (!utags_.empty())
        utags_.assign(utags_.size(), 0);
    if (!mruWay_.empty())
        mruWay_.assign(mruWay_.size(), 0);
    if (trackPrefetch_)
        prefetchOwner_.assign(prefetchOwner_.size(), 0);
    lastWayPenalty_ = 0;
    if (trackContexts_) {
        ctxOccupancy_.assign(ctxOccupancy_.size(), 0);
        owner_.assign(owner_.size(), 0);
    }
}

} // namespace sim
} // namespace spec17
