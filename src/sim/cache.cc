#include "sim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

std::string
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::TreePlru: return "tree-plru";
      case ReplacementPolicy::Random: return "random";
    }
    SPEC17_PANIC("unknown ReplacementPolicy");
}

std::uint64_t
CacheConfig::numSets() const
{
    SPEC17_ASSERT(lineBytes > 0 && (lineBytes & (lineBytes - 1)) == 0,
                  name, ": line size must be a power of two");
    SPEC17_ASSERT(assoc > 0, name, ": associativity must be positive");
    SPEC17_ASSERT(sizeBytes % (static_cast<std::uint64_t>(assoc)
                               * lineBytes) == 0,
                  name, ": size not divisible by assoc * line");
    // Non-power-of-two set counts are allowed (the 30 MB 20-way L3
    // has 24576 sets); indexing falls back to modulo for them.
    return sizeBytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
}

double
CacheStats::missRate() const
{
    const std::uint64_t total = accesses();
    return total ? static_cast<double>(misses)
            / static_cast<double>(total)
                 : 0.0;
}

SetAssocCache::SetAssocCache(CacheConfig config, std::uint64_t seed)
    : config_(std::move(config)), numSets_(config_.numSets()),
      lineShift_(static_cast<unsigned>(
          std::countr_zero(config_.lineBytes))),
      setShift_(static_cast<unsigned>(std::countr_zero(numSets_))),
      setOdd_(numSets_ >> setShift_),
      setLowMask_((std::uint64_t{1} << setShift_) - 1),
      lines_(numSets_ * config_.assoc),
      rng_(deriveSeed(seed, config_.name))
{
    if (config_.policy == ReplacementPolicy::TreePlru) {
        SPEC17_ASSERT((config_.assoc & (config_.assoc - 1)) == 0,
                      config_.name,
                      ": tree-PLRU requires power-of-two ways");
        plruBits_.assign(numSets_ * (config_.assoc - 1), 0);
    }
}

std::uint64_t
SetAssocCache::lineAddr(std::uint64_t addr) const
{
    return addr / config_.lineBytes;
}

std::uint64_t
SetAssocCache::setIndex(std::uint64_t line_addr) const
{
    if ((numSets_ & (numSets_ - 1)) == 0)
        return line_addr & (numSets_ - 1);
    return line_addr % numSets_;
}

std::uint64_t
SetAssocCache::tagOf(std::uint64_t line_addr) const
{
    return line_addr / numSets_;
}

SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t addr)
{
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = setIndex(la);
    const std::uint64_t tag = tagOf(la);
    Line *base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return &base[way];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

void
SetAssocCache::touch(std::uint64_t set, unsigned way)
{
    touchImpl(set, way);
}

void
SetAssocCache::plruTouch(std::uint64_t set, unsigned way)
{
    // Walk root-to-leaf, pointing each node away from this way.
    std::uint8_t *bits = &plruBits_[set * (config_.assoc - 1)];
    unsigned node = 0;
    unsigned lo = 0, hi = config_.assoc;
    while (hi - lo > 1) {
        const unsigned mid = (lo + hi) / 2;
        if (way < mid) {
            bits[node] = 1; // protect left, point victim right
            node = 2 * node + 1;
            hi = mid;
        } else {
            bits[node] = 0; // protect right, point victim left
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

unsigned
SetAssocCache::victimWay(std::uint64_t set)
{
    Line *base = &lines_[set * config_.assoc];
    // Invalid ways are always preferred victims.
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (!base[way].valid)
            return way;
    }
    switch (config_.policy) {
      case ReplacementPolicy::Lru: {
        unsigned victim = 0;
        for (unsigned way = 1; way < config_.assoc; ++way) {
            if (base[way].lruStamp < base[victim].lruStamp)
                victim = way;
        }
        return victim;
      }
      case ReplacementPolicy::TreePlru: {
        const std::uint8_t *bits = &plruBits_[set * (config_.assoc - 1)];
        unsigned node = 0;
        unsigned lo = 0, hi = config_.assoc;
        while (hi - lo > 1) {
            const unsigned mid = (lo + hi) / 2;
            if (bits[node] == 0) { // victim pointer: left
                node = 2 * node + 1;
                hi = mid;
            } else {
                node = 2 * node + 2;
                lo = mid;
            }
        }
        return lo;
      }
      case ReplacementPolicy::Random:
        return static_cast<unsigned>(rng_.nextBounded(config_.assoc));
    }
    SPEC17_PANIC("unknown ReplacementPolicy");
}

void
SetAssocCache::allocate(std::uint64_t addr)
{
    const std::uint64_t la = lineAddr(addr);
    allocateInto(setIndex(la), tagOf(la));
}

SetAssocCache::Line &
SetAssocCache::allocateInto(std::uint64_t set, std::uint64_t tag)
{
    const unsigned way = victimWay(set);
    Line &line = lines_[set * config_.assoc + way];
    if (line.valid) {
        ++stats_.evictions;
        if (line.dirty)
            ++stats_.writebacks;
    }
    line.valid = true;
    line.dirty = false;
    line.tag = tag;
    touch(set, way);
    return line;
}

bool
SetAssocCache::access(std::uint64_t addr, bool is_write)
{
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = setIndex(la);
    const std::uint64_t tag = tagOf(la);
    Line *base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            ++stats_.hits;
            line.dirty |= is_write;
            touch(set, way);
            return true;
        }
    }
    ++stats_.misses;
    allocate(addr);
    if (is_write)
        findLine(addr)->dirty = true;
    return false;
}

bool
SetAssocCache::probe(std::uint64_t addr) const
{
    return findLine(addr) != nullptr;
}

void
SetAssocCache::fill(std::uint64_t addr)
{
    ++stats_.prefetchFills;
    const std::uint64_t la = lineAddr(addr);
    const std::uint64_t set = setIndex(la);
    const std::uint64_t tag = tagOf(la);
    Line *base = &lines_[set * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag) {
            touch(set, way);
            return;
        }
    }
    allocate(addr);
}

void
SetAssocCache::flushAll()
{
    for (Line &line : lines_)
        line = Line();
    if (!plruBits_.empty())
        plruBits_.assign(plruBits_.size(), 0);
}

} // namespace sim
} // namespace spec17
