/**
 * @file
 * Three-level cache hierarchy matching the paper's Table I machine:
 * split 32 KB L1I/L1D, unified 256 KB L2 (all private), and a 30 MB
 * L3 that can be shared between cores in the multicore simulator.
 */

#ifndef SPEC17_SIM_HIERARCHY_HH_
#define SPEC17_SIM_HIERARCHY_HH_

#include <memory>

#include "sim/cache.hh"
#include "sim/prefetch.hh"

namespace spec17 {
namespace sim {

/** The level that served an access. */
enum class HitLevel : std::uint8_t
{
    L1,
    L2,
    L3,
    Memory,
};

/** Human-readable level name. */
std::string hitLevelName(HitLevel level);

/** Geometry and latency parameters of the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 8, 64, ReplacementPolicy::Lru, 1};
    CacheConfig l1d{"l1d", 32 * 1024, 8, 64, ReplacementPolicy::Lru, 4};
    CacheConfig l2{"l2", 256 * 1024, 8, 64, ReplacementPolicy::Lru, 12};
    CacheConfig l3{"l3", 30 * 1024 * 1024, 20, 64,
                   ReplacementPolicy::Lru, 38};
    /** Main-memory load-to-use latency in core cycles. */
    unsigned memLatency = 210;
    /** L1D-side prefetcher: "none", "next-line", "stride" or
     *  "stream"; fills L1D and L2. */
    std::string prefetcher = "none";
    /** L2-side prefetcher trained on L1D-miss traffic (same names);
     *  fills L2 only, so the L1 same-line memo stays legal. */
    std::string l2Prefetcher = "none";
    /** Stream-prefetcher degree (lines issued per trained
     *  observation), for both prefetcher slots. */
    unsigned streamDegree = 4;
    /** Stream-prefetcher distance (lines of lookahead / matching
     *  window), for both prefetcher slots. */
    unsigned streamDistance = 16;
};

/**
 * One core's view of the memory system. The L3 is held by
 * shared_ptr so several CacheHierarchy instances (one per simulated
 * core) can share a single last-level cache.
 */
class CacheHierarchy
{
  public:
    /**
     * @param config geometry; @p shared_l3 lets multiple hierarchies
     *        share one L3 (pass nullptr to get a private L3).
     * @param seed randomness seed for random-replacement policies.
     * @param recycle optional dead hierarchy whose cache buffers the
     *        new one adopts (see SetAssocCache's recycle parameter;
     *        state is never inherited). The donor's L3 buffers are
     *        only adopted when both hierarchies own a private L3.
     * @param recycle_dirty construct the caches with unreset lanes
     *        (SetAssocCache's recycle_dirty); the caller PROMISES an
     *        immediate copyStateFrom() before any access. Requires a
     *        private L3 (copyStateFrom does too).
     */
    explicit CacheHierarchy(const HierarchyConfig &config,
                            std::shared_ptr<SetAssocCache> shared_l3
                            = nullptr,
                            std::uint64_t seed = 0,
                            CacheHierarchy *recycle = nullptr,
                            bool recycle_dirty = false);

    /** Builds an L3 suitable for sharing across hierarchies. */
    static std::shared_ptr<SetAssocCache> makeSharedL3(
        const HierarchyConfig &config, std::uint64_t seed = 0,
        SetAssocCache *recycle = nullptr, bool recycle_dirty = false);

    /**
     * Copy-assigns the four caches' complete state (lines, recency,
     * stats, RNG) from @p other, which must have the identical
     * HierarchyConfig and a private L3. The prefetchers are NOT
     * copied -- both hierarchies must still be pristine (pre-demand
     * traffic), which is exactly the multi-point fan-out use: one
     * group leader pays the steady-state prefill, siblings with the
     * same hierarchy geometry clone it instead of re-filling.
     */
    void copyStateFrom(const CacheHierarchy &other);

    /**
     * Demand data access.
     * @param addr byte address; @p is_write true for stores.
     * @param pc accessing instruction (trains stride prefetchers).
     * @return the level that supplied the line.
     */
    HitLevel accessData(std::uint64_t addr, bool is_write,
                        std::uint64_t pc = 0);

    /** Instruction fetch access. */
    HitLevel accessInst(std::uint64_t addr);

    /** @name Division-free cascade (batched simulator lane)
     *  Same levels, same order, same prefetcher hook and same stats
     *  as accessData()/accessInst(), built on
     *  SetAssocCache::accessFast; see docs/performance.md. */
    /// @{
    HitLevel accessDataFast(std::uint64_t addr, bool is_write,
                            std::uint64_t pc = 0)
    {
        HitLevel level;
        if (l1d_->accessFast(addr, is_write))
            level = HitLevel::L1;
        else if (l2_->accessFast(addr, is_write))
            level = HitLevel::L2;
        else if (l3_->accessFast(addr, is_write))
            level = HitLevel::L3;
        else
            level = HitLevel::Memory;
        if (prefetcher_ && !is_write)
            observePrefetcher(pc, addr, level);
        if (l2Prefetcher_ && !is_write && level != HitLevel::L1)
            observeL2Prefetcher(pc, addr, level);
        return level;
    }

    HitLevel accessInstFast(std::uint64_t addr)
    {
        if (l1i_->accessFast(addr, false))
            return HitLevel::L1;
        if (l2_->accessFast(addr, false))
            return HitLevel::L2;
        if (l3_->accessFast(addr, false))
            return HitLevel::L3;
        return HitLevel::Memory;
    }
    /// @}

    /**
     * Installs one line at @p addr into the caches from L3 up to
     * @p level (L3 always; L2 when level <= L2; L1D when level ==
     * L1), without demand statistics.
     */
    void fillTo(std::uint64_t addr, HitLevel level);

    /** Load-to-use latency for a hit at @p level. */
    unsigned latencyOf(HitLevel level) const;

    /** @name Bulk hit crediting (batched simulator lane)
     *  Stat-only credit for accesses the caller proved are repeat L1
     *  hits with unchanged replacement state; see
     *  SetAssocCache::creditHits for the exact legality condition. */
    /// @{
    void creditInstHits(std::uint64_t n) { l1i_->creditHits(n); }
    void creditDataHits(std::uint64_t n) { l1d_->creditHits(n); }
    /** Way-prediction credit for memo-skipped load repeats (MRU
     *  only; see SetAssocCache::creditWayPredictions). */
    void creditDataWayPredictions(std::uint64_t n)
    {
        l1d_->creditWayPredictions(n);
    }
    /// @}

    /** Selects the shared-L3 context this hierarchy's accesses are
     *  attributed to (no-op for a private, untracked L3). Called by
     *  the simulator before every stepped chunk, because siblings
     *  sharing the L3 move the cache's active context between
     *  interleaved chunks. */
    void setL3Context(unsigned ctx) { l3_->setContext(ctx); }

    const SetAssocCache &l1i() const { return *l1i_; }
    const SetAssocCache &l1d() const { return *l1d_; }
    const SetAssocCache &l2() const { return *l2_; }
    const SetAssocCache &l3() const { return *l3_; }
    const Prefetcher *prefetcher() const { return prefetcher_.get(); }
    const Prefetcher *l2Prefetcher() const
    {
        return l2Prefetcher_.get();
    }

    /** @name Way-prediction latency (L1D)
     *  Extra cycles the most recent demand data access paid for a way
     *  misprediction; both simulator lanes fold it into the access
     *  latency. Zero whenever way prediction is off. */
    /// @{
    bool hasWayPrediction() const
    {
        return config_.l1d.wayPredictor != WayPredictor::None;
    }
    unsigned lastDataWayPenalty() const
    {
        return l1d_->lastWayPenalty();
    }
    /// @}

    /** Demand hits that consumed an L1-prefetcher line (at L1D). */
    std::uint64_t prefetcherUseful() const
    {
        return l1d_->stats().prefetchUseful;
    }
    /** Demand hits that consumed an L2-prefetcher line (at L2). */
    std::uint64_t l2PrefetcherUseful() const
    {
        return l2_->stats().prefetchUsefulByL2;
    }

  private:
    /** Fills a prefetched line into L1D and L2 without demand stats. */
    void prefetchFill(std::uint64_t addr);
    /** Trains the prefetcher on a demand load and applies its fills
     *  (the shared tail of accessData and accessDataFast). */
    void observePrefetcher(std::uint64_t pc, std::uint64_t addr,
                           HitLevel level);
    /** As above for the L2 prefetcher: trained on accesses that
     *  missed L1, fills L2 only. */
    void observeL2Prefetcher(std::uint64_t pc, std::uint64_t addr,
                             HitLevel level);

    HierarchyConfig config_;
    std::unique_ptr<SetAssocCache> l1i_;
    std::unique_ptr<SetAssocCache> l1d_;
    std::unique_ptr<SetAssocCache> l2_;
    std::shared_ptr<SetAssocCache> l3_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::unique_ptr<Prefetcher> l2Prefetcher_;
    std::vector<std::uint64_t> prefetchScratch_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_HIERARCHY_HH_
