/**
 * @file
 * Branch prediction: direction predictors (static / bimodal / gshare /
 * tournament), a branch target buffer for indirect jumps, and an
 * idealized return-address stack, composed into a BranchUnit that
 * classifies each dynamic branch as predicted or mispredicted.
 */

#ifndef SPEC17_SIM_BRANCH_HH_
#define SPEC17_SIM_BRANCH_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/uop.hh"

namespace spec17 {
namespace sim {

/** Direction predictor interface for conditional branches. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicted direction for the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Trains on the resolved direction. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Predictor name for reports. */
    virtual std::string name() const = 0;
};

/** Always predicts taken (the paper-era static baseline). */
class StaticTakenPredictor : public DirectionPredictor
{
  public:
    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "static-taken"; }
};

/** Classic per-PC table of 2-bit saturating counters. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param table_bits log2 of the counter-table size. */
    explicit BimodalPredictor(unsigned table_bits = 14);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "bimodal"; }

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

/** Gshare: global history XOR PC indexing into 2-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param table_bits log2 of the counter-table size.
     * @param history_bits global-history length (<= table_bits).
     */
    explicit GsharePredictor(unsigned table_bits = 14,
                             unsigned history_bits = 12);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "gshare"; }

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

/**
 * Tournament predictor (Haswell-flavoured): bimodal and gshare
 * components with a per-PC chooser trained toward whichever component
 * was right.
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(unsigned table_bits = 14,
                                 unsigned history_bits = 12);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "tournament"; }

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
    std::size_t mask_;
};

/** Names accepted by makeDirectionPredictor(). */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    const std::string &name);

/** Per-kind branch statistics kept by the BranchUnit. */
struct BranchStats
{
    std::uint64_t executed = 0;
    std::uint64_t mispredicted = 0;
    /** mispredicted / executed, or 0 if never executed. */
    double mispredictRate() const;
};

/**
 * The full branch-resolution unit: direction prediction for
 * conditionals, a direct-mapped BTB for indirect jump targets, and an
 * idealized return-address stack (returns always predicted, matching
 * the near-perfect RAS of modern cores).
 */
class BranchUnit
{
  public:
    /**
     * @param direction conditional-direction predictor (owned).
     * @param btb_bits log2 of BTB entries for indirect targets.
     */
    explicit BranchUnit(std::unique_ptr<DirectionPredictor> direction,
                        unsigned btb_bits = 12);

    /**
     * Resolves one dynamic branch.
     * @return true when the branch was MISpredicted.
     */
    bool execute(const isa::MicroOp &op);

    const BranchStats &totals() const { return totals_; }
    const BranchStats &byKind(isa::BranchKind kind) const;
    const DirectionPredictor &direction() const { return *direction_; }

  private:
    std::unique_ptr<DirectionPredictor> direction_;
    std::vector<std::uint64_t> btb_;
    std::size_t btbMask_;
    BranchStats totals_;
    BranchStats perKind_[isa::kNumBranchKinds + 1];
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_BRANCH_HH_
