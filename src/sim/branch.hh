/**
 * @file
 * Branch prediction: direction predictors (static / bimodal / gshare /
 * tournament / TAGE), a branch target buffer for indirect jumps, and an
 * idealized return-address stack, composed into a BranchUnit that
 * classifies each dynamic branch as predicted or mispredicted.
 */

#ifndef SPEC17_SIM_BRANCH_HH_
#define SPEC17_SIM_BRANCH_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/uop.hh"
#include "util/logging.hh"

namespace spec17 {
namespace sim {

namespace detail {

/** 2-bit saturating counter step; >= 2 means predict taken. */
inline std::uint8_t
saturateCounter(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace detail

/** Direction predictor interface for conditional branches. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicted direction for the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Trains on the resolved direction. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Predictor name for reports. */
    virtual std::string name() const = 0;
};

/** Always predicts taken (the paper-era static baseline). */
class StaticTakenPredictor : public DirectionPredictor
{
  public:
    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "static-taken"; }
};

/** Classic per-PC table of 2-bit saturating counters. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param table_bits log2 of the counter-table size. */
    explicit BimodalPredictor(unsigned table_bits = 14);

    // Inline (and, on the concrete type, devirtualizable): the
    // tournament predictor consults both component tables on every
    // conditional branch, the hottest single operation in the batched
    // branch pass.
    bool predict(std::uint64_t pc) override
    {
        return table_[index(pc)] >= 2;
    }
    void update(std::uint64_t pc, bool taken) override
    {
        std::uint8_t &counter = table_[index(pc)];
        counter = detail::saturateCounter(counter, taken);
    }
    std::string name() const override { return "bimodal"; }

  private:
    std::size_t index(std::uint64_t pc) const
    {
        return (pc >> 2) & mask_;
    }
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

/** Gshare: global history XOR PC indexing into 2-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param table_bits log2 of the counter-table size.
     * @param history_bits global-history length (<= table_bits).
     */
    explicit GsharePredictor(unsigned table_bits = 14,
                             unsigned history_bits = 12);

    bool predict(std::uint64_t pc) override
    {
        return table_[index(pc)] >= 2;
    }
    void update(std::uint64_t pc, bool taken) override
    {
        std::uint8_t &counter = table_[index(pc)];
        counter = detail::saturateCounter(counter, taken);
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    }
    std::string name() const override { return "gshare"; }

  private:
    std::size_t index(std::uint64_t pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

/**
 * Tournament predictor (Haswell-flavoured): bimodal and gshare
 * components with a per-PC chooser trained toward whichever component
 * was right.
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(unsigned table_bits = 14,
                                 unsigned history_bits = 12);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "tournament"; }

    /**
     * Fused predict() + update() with each component consulted once.
     * predict() followed by update() evaluates bimodal and gshare
     * twice each (once to choose, once to train the chooser) against
     * unchanged state; this computes both component predictions a
     * single time and applies the identical chooser / component /
     * history updates in the identical order, so the table state and
     * return value match the two-call sequence exactly. Inline and
     * concrete: the BranchUnit fast path calls it devirtualized.
     */
    bool
    predictAndUpdate(std::uint64_t pc, bool taken)
    {
        const bool bimodal_taken = bimodal_.predict(pc);
        const bool gshare_taken = gshare_.predict(pc);
        std::uint8_t &choice = chooser_[(pc >> 2) & mask_];
        const bool predicted = choice >= 2 ? gshare_taken
                                           : bimodal_taken;
        const bool bimodal_right = bimodal_taken == taken;
        const bool gshare_right = gshare_taken == taken;
        if (gshare_right != bimodal_right)
            choice = detail::saturateCounter(choice, gshare_right);
        bimodal_.update(pc, taken);
        gshare_.update(pc, taken);
        return predicted;
    }

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
    std::size_t mask_;
};

/**
 * TAGE geometry knobs. Every field is a semantic knob: all of them are
 * printed by SystemConfig::describe() and therefore members of the
 * result-cache config key.
 */
struct TageConfig
{
    /** Number of tagged geometric-history tables (>= 1). */
    unsigned historyTables = 4;
    /** log2 entries per tagged table. */
    unsigned tableBits = 10;
    /** Partial-tag width per tagged entry. */
    unsigned tagBits = 9;
    /** Shortest geometric history length (table 0). */
    unsigned minHistory = 4;
    /** Longest geometric history length (last table, <= 64). */
    unsigned maxHistory = 64;
    /** log2 entries of the base bimodal table. */
    unsigned baseBits = 12;
};

/**
 * TAGE-style direction predictor: a base bimodal table backing a bank
 * of partially-tagged tables indexed by geometrically increasing
 * slices of global history. The longest-history tag match provides
 * the prediction; a per-entry useful counter arbitrates replacement,
 * and mispredictions allocate into a longer-history table whose
 * victim entry has gone un-useful. Deterministic throughout: the
 * allocation victim is the first (shortest-history) candidate and
 * useful counters age on a fixed update-count period.
 */
class TagePredictor : public DirectionPredictor
{
  public:
    explicit TagePredictor(const TageConfig &config = TageConfig());

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "tage"; }

    /**
     * Fused predict() + update() with the table lookup done once.
     * predict() followed by update() performs the identical lookup
     * against unchanged state, so the fused form is provably the same
     * sequence; the BranchUnit fast path calls it devirtualized.
     */
    bool predictAndUpdate(std::uint64_t pc, bool taken);

    /** Geometric history length of tagged table @p table (tests). */
    unsigned historyLength(unsigned table) const;

    const TageConfig &config() const { return config_; }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        std::uint8_t ctr = 0;     // 3-bit: >= 4 predicts taken
        std::uint8_t useful = 0;  // 2-bit replacement guard
        std::uint8_t valid = 0;
    };

    /** One resolved lookup: provider/alternate tables and indices. */
    struct Lookup
    {
        int provider = -1;  // tagged table index, -1 = base table
        int alt = -1;
        std::size_t providerIndex = 0;
        std::size_t altIndex = 0;
        bool providerPred = false;
        bool altPred = false;
        bool pred = false;
    };

    Lookup lookup(std::uint64_t pc) const;
    void train(const Lookup &l, std::uint64_t pc, bool taken);
    std::size_t index(unsigned table, std::uint64_t pc) const;
    std::uint16_t tagOf(unsigned table, std::uint64_t pc) const;
    static std::uint64_t fold(std::uint64_t value, unsigned bits);

    TageConfig config_;
    std::vector<unsigned> histLen_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<std::uint8_t> base_;  // 2-bit counters
    std::size_t baseMask_;
    std::size_t tableMask_;
    std::uint16_t tagMask_;
    std::uint64_t history_ = 0;
    std::uint64_t updates_ = 0;
};

/** Names accepted by makeDirectionPredictor(). */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    const std::string &name);

/** As above, with explicit TAGE geometry for name == "tage". */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    const std::string &name, const TageConfig &tage);

/** Per-kind branch statistics kept by the BranchUnit. */
struct BranchStats
{
    std::uint64_t executed = 0;
    std::uint64_t mispredicted = 0;
    /** mispredicted / executed, or 0 if never executed. */
    double mispredictRate() const;
};

/**
 * The full branch-resolution unit: direction prediction for
 * conditionals, a direct-mapped BTB for indirect jump targets, and an
 * idealized return-address stack (returns always predicted, matching
 * the near-perfect RAS of modern cores).
 */
class BranchUnit
{
  public:
    /**
     * @param direction conditional-direction predictor (owned).
     * @param btb_bits log2 of BTB entries for indirect targets.
     */
    explicit BranchUnit(std::unique_ptr<DirectionPredictor> direction,
                        unsigned btb_bits = 12);

    /**
     * Resolves one dynamic branch.
     * @return true when the branch was MISpredicted.
     */
    bool execute(const isa::MicroOp &op);

    /**
     * Lane form of execute() taking the four MicroOp fields branch
     * resolution reads as scalars (the batched fast lane's branch
     * pass feeds it from SoA lanes). This is the single real body;
     * the MicroOp overload delegates. Inline, with the dominant
     * conditional case devirtualized onto the tournament predictor
     * when that is the configured direction predictor (the cached
     * downcast below): a conditional branch then resolves without a
     * function call or virtual dispatch.
     */
    bool
    execute(isa::BranchKind kind, std::uint64_t pc, bool taken,
            std::uint64_t target)
    {
        bool mispredicted = false;

        switch (kind) {
          case isa::BranchKind::Conditional: {
            const bool predicted = tournament_ != nullptr
                ? tournament_->predictAndUpdate(pc, taken)
                : tage_ != nullptr
                    ? tage_->predictAndUpdate(pc, taken)
                    : predictUpdateSlow(pc, taken);
            mispredicted = predicted != taken;
            break;
          }
          case isa::BranchKind::DirectJump:
          case isa::BranchKind::DirectNearCall:
            // Direct targets are decoded in the front end; treated as
            // always predicted once seen. Model as never mispredicted.
            mispredicted = false;
            break;
          case isa::BranchKind::IndirectJumpNonCallRet: {
            std::uint64_t &entry = btb_[(pc >> 2) & btbMask_];
            mispredicted = entry != target;
            entry = target;
            break;
          }
          case isa::BranchKind::IndirectNearReturn:
            // Idealized return-address stack.
            mispredicted = false;
            break;
          case isa::BranchKind::None:
            SPEC17_PANIC("branch op with BranchKind::None");
        }

        ++totals_.executed;
        totals_.mispredicted += mispredicted;
        BranchStats &ks = perKind_[static_cast<std::size_t>(kind)];
        ++ks.executed;
        ks.mispredicted += mispredicted;
        return mispredicted;
    }

    const BranchStats &totals() const { return totals_; }
    const BranchStats &byKind(isa::BranchKind kind) const;
    const DirectionPredictor &direction() const { return *direction_; }

  private:
    /** Generic predictor path: predict then train, two virtual
     *  dispatches. The tournament fast path above is provably the
     *  same sequence fused (see TournamentPredictor::predictAndUpdate). */
    bool predictUpdateSlow(std::uint64_t pc, bool taken);

    std::unique_ptr<DirectionPredictor> direction_;
    /** direction_ downcast when it is a TournamentPredictor (the
     *  common configuration), else nullptr. */
    TournamentPredictor *tournament_ = nullptr;
    /** direction_ downcast when it is a TagePredictor, else nullptr;
     *  gives the conditional path a direct (non-virtual) fused call. */
    TagePredictor *tage_ = nullptr;
    std::vector<std::uint64_t> btb_;
    std::size_t btbMask_;
    BranchStats totals_;
    BranchStats perKind_[isa::kNumBranchKinds + 1];
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_BRANCH_HH_
