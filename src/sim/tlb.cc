#include "sim/tlb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

void
TlbConfig::validate() const
{
    SPEC17_ASSERT(l1Entries >= 1, "L1 TLB needs entries");
    SPEC17_ASSERT(l2Entries >= l1Entries,
                  "L2 TLB smaller than L1 makes no sense");
    SPEC17_ASSERT(pageBytes >= 64
                      && (pageBytes & (pageBytes - 1)) == 0,
                  "page size must be a power of two >= 64");
}

double
TlbStats::l1MissRate() const
{
    return accesses ? double(l1Misses) / double(accesses) : 0.0;
}

double
TlbStats::walkRate() const
{
    return accesses ? double(walks) / double(accesses) : 0.0;
}

bool
Tlb::Level::lookupAndTouch(std::uint64_t page)
{
    const auto it = std::find(pages.begin(), pages.end(), page);
    if (it == pages.end())
        return false;
    pages.erase(it);
    pages.insert(pages.begin(), page);
    return true;
}

void
Tlb::Level::insert(std::uint64_t page)
{
    pages.insert(pages.begin(), page);
    if (pages.size() > capacity)
        pages.pop_back();
}

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    config_.validate();
    l1_.capacity = config_.l1Entries;
    l2_.capacity = config_.l2Entries;
    l1_.pages.reserve(config_.l1Entries + 1);
    l2_.pages.reserve(config_.l2Entries + 1);
}

TlbOutcome
Tlb::access(std::uint64_t addr)
{
    const std::uint64_t page = addr / config_.pageBytes;
    ++stats_.accesses;

    TlbOutcome outcome;
    if (l1_.lookupAndTouch(page)) {
        outcome.l1Hit = true;
        return outcome;
    }
    ++stats_.l1Misses;
    if (l2_.lookupAndTouch(page)) {
        outcome.l2Hit = true;
        outcome.extraLatency = config_.l2HitLatency;
        l1_.insert(page);
        return outcome;
    }
    ++stats_.walks;
    outcome.extraLatency = config_.walkLatency;
    l2_.insert(page);
    l1_.insert(page);
    return outcome;
}

void
Tlb::flushAll()
{
    l1_.pages.clear();
    l2_.pages.clear();
}

} // namespace sim
} // namespace spec17
