#include "sim/system_config.hh"

#include <sstream>

#include "util/table.hh"

namespace spec17 {
namespace sim {

SystemConfig
SystemConfig::haswellXeonE52650Lv3()
{
    // Defaults in CoreParams and HierarchyConfig already describe the
    // Table I machine; this factory exists to make the intent
    // explicit at call sites and as the single place to adjust if the
    // reference machine ever changes.
    return SystemConfig{};
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << "system configuration (paper Table I analogue)\n";
    os << "  core: " << core.dispatchWidth << "-wide OoO, ROB "
       << core.robSize << ", " << core.numMshrs << " MSHRs, "
       << core.frequencyGHz << " GHz, predictor " << branchPredictor;
    if (branchPredictor == "tage") {
        // TAGE geometry is semantics: every knob lands in the config
        // key through this line.
        os << " (tables " << tage.historyTables << " x 2^"
           << tage.tableBits << ", tag " << tage.tagBits << " b, hist "
           << tage.minHistory << ".." << tage.maxHistory << ", base 2^"
           << tage.baseBits << ")";
    }
    os << "\n";
    auto cache_line = [&](const CacheConfig &c) {
        os << "  " << c.name << ": " << fmtBytes(double(c.sizeBytes))
           << ", " << c.assoc << "-way, " << c.lineBytes << " B lines, "
           << replacementPolicyName(c.policy) << ", hit "
           << c.hitLatency << " cycles";
        if (c.wayPredictor != WayPredictor::None) {
            os << ", way-pred " << wayPredictorName(c.wayPredictor)
               << " (penalty " << c.wayMispredictPenalty << ")";
        }
        os << "\n";
    };
    cache_line(hierarchy.l1i);
    cache_line(hierarchy.l1d);
    cache_line(hierarchy.l2);
    cache_line(hierarchy.l3);
    os << "  memory: " << hierarchy.memLatency << " cycles"
       << ", prefetcher " << hierarchy.prefetcher
       << ", l2-prefetcher " << hierarchy.l2Prefetcher;
    if (hierarchy.prefetcher == "stream"
        || hierarchy.l2Prefetcher == "stream") {
        // Stream knobs are semantics only when a stream prefetcher is
        // attached; printed conditionally so unrelated configs keep
        // their keys.
        os << " (stream degree " << hierarchy.streamDegree
           << ", distance " << hierarchy.streamDistance << ")";
    }
    os << "\n";
    if (enableTlb) {
        os << "  tlb: dtlb " << dtlb.l1Entries << "+" << dtlb.l2Entries
           << " entries, itlb " << itlb.l1Entries << "+"
           << itlb.l2Entries << " entries, walk "
           << dtlb.walkLatency << " cycles\n";
    }
    return os.str();
}

} // namespace sim
} // namespace spec17
