#include "sim/energy.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

using counters::PerfEvent;

void
EnergyParams::validate() const
{
    SPEC17_ASSERT(uopPj >= 0 && l1AccessPj >= 0 && l2AccessPj >= 0
                      && l3AccessPj >= 0 && dramLinePj >= 0
                      && mispredictPj >= 0 && leakageWatts >= 0,
                  "energy coefficients must be non-negative");
    SPEC17_ASSERT(frequencyGHz > 0, "clock must be positive");
}

double
EnergyBreakdown::totalJ() const
{
    return coreDynamicJ + l1J + l2J + l3J + dramJ + mispredictJ
        + staticJ;
}

double
EnergyBreakdown::watts(double seconds) const
{
    return seconds > 0.0 ? totalJ() / seconds : 0.0;
}

double
EnergyBreakdown::epiNj(double instructions) const
{
    return instructions > 0.0 ? totalJ() / instructions * 1e9 : 0.0;
}

double
EnergyBreakdown::edp(double seconds) const
{
    return totalJ() * seconds;
}

EnergyBreakdown
computeEnergy(const counters::CounterSet &counters, double cycles,
              const EnergyParams &params)
{
    params.validate();
    SPEC17_ASSERT(cycles >= 0.0, "negative cycle count");
    auto get = [&](PerfEvent event) {
        return static_cast<double>(counters.get(event));
    };
    constexpr double kPj = 1e-12;

    EnergyBreakdown out;
    out.coreDynamicJ = get(PerfEvent::UopsRetiredAll) * params.uopPj
        * kPj;

    // Every retired op fetches (L1I) and every memory op touches L1D.
    const double l1_accesses = get(PerfEvent::UopsRetiredAll)
        + get(PerfEvent::MemUopsRetiredAllLoads)
        + get(PerfEvent::MemUopsRetiredAllStores);
    out.l1J = l1_accesses * params.l1AccessPj * kPj;
    out.l2J = get(PerfEvent::MemLoadUopsRetiredL1Miss)
        * params.l2AccessPj * kPj;
    out.l3J = get(PerfEvent::MemLoadUopsRetiredL2Miss)
        * params.l3AccessPj * kPj;
    out.dramJ = get(PerfEvent::MemLoadUopsRetiredL3Miss)
        * params.dramLinePj * kPj;
    out.mispredictJ = get(PerfEvent::BrMispExecAllBranches)
        * params.mispredictPj * kPj;
    out.staticJ =
        params.leakageWatts * cycles / (params.frequencyGHz * 1e9);
    return out;
}

} // namespace sim
} // namespace spec17
