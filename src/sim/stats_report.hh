/**
 * @file
 * Hierarchical statistics dump in the gem5 stats.txt idiom: one
 * `component.statistic  value  # description` line per statistic,
 * covering every modelled component of a CpuSimulator. This is the
 * debugging surface for "why is this workload behaving like that".
 */

#ifndef SPEC17_SIM_STATS_REPORT_HH_
#define SPEC17_SIM_STATS_REPORT_HH_

#include <ostream>

#include "sim/multicore.hh"
#include "sim/simulator.hh"

namespace spec17 {
namespace sim {

/**
 * Writes every component statistic of @p simulator to @p os.
 * @param prefix prepended to each statistic name (e.g. "core0.").
 */
void dumpStats(const CpuSimulator &simulator, std::ostream &os,
               const std::string &prefix = "");

/** Dumps every core of a multicore simulation plus merged totals. */
void dumpStats(const MulticoreSimulator &simulator, std::ostream &os);

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_STATS_REPORT_HH_
