/**
 * @file
 * Event-based energy model.
 *
 * SPEC CPU2017 ships an optional power-consumption metric (the paper
 * notes this in Section II but, lacking a power meter, does not
 * evaluate it). This model supplies that missing axis for the
 * simulated machine: dynamic energy is charged per architectural
 * event (retired micro-op, cache access at each level, DRAM line
 * transfer, branch mispredict squash) and static energy accrues with
 * cycles -- the same accounting structure as McPAT-style post-silicon
 * estimators, with coefficients in the published range for a 22 nm
 * Haswell-class server core.
 */

#ifndef SPEC17_SIM_ENERGY_HH_
#define SPEC17_SIM_ENERGY_HH_

#include "counters/perf_event.hh"

namespace spec17 {
namespace sim {

/** Energy coefficients (picojoules per event; watts for leakage). */
struct EnergyParams
{
    double uopPj = 14.0;           //!< fetch/decode/rename/execute
    double l1AccessPj = 6.0;       //!< L1D or L1I access
    double l2AccessPj = 22.0;
    double l3AccessPj = 90.0;
    double dramLinePj = 15000.0;   //!< one 64 B line transfer
    double mispredictPj = 65.0;    //!< squashed work per mispredict
    double leakageWatts = 3.0;     //!< per-core static power
    /** Reference clock, used to convert cycles to seconds. */
    double frequencyGHz = 1.8;

    /** Panics unless every coefficient is non-negative. */
    void validate() const;
};

/** Per-component energy, joules. */
struct EnergyBreakdown
{
    double coreDynamicJ = 0.0;
    double l1J = 0.0;
    double l2J = 0.0;
    double l3J = 0.0;
    double dramJ = 0.0;
    double mispredictJ = 0.0;
    double staticJ = 0.0;

    double totalJ() const;
    /** Average power over @p seconds (watts). */
    double watts(double seconds) const;
    /** Energy per instruction, nanojoules. */
    double epiNj(double instructions) const;
    /** Energy-delay product, joule-seconds. */
    double edp(double seconds) const;
};

/**
 * Computes the breakdown from a run's counters and cycle count.
 *
 * Access counts per level derive from the load hit/miss counters
 * (L2 accesses = L1 misses, etc.); store traffic is charged at L1
 * (write-allocate moves the deeper traffic through the same miss
 * counters the loads populate).
 */
EnergyBreakdown computeEnergy(const counters::CounterSet &counters,
                              double cycles,
                              const EnergyParams &params = {});

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_ENERGY_HH_
