#include "sim/hierarchy.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

std::string
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::L3: return "L3";
      case HitLevel::Memory: return "memory";
    }
    SPEC17_PANIC("unknown HitLevel");
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               std::shared_ptr<SetAssocCache> shared_l3,
                               std::uint64_t seed,
                               CacheHierarchy *recycle,
                               bool recycle_dirty)
    : config_(config),
      l1i_(std::make_unique<SetAssocCache>(
          config.l1i, deriveSeed(seed, "l1i"),
          recycle ? recycle->l1i_.get() : nullptr, recycle_dirty)),
      l1d_(std::make_unique<SetAssocCache>(
          config.l1d, deriveSeed(seed, "l1d"),
          recycle ? recycle->l1d_.get() : nullptr, recycle_dirty)),
      l2_(std::make_unique<SetAssocCache>(
          config.l2, deriveSeed(seed, "l2"),
          recycle ? recycle->l2_.get() : nullptr, recycle_dirty)),
      // The donor's L3 buffers are only safe to strip when the donor
      // holds the last reference (a shared L3 may outlive it).
      l3_(shared_l3 ? std::move(shared_l3)
                    : makeSharedL3(config, seed,
                                   recycle
                                           && recycle->l3_.use_count()
                                               == 1
                                       ? recycle->l3_.get()
                                       : nullptr,
                                   recycle_dirty))
{
    SPEC17_ASSERT(!recycle_dirty || l3_.use_count() == 1,
                  "dirty recycling requires a private L3 (the pending "
                  "copyStateFrom does too)");
    StreamConfig stream;
    stream.degree = config.streamDegree;
    stream.distance = config.streamDistance;
    stream.lineBytes = config.l1d.lineBytes;
    prefetcher_ = makePrefetcher(config.prefetcher, stream);
    l2Prefetcher_ = makePrefetcher(config.l2Prefetcher, stream);
    // Track prefetched lines wherever a prefetcher fills, so demand
    // hits on them are counted useful (accuracy / coverage).
    if (prefetcher_) {
        l1d_->enablePrefetchTracking();
        l2_->enablePrefetchTracking();
    } else if (l2Prefetcher_) {
        l2_->enablePrefetchTracking();
    }
}

std::shared_ptr<SetAssocCache>
CacheHierarchy::makeSharedL3(const HierarchyConfig &config,
                             std::uint64_t seed,
                             SetAssocCache *recycle, bool recycle_dirty)
{
    return std::make_shared<SetAssocCache>(config.l3,
                                           deriveSeed(seed, "l3"),
                                           recycle, recycle_dirty);
}

void
CacheHierarchy::copyStateFrom(const CacheHierarchy &other)
{
    SPEC17_ASSERT(l3_.use_count() == 1
                      && other.l3_.use_count() == 1,
                  "hierarchy state cloning requires private L3s");
    *l1i_ = *other.l1i_;
    *l1d_ = *other.l1d_;
    *l2_ = *other.l2_;
    *l3_ = *other.l3_;
}

HitLevel
CacheHierarchy::accessData(std::uint64_t addr, bool is_write,
                           std::uint64_t pc)
{
    HitLevel level;
    if (l1d_->access(addr, is_write)) {
        level = HitLevel::L1;
    } else if (l2_->access(addr, is_write)) {
        level = HitLevel::L2;
    } else if (l3_->access(addr, is_write)) {
        level = HitLevel::L3;
    } else {
        level = HitLevel::Memory;
    }

    if (prefetcher_ && !is_write)
        observePrefetcher(pc, addr, level);
    if (l2Prefetcher_ && !is_write && level != HitLevel::L1)
        observeL2Prefetcher(pc, addr, level);
    return level;
}

void
CacheHierarchy::observePrefetcher(std::uint64_t pc, std::uint64_t addr,
                                  HitLevel level)
{
    prefetchScratch_.clear();
    prefetcher_->observe(pc, addr, level != HitLevel::L1,
                         prefetchScratch_);
    for (std::uint64_t line : prefetchScratch_)
        prefetchFill(line);
}

void
CacheHierarchy::observeL2Prefetcher(std::uint64_t pc,
                                    std::uint64_t addr, HitLevel level)
{
    prefetchScratch_.clear();
    l2Prefetcher_->observe(pc, addr,
                           level != HitLevel::L1 && level != HitLevel::L2,
                           prefetchScratch_);
    for (std::uint64_t line : prefetchScratch_)
        l2_->fill(line, 2);
}

void
CacheHierarchy::prefetchFill(std::uint64_t addr)
{
    // Prefetches fill L2 and L1D without counting demand traffic.
    l1d_->fill(addr, 1);
    l2_->fill(addr, 1);
}

void
CacheHierarchy::fillTo(std::uint64_t addr, HitLevel level)
{
    l3_->fill(addr);
    if (level == HitLevel::L2 || level == HitLevel::L1)
        l2_->fill(addr);
    if (level == HitLevel::L1)
        l1d_->fill(addr);
}

HitLevel
CacheHierarchy::accessInst(std::uint64_t addr)
{
    if (l1i_->access(addr, false))
        return HitLevel::L1;
    if (l2_->access(addr, false))
        return HitLevel::L2;
    if (l3_->access(addr, false))
        return HitLevel::L3;
    return HitLevel::Memory;
}

unsigned
CacheHierarchy::latencyOf(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1: return config_.l1d.hitLatency;
      case HitLevel::L2: return config_.l2.hitLatency;
      case HitLevel::L3: return config_.l3.hitLatency;
      case HitLevel::Memory: return config_.memLatency;
    }
    SPEC17_PANIC("unknown HitLevel");
}

} // namespace sim
} // namespace spec17
