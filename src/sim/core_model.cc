#include "sim/core_model.hh"

#include "util/logging.hh"

namespace spec17 {
namespace sim {

double
CpiStack::total() const
{
    return base + frontend + branch + memory + compute;
}

CpiStack
CpiStack::perInstruction(std::uint64_t retired) const
{
    CpiStack out = *this;
    if (retired == 0)
        return out;
    const double n = static_cast<double>(retired);
    out.base /= n;
    out.frontend /= n;
    out.branch /= n;
    out.memory /= n;
    out.compute /= n;
    return out;
}

CoreModel::CoreModel(const CoreParams &params,
                     std::shared_ptr<MemoryBus> bus)
    : params_(params), dispatchStep_(1.0 / params.dispatchWidth),
      robCompletion_(params.robSize, 0.0),
      robTag_(params.robSize, kTagCompute),
      mshrFree_(params.numMshrs, 0.0),
      bus_(bus ? std::move(bus) : std::make_shared<MemoryBus>())
{
    SPEC17_ASSERT(params.dispatchWidth >= 1, "width must be >= 1");
    SPEC17_ASSERT(params.robSize >= params.dispatchWidth,
                  "ROB smaller than dispatch width");
    SPEC17_ASSERT(params.numMshrs >= 1, "need at least one MSHR");
    SPEC17_ASSERT(params.frequencyGHz > 0.0, "clock must be positive");
}

void
CoreModel::retire(const isa::MicroOp &op, unsigned mem_latency,
                  bool l1_miss, unsigned fetch_stall, bool mispredicted,
                  bool dram_access, double dram_lines)
{
    retireInline(op, mem_latency, l1_miss, fetch_stall, mispredicted,
                 dram_access, dram_lines);
}

double
CoreModel::cycles() const
{
    return std::max(dispatchCycle_, maxCompletion_);
}

double
CoreModel::secondsFor(double cycle_count) const
{
    return cycle_count / (params_.frequencyGHz * 1e9);
}

} // namespace sim
} // namespace spec17
