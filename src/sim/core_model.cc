#include "sim/core_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

double
CpiStack::total() const
{
    return base + frontend + branch + memory + compute;
}

CpiStack
CpiStack::perInstruction(std::uint64_t retired) const
{
    CpiStack out = *this;
    if (retired == 0)
        return out;
    const double n = static_cast<double>(retired);
    out.base /= n;
    out.frontend /= n;
    out.branch /= n;
    out.memory /= n;
    out.compute /= n;
    return out;
}

namespace {

/** ROB-slot attribution classes. */
enum RobTag : std::uint8_t
{
    kTagCompute = 0,
    kTagMemory = 1,
};

} // namespace

CoreModel::CoreModel(const CoreParams &params,
                     std::shared_ptr<MemoryBus> bus)
    : params_(params), robCompletion_(params.robSize, 0.0),
      robTag_(params.robSize, kTagCompute),
      mshrFree_(params.numMshrs, 0.0),
      bus_(bus ? std::move(bus) : std::make_shared<MemoryBus>())
{
    SPEC17_ASSERT(params.dispatchWidth >= 1, "width must be >= 1");
    SPEC17_ASSERT(params.robSize >= params.dispatchWidth,
                  "ROB smaller than dispatch width");
    SPEC17_ASSERT(params.numMshrs >= 1, "need at least one MSHR");
    SPEC17_ASSERT(params.frequencyGHz > 0.0, "clock must be positive");
}

unsigned
CoreModel::latencyOfCompute(isa::UopClass cls) const
{
    switch (cls) {
      case isa::UopClass::IntAlu: return params_.intAluLatency;
      case isa::UopClass::IntMul: return params_.intMulLatency;
      case isa::UopClass::IntDiv: return params_.intDivLatency;
      case isa::UopClass::FpAdd: return params_.fpAddLatency;
      case isa::UopClass::FpMul: return params_.fpMulLatency;
      case isa::UopClass::FpDiv: return params_.fpDivLatency;
      default:
        SPEC17_PANIC("latencyOfCompute on non-compute class");
    }
}

void
CoreModel::retire(const isa::MicroOp &op, unsigned mem_latency,
                  bool l1_miss, unsigned fetch_stall, bool mispredicted,
                  bool dram_access, double dram_lines)
{
    // (2) ROB window: the slot we are about to occupy still holds the
    // completion time of uop (i - robSize); dispatch must wait for it.
    const std::size_t slot = retired_ % params_.robSize;
    if (robCompletion_[slot] > dispatchCycle_) {
        const double wait = robCompletion_[slot] - dispatchCycle_;
        (robTag_[slot] == kTagMemory ? stack_.memory
                                     : stack_.compute) += wait;
        dispatchCycle_ = robCompletion_[slot];
    }

    // Front-end: I-cache miss stalls fetch/dispatch.
    if (fetch_stall > 0) {
        dispatchCycle_ += fetch_stall;
        stack_.frontend += fetch_stall;
    }

    // (1) dispatch bandwidth.
    dispatchCycle_ += 1.0 / params_.dispatchWidth;
    stack_.base += 1.0 / params_.dispatchWidth;

    double completion;
    switch (op.cls) {
      case isa::UopClass::Load: {
        double start = dispatchCycle_;
        if (op.depOnLoad)
            start = std::max(start, chainReady_);
        if (op.depOnPrev)
            start = std::max(start, computeChainTail_);
        if (l1_miss) {
            // (3) allocate an MSHR: take the earliest-free slot; if
            // every slot is still busy past `start`, stall until one
            // frees up.
            auto slot_it =
                std::min_element(mshrFree_.begin(), mshrFree_.end());
            start = std::max(start, *slot_it);
            if (dram_access)
                start = bus_->acquire(start, dram_lines);
            completion = start + mem_latency;
            *slot_it = completion;
        } else {
            completion = start + mem_latency;
        }
        if (op.depOnLoad)
            chainReady_ = completion;
        // Most recent load in program order: the producer proxy for
        // later depOnLoad branches.
        lastLoadCompletion_ = completion;
        break;
      }
      case isa::UopClass::Store:
        // Stores drain through the store buffer off the critical
        // path; they retire one cycle after dispatch, but a store
        // that misses to DRAM still consumes channel bandwidth (RFO
        // plus eventual writeback), delaying later demand fills.
        if (dram_access)
            bus_->acquire(dispatchCycle_, dram_lines);
        completion = dispatchCycle_ + 1.0;
        break;
      case isa::UopClass::Branch: {
        double resolve = dispatchCycle_ + params_.branchResolveLatency;
        if (op.depOnLoad) {
            // A branch fed by a load resolves no earlier than the
            // load's data returns (mcf-style late mispredicts).
            resolve = std::max(resolve, lastLoadCompletion_ + 1.0);
        }
        if (mispredicted) {
            const double squash = resolve + params_.mispredictPenalty
                - dispatchCycle_;
            if (squash > 0.0) {
                stack_.branch += squash;
                dispatchCycle_ += squash;
            }
        }
        completion = resolve;
        break;
      }
      default: {
        double start = dispatchCycle_;
        if (op.depOnLoad)
            start = std::max(start, chainReady_);
        if (op.depOnPrev)
            start = std::max(start, computeChainTail_);
        completion = start + latencyOfCompute(op.cls);
        if (op.depOnPrev)
            computeChainTail_ = completion;
        break;
      }
    }

    robCompletion_[slot] = completion;
    robTag_[slot] =
        op.isLoad() && l1_miss ? kTagMemory : kTagCompute;
    maxCompletion_ = std::max(maxCompletion_, completion);
    ++retired_;
}

double
CoreModel::cycles() const
{
    return std::max(dispatchCycle_, maxCompletion_);
}

double
CoreModel::secondsFor(double cycle_count) const
{
    return cycle_count / (params_.frequencyGHz * 1e9);
}

} // namespace sim
} // namespace spec17
