/**
 * @file
 * Multicore simulation for the OpenMP-threaded speed applications:
 * N contexts, each a full CpuSimulator with private L1/L2, sharing
 * one L3. Contexts are interleaved in fixed-size chunks so their L3
 * traffic contends the way concurrently running threads would.
 *
 * Counter semantics follow `perf stat` on a multi-threaded process:
 * event counts (instructions, loads, branch events, cache events) sum
 * across threads, and cpu_clk_unhalted.ref_tsc accumulates every
 * thread's cycles -- which is why the paper's speed-fp IPC drops so
 * sharply relative to the single-copy rate runs.
 */

#ifndef SPEC17_SIM_MULTICORE_HH_
#define SPEC17_SIM_MULTICORE_HH_

#include <memory>
#include <vector>

#include "sim/simulator.hh"

namespace spec17 {
namespace sim {

/** N-context simulator with a shared last-level cache. */
class MulticoreSimulator
{
  public:
    /**
     * @param config per-core machine description (the L3 entry is
     *        instantiated once and shared).
     * @param num_cores simulated thread contexts.
     * @param seed randomness seed.
     */
    MulticoreSimulator(const SystemConfig &config, unsigned num_cores,
                       std::uint64_t seed = 0);

    /**
     * Runs one trace per context to exhaustion, interleaving in
     * chunks of @p chunk_ops, and returns merged counters.
     *
     * @param sources exactly one trace per core.
     * @param chunk_ops interleaving granularity.
     * @param warmup_ops_per_core micro-ops each core executes before
     *        measurement begins; counters and cycles accumulated
     *        during warmup are excluded from the result (footprint
     *        gauges still span the whole run).
     */
    SimResult run(
        const std::vector<std::shared_ptr<trace::TraceSource>> &sources,
        std::uint64_t chunk_ops = 10'000,
        std::uint64_t warmup_ops_per_core = 0);

    unsigned numCores() const { return cores_.size(); }
    const CpuSimulator &core(unsigned index) const;
    /** Mutable access, e.g. for pre-run cache prefill. */
    CpuSimulator &mutableCore(unsigned index);

  private:
    SystemConfig config_;
    std::shared_ptr<SetAssocCache> sharedL3_;
    std::shared_ptr<MemoryBus> sharedBus_;
    std::vector<std::unique_ptr<CpuSimulator>> cores_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_MULTICORE_HH_
