/**
 * @file
 * Multicore simulation for the OpenMP-threaded speed applications:
 * N contexts, each a full CpuSimulator with private L1/L2, sharing
 * one L3. Contexts are interleaved in fixed-size chunks so their L3
 * traffic contends the way concurrently running threads would.
 *
 * Counter semantics follow `perf stat` on a multi-threaded process:
 * event counts (instructions, loads, branch events, cache events) sum
 * across threads, and cpu_clk_unhalted.ref_tsc accumulates every
 * thread's cycles -- which is why the paper's speed-fp IPC drops so
 * sharply relative to the single-copy rate runs.
 */

#ifndef SPEC17_SIM_MULTICORE_HH_
#define SPEC17_SIM_MULTICORE_HH_

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hh"

namespace spec17 {
namespace sim {

/** N-context simulator with a shared last-level cache. */
class MulticoreSimulator
{
  public:
    /**
     * @param config per-core machine description (the L3 entry is
     *        instantiated once and shared).
     * @param num_cores simulated thread contexts.
     * @param seed randomness seed.
     */
    MulticoreSimulator(const SystemConfig &config, unsigned num_cores,
                       std::uint64_t seed = 0);

    /**
     * Progress hook of run()/runEach(): called after every simulated
     * chunk that advanced a warmed-up core, with the cumulative
     * measured (post-warmup) micro-ops across all cores. Observation
     * only -- results do not depend on whether one is installed.
     */
    using ChunkObserver = std::function<void(std::uint64_t measured_ops)>;

    /**
     * Runs one trace per context to exhaustion, interleaving in
     * chunks of @p chunk_ops, and returns merged counters.
     *
     * Merged counter semantics follow `perf stat` on a multi-threaded
     * process: events sum across contexts, cycles are the maximum
     * (wall time of the slowest context), RSS/VSZ are maxima (one
     * shared address space).
     *
     * @param sources exactly one trace per core.
     * @param chunk_ops interleaving granularity.
     * @param warmup_ops_per_core micro-ops each core executes before
     *        measurement begins; counters and cycles accumulated
     *        during warmup are excluded from the result (footprint
     *        gauges still span the whole run).
     * @param on_chunk optional per-chunk progress hook (telemetry).
     */
    SimResult run(
        const std::vector<std::shared_ptr<trace::TraceSource>> &sources,
        std::uint64_t chunk_ops = 10'000,
        std::uint64_t warmup_ops_per_core = 0,
        const ChunkObserver &on_chunk = {});

    /**
     * run() without the merge: one SimResult per context, in context
     * order, each over that context's measured window. This is the
     * co-run engine's seam -- per-app slowdowns need per-context
     * cycles, which the merged view folds into a single maximum.
     * Like run(), consumes the simulator (state is not reusable).
     */
    std::vector<SimResult> runEach(
        const std::vector<std::shared_ptr<trace::TraceSource>> &sources,
        std::uint64_t chunk_ops = 10'000,
        std::uint64_t warmup_ops_per_core = 0,
        const ChunkObserver &on_chunk = {});

    /**
     * Applies a CAT-style L3 way partition: @p masks holds one
     * allocation bitmask per core (Intel `schemata` shape, bit w =
     * way w). Masks are validated by the shared cache -- empty masks
     * and ways beyond the associativity panic. Partition masks change
     * victim selection, i.e. results: runners must fold them into
     * their config keys.
     */
    void setWayPartition(const std::vector<std::uint32_t> &masks);

    unsigned numCores() const { return cores_.size(); }
    const CpuSimulator &core(unsigned index) const;
    /** Mutable access, e.g. for pre-run cache prefill. */
    CpuSimulator &mutableCore(unsigned index);

    /** The shared L3 with its per-context stats (context c = core c). */
    const SetAssocCache &sharedL3() const { return *sharedL3_; }

  private:
    SystemConfig config_;
    std::shared_ptr<SetAssocCache> sharedL3_;
    std::shared_ptr<MemoryBus> sharedBus_;
    std::vector<std::unique_ptr<CpuSimulator>> cores_;
};

} // namespace sim
} // namespace spec17

#endif // SPEC17_SIM_MULTICORE_HH_
