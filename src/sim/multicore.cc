#include "sim/multicore.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace sim {

using counters::PerfEvent;

MulticoreSimulator::MulticoreSimulator(const SystemConfig &config,
                                       unsigned num_cores,
                                       std::uint64_t seed)
    : config_(config),
      sharedL3_(CacheHierarchy::makeSharedL3(config.hierarchy, seed)),
      sharedBus_(std::make_shared<MemoryBus>())
{
    SPEC17_ASSERT(num_cores >= 1, "need at least one core");
    sharedL3_->enableContextTracking(num_cores);
    for (unsigned c = 0; c < num_cores; ++c) {
        cores_.push_back(std::make_unique<CpuSimulator>(
            config, deriveSeed(deriveSeed(seed, "core"), c), sharedL3_,
            sharedBus_));
        cores_.back()->setL3Context(c);
    }
}

const CpuSimulator &
MulticoreSimulator::core(unsigned index) const
{
    SPEC17_ASSERT(index < cores_.size(), "core index ", index,
                  " out of range: this simulator has ", cores_.size(),
                  " cores (valid indices 0..", cores_.size() - 1, ")");
    return *cores_[index];
}

CpuSimulator &
MulticoreSimulator::mutableCore(unsigned index)
{
    SPEC17_ASSERT(index < cores_.size(), "core index ", index,
                  " out of range: this simulator has ", cores_.size(),
                  " cores (valid indices 0..", cores_.size() - 1, ")");
    return *cores_[index];
}

void
MulticoreSimulator::setWayPartition(
    const std::vector<std::uint32_t> &masks)
{
    SPEC17_ASSERT(masks.size() == cores_.size(),
                  "way partition needs one mask per core, got ",
                  masks.size(), " for ", cores_.size(), " cores");
    for (std::size_t c = 0; c < masks.size(); ++c)
        sharedL3_->setWayMask(static_cast<unsigned>(c), masks[c]);
}

std::vector<SimResult>
MulticoreSimulator::runEach(
    const std::vector<std::shared_ptr<trace::TraceSource>> &sources,
    std::uint64_t chunk_ops, std::uint64_t warmup_ops_per_core,
    const ChunkObserver &on_chunk)
{
    SPEC17_ASSERT(sources.size() == cores_.size(),
                  "need exactly one trace per core, got ",
                  sources.size(), " for ", cores_.size(), " cores");
    SPEC17_ASSERT(chunk_ops >= 1, "chunk must be positive");
    for (const auto &source : sources)
        SPEC17_ASSERT(source != nullptr, "null trace source");

    std::vector<bool> done(cores_.size(), false);
    std::vector<bool> warm(cores_.size(), warmup_ops_per_core == 0);
    std::vector<std::uint64_t> executed(cores_.size(), 0);
    std::vector<counters::CounterSet> warm_snapshot(cores_.size());
    std::vector<double> warm_cycles(cores_.size(), 0.0);
    std::uint64_t measured = 0;

    bool any_left = true;
    while (any_left) {
        any_left = false;
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            if (done[c])
                continue;
            // Stop exactly at the warmup boundary so the measured
            // interval matches the requested sample size.
            std::uint64_t want = chunk_ops;
            const bool was_warm = warm[c];
            if (!was_warm) {
                want = std::min<std::uint64_t>(
                    want, warmup_ops_per_core - executed[c]);
            }
            const std::uint64_t consumed =
                cores_[c]->step(*sources[c], want);
            executed[c] += consumed;
            if (!warm[c] && executed[c] >= warmup_ops_per_core) {
                warm[c] = true;
                warm_snapshot[c] = cores_[c]->snapshot();
                warm_cycles[c] = cores_[c]->core().cycles();
            }
            if (consumed < want)
                done[c] = true;
            else
                any_left = true;
            // Chunks are capped at the warmup boundary, so a chunk's
            // ops are measured iff the core entered it already warm.
            if (was_warm && consumed > 0) {
                measured += consumed;
                if (on_chunk)
                    on_chunk(measured);
            }
        }
    }

    std::vector<SimResult> parts;
    parts.reserve(cores_.size());
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        SimResult part = cores_[c]->finish(*sources[c]);
        if (warmup_ops_per_core > 0) {
            // A source shorter than the warmup yields an empty
            // measured interval for that core.
            if (!warm[c]) {
                warm_snapshot[c] = cores_[c]->snapshot();
                warm_cycles[c] = cores_[c]->core().cycles();
            }
            const std::uint64_t part_vsz =
                part.counters.get(PerfEvent::VszBytes);
            part.counters = part.counters.diff(warm_snapshot[c]);
            part.counters.set(PerfEvent::VszBytes, part_vsz);
            part.counters.set(PerfEvent::RssBytes,
                              cores_[c]->footprint().rssBytes());
            part.cycles -= warm_cycles[c];
        }
        part.seconds = cores_[c]->core().secondsFor(part.cycles);
        parts.push_back(std::move(part));
    }
    return parts;
}

SimResult
MulticoreSimulator::run(
    const std::vector<std::shared_ptr<trace::TraceSource>> &sources,
    std::uint64_t chunk_ops, std::uint64_t warmup_ops_per_core,
    const ChunkObserver &on_chunk)
{
    const std::vector<SimResult> parts =
        runEach(sources, chunk_ops, warmup_ops_per_core, on_chunk);

    SimResult merged;
    double max_cycles = 0.0;
    std::uint64_t vsz = 0;
    for (const SimResult &part : parts) {
        merged.counters.accumulate(part.counters);
        max_cycles = std::max(max_cycles, part.cycles);
        // Threads share one address space: reservations overlap, so
        // VSZ is the max reservation, not the sum.
        vsz = std::max(vsz, part.counters.get(PerfEvent::VszBytes));
    }
    // Gauges must not sum across threads the way counts do: the
    // threads share one address space and (by construction) the same
    // data regions, so the union of touched pages is approximated by
    // the largest single-thread footprint.
    std::uint64_t max_rss = 0;
    for (const auto &core : cores_)
        max_rss = std::max(max_rss, core->footprint().rssBytes());
    merged.counters.set(PerfEvent::RssBytes, max_rss);
    merged.counters.set(PerfEvent::VszBytes,
                        std::max(vsz, merged.counters.get(
                            PerfEvent::RssBytes)));

    merged.cycles = max_cycles;
    merged.seconds = cores_.front()->core().secondsFor(max_cycles);
    return merged;
}

} // namespace sim
} // namespace spec17
