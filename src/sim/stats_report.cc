#include "sim/stats_report.hh"

#include <iomanip>

#include "sim/multicore.hh"

namespace spec17 {
namespace sim {

namespace {

/** One stats.txt-style line. */
void
line(std::ostream &os, const std::string &name, double value,
     const char *description)
{
    os << std::left << std::setw(44) << name << std::right
       << std::setw(16) << std::setprecision(6) << std::fixed << value
       << "  # " << description << "\n";
}

void
dumpCache(const SetAssocCache &cache, std::ostream &os,
          const std::string &prefix)
{
    const CacheStats &stats = cache.stats();
    const std::string base = prefix + cache.config().name + ".";
    line(os, base + "accesses", double(stats.accesses()),
         "demand accesses");
    line(os, base + "hits", double(stats.hits), "demand hits");
    line(os, base + "misses", double(stats.misses), "demand misses");
    line(os, base + "miss_rate", stats.missRate(),
         "misses / accesses");
    line(os, base + "evictions", double(stats.evictions),
         "valid lines replaced");
    line(os, base + "writebacks", double(stats.writebacks),
         "dirty lines written back");
    line(os, base + "prefetch_fills", double(stats.prefetchFills),
         "lines installed by prefetch");
    if (cache.config().wayPredictor != WayPredictor::None) {
        line(os, base + "way_predictions",
             double(stats.wayPredictions), "load hits way-predicted");
        line(os, base + "way_mispredicts",
             double(stats.wayMispredicts),
             "load hits that predicted the wrong way");
        line(os, base + "way_mispredict_rate",
             stats.wayPredictions > 0
                 ? double(stats.wayMispredicts)
                       / double(stats.wayPredictions)
                 : 0.0,
             "mispredicts / predictions");
        line(os, base + "way_penalty_cycles",
             double(stats.wayPenaltyCycles),
             "extra load cycles from wrong-way probes");
    }
}

/**
 * Accuracy/coverage block for one prefetcher. @p useful is the
 * demand-hit-on-prefetched-line count attributed to this prefetcher
 * by its fill cache, and @p demand_misses the demand misses of the
 * level it fills into (coverage denominator).
 */
void
dumpPrefetcher(const Prefetcher &pf, std::ostream &os,
               const std::string &base, std::uint64_t useful,
               std::uint64_t demand_misses)
{
    line(os, base + "issued", double(pf.issued()),
         "prefetches issued");
    line(os, base + "useful", double(useful),
         "prefetched lines later demand-hit");
    line(os, base + "late", double(pf.late()),
         "demand misses on recently issued lines");
    line(os, base + "accuracy",
         pf.issued() > 0 ? double(useful) / double(pf.issued()) : 0.0,
         "useful / issued");
    line(os, base + "coverage",
         useful + demand_misses > 0
             ? double(useful) / double(useful + demand_misses)
             : 0.0,
         "useful / (useful + demand misses)");
}

void
dumpTlb(const Tlb &tlb, std::ostream &os, const std::string &name)
{
    const TlbStats &stats = tlb.stats();
    line(os, name + ".accesses", double(stats.accesses),
         "translations requested");
    line(os, name + ".l1_misses", double(stats.l1Misses),
         "first-level TLB misses");
    line(os, name + ".walks", double(stats.walks),
         "full misses (page walks)");
    line(os, name + ".walk_rate", stats.walkRate(),
         "walks / accesses");
}

} // namespace

void
dumpStats(const CpuSimulator &simulator, std::ostream &os,
          const std::string &prefix)
{
    line(os, prefix + "core.retired",
         double(simulator.core().retired()), "micro-ops retired");
    line(os, prefix + "core.cycles", simulator.core().cycles(),
         "cycles consumed");
    const double retired = double(simulator.core().retired());
    line(os, prefix + "core.ipc",
         simulator.core().cycles() > 0.0
             ? retired / simulator.core().cycles()
             : 0.0,
         "retired / cycles");

    const CpiStack stack =
        simulator.core().cpiStack().perInstruction(
            simulator.core().retired());
    line(os, prefix + "core.cpi.base", stack.base,
         "dispatch-bandwidth cycles per op");
    line(os, prefix + "core.cpi.frontend", stack.frontend,
         "fetch-stall cycles per op");
    line(os, prefix + "core.cpi.branch", stack.branch,
         "mispredict cycles per op");
    line(os, prefix + "core.cpi.memory", stack.memory,
         "load-miss-blocked cycles per op");
    line(os, prefix + "core.cpi.compute", stack.compute,
         "compute-latency-blocked cycles per op");

    dumpCache(simulator.hierarchy().l1i(), os, prefix);
    dumpCache(simulator.hierarchy().l1d(), os, prefix);
    dumpCache(simulator.hierarchy().l2(), os, prefix);
    dumpCache(simulator.hierarchy().l3(), os, prefix);
    if (const Prefetcher *pf = simulator.hierarchy().prefetcher()) {
        dumpPrefetcher(*pf, os,
                       prefix + "prefetcher." + pf->name() + ".",
                       simulator.hierarchy().prefetcherUseful(),
                       simulator.hierarchy().l1d().stats().misses);
    }
    if (const Prefetcher *pf = simulator.hierarchy().l2Prefetcher()) {
        dumpPrefetcher(*pf, os,
                       prefix + "l2_prefetcher." + pf->name() + ".",
                       simulator.hierarchy().l2PrefetcherUseful(),
                       simulator.hierarchy().l2().stats().misses);
    }

    const BranchStats &branches = simulator.branchUnit().totals();
    line(os, prefix + "branch.executed", double(branches.executed),
         "branches resolved");
    line(os, prefix + "branch.mispredicted",
         double(branches.mispredicted), "mispredicted branches");
    line(os, prefix + "branch.mispredict_rate",
         branches.mispredictRate(), "mispredicted / executed");
    for (int k = 1; k <= int(isa::kNumBranchKinds); ++k) {
        const auto kind = static_cast<isa::BranchKind>(k);
        const BranchStats &per_kind =
            simulator.branchUnit().byKind(kind);
        if (per_kind.executed == 0)
            continue;
        line(os,
             prefix + "branch." + isa::branchKindName(kind)
                 + ".executed",
             double(per_kind.executed), "branches of this kind");
        line(os,
             prefix + "branch." + isa::branchKindName(kind)
                 + ".mispredict_rate",
             per_kind.mispredictRate(), "per-kind mispredict rate");
    }

    dumpTlb(simulator.dtlb(), os, prefix + "dtlb");
    dumpTlb(simulator.itlb(), os, prefix + "itlb");

    line(os, prefix + "footprint.pages",
         double(simulator.footprint().pagesTouched()),
         "distinct 4 KiB pages touched");
    line(os, prefix + "footprint.rss_bytes",
         double(simulator.footprint().rssBytes()),
         "touched-page bytes");
}

void
dumpStats(const MulticoreSimulator &simulator, std::ostream &os)
{
    for (unsigned c = 0; c < simulator.numCores(); ++c) {
        dumpStats(simulator.core(c), os,
                  "core" + std::to_string(c) + ".");
    }

    // Shared-L3 attribution: who hit, who missed, who evicted whom,
    // and how many ways/lines each context holds right now.
    const SetAssocCache &l3 = simulator.sharedL3();
    for (unsigned ctx = 0; ctx < l3.numContexts(); ++ctx) {
        const CacheContextStats &stats = l3.contextStats(ctx);
        const std::string base =
            "l3.shared.ctx" + std::to_string(ctx) + ".";
        line(os, base + "hits", double(stats.hits),
             "shared-L3 demand hits by this context");
        line(os, base + "misses", double(stats.misses),
             "shared-L3 demand misses by this context");
        line(os, base + "miss_rate", stats.missRate(),
             "misses / accesses");
        line(os, base + "evictions_inflicted",
             double(stats.evictionsInflicted),
             "other contexts' lines this context evicted");
        line(os, base + "evictions_suffered",
             double(stats.evictionsSuffered),
             "this context's lines evicted by others");
        line(os, base + "occupancy_lines",
             double(l3.contextOccupancy(ctx)),
             "resident lines owned by this context");
        line(os, base + "way_mask", double(l3.wayMask(ctx)),
             "CAT allocation way mask (bitmask value)");
    }
}

} // namespace sim
} // namespace spec17
