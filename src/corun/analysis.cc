#include "corun/analysis.hh"

#include <algorithm>

namespace spec17 {
namespace corun {

std::size_t
SlowdownMatrix::indexOf(const std::string &app) const
{
    const auto it = std::find(apps.begin(), apps.end(), app);
    return static_cast<std::size_t>(it - apps.begin());
}

namespace {

std::size_t
internApp(SlowdownMatrix &matrix, const std::string &app)
{
    const std::size_t index = matrix.indexOf(app);
    if (index < matrix.apps.size())
        return index;
    matrix.apps.push_back(app);
    for (auto &row : matrix.slowdown)
        row.push_back(0.0);
    matrix.slowdown.emplace_back(matrix.apps.size(), 0.0);
    return matrix.apps.size() - 1;
}

/** Strips the "@masks" suffix off a group name. */
std::string
pairBase(const std::string &group_name)
{
    return group_name.substr(0, group_name.find('@'));
}

} // namespace

SlowdownMatrix
buildMatrix(const std::vector<CorunResult> &results)
{
    SlowdownMatrix matrix;
    for (const CorunResult &result : results) {
        if (result.members.size() != 2 || !result.masks.empty())
            continue;
        const std::size_t a =
            internApp(matrix, result.members[0].name);
        const std::size_t b =
            internApp(matrix, result.members[1].name);
        // Member 0's slowdown is inflicted by member 1 and vice
        // versa; a self-pair fills its diagonal cell (either member
        // reads the same ratio up to their symmetric roles -- keep
        // the worse one, the honest "two copies" cost).
        if (a == b) {
            matrix.slowdown[a][a] =
                std::max(result.members[0].slowdown(),
                         result.members[1].slowdown());
            continue;
        }
        matrix.slowdown[a][b] = result.members[0].slowdown();
        matrix.slowdown[b][a] = result.members[1].slowdown();
    }
    return matrix;
}

std::vector<AppScore>
scoreApps(const SlowdownMatrix &matrix)
{
    std::vector<AppScore> scores;
    const std::size_t n = matrix.apps.size();
    for (std::size_t i = 0; i < n; ++i) {
        AppScore score;
        score.app = matrix.apps[i];
        double row_sum = 0.0, col_sum = 0.0;
        std::size_t row_n = 0, col_n = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (matrix.slowdown[i][j] > 0.0) {
                row_sum += matrix.slowdown[i][j];
                ++row_n;
            }
            if (matrix.slowdown[j][i] > 0.0) {
                col_sum += matrix.slowdown[j][i];
                ++col_n;
            }
        }
        score.sensitivity = row_n > 0 ? row_sum / double(row_n) : 0.0;
        score.aggressiveness =
            col_n > 0 ? col_sum / double(col_n) : 0.0;
        scores.push_back(std::move(score));
    }
    return scores;
}

std::vector<ParetoRow>
paretoTable(const std::vector<CorunResult> &results)
{
    std::vector<ParetoRow> table;
    for (const CorunResult &result : results) {
        if (result.members.size() != 2)
            continue;
        ParetoRow row;
        row.pair = pairBase(result.name);
        row.partition = result.masks.empty()
            ? "free-for-all"
            : maskSetLabel(result.masks);
        row.throughput = result.throughput();
        row.worstSlowdown = result.worstSlowdown();
        table.push_back(std::move(row));
    }
    // Dominance within one pair's rows: a row is dominated when some
    // other row of the same pair is at least as good on both axes and
    // strictly better on one.
    for (std::size_t i = 0; i < table.size(); ++i) {
        for (std::size_t j = 0; j < table.size(); ++j) {
            if (i == j || table[j].pair != table[i].pair)
                continue;
            const bool no_worse =
                table[j].throughput >= table[i].throughput
                && table[j].worstSlowdown <= table[i].worstSlowdown;
            const bool better =
                table[j].throughput > table[i].throughput
                || table[j].worstSlowdown < table[i].worstSlowdown;
            if (no_worse && better) {
                table[i].dominated = true;
                break;
            }
        }
    }
    return table;
}

} // namespace corun
} // namespace spec17
