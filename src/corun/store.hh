/**
 * @file
 * Journal-backed store for co-run campaigns, mirroring the suite's
 * ResultCache on the shared v2 journal format (suite/journal.hh):
 * a campaign header binding config fingerprint + group digest +
 * shard identity, a CSV column header ending in record_hash, and one
 * hash-bound record per completed group in canonical group order.
 *
 * The same properties follow: crash safety via temp-then-rename
 * commits after every completed group (readers only ever see a valid
 * prefix), resume replays the verified prefix and simulates only the
 * remainder, round-robin shards merge back byte-identically with the
 * existing `spec17 merge` toolchain, and parallel sweeps journal
 * through the ordered observer so every checkpoint -- and the final
 * file -- is byte-identical to a sequential run.
 */

#ifndef SPEC17_CORUN_STORE_HH_
#define SPEC17_CORUN_STORE_HH_

#include <stdexcept>
#include <string>
#include <vector>

#include "corun/plan.hh"
#include "corun/runner.hh"
#include "suite/runner.hh"

namespace spec17 {
namespace corun {

/** Resume refused: the journal belongs to a different campaign. */
class CorunJournalMismatchError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** 16-hex-digit FNV-1a fingerprint of @p runner's config key. */
std::string corunConfigFingerprint(const CorunRunner &runner);

/** Serializes one result into its journal payload (no hash cell). */
std::string serializeCorunRow(const CorunResult &result);

/** Parses a payload back; empty name + @p reason set on damage. */
CorunResult parseCorunRow(const std::string &payload,
                          std::string &reason);

/**
 * Journal-backed co-run result store. One campaign = one planned
 * group enumeration (pre-shard) under one runner config.
 */
class CorunStore
{
  public:
    /** @param path journal base path ("" disables persistence);
     *  @param resume replay a partial journal instead of discarding. */
    explicit CorunStore(std::string path, bool resume = false);

    void setResume(bool resume) { resume_ = resume; }

    /** Restricts the sweep to one shard of the group enumeration. */
    void setShard(suite::ShardSpec shard) { shard_ = shard; }

    /** Journal file for the current shard:
     *  `<base>.corun.<size>[.shardKofN].csv` ("" when disabled). */
    std::string journalFile(const CorunRunner &runner) const;

    /**
     * Loads this shard's results for @p groups (the full canonical
     * enumeration, pre-shard) recorded under @p runner's fingerprint,
     * or runs the missing remainder and journals each completed
     * group. Resume semantics match ResultCache: a verified prefix is
     * replayed (flagged CorunResult::replayed) and a journal from a
     * different config key throws CorunJournalMismatchError; without
     * resume, any partial or foreign journal is a miss.
     *
     * @p observer sees every result of the shard -- replayed and
     * simulated -- in canonical order.
     */
    std::vector<CorunResult> runOrLoad(
        const CorunRunner &runner, const std::vector<CorunGroup> &groups,
        const CorunRunner::GroupObserver &observer = {});

    /** Removes this path's co-run journals (current shard included). */
    void invalidate() const;

  private:
    std::string path_;
    bool resume_ = false;
    suite::ShardSpec shard_;
    mutable bool journalWarned_ = false;
};

} // namespace corun
} // namespace spec17

#endif // SPEC17_CORUN_STORE_HH_
