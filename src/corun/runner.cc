#include "corun/runner.hh"

#include <memory>
#include <sstream>

#include "sim/multicore.hh"
#include "suite/arena_store.hh"
#include "suite/runner.hh"
#include "trace/arena.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/units.hh"
#include "workloads/builder.hh"

namespace spec17 {
namespace corun {

using counters::PerfEvent;
using workloads::WorkloadProfile;

double
CorunResult::throughput() const
{
    double sum = 0.0;
    for (const MemberResult &member : members) {
        if (member.cycles > 0.0)
            sum += member.soloCycles / member.cycles;
    }
    return sum;
}

double
CorunResult::worstSlowdown() const
{
    double worst = 0.0;
    for (const MemberResult &member : members)
        worst = std::max(worst, member.slowdown());
    return worst;
}

CorunRunner::CorunRunner(CorunOptions options)
    : options_(std::move(options))
{
    SPEC17_ASSERT(options_.sampleOps >= 1000,
                  "sample too small to be meaningful");
    SPEC17_ASSERT(options_.chunkOps >= 1, "chunk must be positive");
}

std::string
CorunRunner::configKey() const
{
    // Everything that affects result bytes, and nothing that does
    // not: jobs and shard identity partition work, so they stay out.
    // chunkOps is in -- it decides how finely contexts interleave on
    // the shared L3, which is contention semantics. Partition masks
    // are per-group, carried by each record's group name and the
    // campaign's group digest rather than here.
    static constexpr const char *kResultVersion = "spec17-corun-v1";
    std::ostringstream os;
    os << kResultVersion << "|" << options_.system.describe()
       << "|sample=" << options_.sampleOps
       << "|warmup=" << options_.warmupOps
       << "|chunk=" << options_.chunkOps << "|seed=" << options_.seed
       << "|size=" << workloads::inputSizeName(options_.size);
    return os.str();
}

namespace {

/**
 * Lowers one member to generator parameters. The trace seed depends
 * only on (root seed, profile, size) -- never on the group or the
 * context -- so a member replays the identical instruction stream
 * solo and in every group, which is what makes slowdown = group
 * cycles / solo cycles a like-for-like ratio. Context identity only
 * shifts the address space: members model separate processes, so
 * each context's regions land in a disjoint GiB-aligned range
 * (set-index-preserving, hence private-cache-neutral).
 */
trace::SyntheticTraceParams
memberParams(const CorunOptions &options, const WorkloadProfile &profile,
             unsigned context)
{
    workloads::AppInputPair pair;
    pair.profile = &profile;
    pair.size = options.size;
    pair.inputIndex = 0;
    workloads::BuildOptions build;
    build.sampleOps = options.sampleOps + options.warmupOps;
    build.seed = deriveSeed(options.seed, "corun-trace");
    trace::SyntheticTraceParams params =
        workloads::buildTraceParams(pair, build, 0);
    params.addressOffset = std::uint64_t(context) * 8 * kGiB;
    return params;
}

/**
 * The member's trace source: an arena replay when a store is attached
 * (the capture is shared between the solo baseline and every group
 * the member joins), a live generator otherwise. Identical draws
 * either way.
 */
std::shared_ptr<trace::TraceSource>
memberSource(const CorunOptions &options,
             const trace::SyntheticTraceParams &params)
{
    if (options.arenaStore != nullptr)
        return std::make_shared<trace::ReplaySource>(
            options.arenaStore->acquire(params));
    return std::make_shared<trace::SyntheticTraceGenerator>(params);
}

} // namespace

double
CorunRunner::soloCycles(const WorkloadProfile &profile) const
{
    // Computed outside the memo's lock; a racing worker produces the
    // identical value and first-write-wins resolves the tie.
    return solo_.getOrCompute(profile.name, [&] {
        // The baseline is the same machine with every other context
        // idle: a 1-context multicore run, so chunked stepping, warmup
        // semantics and the measured window match the group runs
        // exactly.
        sim::MulticoreSimulator machine(
            options_.system, 1,
            deriveSeed(deriveSeed(options_.seed, "corun-solo"),
                       profile.name));
        const trace::SyntheticTraceParams params =
            memberParams(options_, profile, 0);
        trace::SyntheticTraceGenerator prefiller(params);
        suite::prefillSteadyState(machine.mutableCore(0), prefiller);
        const std::vector<sim::SimResult> parts =
            machine.runEach({memberSource(options_, params)},
                            options_.chunkOps, options_.warmupOps);
        return parts.front().cycles;
    });
}

CorunResult
CorunRunner::runGroup(const CorunGroup &group) const
{
    const auto n = static_cast<unsigned>(group.members.size());
    SPEC17_ASSERT(n >= 1, "empty co-run group");

    CorunResult result;
    result.name = group.name();
    result.masks = group.masks;

    sim::MulticoreSimulator machine(
        options_.system, n,
        deriveSeed(deriveSeed(options_.seed, "corun-sim"),
                   result.name));
    if (!group.masks.empty()) {
        const std::string error = validateMasks(
            group.masks, options_.system.hierarchy.l3.assoc);
        SPEC17_ASSERT(error.empty(), "group ", result.name, ": ",
                      error);
        machine.setWayPartition(group.masks);
    }

    std::vector<std::shared_ptr<trace::TraceSource>> sources;
    sources.reserve(n);
    for (unsigned c = 0; c < n; ++c) {
        const trace::SyntheticTraceParams params =
            memberParams(options_, *group.members[c], c);
        trace::SyntheticTraceGenerator prefiller(params);
        suite::prefillSteadyState(machine.mutableCore(c), prefiller);
        sources.push_back(memberSource(options_, params));
    }

    const std::vector<sim::SimResult> parts =
        machine.runEach(sources, options_.chunkOps, options_.warmupOps);

    const sim::SetAssocCache &l3 = machine.sharedL3();
    for (unsigned c = 0; c < n; ++c) {
        MemberResult member;
        member.name = group.members[c]->name;
        member.cycles = parts[c].cycles;
        member.soloCycles = soloCycles(*group.members[c]);
        member.instructions =
            parts[c].counters.get(PerfEvent::InstRetiredAny);
        const sim::CacheContextStats &stats = l3.contextStats(c);
        member.l3Hits = stats.hits;
        member.l3Misses = stats.misses;
        member.evictionsInflicted = stats.evictionsInflicted;
        member.evictionsSuffered = stats.evictionsSuffered;
        member.occupancyLines = l3.contextOccupancy(c);
        result.members.push_back(std::move(member));
    }
    return result;
}

std::vector<CorunResult>
CorunRunner::runGroups(const std::vector<CorunGroup> &groups,
                       const GroupObserver &observer,
                       std::size_t index_offset, std::size_t total) const
{
    if (total == 0)
        total = index_offset + groups.size();
    return suite::runOrderedPool<CorunResult>(
        groups.size(), options_.jobs,
        [&](std::size_t i) { return runGroup(groups[i]); },
        [&](const CorunResult &result, std::size_t i) {
            if (observer)
                observer(result, index_offset + i, total);
        });
}

} // namespace corun
} // namespace spec17
