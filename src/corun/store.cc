#include "corun/store.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "suite/journal.hh"
#include "util/logging.hh"

namespace spec17 {
namespace corun {

namespace {

/** Payload columns; the journal's column header appends record_hash.
 *  `members` packs one `:`-separated cell per context, `;`-joined. */
std::string
columnHeader()
{
    return "name,masks,members,record_hash";
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(text);
    while (std::getline(stream, cell, sep))
        cells.push_back(cell);
    if (!text.empty() && text.back() == sep)
        cells.push_back("");
    return cells;
}

std::optional<double>
parseDouble(const std::string &cell)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(cell.c_str(), &end);
    if (cell.empty() || end == nullptr || *end != '\0' || errno != 0)
        return std::nullopt;
    return value;
}

std::optional<std::uint64_t>
parseUint(const std::string &cell, int base = 10)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long value =
        std::strtoull(cell.c_str(), &end, base);
    if (cell.empty() || end == nullptr || *end != '\0' || errno != 0)
        return std::nullopt;
    return value;
}

} // namespace

std::string
corunConfigFingerprint(const CorunRunner &runner)
{
    return suite::hex16(suite::fnv1a(runner.configKey()));
}

std::string
serializeCorunRow(const CorunResult &result)
{
    // Full double precision so the payload -- and therefore its hash,
    // and therefore the journal bytes -- is identical no matter which
    // process or shard writes it.
    std::ostringstream out;
    out.precision(17);
    out << result.name << ","
        << (result.masks.empty() ? "-" : maskSetLabel(result.masks));
    out << ",";
    for (std::size_t c = 0; c < result.members.size(); ++c) {
        const MemberResult &m = result.members[c];
        out << (c == 0 ? "" : ";") << m.name << ":" << m.cycles << ":"
            << m.soloCycles << ":" << m.instructions << ":" << m.l3Hits
            << ":" << m.l3Misses << ":" << m.evictionsInflicted << ":"
            << m.evictionsSuffered << ":" << m.occupancyLines;
    }
    return out.str();
}

CorunResult
parseCorunRow(const std::string &payload, std::string &reason)
{
    CorunResult result;
    const std::vector<std::string> cells = splitOn(payload, ',');
    if (cells.size() != 3) {
        reason = "expected 3 fields, got "
            + std::to_string(cells.size());
        return {};
    }
    result.name = cells[0];
    if (cells[1] != "-") {
        for (const std::string &mask : splitOn(cells[1], '+')) {
            if (mask.size() <= 2 || mask.compare(0, 2, "0x") != 0) {
                reason = "malformed mask cell '" + cells[1] + "'";
                return {};
            }
            const auto value = parseUint(mask.substr(2), 16);
            if (!value || *value > 0xffffffffULL) {
                reason = "unparsable mask '" + mask + "'";
                return {};
            }
            result.masks.push_back(
                static_cast<std::uint32_t>(*value));
        }
    }
    for (const std::string &cell : splitOn(cells[2], ';')) {
        const std::vector<std::string> fields = splitOn(cell, ':');
        if (fields.size() != 9) {
            reason = "expected 9 member fields, got "
                + std::to_string(fields.size());
            return {};
        }
        MemberResult m;
        m.name = fields[0];
        const auto cycles = parseDouble(fields[1]);
        const auto solo = parseDouble(fields[2]);
        const auto instr = parseUint(fields[3]);
        const auto hits = parseUint(fields[4]);
        const auto misses = parseUint(fields[5]);
        const auto inflicted = parseUint(fields[6]);
        const auto suffered = parseUint(fields[7]);
        const auto occupancy = parseUint(fields[8]);
        if (m.name.empty() || !cycles || !solo || !instr || !hits
            || !misses || !inflicted || !suffered || !occupancy) {
            reason = "unparsable member cell '" + cell + "'";
            return {};
        }
        m.cycles = *cycles;
        m.soloCycles = *solo;
        m.instructions = *instr;
        m.l3Hits = *hits;
        m.l3Misses = *misses;
        m.evictionsInflicted = *inflicted;
        m.evictionsSuffered = *suffered;
        m.occupancyLines = *occupancy;
        result.members.push_back(std::move(m));
    }
    if (result.name.empty()) {
        reason = "record without a group name";
        return {};
    }
    return result;
}

CorunStore::CorunStore(std::string path, bool resume)
    : path_(std::move(path)), resume_(resume)
{
}

std::string
CorunStore::journalFile(const CorunRunner &runner) const
{
    if (path_.empty())
        return "";
    std::string name = path_ + ".corun."
        + workloads::inputSizeName(runner.options().size);
    if (shard_.active())
        name += ".shard" + std::to_string(shard_.index) + "of"
            + std::to_string(shard_.count);
    return name + ".csv";
}

namespace {

/** Atomic temp-then-rename commit of the full journal image. */
void
commitJournal(const std::string &file, const std::string &content,
              bool quiet, bool &warned)
{
    const std::string temp = file + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc | std::ios::binary);
        if (!out) {
            if (!quiet || !warned)
                warn("cannot write co-run journal at ", temp);
            warned = true;
            return;
        }
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            warn("short write to ", temp, "; journal not committed");
            warned = true;
            std::remove(temp.c_str());
            return;
        }
    }
    if (std::rename(temp.c_str(), file.c_str()) != 0) {
        if (!quiet || !warned)
            warn("cannot commit co-run journal to ", file, ": ",
                 std::strerror(errno));
        warned = true;
        std::remove(temp.c_str());
    }
}

} // namespace

std::vector<CorunResult>
CorunStore::runOrLoad(const CorunRunner &runner,
                      const std::vector<CorunGroup> &groups,
                      const CorunRunner::GroupObserver &observer)
{
    const std::vector<CorunGroup> slice =
        suite::shardSlice(groups, shard_);
    const std::string fingerprint = corunConfigFingerprint(runner);
    const std::string digest = groupSetDigest(groups);
    const std::string file = journalFile(runner);

    std::vector<CorunResult> results;
    if (!file.empty()) {
        const suite::JournalScan scan = suite::scanJournal(file);
        if (scan.fileOk && !scan.headerOk) {
            warn("ignoring co-run journal at ", file, ": ",
                 scan.headerError);
        } else if (scan.headerOk
                   && scan.header.configFingerprint != fingerprint) {
            if (resume_) {
                throw CorunJournalMismatchError(
                    "refusing to resume from " + file
                    + ": journal was written under config "
                    + scan.header.configFingerprint
                    + " but this invocation has config " + fingerprint
                    + " (rerun without --resume to recompute and "
                      "overwrite)");
            }
        } else if (scan.headerOk
                   && (scan.header.pairsDigest != digest
                       || scan.header.shardIndex != shard_.index
                       || scan.header.shardCount != shard_.count
                       || scan.columnHeader != columnHeader())) {
            // Another campaign shape or build: a miss, not damage.
        } else if (scan.headerOk) {
            if (scan.corrupt) {
                warn("quarantining co-run journal tail of ", file,
                     " (", scan.corruptReason, ") after ",
                     scan.records.size(), " valid record(s)");
            }
            // Hash-verified records still cross the semantic parser
            // and the group-order check: only an order-matching
            // prefix is a checkpoint of *this* campaign.
            for (std::size_t i = 0;
                 i < scan.records.size() && i < slice.size(); ++i) {
                const std::string &record = scan.records[i];
                const std::string payload =
                    record.substr(0, record.rfind(','));
                std::string reason;
                CorunResult row = parseCorunRow(payload, reason);
                if (row.name.empty()) {
                    warn("quarantining co-run journal tail (", reason,
                         ") after ", i, " valid row(s)");
                    break;
                }
                if (row.name != slice[i].name()) {
                    warn("co-run journal row ", i, " names '",
                         row.name, "' where '", slice[i].name(),
                         "' was expected; discarding the rest");
                    break;
                }
                row.replayed = true;
                results.push_back(std::move(row));
            }
            if (results.size() == slice.size())
                return results;
            if (!resume_)
                results.clear();
            else if (!results.empty())
                inform("resuming co-run sweep from journal: ",
                       results.size(),
                       " group(s) replayed without re-simulation");
        }
    }

    if (observer) {
        for (std::size_t i = 0; i < results.size(); ++i)
            observer(results[i], i, slice.size());
    }
    journalWarned_ = false;

    suite::JournalHeader header;
    header.configFingerprint = fingerprint;
    header.pairsDigest = digest;
    header.shardIndex = shard_.index;
    header.shardCount = shard_.count;
    const auto save = [&](const std::vector<CorunResult> &rows,
                          bool quiet) {
        if (file.empty())
            return;
        if (quiet && journalWarned_)
            return;
        std::ostringstream image;
        image << header.serialize() << "\n" << columnHeader() << "\n";
        for (const CorunResult &row : rows) {
            const std::string payload = serializeCorunRow(row);
            image << payload << ","
                  << suite::recordHash(fingerprint, payload) << "\n";
        }
        commitJournal(file, image.str(), quiet, journalWarned_);
    };

    const std::vector<CorunGroup> remaining(
        slice.begin() + static_cast<std::ptrdiff_t>(results.size()),
        slice.end());
    // The remainder runs on the runner's ordered pool: completions
    // arrive in canonical order even at jobs > 1, so every checkpoint
    // below extends a valid journal prefix.
    runner.runGroups(
        remaining,
        [&](const CorunResult &result, std::size_t index,
            std::size_t total) {
            results.push_back(result);
            save(results, /*quiet=*/true);
            if (observer)
                observer(result, index, total);
        },
        results.size(), slice.size());
    save(results, /*quiet=*/false);
    return results;
}

void
CorunStore::invalidate() const
{
    if (path_.empty())
        return;
    for (workloads::InputSize size : workloads::kAllInputSizes) {
        std::string stem =
            path_ + ".corun." + workloads::inputSizeName(size);
        std::vector<std::string> files = {stem + ".csv"};
        if (shard_.active())
            files.push_back(stem + ".shard"
                            + std::to_string(shard_.index) + "of"
                            + std::to_string(shard_.count) + ".csv");
        for (const std::string &name : files) {
            std::remove(name.c_str());
            std::remove((name + ".tmp").c_str());
        }
    }
}

} // namespace corun
} // namespace spec17
