#include "corun/plan.hh"

#include <sstream>

#include "suite/journal.hh"
#include "util/logging.hh"

namespace spec17 {
namespace corun {

using workloads::WorkloadProfile;

std::string
maskSetLabel(const std::vector<std::uint32_t> &masks)
{
    std::ostringstream os;
    os << std::hex;
    for (std::size_t c = 0; c < masks.size(); ++c)
        os << (c == 0 ? "" : "+") << "0x" << masks[c];
    return os.str();
}

std::string
CorunGroup::name() const
{
    std::string label;
    for (std::size_t c = 0; c < members.size(); ++c) {
        SPEC17_ASSERT(members[c] != nullptr, "group member ", c,
                      " has no profile");
        label += (c == 0 ? "" : "+") + members[c]->name;
    }
    if (!masks.empty())
        label += "@" + maskSetLabel(masks);
    return label;
}

std::uint32_t
contiguousMask(unsigned low_way, unsigned num_ways)
{
    SPEC17_ASSERT(num_ways >= 1 && low_way + num_ways <= 32,
                  "contiguous mask [", low_way, ", ",
                  low_way + num_ways, ") out of range");
    const std::uint32_t width = num_ways >= 32
        ? ~std::uint32_t{0}
        : (std::uint32_t{1} << num_ways) - 1;
    return width << low_way;
}

std::string
validateMasks(const std::vector<std::uint32_t> &masks, unsigned l3_ways)
{
    SPEC17_ASSERT(l3_ways >= 1 && l3_ways <= 32,
                  "L3 associativity ", l3_ways, " out of range");
    const std::uint32_t full = l3_ways >= 32
        ? ~std::uint32_t{0}
        : (std::uint32_t{1} << l3_ways) - 1;
    for (std::size_t c = 0; c < masks.size(); ++c) {
        std::ostringstream os;
        if (masks[c] == 0) {
            os << "context " << c
               << " has an empty way mask (it could never allocate)";
            return os.str();
        }
        if ((masks[c] & ~full) != 0) {
            os << std::hex << "context " << c << " mask 0x" << masks[c]
               << " names ways beyond the " << std::dec << l3_ways
               << "-way L3 (legal bits: 0x" << std::hex << full << ")";
            return os.str();
        }
    }
    return "";
}

namespace {

/** Resolves a planned member, enforcing the single-thread contract. */
const WorkloadProfile &
memberProfile(const std::vector<WorkloadProfile> &suite,
              const std::string &name)
{
    const WorkloadProfile &profile = findProfile(suite, name);
    SPEC17_ASSERT(profile.numThreads == 1, profile.name,
                  " runs ", profile.numThreads,
                  " threads; co-run groups take single-threaded "
                  "(rate) applications only");
    return profile;
}

} // namespace

std::vector<CorunGroup>
planGroups(const std::vector<WorkloadProfile> &suite,
           const PlanOptions &options)
{
    SPEC17_ASSERT(options.groupSize == 2 || options.groupSize == 4,
                  "co-run groups are pairs or quartets, not ",
                  options.groupSize);
    SPEC17_ASSERT(!options.partitionSweep || options.groupSize == 2,
                  "the partition sweep is defined over pairs");
    SPEC17_ASSERT(options.apps.size() >= (options.includeSelf
                                          && options.groupSize == 2
                                              ? 1u
                                              : options.groupSize),
                  "not enough applications (", options.apps.size(),
                  ") for groups of ", options.groupSize);

    std::vector<const WorkloadProfile *> profiles;
    profiles.reserve(options.apps.size());
    for (const std::string &name : options.apps)
        profiles.push_back(&memberProfile(suite, name));

    std::vector<CorunGroup> groups;
    if (options.groupSize == 2) {
        for (std::size_t i = 0; i < profiles.size(); ++i) {
            for (std::size_t j = options.includeSelf ? i : i + 1;
                 j < profiles.size(); ++j) {
                CorunGroup pair;
                pair.members = {profiles[i], profiles[j]};
                groups.push_back(pair);
                if (!options.partitionSweep)
                    continue;
                for (unsigned k = 1; k < options.l3Ways; ++k) {
                    CorunGroup split = pair;
                    split.masks = {
                        contiguousMask(0, k),
                        contiguousMask(k, options.l3Ways - k)};
                    groups.push_back(std::move(split));
                }
            }
        }
        return groups;
    }

    for (std::size_t i = 0; i < profiles.size(); ++i)
        for (std::size_t j = i + 1; j < profiles.size(); ++j)
            for (std::size_t k = j + 1; k < profiles.size(); ++k)
                for (std::size_t l = k + 1; l < profiles.size(); ++l) {
                    CorunGroup quartet;
                    quartet.members = {profiles[i], profiles[j],
                                       profiles[k], profiles[l]};
                    groups.push_back(std::move(quartet));
                }
    return groups;
}

std::string
groupSetDigest(const std::vector<CorunGroup> &groups)
{
    std::uint64_t h = suite::fnv1a("corun");
    for (const CorunGroup &group : groups) {
        h = suite::fnv1a("|", h);
        h = suite::fnv1a(group.name(), h);
    }
    return suite::hex16(h);
}

} // namespace corun
} // namespace spec17
