/**
 * @file
 * Co-run interference analysis: turns a campaign's CorunResults into
 * the paper-style summary artifacts -- the pairwise slowdown matrix,
 * per-application sensitivity (how much an app suffers) and
 * aggressiveness (how much it makes others suffer) scores, and the
 * CAT-partition Pareto table trading system throughput against
 * worst-case slowdown per way split.
 */

#ifndef SPEC17_CORUN_ANALYSIS_HH_
#define SPEC17_CORUN_ANALYSIS_HH_

#include <string>
#include <vector>

#include "corun/runner.hh"

namespace spec17 {
namespace corun {

/**
 * Pairwise slowdown matrix over the distinct applications of a
 * campaign's *unpartitioned pair* results: slowdown[v][a] is how much
 * app v slows down when co-running with app a (co-run cycles / solo
 * cycles), 0 where the campaign holds no such pair. Self-pairs fill
 * the diagonal. Partitioned results and larger groups are skipped --
 * the matrix is a pairwise, free-for-all construct.
 */
struct SlowdownMatrix
{
    /** Row/column labels, in order of first appearance. */
    std::vector<std::string> apps;
    /** slowdown[victim][aggressor]; 0 = pair not in the campaign. */
    std::vector<std::vector<double>> slowdown;

    /** Index of @p app in apps, or apps.size() when absent. */
    std::size_t indexOf(const std::string &app) const;
};

/** Builds the matrix from @p results (see SlowdownMatrix). */
SlowdownMatrix buildMatrix(const std::vector<CorunResult> &results);

/**
 * Per-application interference scores derived from the matrix:
 * sensitivity = mean slowdown of the app across its co-runners (its
 * row), aggressiveness = mean slowdown the app inflicts on others
 * (its column). Means skip absent (zero) entries; an app with no
 * filled entries scores 0.
 */
struct AppScore
{
    std::string app;
    double sensitivity = 0.0;
    double aggressiveness = 0.0;
};

/** Scores every app of @p matrix, in matrix row order. */
std::vector<AppScore> scoreApps(const SlowdownMatrix &matrix);

/**
 * One row of the CAT-partition Pareto table: a pair under one way
 * split (or free-for-all), its throughput (weighted speedup) and
 * worst member slowdown, and whether another row of the *same pair*
 * dominates it (>= throughput and <= worst slowdown, one strictly).
 */
struct ParetoRow
{
    /** Pair identity without the mask suffix, e.g. "a+b". */
    std::string pair;
    /** Mask label ("0xf+0xffff0") or "free-for-all". */
    std::string partition;
    double throughput = 0.0;
    double worstSlowdown = 0.0;
    bool dominated = false;
};

/**
 * Builds the Pareto table from every pair result of @p results
 * (partitioned and free-for-all), preserving result order and
 * marking dominance within each pair's rows. Larger groups are
 * skipped.
 */
std::vector<ParetoRow> paretoTable(
    const std::vector<CorunResult> &results);

} // namespace corun
} // namespace spec17

#endif // SPEC17_CORUN_ANALYSIS_HH_
