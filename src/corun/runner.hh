/**
 * @file
 * Co-run interference engine: executes planned groups (corun/plan.hh)
 * on the shared-L3 multicore simulator and attributes the damage.
 *
 * Every member of a group runs its own trace on its own context --
 * private L1/L2, shared L3, disjoint GiB-aligned address spaces (the
 * members model separate processes, not threads) -- interleaved in
 * fixed chunks so their L3 traffic contends. The engine also runs
 * each distinct application solo on an otherwise-idle machine with
 * the *same* trace, which turns per-context cycles into per-app
 * slowdowns: slowdown = co-run cycles / solo cycles.
 *
 * Determinism contract (the suite runner's, extended): every seed
 * derives from (root seed, identity), a member's trace is identical
 * solo and in every group it joins, and group sweeps are
 * byte-identical at any --jobs count because they run on the suite's
 * ordered worker pool. chunkOps shapes contention (when a context
 * yields, the others pollute the L3) and masks reshape victim
 * selection, so both are part of the config key -- unlike jobs,
 * which is observation-only.
 */

#ifndef SPEC17_CORUN_RUNNER_HH_
#define SPEC17_CORUN_RUNNER_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "corun/plan.hh"
#include "sim/system_config.hh"
#include "suite/memo.hh"
#include "workloads/profile.hh"

namespace spec17 {
namespace suite {
class TraceArenaStore;
} // namespace suite

namespace corun {

/** Co-run engine configuration. */
struct CorunOptions
{
    sim::SystemConfig system = sim::SystemConfig::haswellXeonE52650Lv3();
    /** Micro-ops measured per member (after its warmup). */
    std::uint64_t sampleOps = 300'000;
    /** Micro-ops each member executes before measurement. */
    std::uint64_t warmupOps = 100'000;
    /**
     * Context-interleave granularity in micro-ops. Unlike the suite's
     * batching knobs this is *semantics*: it decides how long each
     * context owns the L3 between yields, i.e. how finely the members
     * contend -- so it is part of the config key.
     */
    std::uint64_t chunkOps = 10'000;
    /** Root seed for traces and replacement randomness. */
    std::uint64_t seed = 0x5bec17;
    /** Input size the members run. */
    workloads::InputSize size = workloads::InputSize::Ref;
    /** Worker threads for group sweeps (1 = sequential, 0 = hardware
     *  concurrency). Byte-identical at any count; NOT in the key. */
    unsigned jobs = 1;

    /**
     * Optional trace arena store (borrowed; may be shared with other
     * engines). When set, each member's trace is captured once and
     * replayed from the arena everywhere it runs -- solo baseline and
     * every group -- instead of being regenerated per run. Replay is
     * draw-for-draw identical to live generation, so results are
     * byte-identical with or without a store: NOT part of the config
     * key.
     */
    suite::TraceArenaStore *arenaStore = nullptr;
};

/** One member's share of a co-run result. */
struct MemberResult
{
    std::string name; //!< profile name, e.g. "505.mcf_r"
    /** Measured-window cycles in the group. */
    double cycles = 0.0;
    /** Measured-window cycles of the solo baseline (same trace,
     *  idle machine). */
    double soloCycles = 0.0;
    /** Instructions retired over the member's measured window. */
    std::uint64_t instructions = 0;

    /** @name Shared-L3 attribution (whole run, this context) */
    /// @{
    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;
    /** Other contexts' lines this member evicted. */
    std::uint64_t evictionsInflicted = 0;
    /** This member's lines evicted by others. */
    std::uint64_t evictionsSuffered = 0;
    /** L3 lines the member owned at the end of the run. */
    std::uint64_t occupancyLines = 0;
    /// @}

    /** Co-run cycles / solo cycles (>= ~1; 0 when solo is empty). */
    double slowdown() const
    {
        return soloCycles > 0.0 ? cycles / soloCycles : 0.0;
    }

    /** Instructions / cycles over the measured window. */
    double ipc() const
    {
        return cycles > 0.0 ? double(instructions) / cycles : 0.0;
    }
};

/** One group's full result. */
struct CorunResult
{
    std::string name; //!< CorunGroup::name() (the journal key)
    /** The group's partition masks (empty = free-for-all). */
    std::vector<std::uint32_t> masks;
    /** One entry per context, in context order. */
    std::vector<MemberResult> members;
    /** Replayed from the journal, not simulated this session. */
    bool replayed = false;

    /**
     * Weighted speedup (system throughput): sum over members of
     * solo/co-run cycles. N non-interfering members score N; heavy
     * contention drags it toward 1.
     */
    double throughput() const;

    /** Largest member slowdown (the fairness/victim metric). */
    double worstSlowdown() const;
};

/**
 * Runs co-run groups deterministically. Solo baselines are computed
 * once per distinct application (thread-safe, results independent of
 * discovery order) and shared across groups.
 */
class CorunRunner
{
  public:
    /** Sweep observer: (result, canonical index, sweep size),
     *  delivered in canonical order, never concurrently. */
    using GroupObserver = std::function<void(
        const CorunResult &, std::size_t index, std::size_t total)>;

    explicit CorunRunner(CorunOptions options = {});

    /** Solo measured-window cycles of @p profile (memoized). */
    double soloCycles(const workloads::WorkloadProfile &profile) const;

    /** Runs one group (plus any missing solo baselines). */
    CorunResult runGroup(const CorunGroup &group) const;

    /**
     * Runs @p groups on the ordered worker pool (CorunOptions::jobs):
     * results in canonical order, observer commits in canonical order
     * (indices from @p index_offset against @p total, 0 = offset +
     * size), byte-identical at any job count.
     */
    std::vector<CorunResult> runGroups(
        const std::vector<CorunGroup> &groups,
        const GroupObserver &observer = {},
        std::size_t index_offset = 0, std::size_t total = 0) const;

    const CorunOptions &options() const { return options_; }

    /** Stable fingerprint of everything that affects results --
     *  system, sample/warmup ops, chunkOps, seed, size. Group
     *  identity (members + masks) lives in each record's name, and
     *  the campaign's group enumeration in the journal digest. */
    std::string configKey() const;

  private:
    CorunOptions options_;
    /** Solo-cycle memo (group sweeps run on a worker pool). Values
     *  are deterministic, so SharedMemo's first-write-wins publish
     *  makes a concurrent duplicate computation benign. */
    mutable suite::SharedMemo<std::string, double> solo_;
};

} // namespace corun
} // namespace spec17

#endif // SPEC17_CORUN_RUNNER_HH_
