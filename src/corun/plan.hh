/**
 * @file
 * Co-run campaign planning: which groups of applications share the
 * machine, and under which CAT-style L3 way partitions.
 *
 * A co-run group is N single-threaded applications pinned to N
 * contexts of one MulticoreSimulator, contending for the shared L3
 * the way consolidated SPEC rate copies would. The planner
 * enumerates pairs (optionally including self-pairs, the classic
 * rate-2 configuration) or quartets over a chosen application subset,
 * and can expand each pair into a contiguous way-partition sweep --
 * every `k | ways-k` split of the L3, the shape an Intel `schemata`
 * CBM line expresses -- for the Pareto analysis of throughput versus
 * worst-case slowdown.
 *
 * Enumeration order is canonical and deterministic: it is the record
 * order of the co-run journal and the unit of round-robin sharding,
 * exactly like the suite's pair enumeration.
 */

#ifndef SPEC17_CORUN_PLAN_HH_
#define SPEC17_CORUN_PLAN_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/profile.hh"

namespace spec17 {
namespace corun {

/**
 * One scheduled co-run: the member applications (one per simulated
 * context, in context order) and an optional L3 way partition.
 */
struct CorunGroup
{
    /** One profile per context; borrowed from the suite vector. */
    std::vector<const workloads::WorkloadProfile *> members;
    /** CAT allocation bitmask per context (bit w = way w), or empty
     *  for free-for-all (no partition). Masks change victim selection
     *  -- they are result semantics, not observation. */
    std::vector<std::uint32_t> masks;

    /**
     * Canonical identity, e.g. "505.mcf_r+519.lbm_r" or, partitioned,
     * "505.mcf_r+519.lbm_r@0xf+0xffff0". Doubles as the journal
     * record key, so it encodes everything that distinguishes two
     * groups of one campaign.
     */
    std::string name() const;
};

/** "+"-joined lowercase hex masks ("0xf+0xffff0"), "" when empty. */
std::string maskSetLabel(const std::vector<std::uint32_t> &masks);

/** Contiguous allocation mask covering ways [low_way, low_way+n). */
std::uint32_t contiguousMask(unsigned low_way, unsigned num_ways);

/**
 * Validates a CAT mask set against an @p l3_ways -way cache: every
 * context needs a non-empty mask, and no mask may name ways beyond
 * the associativity. Returns "" when legal, else a diagnosis -- the
 * contained-error seam the CLI uses to reject bad --partition input
 * without tripping the simulator's assertions.
 */
std::string validateMasks(const std::vector<std::uint32_t> &masks,
                          unsigned l3_ways);

/** Co-run campaign shape. */
struct PlanOptions
{
    /** Application names (profiles resolved from the suite); order
     *  defines enumeration order. */
    std::vector<std::string> apps;
    /** Contexts per group: 2 (pairs) or 4 (quartets). */
    unsigned groupSize = 2;
    /** Include self-pairs (two copies of one application). Pairs
     *  only; quartets are strict combinations. */
    bool includeSelf = true;
    /**
     * Expand every pair into the contiguous partition sweep: the
     * unpartitioned run plus every `k | ways-k` split, k in
     * [1, ways-1]. Pairs only.
     */
    bool partitionSweep = false;
    /** L3 associativity the partition sweep splits. */
    unsigned l3Ways = 20;
};

/**
 * Enumerates the campaign's groups in canonical order: pairs as
 * (i, j) with i <= j (i < j without self-pairs) over the app order,
 * quartets as strict combinations i < j < k < l; with a partition
 * sweep, each pair is immediately followed by its splits in
 * ascending-k order. Every member must be a single-threaded profile
 * (co-running OpenMP speed applications would need more contexts
 * than the group declares); violations panic with the profile name.
 */
std::vector<CorunGroup> planGroups(
    const std::vector<workloads::WorkloadProfile> &suite,
    const PlanOptions &options);

/**
 * 16-hex-digit digest of the canonical group enumeration (every
 * group name, pre-shard) -- the co-run journal's analogue of the
 * suite's pair-set digest.
 */
std::string groupSetDigest(const std::vector<CorunGroup> &groups);

} // namespace corun
} // namespace spec17

#endif // SPEC17_CORUN_PLAN_HH_
