#include "telemetry/sampler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace spec17 {
namespace telemetry {

std::size_t
TimeSeries::columnIndex(const std::string &name) const
{
    const auto it = std::find(columns.begin(), columns.end(), name);
    SPEC17_ASSERT(it != columns.end(), "no series column named '",
                  name, "'");
    return static_cast<std::size_t>(it - columns.begin());
}

std::vector<double>
TimeSeries::column(const std::string &name) const
{
    const std::size_t index = columnIndex(name);
    std::vector<double> values;
    values.reserve(rows.size());
    for (const auto &row : rows)
        values.push_back(row[index]);
    return values;
}

double
TimeSeries::columnSum(const std::string &name) const
{
    const std::size_t index = columnIndex(name);
    double sum = 0.0;
    for (const auto &row : rows)
        sum += row[index];
    return sum;
}

std::vector<DerivedSpec>
defaultDerivedSpecs(const std::string &prefix)
{
    // The paper's Section-IV rate definitions, per interval: IPC,
    // L1m = l1_miss/loads, L2m = l2_miss/l1_miss, L3m =
    // l3_miss/l2_miss, mispredicts per executed branch.
    const std::string p = prefix + "perf.";
    return {
        {prefix + "ipc", p + "inst_retired.any",
         p + "cpu_clk_unhalted.ref_tsc"},
        {prefix + "l1_miss_rate", p + "mem_load_uops_retired.l1_miss",
         p + "mem_uops_retired.all_loads"},
        {prefix + "l2_miss_rate", p + "mem_load_uops_retired.l2_miss",
         p + "mem_load_uops_retired.l1_miss"},
        {prefix + "l3_miss_rate", p + "mem_load_uops_retired.l3_miss",
         p + "mem_load_uops_retired.l2_miss"},
        {prefix + "mispredict_rate", p + "br_misp_exec.all_branches",
         p + "br_inst_exec.all_branches"},
    };
}

IntervalSampler::IntervalSampler(const MetricsRegistry &registry,
                                 std::uint64_t interval_ops,
                                 std::vector<DerivedSpec> derived)
    : registry_(registry), derived_(std::move(derived))
{
    SPEC17_ASSERT(interval_ops > 0, "sampling interval must be > 0");
    series_.intervalOps = interval_ops;
}

void
IntervalSampler::begin()
{
    SPEC17_ASSERT(!begun_, "IntervalSampler is single-use");
    begun_ = true;
    series_.columns.clear();
    for (std::size_t m = 0; m < registry_.size(); ++m)
        series_.columns.push_back(registry_.at(m).name);
    for (const DerivedSpec &spec : derived_) {
        // Resolve eagerly so a typo'd spec fails at begin(), not on
        // the first interval of a long run.
        registry_.indexOf(spec.numerator);
        registry_.indexOf(spec.denominator);
        series_.columns.push_back(spec.name);
    }
    last_ = registry_.readAll();
    nextBoundary_ = series_.intervalOps;
}

std::uint64_t
IntervalSampler::opsUntilNextSample(std::uint64_t measured_ops) const
{
    SPEC17_ASSERT(begun_, "sampler not begun");
    if (measured_ops >= nextBoundary_)
        return 0;
    return nextBoundary_ - measured_ops;
}

void
IntervalSampler::emitRow(std::uint64_t at_ops)
{
    const std::vector<double> now = registry_.readAll();
    std::vector<double> row;
    row.reserve(series_.columns.size());
    for (std::size_t m = 0; m < now.size(); ++m) {
        row.push_back(registry_.at(m).kind == MetricKind::Counter
                          ? now[m] - last_[m]
                          : now[m]);
    }
    for (const DerivedSpec &spec : derived_) {
        const std::size_t num = registry_.indexOf(spec.numerator);
        const std::size_t den = registry_.indexOf(spec.denominator);
        const double delta_den = now[den] - last_[den];
        row.push_back(delta_den != 0.0
                          ? (now[num] - last_[num]) / delta_den
                          : 0.0);
    }
    series_.endOps.push_back(at_ops);
    series_.rows.push_back(std::move(row));
    last_ = now;
}

void
IntervalSampler::onProgress(std::uint64_t measured_ops)
{
    SPEC17_ASSERT(begun_ && !finished_, "sampler not active");
    if (coarse_) {
        // Coarse mode: the driver's chunks may straddle boundaries;
        // emit one row per crossing at the real measured count (a
        // chunk crossing several boundaries still yields one row --
        // there is no intermediate state to sample).
        if (measured_ops >= nextBoundary_) {
            emitRow(measured_ops);
            while (nextBoundary_ <= measured_ops)
                nextBoundary_ += series_.intervalOps;
        }
        return;
    }
    SPEC17_ASSERT(measured_ops <= nextBoundary_,
                  "chunk overran the sampling boundary: ", measured_ops,
                  " > ", nextBoundary_);
    if (measured_ops == nextBoundary_) {
        emitRow(measured_ops);
        nextBoundary_ += series_.intervalOps;
    }
}

void
IntervalSampler::finish(std::uint64_t measured_ops)
{
    SPEC17_ASSERT(begun_ && !finished_, "sampler not active");
    finished_ = true;
    // Flush only when ops accrued since the last emitted row. (In
    // strict mode the last row sits exactly on nextBoundary_ -
    // intervalOps; in coarse mode it may sit past it, so compare
    // against the row actually emitted, which covers both.)
    const std::uint64_t last_emitted =
        series_.endOps.empty() ? 0 : series_.endOps.back();
    if (measured_ops > last_emitted)
        emitRow(measured_ops);
}

double
coefficientOfVariation(const TimeSeries &series,
                       const std::string &column)
{
    const std::vector<double> values = series.column(column);
    if (values.size() < 2)
        return 0.0;
    double mean = 0.0;
    for (double v : values)
        mean += v;
    mean /= double(values.size());
    if (mean == 0.0)
        return 0.0;
    double var = 0.0;
    for (double v : values)
        var += (v - mean) * (v - mean);
    var /= double(values.size());
    return std::sqrt(var) / mean;
}

} // namespace telemetry
} // namespace spec17
