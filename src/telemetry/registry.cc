#include "telemetry/registry.hh"

#include <algorithm>

#include "counters/perf_event.hh"
#include "sim/multicore.hh"
#include "sim/simulator.hh"
#include "trace/arena.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace spec17 {
namespace telemetry {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
    }
    SPEC17_PANIC("unknown MetricKind ", int(kind));
}

void
MetricsRegistry::add(MetricDesc metric)
{
    SPEC17_ASSERT(!metric.name.empty(), "metric without a name");
    SPEC17_ASSERT(metric.read != nullptr,
                  "metric '", metric.name, "' without a reader");
    SPEC17_ASSERT(index_.count(metric.name) == 0,
                  "metric '", metric.name, "' registered twice");
    index_[metric.name] = metrics_.size();
    metrics_.push_back(std::move(metric));
}

void
MetricsRegistry::registerCounter(std::string name,
                                 std::string description,
                                 std::function<double()> read)
{
    add({std::move(name), MetricKind::Counter, std::move(description),
         std::move(read)});
}

void
MetricsRegistry::registerGauge(std::string name, std::string description,
                               std::function<double()> read)
{
    add({std::move(name), MetricKind::Gauge, std::move(description),
         std::move(read)});
}

const MetricDesc &
MetricsRegistry::at(std::size_t index) const
{
    SPEC17_ASSERT(index < metrics_.size(), "metric index ", index,
                  " out of range");
    return metrics_[index];
}

bool
MetricsRegistry::contains(const std::string &name) const
{
    return index_.count(name) > 0;
}

std::size_t
MetricsRegistry::indexOf(const std::string &name) const
{
    const auto it = index_.find(name);
    SPEC17_ASSERT(it != index_.end(), "no metric named '", name, "'");
    return it->second;
}

std::vector<double>
MetricsRegistry::readAll() const
{
    std::vector<double> values;
    values.reserve(metrics_.size());
    for (const MetricDesc &metric : metrics_)
        values.push_back(metric.read());
    return values;
}

namespace {

void
registerCache(MetricsRegistry &registry, const sim::SetAssocCache &cache,
              const std::string &prefix)
{
    const std::string base = prefix + cache.config().name + ".";
    registry.registerCounter(base + "accesses", "demand accesses",
                             [&cache] {
                                 return double(cache.stats().accesses());
                             });
    registry.registerCounter(base + "misses", "demand misses", [&cache] {
        return double(cache.stats().misses);
    });
}

void
registerTlb(MetricsRegistry &registry, const sim::Tlb &tlb,
            const std::string &name)
{
    registry.registerCounter(name + ".accesses",
                             "translations requested", [&tlb] {
                                 return double(tlb.stats().accesses);
                             });
    registry.registerCounter(name + ".walks",
                             "full misses (page walks)", [&tlb] {
                                 return double(tlb.stats().walks);
                             });
}

} // namespace

void
registerSimulatorMetrics(MetricsRegistry &registry,
                         const sim::CpuSimulator &simulator,
                         const std::string &prefix)
{
    using counters::PerfEvent;

    // The perf counter set first: these columns reconcile exactly
    // with the aggregate CounterSet a run reports. Cycles read the
    // core clock (CounterSet only materializes them on snapshot);
    // rss is a gauge; vsz is only known at finish() and is skipped.
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<PerfEvent>(e);
        const std::string name =
            prefix + "perf." + counters::perfEventName(event);
        if (event == PerfEvent::VszBytes)
            continue;
        if (event == PerfEvent::CpuClkUnhaltedRefTsc) {
            registry.registerCounter(name, "core clock cycles",
                                     [&simulator] {
                                         return simulator.core().cycles();
                                     });
        } else if (event == PerfEvent::RssBytes) {
            registry.registerGauge(
                name, "touched-page bytes", [&simulator] {
                    return double(simulator.footprint().rssBytes());
                });
        } else {
            registry.registerCounter(
                name, "simulated perf event", [&simulator, event] {
                    return double(simulator.rawCounters().get(event));
                });
        }
    }

    registry.registerCounter(prefix + "core.retired",
                             "micro-ops retired", [&simulator] {
                                 return double(simulator.core().retired());
                             });
    registry.registerCounter(prefix + "core.cycles", "cycles consumed",
                             [&simulator] {
                                 return simulator.core().cycles();
                             });

    registerCache(registry, simulator.hierarchy().l1i(), prefix);
    registerCache(registry, simulator.hierarchy().l1d(), prefix);
    registerCache(registry, simulator.hierarchy().l2(), prefix);
    registerCache(registry, simulator.hierarchy().l3(), prefix);

    registry.registerCounter(prefix + "branch.executed",
                             "branches resolved", [&simulator] {
                                 return double(
                                     simulator.branchUnit().totals()
                                         .executed);
                             });
    registry.registerCounter(
        prefix + "branch.mispredicted", "mispredicted branches",
        [&simulator] {
            return double(
                simulator.branchUnit().totals().mispredicted);
        });

    registerTlb(registry, simulator.dtlb(), prefix + "dtlb");
    registerTlb(registry, simulator.itlb(), prefix + "itlb");

    registry.registerGauge(prefix + "footprint.pages",
                           "distinct 4 KiB pages touched", [&simulator] {
                               return double(
                                   simulator.footprint().pagesTouched());
                           });

    // Microarchitecture-mechanism counters last: registration order
    // IS the export column order, so new metrics must append, never
    // interleave (see docs/determinism.md).
    if (const sim::Prefetcher *pf = simulator.hierarchy().prefetcher()) {
        const std::string base =
            prefix + "prefetcher." + pf->name() + ".";
        registry.registerCounter(base + "issued", "prefetches issued",
                                 [pf] { return double(pf->issued()); });
        registry.registerCounter(
            base + "useful", "prefetched lines later demand-hit",
            [&simulator] {
                return double(simulator.hierarchy().prefetcherUseful());
            });
        registry.registerCounter(base + "late",
                                 "demand misses on recently issued lines",
                                 [pf] { return double(pf->late()); });
    }
    if (const sim::Prefetcher *pf =
            simulator.hierarchy().l2Prefetcher()) {
        const std::string base =
            prefix + "l2_prefetcher." + pf->name() + ".";
        registry.registerCounter(base + "issued", "prefetches issued",
                                 [pf] { return double(pf->issued()); });
        registry.registerCounter(
            base + "useful", "prefetched lines later demand-hit",
            [&simulator] {
                return double(
                    simulator.hierarchy().l2PrefetcherUseful());
            });
        registry.registerCounter(base + "late",
                                 "demand misses on recently issued lines",
                                 [pf] { return double(pf->late()); });
    }
    if (simulator.hierarchy().hasWayPrediction()) {
        const sim::SetAssocCache &l1d = simulator.hierarchy().l1d();
        registry.registerCounter(
            prefix + "l1d.way_predictions", "load hits way-predicted",
            [&l1d] { return double(l1d.stats().wayPredictions); });
        registry.registerCounter(
            prefix + "l1d.way_mispredicts",
            "load hits that predicted the wrong way", [&l1d] {
                return double(l1d.stats().wayMispredicts);
            });
        registry.registerCounter(
            prefix + "l1d.way_penalty_cycles",
            "extra load cycles from wrong-way probes", [&l1d] {
                return double(l1d.stats().wayPenaltyCycles);
            });
    }
}

void
registerMulticoreMetrics(MetricsRegistry &registry,
                         const sim::MulticoreSimulator &multicore)
{
    using counters::PerfEvent;

    // Aggregate perf columns first, mirroring the merged CounterSet a
    // multicore run reports: events sum across contexts; ref_tsc
    // accumulates every thread's cycles (the perf-stat convention the
    // merge also follows); rss is the largest single-context
    // footprint (one shared address space); vsz is only known at
    // finish() and is skipped, as in the single-core registration.
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<PerfEvent>(e);
        const std::string name =
            "perf." + std::string(counters::perfEventName(event));
        if (event == PerfEvent::VszBytes)
            continue;
        if (event == PerfEvent::CpuClkUnhaltedRefTsc) {
            registry.registerCounter(
                name, "cycles summed across contexts", [&multicore] {
                    double sum = 0.0;
                    for (unsigned c = 0; c < multicore.numCores(); ++c)
                        sum += multicore.core(c).core().cycles();
                    return sum;
                });
        } else if (event == PerfEvent::RssBytes) {
            registry.registerGauge(
                name, "largest single-context touched-page bytes",
                [&multicore] {
                    double max_rss = 0.0;
                    for (unsigned c = 0; c < multicore.numCores(); ++c)
                        max_rss = std::max(
                            max_rss, double(multicore.core(c)
                                                .footprint()
                                                .rssBytes()));
                    return max_rss;
                });
        } else {
            registry.registerCounter(
                name, "simulated perf event summed across contexts",
                [&multicore, event] {
                    double sum = 0.0;
                    for (unsigned c = 0; c < multicore.numCores(); ++c)
                        sum += double(multicore.core(c)
                                          .rawCounters()
                                          .get(event));
                    return sum;
                });
        }
    }

    for (unsigned c = 0; c < multicore.numCores(); ++c) {
        registerSimulatorMetrics(registry, multicore.core(c),
                                 "core" + std::to_string(c) + ".");
    }

    // Shared-L3 attribution: per-context demand traffic and current
    // occupancy, the contention signals the co-run engine reports.
    const sim::SetAssocCache &l3 = multicore.sharedL3();
    for (unsigned ctx = 0; ctx < l3.numContexts(); ++ctx) {
        const std::string base =
            "l3.shared.ctx" + std::to_string(ctx) + ".";
        registry.registerCounter(
            base + "hits", "shared-L3 demand hits by this context",
            [&l3, ctx] { return double(l3.contextStats(ctx).hits); });
        registry.registerCounter(
            base + "misses", "shared-L3 demand misses by this context",
            [&l3, ctx] { return double(l3.contextStats(ctx).misses); });
        registry.registerCounter(
            base + "evictions_suffered",
            "this context's lines evicted by others", [&l3, ctx] {
                return double(l3.contextStats(ctx).evictionsSuffered);
            });
        registry.registerCounter(
            base + "evictions_inflicted",
            "other contexts' lines this context evicted", [&l3, ctx] {
                return double(l3.contextStats(ctx).evictionsInflicted);
            });
        registry.registerGauge(
            base + "occupancy_lines",
            "resident lines owned by this context", [&l3, ctx] {
                return double(l3.contextOccupancy(ctx));
            });
    }
}

void
registerTraceMetrics(MetricsRegistry &registry,
                     const trace::SyntheticTraceGenerator &generator,
                     const std::string &prefix)
{
    registry.registerCounter(prefix + "trace.emitted",
                             "micro-ops emitted by the generator",
                             [&generator] {
                                 return double(generator.emittedOps());
                             });
}

void
registerTraceMetrics(MetricsRegistry &registry,
                     const trace::ReplaySource &replay,
                     const std::string &prefix)
{
    // Same column name and description as the generator overload:
    // replay is observation-equivalent, including its telemetry.
    registry.registerCounter(prefix + "trace.emitted",
                             "micro-ops emitted by the generator",
                             [&replay] {
                                 return double(replay.deliveredOps());
                             });
}

} // namespace telemetry
} // namespace spec17
