/**
 * @file
 * Live sweep progress: a throttled reporter that turns per-pair
 * completions into structured `sweep_progress` log events (pair k/N,
 * attempts, ops/s, ETA), so a multi-minute sweep is observable from
 * its stderr stream instead of silent until the final table.
 */

#ifndef SPEC17_TELEMETRY_PROGRESS_HH_
#define SPEC17_TELEMETRY_PROGRESS_HH_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace spec17 {
namespace telemetry {

/**
 * Emits at most one progress event per throttle window (plus always
 * the final item), rate-limiting log volume on fast sweeps while
 * keeping slow ones talkative. The final item is detected by count
 * (every item reported), not by index, so it fires even when
 * parallel workers complete out of order. Safe for concurrent
 * callers. Stateless across sweeps: construct one reporter per
 * sweep.
 */
class ProgressReporter
{
  public:
    struct Options
    {
        /** Minimum milliseconds between events (0 = every item). */
        std::uint64_t minIntervalMs = 1000;
        /** Event destination; nullptr logs via logEvent (stderr). */
        std::ostream *stream = nullptr;
        /** Shard identity ("K/N") stamped on every event of a
         *  sharded campaign, so interleaved shard logs stay
         *  attributable; empty (the default) omits the field. */
        std::string shardLabel;
    };

    ProgressReporter() : ProgressReporter(Options{}) {}
    explicit ProgressReporter(Options options);

    /**
     * Records completion of 0-based item @p index of @p total.
     * @param name the completed item (pair display name).
     * @param ops micro-ops the item retired (0 when unknown).
     * @param attempts attempts the item consumed.
     * @param errored whether the item exhausted its attempts.
     * @param replayed true when the item was replayed from the
     *        result-cache journal instead of simulated. Replays
     *        complete in microseconds, so they count toward done/N
     *        but are excluded from the ops/s rate and the ETA --
     *        otherwise a resumed sweep projects an absurd finish
     *        time from its replay burst.
     */
    void onItemDone(const std::string &name, std::size_t index,
                    std::size_t total, std::uint64_t ops,
                    unsigned attempts, bool errored,
                    bool replayed = false);

    /** Items reported so far. */
    std::size_t itemsDone() const { return done_; }

  private:
    Options options_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastEmit_;
    /** Serializes callers: parallel-sweep workers may report through
     *  seams that are not already ordered (e.g. direct use). */
    std::mutex mutex_;
    std::size_t done_ = 0;
    std::size_t replayedCount_ = 0;
    /** Micro-ops retired by simulated (non-replayed) items only;
     *  rate and ETA estimates are based on these. */
    std::uint64_t simulatedOps_ = 0;
    std::size_t erroredCount_ = 0;
};

} // namespace telemetry
} // namespace spec17

#endif // SPEC17_TELEMETRY_PROGRESS_HH_
