/**
 * @file
 * Live sweep progress: a throttled reporter that turns per-pair
 * completions into structured `sweep_progress` log events (pair k/N,
 * attempts, ops/s, ETA), so a multi-minute sweep is observable from
 * its stderr stream instead of silent until the final table.
 */

#ifndef SPEC17_TELEMETRY_PROGRESS_HH_
#define SPEC17_TELEMETRY_PROGRESS_HH_

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace spec17 {
namespace telemetry {

/**
 * Emits at most one progress event per throttle window (plus always
 * the final item), rate-limiting log volume on fast sweeps while
 * keeping slow ones talkative. Stateless across sweeps: construct
 * one reporter per sweep.
 */
class ProgressReporter
{
  public:
    struct Options
    {
        /** Minimum milliseconds between events (0 = every item). */
        std::uint64_t minIntervalMs = 1000;
        /** Event destination; nullptr logs via logEvent (stderr). */
        std::ostream *stream = nullptr;
    };

    ProgressReporter() : ProgressReporter(Options{}) {}
    explicit ProgressReporter(Options options);

    /**
     * Records completion of 0-based item @p index of @p total.
     * @param name the completed item (pair display name).
     * @param ops micro-ops the item retired (0 when unknown).
     * @param attempts attempts the item consumed.
     * @param errored whether the item exhausted its attempts.
     */
    void onItemDone(const std::string &name, std::size_t index,
                    std::size_t total, std::uint64_t ops,
                    unsigned attempts, bool errored);

    /** Items reported so far. */
    std::size_t itemsDone() const { return done_; }

  private:
    Options options_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastEmit_;
    std::size_t done_ = 0;
    std::uint64_t totalOps_ = 0;
    std::size_t erroredCount_ = 0;
};

} // namespace telemetry
} // namespace spec17

#endif // SPEC17_TELEMETRY_PROGRESS_HH_
