/**
 * @file
 * Interval sampler: snapshots a MetricsRegistry at deterministic
 * micro-op boundaries and accumulates a per-run TimeSeries, the
 * simulated equivalent of `perf stat -I` over one application. The
 * driver (the suite runner) bounds its simulation chunks with
 * opsUntilNextSample() so samples land exactly on interval
 * boundaries: same seed + same interval => byte-identical series.
 */

#ifndef SPEC17_TELEMETRY_SAMPLER_HH_
#define SPEC17_TELEMETRY_SAMPLER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hh"

namespace spec17 {
namespace telemetry {

/**
 * One run's interval series: a named column per registered metric
 * (counters as per-interval deltas, gauges as end-of-interval
 * levels) plus derived ratio columns (IPC, miss rates, ...), one row
 * per interval.
 */
struct TimeSeries
{
    /** Micro-ops per full interval (the last row may be shorter). */
    std::uint64_t intervalOps = 0;
    std::vector<std::string> columns;
    /** Cumulative measured micro-ops at the end of each interval. */
    std::vector<std::uint64_t> endOps;
    /** rows[i][j] = value of columns[j] over interval i. */
    std::vector<std::vector<double>> rows;

    std::size_t numIntervals() const { return rows.size(); }
    /** Index of @p name in columns; panics when absent. */
    std::size_t columnIndex(const std::string &name) const;
    /** Whole column by name. */
    std::vector<double> column(const std::string &name) const;
    /** Sum of a column (counter columns sum to the aggregate). */
    double columnSum(const std::string &name) const;
};

/**
 * A derived per-interval ratio: delta(numerator) / delta(denominator)
 * within each interval, 0 when the denominator interval is empty.
 */
struct DerivedSpec
{
    std::string name;
    std::string numerator;   //!< raw column name
    std::string denominator; //!< raw column name
};

/**
 * The standard derived set over registerSimulatorMetrics() columns
 * prefixed with @p prefix: ipc, l1/l2/l3 load miss rates (the paper's
 * Fig. 5 definitions) and the branch mispredict rate.
 */
std::vector<DerivedSpec> defaultDerivedSpecs(
    const std::string &prefix = "");

/**
 * Drives snapshot-and-diff sampling over one registry. Lifecycle:
 * begin() right after warmup (baseline), then after every simulation
 * chunk onProgress(measured_ops); chunks must never overrun a
 * boundary (cap them with opsUntilNextSample()). finish() flushes the
 * final partial interval. A sampler is single-use.
 */
class IntervalSampler
{
  public:
    /**
     * @param registry metrics to sample (borrowed).
     * @param interval_ops micro-ops per interval; must be > 0.
     * @param derived ratio columns appended after the raw columns;
     *        specs naming absent raw columns panic at begin().
     */
    IntervalSampler(const MetricsRegistry &registry,
                    std::uint64_t interval_ops,
                    std::vector<DerivedSpec> derived = {});

    /**
     * Coarse-boundary mode for drivers that cannot cap their chunks
     * at sampling boundaries (the multicore interleaver: its chunk
     * size shapes L3 contention, so capping it for telemetry would
     * change results). onProgress() then emits a row whenever a
     * boundary is crossed -- at the actual measured-op count, which
     * endOps records -- instead of panicking on overrun. Rows remain
     * deterministic for a fixed chunk size. Set before begin().
     */
    void setCoarseBoundaries(bool coarse) { coarse_ = coarse; }

    /** Takes the baseline snapshot; measured ops start counting at 0. */
    void begin();

    /** Micro-ops the driver may simulate before the next boundary. */
    std::uint64_t opsUntilNextSample(std::uint64_t measured_ops) const;

    /** Records progress; emits a row when a boundary is reached.
     *  Panics if a chunk overran the boundary. */
    void onProgress(std::uint64_t measured_ops);

    /** Flushes the final partial interval (if any ops since the last
     *  boundary) and freezes the series. */
    void finish(std::uint64_t measured_ops);

    const TimeSeries &series() const { return series_; }

  private:
    void emitRow(std::uint64_t at_ops);

    const MetricsRegistry &registry_;
    std::vector<DerivedSpec> derived_;
    std::vector<double> last_;
    std::uint64_t nextBoundary_ = 0;
    bool begun_ = false;
    bool finished_ = false;
    bool coarse_ = false;
    TimeSeries series_;
};

/**
 * Coefficient of variation (stddev/mean) of a column, the first-order
 * phase-behaviour signal: 0 for flat runs, large for phased ones.
 * Returns 0 with fewer than two intervals or a zero mean.
 */
double coefficientOfVariation(const TimeSeries &series,
                              const std::string &column);

} // namespace telemetry
} // namespace spec17

#endif // SPEC17_TELEMETRY_SAMPLER_HH_
