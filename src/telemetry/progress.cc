#include "telemetry/progress.hh"

#include <cstdio>
#include <vector>

#include "util/logging.hh"

namespace spec17 {
namespace telemetry {

namespace {

std::string
fmtFixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

} // namespace

ProgressReporter::ProgressReporter(Options options)
    : options_(options), start_(std::chrono::steady_clock::now()),
      lastEmit_(start_ - std::chrono::hours(1))
{
}

void
ProgressReporter::onItemDone(const std::string &name, std::size_t index,
                             std::size_t total, std::uint64_t ops,
                             unsigned attempts, bool errored,
                             bool replayed)
{
    (void)index;
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (replayed)
        ++replayedCount_;
    else
        simulatedOps_ += ops;
    erroredCount_ += errored ? 1 : 0;

    const auto now = std::chrono::steady_clock::now();
    // Count-based, not index-based: with parallel workers the item
    // carrying the last index can complete long before the sweep is
    // actually done, and the truly last completion can carry any
    // index. Every item is reported exactly once, so done_ == total
    // identifies the final event reliably.
    const bool last = done_ == total;
    const auto since_emit =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - lastEmit_)
            .count();
    if (!last
        && static_cast<std::uint64_t>(since_emit)
            < options_.minIntervalMs)
        return;
    lastEmit_ = now;

    const double elapsed_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            now - start_)
            .count();
    // Rate and ETA are built from simulated items only: journal
    // replays finish in microseconds and would otherwise make a
    // resumed sweep project a wildly optimistic finish time.
    const std::size_t simulated_done = done_ - replayedCount_;
    const double ops_per_s =
        elapsed_s > 0.0 ? double(simulatedOps_) / elapsed_s : 0.0;
    const double eta_s = simulated_done > 0 && total > done_
        ? elapsed_s / double(simulated_done) * double(total - done_)
        : 0.0;

    std::vector<LogField> fields;
    if (!options_.shardLabel.empty())
        fields.push_back({"shard", options_.shardLabel});
    fields.push_back({"pair", name});
    fields.push_back(
        {"done", std::to_string(done_) + "/" + std::to_string(total)});
    fields.push_back({"attempts", std::to_string(attempts)});
    fields.push_back({"errored", std::to_string(erroredCount_)});
    fields.push_back({"ops_per_s", fmtFixed(ops_per_s, 0)});
    fields.push_back({"elapsed_s", fmtFixed(elapsed_s, 1)});
    fields.push_back({"eta_s", fmtFixed(eta_s, 1)});
    if (options_.stream != nullptr)
        *options_.stream << formatEvent("sweep_progress", fields)
                         << "\n";
    else
        logEvent("sweep_progress", fields);
}

} // namespace telemetry
} // namespace spec17
