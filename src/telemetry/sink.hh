/**
 * @file
 * Telemetry sinks: where completed per-pair interval series go. A
 * file sink exports perf-stat-I-style CSV or JSON-lines, committed
 * atomically (write temp, then rename) like the result-cache
 * journal; an in-memory sink backs tests and in-process consumers.
 */

#ifndef SPEC17_TELEMETRY_SINK_HH_
#define SPEC17_TELEMETRY_SINK_HH_

#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "telemetry/sampler.hh"

namespace spec17 {
namespace telemetry {

/** Consumer of completed per-pair series. */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /**
     * Persists the completed series of one pair. Only successful
     * attempts are ever written: a retried attempt's partial series
     * is discarded by the runner, never handed to a sink.
     *
     * Parallel sweeps (RunnerOptions::jobs > 1) call this from
     * worker threads, so implementations must tolerate concurrent
     * callers (the bundled sinks serialize internally).
     */
    virtual void write(const std::string &pair_name,
                       const TimeSeries &series) = 0;
};

/** Renders `interval,end_ops,<column>...` CSV rows (17 significant
 *  digits, so reruns compare byte-identically). */
void renderSeriesCsv(const TimeSeries &series, std::ostream &out);

/** Renders one JSON object per interval (JSON-lines). */
void renderSeriesJsonl(const TimeSeries &series, std::ostream &out);

/** In-memory sink for tests and in-process consumers. Writes are
 *  serialized; read accessors (all/find) are for after the sweep has
 *  joined its workers, not for mid-sweep polling. */
class MemorySink : public TelemetrySink
{
  public:
    void write(const std::string &pair_name,
               const TimeSeries &series) override;

    const std::map<std::string, TimeSeries> &all() const
    {
        return series_;
    }
    /** Series for @p pair_name, or nullptr. */
    const TimeSeries *find(const std::string &pair_name) const;

  private:
    std::mutex mutex_;
    std::map<std::string, TimeSeries> series_;
};

/**
 * Writes one file per pair into a directory (created on first
 * write): `<dir>/<pair>.telemetry.csv` or `.jsonl`. Commits are
 * atomic temp+rename; an unwritable directory warns once and drops
 * subsequent writes instead of failing the sweep.
 */
class FileSink : public TelemetrySink
{
  public:
    enum class Format : std::uint8_t { Csv, Jsonl };

    FileSink(std::string directory, Format format = Format::Csv);

    void write(const std::string &pair_name,
               const TimeSeries &series) override;

    /** Path write() would commit for @p pair_name. */
    std::string pathFor(const std::string &pair_name) const;

  private:
    std::string directory_;
    Format format_;
    /** Serializes concurrent writers: pair files are distinct, but
     *  directory creation and the warn-once flag are shared. */
    std::mutex mutex_;
    bool warned_ = false;
};

} // namespace telemetry
} // namespace spec17

#endif // SPEC17_TELEMETRY_SINK_HH_
