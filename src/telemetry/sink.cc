#include "telemetry/sink.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace spec17 {
namespace telemetry {

namespace {

/** JSON string escape (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
renderSeriesCsv(const TimeSeries &series, std::ostream &out)
{
    out.precision(17);
    out << "interval,end_ops";
    for (const std::string &column : series.columns)
        out << "," << column;
    out << "\n";
    for (std::size_t i = 0; i < series.numIntervals(); ++i) {
        out << i << "," << series.endOps[i];
        for (double value : series.rows[i])
            out << "," << value;
        out << "\n";
    }
}

void
renderSeriesJsonl(const TimeSeries &series, std::ostream &out)
{
    out.precision(17);
    for (std::size_t i = 0; i < series.numIntervals(); ++i) {
        out << "{\"interval\":" << i << ",\"end_ops\":"
            << series.endOps[i];
        for (std::size_t c = 0; c < series.columns.size(); ++c) {
            out << ",\"" << jsonEscape(series.columns[c])
                << "\":" << series.rows[i][c];
        }
        out << "}\n";
    }
}

void
MemorySink::write(const std::string &pair_name, const TimeSeries &series)
{
    std::lock_guard<std::mutex> lock(mutex_);
    series_[pair_name] = series;
}

const TimeSeries *
MemorySink::find(const std::string &pair_name) const
{
    const auto it = series_.find(pair_name);
    return it == series_.end() ? nullptr : &it->second;
}

FileSink::FileSink(std::string directory, Format format)
    : directory_(std::move(directory)), format_(format)
{
    SPEC17_ASSERT(!directory_.empty(),
                  "FileSink needs a target directory");
}

std::string
FileSink::pathFor(const std::string &pair_name) const
{
    return directory_ + "/" + pair_name
        + (format_ == Format::Csv ? ".telemetry.csv"
                                  : ".telemetry.jsonl");
}

void
FileSink::write(const std::string &pair_name, const TimeSeries &series)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    const std::string file = pathFor(pair_name);
    // Same commit discipline as the result-cache journal: a crash
    // mid-write can never leave a torn series behind.
    const std::string temp = file + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out) {
            if (!warned_)
                warn("cannot write telemetry to ", temp,
                     "; dropping series");
            warned_ = true;
            return;
        }
        if (format_ == Format::Csv)
            renderSeriesCsv(series, out);
        else
            renderSeriesJsonl(series, out);
        out.flush();
        if (!out) {
            warn("short write to ", temp, "; series not committed");
            warned_ = true;
            std::remove(temp.c_str());
            return;
        }
    }
    if (std::rename(temp.c_str(), file.c_str()) != 0) {
        if (!warned_)
            warn("cannot commit telemetry to ", file, ": ",
                 std::strerror(errno));
        warned_ = true;
        std::remove(temp.c_str());
    }
}

} // namespace telemetry
} // namespace spec17
