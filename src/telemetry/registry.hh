/**
 * @file
 * Metrics registry: the one place simulator components publish their
 * observable state. Components register named counters (monotonic,
 * perf-style) and gauges (point-in-time levels) once; the interval
 * sampler, sinks and reports then discover everything by name instead
 * of hand-copying fields into ad-hoc structs.
 */

#ifndef SPEC17_TELEMETRY_REGISTRY_HH_
#define SPEC17_TELEMETRY_REGISTRY_HH_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace spec17 {
namespace sim {
class CpuSimulator;
class MulticoreSimulator;
}
namespace trace {
class ReplaySource;
class SyntheticTraceGenerator;
}

namespace telemetry {

/** How a metric's samples combine over time. */
enum class MetricKind : std::uint8_t
{
    Counter, //!< monotonically accumulating; intervals report deltas
    Gauge,   //!< point-in-time level; intervals report the level
};

/** Stable machine-readable kind name ("counter"/"gauge"). */
const char *metricKindName(MetricKind kind);

/** One registered metric: a name, a kind, and how to read it now. */
struct MetricDesc
{
    std::string name;        //!< dotted path, e.g. "core.cycles"
    MetricKind kind = MetricKind::Counter;
    std::string description; //!< one-line human description
    /** Reads the current cumulative value (counter) or level
     *  (gauge). Borrows the component; the registry must not outlive
     *  the components registered into it. */
    std::function<double()> read;
};

/**
 * An ordered, name-unique collection of metrics. Registration order
 * is column order everywhere downstream, so it is part of the
 * determinism contract: register in a fixed order.
 */
class MetricsRegistry
{
  public:
    /** Registers a monotonic counter; duplicate names panic. */
    void registerCounter(std::string name, std::string description,
                         std::function<double()> read);

    /** Registers a point-in-time gauge; duplicate names panic. */
    void registerGauge(std::string name, std::string description,
                       std::function<double()> read);

    std::size_t size() const { return metrics_.size(); }
    const MetricDesc &at(std::size_t index) const;

    bool contains(const std::string &name) const;
    /** Index of @p name; panics when absent. */
    std::size_t indexOf(const std::string &name) const;

    /** Reads every metric, in registration order. */
    std::vector<double> readAll() const;

  private:
    void add(MetricDesc metric);

    std::vector<MetricDesc> metrics_;
    std::map<std::string, std::size_t> index_;
};

/**
 * Registers every modelled component of @p simulator: the perf
 * counter set (one counter per counting PerfEvent, the rss gauge),
 * plus per-component structural stats (caches, TLBs, branch unit,
 * core model, footprint). @p prefix namespaces multicore contexts
 * ("core0." etc.). The registry borrows @p simulator.
 */
void registerSimulatorMetrics(MetricsRegistry &registry,
                              const sim::CpuSimulator &simulator,
                              const std::string &prefix = "");

/**
 * Registers a multicore simulator: aggregate perf columns with the
 * multicore counter semantics (events sum across contexts, ref_tsc
 * accumulates every thread's cycles, rss is the largest single-
 * context footprint -- matching MulticoreSimulator::run()'s merge),
 * the full per-core metric set under "coreN." prefixes, and the
 * shared L3's per-context attribution: "l3.shared.ctxN." hit/miss/
 * eviction counters plus an occupancy-lines gauge. The aggregate
 * columns satisfy defaultDerivedSpecs(""), so multicore runs sample
 * with the same derived rate set as single-core runs. The registry
 * borrows @p multicore.
 */
void registerMulticoreMetrics(MetricsRegistry &registry,
                              const sim::MulticoreSimulator &multicore);

/** Registers a trace generator's emission counter under @p prefix. */
void registerTraceMetrics(MetricsRegistry &registry,
                          const trace::SyntheticTraceGenerator &generator,
                          const std::string &prefix = "");

/**
 * Replay twin of the generator overload: publishes the same
 * "trace.emitted" column reading ReplaySource::deliveredOps(), so
 * telemetry series are byte-identical whether a pair ran live or
 * from a captured arena.
 */
void registerTraceMetrics(MetricsRegistry &registry,
                          const trace::ReplaySource &replay,
                          const std::string &prefix = "");

} // namespace telemetry
} // namespace spec17

#endif // SPEC17_TELEMETRY_REGISTRY_HH_
