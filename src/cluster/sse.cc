#include "cluster/sse.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace spec17 {
namespace cluster {

double
sumSquaredError(const stats::Matrix &points,
                const std::vector<std::size_t> &labels)
{
    SPEC17_ASSERT(labels.size() == points.rows(),
                  "one label per observation required");
    std::size_t k = 0;
    for (std::size_t label : labels)
        k = std::max(k, label + 1);

    stats::Matrix centroids(k, points.cols());
    std::vector<std::size_t> count(k, 0);
    for (std::size_t r = 0; r < points.rows(); ++r) {
        ++count[labels[r]];
        for (std::size_t c = 0; c < points.cols(); ++c)
            centroids.at(labels[r], c) += points.at(r, c);
    }
    for (std::size_t g = 0; g < k; ++g) {
        SPEC17_ASSERT(count[g] > 0, "empty cluster label ", g);
        for (std::size_t c = 0; c < points.cols(); ++c)
            centroids.at(g, c) /= static_cast<double>(count[g]);
    }

    double sse = 0.0;
    for (std::size_t r = 0; r < points.rows(); ++r) {
        for (std::size_t c = 0; c < points.cols(); ++c) {
            const double diff =
                points.at(r, c) - centroids.at(labels[r], c);
            sse += diff * diff;
        }
    }
    return sse;
}

std::vector<TradeoffPoint>
sweepTradeoff(const stats::Matrix &points, const Dendrogram &dendrogram,
              const std::vector<double> &cost)
{
    SPEC17_ASSERT(cost.size() == points.rows(),
                  "one cost per observation required");
    SPEC17_ASSERT(dendrogram.numLeaves() == points.rows(),
                  "dendrogram and points disagree on observation count");

    std::vector<TradeoffPoint> sweep;
    sweep.reserve(points.rows());
    for (std::size_t k = 1; k <= points.rows(); ++k) {
        TradeoffPoint tp;
        tp.numClusters = k;
        const std::vector<std::size_t> labels = dendrogram.cut(k);
        tp.sse = sumSquaredError(points, labels);

        std::vector<double> cheapest(
            k, std::numeric_limits<double>::infinity());
        for (std::size_t r = 0; r < points.rows(); ++r)
            cheapest[labels[r]] = std::min(cheapest[labels[r]], cost[r]);
        tp.cost = 0.0;
        for (double c : cheapest)
            tp.cost += c;
        sweep.push_back(tp);
    }
    return sweep;
}

std::size_t
paretoKnee(const std::vector<TradeoffPoint> &sweep)
{
    SPEC17_ASSERT(!sweep.empty(), "empty trade-off sweep");
    double sse_lo = std::numeric_limits<double>::infinity(), sse_hi = 0.0;
    double cost_lo = std::numeric_limits<double>::infinity(), cost_hi = 0.0;
    for (const auto &tp : sweep) {
        sse_lo = std::min(sse_lo, tp.sse);
        sse_hi = std::max(sse_hi, tp.sse);
        cost_lo = std::min(cost_lo, tp.cost);
        cost_hi = std::max(cost_hi, tp.cost);
    }
    const double sse_span = std::max(sse_hi - sse_lo, 1e-12);
    const double cost_span = std::max(cost_hi - cost_lo, 1e-12);

    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const double u = (sweep[i].sse - sse_lo) / sse_span;
        const double v = (sweep[i].cost - cost_lo) / cost_span;
        const double dist = std::sqrt(u * u + v * v);
        const bool better = dist < best_dist - 1e-12
            || (std::fabs(dist - best_dist) <= 1e-12
                && sweep[i].numClusters < sweep[best].numClusters);
        if (better) {
            best_dist = dist;
            best = i;
        }
    }
    return best;
}

} // namespace cluster
} // namespace spec17
