/**
 * @file
 * K-means clustering and silhouette scoring: the standard
 * alternatives to the paper's agglomerative method, used to check
 * that the suggested subset is a property of the data rather than of
 * the clustering algorithm (bench_ablation_clustering).
 */

#ifndef SPEC17_CLUSTER_KMEANS_HH_
#define SPEC17_CLUSTER_KMEANS_HH_

#include <cstdint>
#include <vector>

#include "stats/matrix.hh"

namespace spec17 {
namespace cluster {

/** Result of a k-means run. */
struct KMeansResult
{
    /** One label in [0, k) per observation. */
    std::vector<std::size_t> labels;
    /** Centroid matrix [k x dims]. */
    stats::Matrix centroids;
    /** Final within-cluster sum of squared error. */
    double sse = 0.0;
    /** Lloyd iterations performed. */
    unsigned iterations = 0;
    bool converged = false;
};

/**
 * Lloyd's algorithm with k-means++ seeding.
 *
 * Deterministic for a given @p seed. Empty clusters are re-seeded
 * with the point farthest from its centroid.
 *
 * @param points observations (rows).
 * @param k cluster count, 1 <= k <= rows.
 * @param seed RNG seed for the k-means++ initialization.
 * @param max_iterations Lloyd iteration cap.
 */
KMeansResult kMeans(const stats::Matrix &points, std::size_t k,
                    std::uint64_t seed = 1,
                    unsigned max_iterations = 100);

/**
 * Mean silhouette coefficient of a clustering, in [-1, 1]; higher
 * means tighter, better-separated clusters. Singleton clusters
 * contribute 0 (the standard convention). Panics unless there are at
 * least 2 clusters and every label is used.
 */
double silhouetteScore(const stats::Matrix &points,
                       const std::vector<std::size_t> &labels);

} // namespace cluster
} // namespace spec17

#endif // SPEC17_CLUSTER_KMEANS_HH_
