#include "cluster/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/hierarchical.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace spec17 {
namespace cluster {

namespace {

double
squaredDistance(const stats::Matrix &points, std::size_t row,
                const stats::Matrix &centroids, std::size_t centroid)
{
    double ss = 0.0;
    for (std::size_t d = 0; d < points.cols(); ++d) {
        const double diff =
            points.at(row, d) - centroids.at(centroid, d);
        ss += diff * diff;
    }
    return ss;
}

} // namespace

KMeansResult
kMeans(const stats::Matrix &points, std::size_t k, std::uint64_t seed,
       unsigned max_iterations)
{
    const std::size_t n = points.rows();
    const std::size_t dims = points.cols();
    SPEC17_ASSERT(k >= 1 && k <= n, "k must be in [1, rows], got ", k);
    SPEC17_ASSERT(max_iterations >= 1, "need at least one iteration");

    KMeansResult out;
    out.centroids = stats::Matrix(k, dims);
    Rng rng(deriveSeed(seed, "kmeans++"));

    // ---- k-means++ seeding ----
    std::vector<std::size_t> chosen;
    chosen.push_back(rng.nextBounded(n));
    std::vector<double> nearest(n,
                                std::numeric_limits<double>::infinity());
    while (chosen.size() < k) {
        for (std::size_t r = 0; r < n; ++r) {
            double ss = 0.0;
            for (std::size_t d = 0; d < dims; ++d) {
                const double diff = points.at(r, d)
                    - points.at(chosen.back(), d);
                ss += diff * diff;
            }
            nearest[r] = std::min(nearest[r], ss);
        }
        double total = 0.0;
        for (double v : nearest)
            total += v;
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; pick
            // arbitrary distinct rows.
            chosen.push_back(chosen.size() % n);
            continue;
        }
        double pick = rng.nextDouble() * total;
        std::size_t selected = n - 1;
        for (std::size_t r = 0; r < n; ++r) {
            pick -= nearest[r];
            if (pick < 0.0) {
                selected = r;
                break;
            }
        }
        chosen.push_back(selected);
    }
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < dims; ++d)
            out.centroids.at(c, d) = points.at(chosen[c], d);

    // ---- Lloyd iterations ----
    out.labels.assign(n, 0);
    for (out.iterations = 0; out.iterations < max_iterations;
         ++out.iterations) {
        bool changed = false;
        for (std::size_t r = 0; r < n; ++r) {
            std::size_t best = 0;
            double best_ss =
                squaredDistance(points, r, out.centroids, 0);
            for (std::size_t c = 1; c < k; ++c) {
                const double ss =
                    squaredDistance(points, r, out.centroids, c);
                if (ss < best_ss) {
                    best_ss = ss;
                    best = c;
                }
            }
            if (out.labels[r] != best) {
                out.labels[r] = best;
                changed = true;
            }
        }

        // Recompute centroids; re-seed empties with the worst-fit
        // point so k clusters always survive.
        stats::Matrix sums(k, dims);
        std::vector<std::size_t> count(k, 0);
        for (std::size_t r = 0; r < n; ++r) {
            ++count[out.labels[r]];
            for (std::size_t d = 0; d < dims; ++d)
                sums.at(out.labels[r], d) += points.at(r, d);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (count[c] == 0) {
                std::size_t farthest = 0;
                double worst = -1.0;
                for (std::size_t r = 0; r < n; ++r) {
                    const double ss = squaredDistance(
                        points, r, out.centroids, out.labels[r]);
                    if (ss > worst) {
                        worst = ss;
                        farthest = r;
                    }
                }
                out.labels[farthest] = c;
                for (std::size_t d = 0; d < dims; ++d)
                    out.centroids.at(c, d) = points.at(farthest, d);
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dims; ++d)
                out.centroids.at(c, d) =
                    sums.at(c, d) / double(count[c]);
        }
        if (!changed) {
            out.converged = true;
            break;
        }
    }

    // Final guarantee: every cluster owns at least one point, even on
    // degenerate inputs (fewer distinct points than k), where Lloyd
    // reassignment keeps undoing the in-loop reseeding.
    std::vector<std::size_t> final_count(k, 0);
    for (std::size_t label : out.labels)
        ++final_count[label];
    for (std::size_t c = 0; c < k; ++c) {
        if (final_count[c] > 0)
            continue;
        std::size_t donor = n;
        double worst = -1.0;
        for (std::size_t r = 0; r < n; ++r) {
            if (final_count[out.labels[r]] < 2)
                continue;
            const double ss = squaredDistance(points, r, out.centroids,
                                              out.labels[r]);
            if (ss > worst) {
                worst = ss;
                donor = r;
            }
        }
        SPEC17_ASSERT(donor < n, "cannot populate cluster ", c);
        --final_count[out.labels[donor]];
        out.labels[donor] = c;
        ++final_count[c];
        for (std::size_t d = 0; d < dims; ++d)
            out.centroids.at(c, d) = points.at(donor, d);
    }

    out.sse = 0.0;
    for (std::size_t r = 0; r < n; ++r)
        out.sse += squaredDistance(points, r, out.centroids,
                                   out.labels[r]);
    return out;
}

double
silhouetteScore(const stats::Matrix &points,
                const std::vector<std::size_t> &labels)
{
    const std::size_t n = points.rows();
    SPEC17_ASSERT(labels.size() == n, "one label per point required");
    std::size_t k = 0;
    for (std::size_t label : labels)
        k = std::max(k, label + 1);
    SPEC17_ASSERT(k >= 2, "silhouette needs at least two clusters");
    std::vector<std::size_t> count(k, 0);
    for (std::size_t label : labels)
        ++count[label];
    for (std::size_t c = 0; c < k; ++c)
        SPEC17_ASSERT(count[c] > 0, "empty cluster ", c);

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (count[labels[i]] == 1)
            continue; // singleton contributes 0
        // Mean distance to own cluster (a) and to the nearest other
        // cluster (b).
        std::vector<double> mean_to(k, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            mean_to[labels[j]] += euclidean(points, i, j);
        }
        double a = mean_to[labels[i]] / double(count[labels[i]] - 1);
        double b = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < k; ++c) {
            if (c == labels[i])
                continue;
            b = std::min(b, mean_to[c] / double(count[c]));
        }
        const double denom = std::max(a, b);
        if (denom > 0.0)
            total += (b - a) / denom;
    }
    return total / double(n);
}

} // namespace cluster
} // namespace spec17
