/**
 * @file
 * Clustering quality (sum of squared error) and the Pareto-knee
 * cluster-count selection of Section V-C: the paper sweeps the number
 * of clusters, computes the SSE of each clustering and the total
 * execution time of the representative subset it implies, and picks
 * the Pareto-optimal trade-off (12 clusters for rate, 10 for speed).
 */

#ifndef SPEC17_CLUSTER_SSE_HH_
#define SPEC17_CLUSTER_SSE_HH_

#include <cstddef>
#include <vector>

#include "cluster/hierarchical.hh"
#include "stats/matrix.hh"

namespace spec17 {
namespace cluster {

/**
 * Sum over clusters of squared Euclidean distances between members
 * and their cluster centroid. @p labels holds one cluster id per row
 * of @p points.
 */
double sumSquaredError(const stats::Matrix &points,
                       const std::vector<std::size_t> &labels);

/** One candidate operating point in the SSE / cost trade-off. */
struct TradeoffPoint
{
    std::size_t numClusters = 0;
    double sse = 0.0;   //!< clustering error at this cluster count
    double cost = 0.0;  //!< subset execution time at this cluster count
};

/**
 * Sweeps k = 1..numLeaves over @p dendrogram, computing SSE and the
 * cost of the cheapest representative per cluster.
 *
 * @param points the clustered observations (PC coordinates).
 * @param dendrogram merge history from agglomerate().
 * @param cost one cost (execution time) per observation; each
 *             cluster's representative is its minimum-cost member,
 *             matching the paper's subsetting rule.
 */
std::vector<TradeoffPoint> sweepTradeoff(
    const stats::Matrix &points, const Dendrogram &dendrogram,
    const std::vector<double> &cost);

/**
 * Picks the knee of the Pareto frontier: both objectives are
 * normalized to [0, 1] over the sweep and the point closest (L2) to
 * the ideal (0, 0) wins. Ties break toward fewer clusters.
 *
 * @return index into @p sweep of the selected trade-off point.
 */
std::size_t paretoKnee(const std::vector<TradeoffPoint> &sweep);

} // namespace cluster
} // namespace spec17

#endif // SPEC17_CLUSTER_SSE_HH_
