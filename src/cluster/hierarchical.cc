#include "cluster/hierarchical.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace spec17 {
namespace cluster {

std::string
linkageName(Linkage linkage)
{
    switch (linkage) {
      case Linkage::Single: return "single";
      case Linkage::Complete: return "complete";
      case Linkage::Average: return "average";
      case Linkage::Ward: return "ward";
    }
    SPEC17_PANIC("unknown linkage");
}

double
euclidean(const stats::Matrix &points, std::size_t r0, std::size_t r1)
{
    double ss = 0.0;
    for (std::size_t c = 0; c < points.cols(); ++c) {
        const double d = points.at(r0, c) - points.at(r1, c);
        ss += d * d;
    }
    return std::sqrt(ss);
}

Dendrogram::Dendrogram(std::size_t num_leaves, std::vector<MergeStep> steps)
    : numLeaves_(num_leaves), steps_(std::move(steps))
{
    SPEC17_ASSERT(num_leaves >= 1, "dendrogram needs at least one leaf");
    SPEC17_ASSERT(steps_.size() == num_leaves - 1,
                  "dendrogram over ", num_leaves, " leaves needs ",
                  num_leaves - 1, " merges, got ", steps_.size());
}

std::vector<std::size_t>
Dendrogram::cut(std::size_t k) const
{
    SPEC17_ASSERT(k >= 1 && k <= numLeaves_,
                  "cut level ", k, " out of [1, ", numLeaves_, "]");

    // Map every node id to the representative leaf-set root after the
    // first numLeaves_ - k merges.
    const std::size_t merges = numLeaves_ - k;
    std::vector<std::size_t> parent(numLeaves_ + merges);
    std::iota(parent.begin(), parent.end(), 0);

    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (std::size_t i = 0; i < merges; ++i) {
        const MergeStep &step = steps_[i];
        const std::size_t node = numLeaves_ + i;
        parent[find(step.left)] = node;
        parent[find(step.right)] = node;
    }

    std::vector<std::size_t> labels(numLeaves_);
    std::vector<std::size_t> remap(numLeaves_ + merges,
                                   std::numeric_limits<std::size_t>::max());
    std::size_t next_label = 0;
    for (std::size_t leaf = 0; leaf < numLeaves_; ++leaf) {
        const std::size_t root = find(leaf);
        if (remap[root] == std::numeric_limits<std::size_t>::max())
            remap[root] = next_label++;
        labels[leaf] = remap[root];
    }
    SPEC17_ASSERT(next_label == k, "cut produced ", next_label,
                  " clusters, expected ", k);
    return labels;
}

std::vector<std::vector<std::size_t>>
Dendrogram::clustersAt(std::size_t k) const
{
    const std::vector<std::size_t> labels = cut(k);
    std::vector<std::vector<std::size_t>> groups(k);
    for (std::size_t leaf = 0; leaf < numLeaves_; ++leaf)
        groups[labels[leaf]].push_back(leaf);
    // Labels are first-appearance ordered, so each group is already
    // sorted and groups are ordered by smallest member.
    return groups;
}

std::string
Dendrogram::renderAscii(const std::vector<std::string> &labels,
                        std::size_t width) const
{
    SPEC17_ASSERT(labels.size() == numLeaves_,
                  "label count must equal leaf count");
    SPEC17_ASSERT(width >= 16, "dendrogram width too small");

    if (numLeaves_ == 1)
        return labels[0] + "\n";

    // Leaf order via DFS from the root so brackets never cross.
    std::vector<std::size_t> order;
    order.reserve(numLeaves_);
    std::vector<std::size_t> stack = {numLeaves_ + steps_.size() - 1};
    while (!stack.empty()) {
        const std::size_t node = stack.back();
        stack.pop_back();
        if (node < numLeaves_) {
            order.push_back(node);
        } else {
            const MergeStep &step = steps_[node - numLeaves_];
            stack.push_back(step.right);
            stack.push_back(step.left);
        }
    }

    std::size_t label_width = 0;
    for (const auto &label : labels)
        label_width = std::max(label_width, label.size());

    double max_dist = 0.0;
    for (const auto &step : steps_)
        max_dist = std::max(max_dist, step.distance);
    if (max_dist <= 0.0)
        max_dist = 1.0;

    // Character canvas: one text row per leaf, distance on the x axis.
    std::vector<std::string> canvas(numLeaves_,
                                    std::string(width + 1, ' '));
    auto x_of = [&](double dist) {
        return static_cast<std::size_t>(
            std::llround(dist / max_dist * static_cast<double>(width)));
    };

    std::vector<std::size_t> row_of(numLeaves_ + steps_.size());
    std::vector<std::size_t> x_pos(numLeaves_ + steps_.size(), 0);
    for (std::size_t i = 0; i < order.size(); ++i)
        row_of[order[i]] = i;

    for (std::size_t i = 0; i < steps_.size(); ++i) {
        const MergeStep &step = steps_[i];
        const std::size_t node = numLeaves_ + i;
        const std::size_t ra = row_of[step.left];
        const std::size_t rb = row_of[step.right];
        const std::size_t x = std::max({x_of(step.distance),
                                        x_pos[step.left] + 1,
                                        x_pos[step.right] + 1});
        const std::size_t xe = std::min(x, width);
        for (std::size_t col = x_pos[step.left]; col < xe; ++col)
            canvas[ra][col] = '-';
        for (std::size_t col = x_pos[step.right]; col < xe; ++col)
            canvas[rb][col] = '-';
        const std::size_t top = std::min(ra, rb);
        const std::size_t bottom = std::max(ra, rb);
        for (std::size_t row = top; row <= bottom; ++row) {
            char &cell = canvas[row][xe];
            cell = (row == top || row == bottom) ? '+' : '|';
        }
        row_of[node] = (ra + rb) / 2;
        x_pos[node] = xe;
        // The merged cluster continues rightward along its middle row.
        canvas[row_of[node]][xe] =
            (row_of[node] == top || row_of[node] == bottom) ? '+' : '|';
    }

    std::string out;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::string &label = labels[order[i]];
        out += label;
        out += std::string(label_width - label.size() + 1, ' ');
        out += canvas[i];
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    }
    return out;
}

Dendrogram
agglomerate(const stats::Matrix &points, Linkage linkage)
{
    const std::size_t n = points.rows();
    SPEC17_ASSERT(n >= 1, "agglomerate: no points");

    // Active-cluster bookkeeping; distances are kept in a dense
    // symmetric matrix indexed by *slot* (0..n-1); merged clusters
    // reuse the lower slot.
    const bool squared = (linkage == Linkage::Ward);
    std::vector<double> dist(n * n, 0.0);
    auto d = [&](std::size_t i, std::size_t j) -> double & {
        return dist[i * n + j];
    };
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double e = euclidean(points, i, j);
            if (squared)
                e *= e;
            d(i, j) = d(j, i) = e;
        }
    }

    std::vector<bool> active(n, true);
    std::vector<std::size_t> size(n, 1);
    std::vector<std::size_t> node_id(n);
    std::iota(node_id.begin(), node_id.end(), 0);

    std::vector<MergeStep> steps;
    steps.reserve(n ? n - 1 : 0);

    for (std::size_t next_node = n; next_node < 2 * n - 1; ++next_node) {
        // Find the closest active pair; ties break to smaller slots.
        std::size_t bi = 0, bj = 0;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            if (!active[i])
                continue;
            for (std::size_t j = i + 1; j < n; ++j) {
                if (!active[j])
                    continue;
                if (d(i, j) < best) {
                    best = d(i, j);
                    bi = i;
                    bj = j;
                }
            }
        }
        SPEC17_ASSERT(std::isfinite(best), "no pair found to merge");

        MergeStep step;
        step.left = node_id[bi];
        step.right = node_id[bj];
        step.distance = squared ? std::sqrt(best) : best;
        step.size = size[bi] + size[bj];
        steps.push_back(step);

        // Lance-Williams update of distances from the merged cluster
        // (slot bi) to every other active cluster k.
        const double ni = static_cast<double>(size[bi]);
        const double nj = static_cast<double>(size[bj]);
        for (std::size_t k = 0; k < n; ++k) {
            if (!active[k] || k == bi || k == bj)
                continue;
            const double dik = d(bi, k);
            const double djk = d(bj, k);
            const double dij = d(bi, bj);
            double merged = 0.0;
            switch (linkage) {
              case Linkage::Single:
                merged = std::min(dik, djk);
                break;
              case Linkage::Complete:
                merged = std::max(dik, djk);
                break;
              case Linkage::Average:
                merged = (ni * dik + nj * djk) / (ni + nj);
                break;
              case Linkage::Ward: {
                const double nk = static_cast<double>(size[k]);
                const double total = ni + nj + nk;
                merged = ((ni + nk) * dik + (nj + nk) * djk - nk * dij)
                    / total;
                break;
              }
            }
            d(bi, k) = d(k, bi) = merged;
        }

        active[bj] = false;
        size[bi] += size[bj];
        node_id[bi] = next_node;
    }

    return Dendrogram(n, std::move(steps));
}

} // namespace cluster
} // namespace spec17
