/**
 * @file
 * Agglomerative hierarchical clustering over points in PC space,
 * as used in Section V-B of the paper: every observation starts as
 * its own cluster and the two clusters at minimum linkage distance
 * (Euclidean between PC coordinates) are merged each iteration.
 */

#ifndef SPEC17_CLUSTER_HIERARCHICAL_HH_
#define SPEC17_CLUSTER_HIERARCHICAL_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace spec17 {
namespace cluster {

/** Inter-cluster distance definition. */
enum class Linkage
{
    Single,   //!< nearest members
    Complete, //!< farthest members
    Average,  //!< UPGMA: mean pairwise distance
    Ward,     //!< minimum variance increase
};

/** Human-readable linkage name. */
std::string linkageName(Linkage linkage);

/**
 * One agglomeration step. Cluster ids follow the scipy convention:
 * leaves are 0..n-1, and the cluster formed by step i has id n+i.
 */
struct MergeStep
{
    std::size_t left = 0;     //!< id of one merged cluster
    std::size_t right = 0;    //!< id of the other merged cluster
    double distance = 0.0;    //!< linkage distance at the merge
    std::size_t size = 0;     //!< members in the new cluster
};

/**
 * Full merge history of an agglomerative run; can be cut at any
 * cluster count and rendered as a dendrogram.
 */
class Dendrogram
{
  public:
    Dendrogram(std::size_t num_leaves, std::vector<MergeStep> steps);

    std::size_t numLeaves() const { return numLeaves_; }
    const std::vector<MergeStep> &steps() const { return steps_; }

    /**
     * Cuts the tree into exactly @p k clusters (the state after
     * n-k merges). Returns one label in [0, k) per leaf; labels are
     * renumbered in first-appearance order, so they are deterministic.
     */
    std::vector<std::size_t> cut(std::size_t k) const;

    /**
     * Returns the leaf ids of each cluster at cut level @p k, each
     * cluster's members sorted ascending and clusters ordered by their
     * smallest member.
     */
    std::vector<std::vector<std::size_t>> clustersAt(std::size_t k) const;

    /**
     * Renders an ASCII dendrogram (leaves on the y-axis, Euclidean
     * merge distance increasing along the x-axis), the textual
     * equivalent of the paper's Fig. 9.
     *
     * @param labels one display label per leaf.
     * @param width total character width of the distance axis.
     */
    std::string renderAscii(const std::vector<std::string> &labels,
                            std::size_t width = 72) const;

  private:
    std::size_t numLeaves_;
    std::vector<MergeStep> steps_;
};

/**
 * Runs agglomerative clustering with the Lance-Williams distance
 * update over the points (rows) of @p points.
 *
 * Ties in the minimum linkage distance are broken toward the smaller
 * pair of cluster ids so results are deterministic.
 */
Dendrogram agglomerate(const stats::Matrix &points,
                       Linkage linkage = Linkage::Average);

/** Euclidean distance between two rows of @p points. */
double euclidean(const stats::Matrix &points, std::size_t r0,
                 std::size_t r1);

} // namespace cluster
} // namespace spec17

#endif // SPEC17_CLUSTER_HIERARCHICAL_HH_
