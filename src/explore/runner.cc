#include "explore/runner.hh"

#include <cmath>

#include "cluster/sse.hh"
#include "core/characterizer.hh"
#include "core/metrics.hh"
#include "suite/fanout.hh"
#include "util/logging.hh"

namespace spec17 {
namespace explore {

namespace {

/** `label` made path-safe: alnum and '.' kept, the rest becomes '-'. */
std::string
sanitize(const std::string &label)
{
    std::string safe = label;
    for (char &c : safe) {
        const bool keep = (c >= 'a' && c <= 'z')
                          || (c >= 'A' && c <= 'Z')
                          || (c >= '0' && c <= '9') || c == '.';
        if (!keep)
            c = '-';
    }
    return safe;
}

} // namespace

double
pairSse(const suite::PairResult &result)
{
    SPEC17_ASSERT(result.profile != nullptr,
                  "pair result without a profile");
    const core::Metrics m = core::deriveMetrics(result);
    const workloads::WorkloadProfile &p = *result.profile;
    const double dev[4] = {
        m.l1MissPct - 100.0 * p.memory.l1MissRate,
        m.l2MissPct - 100.0 * p.memory.l2MissRate,
        m.l3MissPct - 100.0 * p.memory.l3MissRate,
        m.mispredictPct - 100.0 * p.branches.mispredictRate,
    };
    double sse = 0.0;
    for (double d : dev)
        sse += d * d;
    return sse;
}

ExploreRunner::ExploreRunner(ExploreOptions options)
    : options_(std::move(options))
{
}

std::string
ExploreRunner::pointCachePath(const ExplorePoint &point,
                              const std::string &step_tag) const
{
    if (options_.cachePath.empty())
        return {};
    std::string path = options_.cachePath + ".explore.";
    if (!step_tag.empty())
        path += sanitize(step_tag) + ".";
    return path + sanitize(point.axis) + "." + sanitize(point.label);
}

namespace {

/** Folds one point's sweep rows into its accuracy/cost score. */
PointResult
scorePoint(const ExplorePoint &point,
           const std::vector<suite::PairResult> &rows)
{
    PointResult scored;
    scored.point = point;
    double ipc_sum = 0.0;
    for (const suite::PairResult &pair : rows) {
        if (pair.errored) {
            ++scored.errored;
            continue;
        }
        scored.sse += pairSse(pair);
        ipc_sum += core::deriveMetrics(pair).ipc;
        ++scored.pairs;
    }
    if (scored.pairs > 0)
        scored.meanIpc = ipc_sum / double(scored.pairs);
    return scored;
}

} // namespace

std::vector<PointResult>
ExploreRunner::runPoints(const std::vector<ExplorePoint> &points,
                         const std::string &step_tag) const
{
    std::vector<PointResult> results;
    results.reserve(points.size());

    if (suite::fanoutEligible(options_.runner)) {
        // Shared-arena fan-out: every pair's trace is captured once
        // and all points replay it in lockstep, with prefill cloning
        // and buffer recycling across points (suite/fanout.hh). The
        // per-point journals and results are byte-identical to the
        // per-point sessions below.
        std::vector<suite::FanoutSession> sessions;
        sessions.reserve(points.size());
        for (const ExplorePoint &point : points) {
            suite::FanoutSession session;
            session.runner = options_.runner;
            session.runner.system = point.system;
            session.cachePath = pointCachePath(point, step_tag);
            session.observer = options_.pairObserver;
            sessions.push_back(std::move(session));
        }
        suite::FanoutOptions fanout;
        fanout.resume = options_.resume;
        fanout.shard = options_.shard;
        const std::vector<std::vector<suite::PairResult>> sweeps =
            suite::runFanoutSweep(
                sessions,
                options_.generation == workloads::SuiteGeneration::Cpu2017
                    ? workloads::cpu2017Suite()
                    : workloads::cpu2006Suite(),
                options_.size, fanout);
        for (std::size_t i = 0; i < points.size(); ++i)
            results.push_back(scorePoint(points[i], sweeps[i]));
        markPareto(results);
        return results;
    }

    for (const ExplorePoint &point : points) {
        // One characterization session per point: the point's config
        // key differs, so it gets its own journal file and its own
        // in-process memo. The sweep itself runs on the ordered pool
        // (jobs), sliced by the shard, resumed from the journal --
        // all inherited from the suite machinery.
        core::CharacterizerOptions session_options;
        session_options.runner = options_.runner;
        session_options.runner.system = point.system;
        session_options.cachePath = pointCachePath(point, step_tag);
        session_options.resume = options_.resume;
        session_options.shard = options_.shard;
        session_options.pairObserver = options_.pairObserver;
        core::Characterizer session(session_options);
        results.push_back(scorePoint(
            point, session.results(options_.generation, options_.size)));
    }

    markPareto(results);
    return results;
}

std::vector<PointResult>
ExploreRunner::runAxis(const std::string &axis) const
{
    SPEC17_ASSERT(isAxis(axis), "unknown explore axis '", axis, "'");
    return runPoints(planAxis(axis, options_.runner.system));
}

std::vector<PointResult>
ExploreRunner::runCross(const std::vector<std::string> &axes) const
{
    return runPoints(planCross(axes, options_.runner.system));
}

std::vector<DescentStep>
ExploreRunner::runDescent(const std::vector<std::string> &axes) const
{
    SPEC17_ASSERT(!axes.empty(), "coordinate descent without axes");
    std::vector<DescentStep> steps;
    sim::SystemConfig base = options_.runner.system;
    for (std::size_t k = 0; k < axes.size(); ++k) {
        const std::string &axis = axes[k];
        const std::string error = axisPlanError(axis, base);
        if (!error.empty()) {
            // An earlier stage's winner disabled this mechanism; its
            // grid would score identical points, so skip the stage
            // rather than waste a full sweep per grid cell.
            warn("descent skips axis '", axis, "': ", error);
            continue;
        }
        DescentStep step;
        step.axis = axis;
        step.points =
            runPoints(planAnyAxis(axis, base),
                      "step" + std::to_string(k) + "." + axis);
        for (std::size_t i = 0; i < step.points.size(); ++i)
            if (step.points[i].knee)
                step.chosen = i;
        base = step.points[step.chosen].point.system;
        steps.push_back(std::move(step));
    }
    return steps;
}

void
markPareto(std::vector<PointResult> &points)
{
    if (points.empty())
        return;

    // Dominance within the axis: another point at most as expensive
    // and at most as wrong, strictly better on one objective.
    for (PointResult &candidate : points) {
        candidate.dominated = false;
        candidate.knee = false;
        for (const PointResult &other : points) {
            const bool no_worse =
                other.sse <= candidate.sse
                && other.point.costBits <= candidate.point.costBits;
            const bool better =
                other.sse < candidate.sse
                || other.point.costBits < candidate.point.costBits;
            if (no_worse && better) {
                candidate.dominated = true;
                break;
            }
        }
    }

    // Knee via the Section V-C selector: both objectives normalized
    // to [0, 1], closest point to the ideal corner wins (ties break
    // toward the earlier plan index, matching paretoKnee's tie rule).
    std::vector<cluster::TradeoffPoint> sweep;
    sweep.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        sweep.push_back({i, points[i].sse, points[i].point.costBits});
    points[cluster::paretoKnee(sweep)].knee = true;
}

} // namespace explore
} // namespace spec17
