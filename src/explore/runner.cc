#include "explore/runner.hh"

#include <cmath>

#include "cluster/sse.hh"
#include "core/characterizer.hh"
#include "core/metrics.hh"
#include "util/logging.hh"

namespace spec17 {
namespace explore {

namespace {

/** `label` made path-safe: alnum and '.' kept, the rest becomes '-'. */
std::string
sanitize(const std::string &label)
{
    std::string safe = label;
    for (char &c : safe) {
        const bool keep = (c >= 'a' && c <= 'z')
                          || (c >= 'A' && c <= 'Z')
                          || (c >= '0' && c <= '9') || c == '.';
        if (!keep)
            c = '-';
    }
    return safe;
}

} // namespace

double
pairSse(const suite::PairResult &result)
{
    SPEC17_ASSERT(result.profile != nullptr,
                  "pair result without a profile");
    const core::Metrics m = core::deriveMetrics(result);
    const workloads::WorkloadProfile &p = *result.profile;
    const double dev[4] = {
        m.l1MissPct - 100.0 * p.memory.l1MissRate,
        m.l2MissPct - 100.0 * p.memory.l2MissRate,
        m.l3MissPct - 100.0 * p.memory.l3MissRate,
        m.mispredictPct - 100.0 * p.branches.mispredictRate,
    };
    double sse = 0.0;
    for (double d : dev)
        sse += d * d;
    return sse;
}

ExploreRunner::ExploreRunner(ExploreOptions options)
    : options_(std::move(options))
{
}

std::string
ExploreRunner::pointCachePath(const ExplorePoint &point) const
{
    if (options_.cachePath.empty())
        return {};
    return options_.cachePath + ".explore." + sanitize(point.axis) + "."
           + sanitize(point.label);
}

std::vector<PointResult>
ExploreRunner::runAxis(const std::string &axis) const
{
    SPEC17_ASSERT(isAxis(axis), "unknown explore axis '", axis, "'");
    const std::vector<ExplorePoint> points =
        planAxis(axis, options_.runner.system);

    std::vector<PointResult> results;
    results.reserve(points.size());
    for (const ExplorePoint &point : points) {
        // One characterization session per point: the point's config
        // key differs, so it gets its own journal file and its own
        // in-process memo. The sweep itself runs on the ordered pool
        // (jobs), sliced by the shard, resumed from the journal --
        // all inherited from the suite machinery.
        core::CharacterizerOptions session_options;
        session_options.runner = options_.runner;
        session_options.runner.system = point.system;
        session_options.cachePath = pointCachePath(point);
        session_options.resume = options_.resume;
        session_options.shard = options_.shard;
        session_options.pairObserver = options_.pairObserver;
        core::Characterizer session(session_options);

        PointResult scored;
        scored.point = point;
        double ipc_sum = 0.0;
        for (const suite::PairResult &pair :
             session.results(options_.generation, options_.size)) {
            if (pair.errored) {
                ++scored.errored;
                continue;
            }
            scored.sse += pairSse(pair);
            ipc_sum += core::deriveMetrics(pair).ipc;
            ++scored.pairs;
        }
        if (scored.pairs > 0)
            scored.meanIpc = ipc_sum / double(scored.pairs);
        results.push_back(std::move(scored));
    }

    markPareto(results);
    return results;
}

void
markPareto(std::vector<PointResult> &points)
{
    if (points.empty())
        return;

    // Dominance within the axis: another point at most as expensive
    // and at most as wrong, strictly better on one objective.
    for (PointResult &candidate : points) {
        candidate.dominated = false;
        candidate.knee = false;
        for (const PointResult &other : points) {
            const bool no_worse =
                other.sse <= candidate.sse
                && other.point.costBits <= candidate.point.costBits;
            const bool better =
                other.sse < candidate.sse
                || other.point.costBits < candidate.point.costBits;
            if (no_worse && better) {
                candidate.dominated = true;
                break;
            }
        }
    }

    // Knee via the Section V-C selector: both objectives normalized
    // to [0, 1], closest point to the ideal corner wins (ties break
    // toward the earlier plan index, matching paretoKnee's tie rule).
    std::vector<cluster::TradeoffPoint> sweep;
    sweep.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        sweep.push_back({i, points[i].sse, points[i].point.costBits});
    points[cluster::paretoKnee(sweep)].knee = true;
}

} // namespace explore
} // namespace spec17
