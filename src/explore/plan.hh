/**
 * @file
 * Microarchitecture design-space exploration planning: one axis at a
 * time (branch predictor, L1D/L2 prefetcher, L1D way predictor), each
 * axis a small set of candidate settings applied to a common baseline
 * SystemConfig. Every point carries a deterministic storage-cost
 * estimate so the runner can tabulate accuracy (SSE vs the paper's
 * profile targets) against hardware cost.
 */

#ifndef SPEC17_EXPLORE_PLAN_HH_
#define SPEC17_EXPLORE_PLAN_HH_

#include <string>
#include <vector>

#include "sim/system_config.hh"

namespace spec17 {
namespace explore {

/** One candidate setting of the swept axis. */
struct ExplorePoint
{
    /** Axis this point belongs to (e.g. "predictor"). */
    std::string axis;
    /** Setting label within the axis (e.g. "tage"). */
    std::string label;
    /** Baseline SystemConfig with this point's knob applied. */
    sim::SystemConfig system;
    /** Storage bits the swept mechanism adds at this setting. */
    double costBits = 0.0;
};

/** The axes `spec17 explore --axis=` accepts, in sweep order. */
const std::vector<std::string> &axisNames();

/** True when @p axis is one of axisNames(). */
bool isAxis(const std::string &axis);

/**
 * Plans the candidate points of @p axis from @p base: every point is
 * @p base with exactly one knob changed, so per-axis deltas isolate
 * that mechanism. Panics on an unknown axis -- callers validate with
 * isAxis() first (the CLI turns that into a contained usage error).
 */
std::vector<ExplorePoint> planAxis(const std::string &axis,
                                   const sim::SystemConfig &base);

/** @name Storage-cost models
 *  Closed-form bit counts of each mechanism's state, the cost column
 *  of the explorer's Pareto table. Deterministic functions of the
 *  config only (documented per formula in plan.cc).
 */
/// @{
double predictorStorageBits(const std::string &name,
                            const sim::TageConfig &tage);
double prefetcherStorageBits(const std::string &name,
                             const sim::StreamConfig &stream);
double wayPredictorStorageBits(sim::WayPredictor predictor,
                               const sim::CacheConfig &l1d);
/// @}

} // namespace explore
} // namespace spec17

#endif // SPEC17_EXPLORE_PLAN_HH_
