/**
 * @file
 * Microarchitecture design-space exploration planning: one axis at a
 * time (branch predictor, L1D/L2 prefetcher, L1D way predictor), each
 * axis a small set of candidate settings applied to a common baseline
 * SystemConfig. Every point carries a deterministic storage-cost
 * estimate so the runner can tabulate accuracy (SSE vs the paper's
 * profile targets) against hardware cost.
 */

#ifndef SPEC17_EXPLORE_PLAN_HH_
#define SPEC17_EXPLORE_PLAN_HH_

#include <string>
#include <vector>

#include "sim/system_config.hh"

namespace spec17 {
namespace explore {

/** One candidate setting of the swept axis. */
struct ExplorePoint
{
    /** Axis this point belongs to (e.g. "predictor"). */
    std::string axis;
    /** Setting label within the axis (e.g. "tage"). */
    std::string label;
    /** Baseline SystemConfig with this point's knob applied. */
    sim::SystemConfig system;
    /** Storage bits the swept mechanism adds at this setting. */
    double costBits = 0.0;
};

/** The axes `spec17 explore --axis=` accepts, in sweep order. */
const std::vector<std::string> &axisNames();

/** True when @p axis is one of axisNames(). */
bool isAxis(const std::string &axis);

/**
 * The geometry axes `--multi-axis` additionally accepts: small grids
 * over one mechanism's sizing knobs rather than mechanism selection.
 * Each requires that mechanism enabled in the base config (see
 * axisPlanError) -- sweeping TAGE table counts under a bimodal
 * predictor would score identical points.
 */
const std::vector<std::string> &geometryAxisNames();

/** True when @p axis is one of geometryAxisNames(). */
bool isGeometryAxis(const std::string &axis);

/**
 * Non-empty human-readable reason when @p axis cannot be planned
 * from @p base -- a geometry grid over a mechanism the base config
 * disables. Empty when plannable (mechanism axes always are). The
 * CLI turns a non-empty reason into a contained exit-2 usage error.
 */
std::string axisPlanError(const std::string &axis,
                          const sim::SystemConfig &base);

/**
 * Plans the candidate points of @p axis from @p base: every point is
 * @p base with exactly one knob changed, so per-axis deltas isolate
 * that mechanism. Panics on an unknown axis -- callers validate with
 * isAxis() first (the CLI turns that into a contained usage error).
 */
std::vector<ExplorePoint> planAxis(const std::string &axis,
                                   const sim::SystemConfig &base);

/**
 * Plans one axis of either kind: mechanism selection (planAxis) or a
 * geometry grid. Panics on an unknown axis or a non-empty
 * axisPlanError -- callers validate first.
 */
std::vector<ExplorePoint> planAnyAxis(const std::string &axis,
                                      const sim::SystemConfig &base);

/**
 * Cartesian-product plan over @p axes (each a mechanism or geometry
 * axis): one point per combination, with every axis' knob applied on
 * top of @p base, later axes planned from the partially-applied
 * config. The combined point's axis is the axes joined with '+', its
 * label the per-axis labels joined with ',', and its cost the sum of
 * the per-axis storage costs. Point order is row-major in the given
 * axis order, so plans are deterministic and resumable by index.
 */
std::vector<ExplorePoint> planCross(const std::vector<std::string> &axes,
                                    const sim::SystemConfig &base);

/** @name Storage-cost models
 *  Closed-form bit counts of each mechanism's state, the cost column
 *  of the explorer's Pareto table. Deterministic functions of the
 *  config only (documented per formula in plan.cc).
 */
/// @{
double predictorStorageBits(const std::string &name,
                            const sim::TageConfig &tage);
double prefetcherStorageBits(const std::string &name,
                             const sim::StreamConfig &stream);
double wayPredictorStorageBits(sim::WayPredictor predictor,
                               const sim::CacheConfig &l1d);
/// @}

} // namespace explore
} // namespace spec17

#endif // SPEC17_EXPLORE_PLAN_HH_
