/**
 * @file
 * Design-space exploration execution: runs each point of one axis as
 * a full suite sweep on the generalized pool/journal machinery (jobs,
 * shards, resume all compose), scores it as the sum of squared
 * deviations from the paper's profile targets (the validate metric),
 * and marks the Pareto frontier and knee of the SSE-vs-storage-cost
 * trade-off.
 *
 * Determinism: each point's sweep is byte-identical at any job count
 * and across resume (inherited from SuiteRunner / ResultCache), points
 * run in plan order, and scoring is pure arithmetic over the sweep's
 * results -- so the Pareto table itself is byte-identical at any job
 * count and across a mid-sweep resume.
 */

#ifndef SPEC17_EXPLORE_RUNNER_HH_
#define SPEC17_EXPLORE_RUNNER_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "explore/plan.hh"
#include "suite/result_cache.hh"
#include "suite/runner.hh"
#include "workloads/profile.hh"

namespace spec17 {
namespace explore {

/** Explorer configuration. */
struct ExploreOptions
{
    /** Base sweep options; `system` is replaced per point. */
    suite::RunnerOptions runner;
    workloads::SuiteGeneration generation =
        workloads::SuiteGeneration::Cpu2017;
    workloads::InputSize size = workloads::InputSize::Ref;
    /** Result-cache base path; empty disables caching. Each point
     *  journals to its own derived path (see pointCachePath), so
     *  resumed explorations never splice configs. */
    std::string cachePath = suite::ResultCache::defaultPath();
    /** Resume each point's interrupted sweep from its journal. */
    bool resume = false;
    /** Shard each point's pair sweep (explore composes with the merge
     *  toolchain per point). */
    suite::ShardSpec shard;
    /** Forwarded to every point's sweep (live progress). */
    suite::SuiteRunner::PairObserver pairObserver;
};

/** One explored point with its accuracy/cost score. */
struct PointResult
{
    ExplorePoint point;
    /** Sum over non-errored pairs of squared pp deviations from the
     *  profile targets (L1/L2/L3 miss + mispredict, the validate
     *  basis). */
    double sse = 0.0;
    /**
     * Mean IPC over the non-errored pairs. Not part of the SSE (the
     * profiles carry no IPC target): it surfaces the timing effect of
     * mechanisms the miss-rate SSE is blind to (way-mispredict
     * penalties, prefetch latency hiding).
     */
    double meanIpc = 0.0;
    /** Pairs contributing to the SSE. */
    std::size_t pairs = 0;
    /** Pairs excluded (errored in the paper or at runtime). */
    std::size_t errored = 0;
    /** Dominated by another point of the axis (worse-or-equal on both
     *  SSE and cost, strictly worse on one). */
    bool dominated = false;
    /** The Pareto-knee pick of the axis (cluster::paretoKnee). */
    bool knee = false;
};

/**
 * Squared-deviation score of one pair: (got - target)^2 summed over
 * the four percent-scale profile targets (L1/L2/L3 load miss and
 * branch mispredict), matching `spec17 validate`'s deviation basis.
 */
double pairSse(const suite::PairResult &result);

/** One stage of a coordinate-descent exploration. */
struct DescentStep
{
    /** Axis this stage swept. */
    std::string axis;
    /** The stage's scored points (plan order, Pareto-marked). */
    std::vector<PointResult> points;
    /** Index of the knee point folded into the base for later
     *  stages. */
    std::size_t chosen = 0;
};

class ExploreRunner
{
  public:
    explicit ExploreRunner(ExploreOptions options);

    /**
     * Sweeps @p axis (must satisfy isAxis()): runs every planned
     * point's suite sweep, scores it, and marks dominated points and
     * the knee. Results are in plan order.
     */
    std::vector<PointResult> runAxis(const std::string &axis) const;

    /**
     * Cross-product multi-axis sweep (explore::planCross over
     * @p axes): every combination becomes one point, scored and
     * Pareto-marked over the whole product. Jobs, shards and resume
     * compose exactly as for one-axis plans.
     */
    std::vector<PointResult> runCross(
        const std::vector<std::string> &axes) const;

    /**
     * Coordinate descent over @p axes, in order: each stage sweeps
     * one axis from the current base, folds the stage's Pareto-knee
     * winner into the base, and proceeds. A geometry axis whose
     * mechanism an earlier stage disabled is skipped with a warning
     * (its grid would score identical points). Stage journals are
     * step-indexed (see pointCachePath's step tag) so a resumed
     * descent replays each stage against its own campaign.
     */
    std::vector<DescentStep> runDescent(
        const std::vector<std::string> &axes) const;

    /**
     * Runs and scores an explicit point list (plan order preserved,
     * Pareto marked over the list). Executes on the shared-arena
     * multi-point fan-out engine (suite/fanout.hh) when the runner
     * options are eligible -- one trace capture feeds every point per
     * pair -- and on independent per-point characterization sessions
     * otherwise; results and journals are identical either way.
     * @p step_tag namespaces the per-point journals (descent stages).
     */
    std::vector<PointResult> runPoints(
        const std::vector<ExplorePoint> &points,
        const std::string &step_tag = "") const;

    /**
     * Journal base path for @p point:
     * `<cachePath>.explore[.<step_tag>].<axis>.<label>` (empty when
     * caching is off). Per-point paths keep every point's campaign
     * header self-consistent -- a resumed exploration replays each
     * point against its own journal instead of refusing on the
     * previous point's config key.
     */
    std::string pointCachePath(const ExplorePoint &point,
                               const std::string &step_tag = "") const;

    const ExploreOptions &options() const { return options_; }

  private:
    ExploreOptions options_;
};

/** Marks dominated points and the Pareto knee in place. */
void markPareto(std::vector<PointResult> &points);

} // namespace explore
} // namespace spec17

#endif // SPEC17_EXPLORE_RUNNER_HH_
