#include "explore/plan.hh"

#include <cmath>

#include "util/logging.hh"

namespace spec17 {
namespace explore {

namespace {

/** ceil(log2(n)) for n >= 1 (victim-way / MRU pointer width). */
double
pointerBits(unsigned n)
{
    unsigned bits = 0;
    while ((1u << bits) < n)
        ++bits;
    return double(bits);
}

} // namespace

const std::vector<std::string> &
axisNames()
{
    static const std::vector<std::string> names = {
        "predictor", "prefetcher", "l2-prefetcher", "way-predictor"};
    return names;
}

bool
isAxis(const std::string &axis)
{
    for (const std::string &name : axisNames())
        if (name == axis)
            return true;
    return false;
}

double
predictorStorageBits(const std::string &name,
                     const sim::TageConfig &tage)
{
    // Table widths mirror the constructor defaults in sim/branch.hh:
    // bimodal/gshare/chooser are 2^14 tables of 2-bit counters.
    const double k2bitTable = double(1u << 14) * 2.0;
    if (name == "static-taken")
        return 0.0;
    if (name == "bimodal")
        return k2bitTable;
    if (name == "gshare")
        return k2bitTable + 12.0; // + global history register
    if (name == "tournament")
        return 3.0 * k2bitTable + 12.0; // bimodal + gshare + chooser
    if (name == "tage") {
        // Tagged entry: partial tag + 3-bit ctr + 2-bit useful + valid.
        const double entry = double(tage.tagBits) + 3.0 + 2.0 + 1.0;
        return double(tage.historyTables)
                   * double(std::uint64_t(1) << tage.tableBits) * entry
               + double(std::uint64_t(1) << tage.baseBits) * 2.0
               + double(tage.maxHistory); // global history register
    }
    SPEC17_PANIC("no storage model for predictor '", name, "'");
}

double
prefetcherStorageBits(const std::string &name,
                      const sim::StreamConfig &stream)
{
    // Line-address fields are 58 bits (64-bit byte address minus a
    // 64 B line offset).
    const double kLineAddr = 58.0;
    if (name == "none")
        return 0.0;
    if (name == "next-line")
        return kLineAddr; // last-line register
    if (name == "stride") {
        // 2^10 entries (sim/prefetch.hh default): 20-bit PC tag +
        // 64-bit last address + 16-bit stride + 2-bit confidence +
        // valid.
        return double(1u << 10) * (20.0 + 64.0 + 16.0 + 2.0 + 1.0);
    }
    if (name == "stream") {
        // Per stream: lastLine + issuedUpTo + LRU stamp + 2-bit
        // direction + 2-bit confidence + valid.
        const double entry =
            2.0 * kLineAddr + pointerBits(stream.streams) + 2.0 + 2.0
            + 1.0;
        return double(stream.streams) * entry;
    }
    SPEC17_PANIC("no storage model for prefetcher '", name, "'");
}

double
wayPredictorStorageBits(sim::WayPredictor predictor,
                        const sim::CacheConfig &l1d)
{
    switch (predictor) {
      case sim::WayPredictor::None:
        return 0.0;
      case sim::WayPredictor::Mru:
        // One MRU way pointer per set.
        return double(l1d.numSets()) * pointerBits(l1d.assoc);
      case sim::WayPredictor::Utag:
        // One 8-bit partial tag per way.
        return double(l1d.numSets()) * double(l1d.assoc) * 8.0;
    }
    SPEC17_PANIC("unknown WayPredictor ", int(predictor));
}

std::vector<ExplorePoint>
planAxis(const std::string &axis, const sim::SystemConfig &base)
{
    std::vector<ExplorePoint> points;
    const auto add = [&](const std::string &label,
                         const sim::SystemConfig &system, double bits) {
        points.push_back({axis, label, system, bits});
    };

    if (axis == "predictor") {
        for (const char *name : {"static-taken", "bimodal", "gshare",
                                 "tournament", "tage"}) {
            sim::SystemConfig system = base;
            system.branchPredictor = name;
            add(name, system, predictorStorageBits(name, base.tage));
        }
        return points;
    }

    sim::StreamConfig stream;
    stream.degree = base.hierarchy.streamDegree;
    stream.distance = base.hierarchy.streamDistance;
    stream.lineBytes = base.hierarchy.l1d.lineBytes;

    if (axis == "prefetcher" || axis == "l2-prefetcher") {
        for (const char *name :
             {"none", "next-line", "stride", "stream"}) {
            sim::SystemConfig system = base;
            if (axis == "prefetcher")
                system.hierarchy.prefetcher = name;
            else
                system.hierarchy.l2Prefetcher = name;
            add(name, system, prefetcherStorageBits(name, stream));
        }
        return points;
    }

    if (axis == "way-predictor") {
        for (const auto predictor :
             {sim::WayPredictor::None, sim::WayPredictor::Mru,
              sim::WayPredictor::Utag}) {
            sim::SystemConfig system = base;
            system.hierarchy.l1d.wayPredictor = predictor;
            add(sim::wayPredictorName(predictor), system,
                wayPredictorStorageBits(predictor,
                                        base.hierarchy.l1d));
        }
        return points;
    }

    SPEC17_PANIC("unknown explore axis '", axis,
                 "' (callers validate with isAxis())");
}

} // namespace explore
} // namespace spec17
