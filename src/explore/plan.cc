#include "explore/plan.hh"

#include <cmath>

#include "util/logging.hh"

namespace spec17 {
namespace explore {

namespace {

/** ceil(log2(n)) for n >= 1 (victim-way / MRU pointer width). */
double
pointerBits(unsigned n)
{
    unsigned bits = 0;
    while ((1u << bits) < n)
        ++bits;
    return double(bits);
}

} // namespace

const std::vector<std::string> &
axisNames()
{
    static const std::vector<std::string> names = {
        "predictor", "prefetcher", "l2-prefetcher", "way-predictor"};
    return names;
}

bool
isAxis(const std::string &axis)
{
    for (const std::string &name : axisNames())
        if (name == axis)
            return true;
    return false;
}

const std::vector<std::string> &
geometryAxisNames()
{
    static const std::vector<std::string> names = {"tage-geometry",
                                                   "stream-geometry"};
    return names;
}

bool
isGeometryAxis(const std::string &axis)
{
    for (const std::string &name : geometryAxisNames())
        if (name == axis)
            return true;
    return false;
}

std::string
axisPlanError(const std::string &axis, const sim::SystemConfig &base)
{
    if (axis == "tage-geometry" && base.branchPredictor != "tage") {
        return "axis 'tage-geometry' sweeps TAGE table geometry, but "
               "the base branch predictor is '"
               + base.branchPredictor
               + "' (every grid point would be identical); select "
                 "tage first";
    }
    if (axis == "stream-geometry"
        && base.hierarchy.prefetcher != "stream"
        && base.hierarchy.l2Prefetcher != "stream") {
        return "axis 'stream-geometry' sweeps stream-prefetcher "
               "degree/distance, but neither prefetcher slot is "
               "'stream' (every grid point would be identical); "
               "select a stream prefetcher first";
    }
    return "";
}

double
predictorStorageBits(const std::string &name,
                     const sim::TageConfig &tage)
{
    // Table widths mirror the constructor defaults in sim/branch.hh:
    // bimodal/gshare/chooser are 2^14 tables of 2-bit counters.
    const double k2bitTable = double(1u << 14) * 2.0;
    if (name == "static-taken")
        return 0.0;
    if (name == "bimodal")
        return k2bitTable;
    if (name == "gshare")
        return k2bitTable + 12.0; // + global history register
    if (name == "tournament")
        return 3.0 * k2bitTable + 12.0; // bimodal + gshare + chooser
    if (name == "tage") {
        // Tagged entry: partial tag + 3-bit ctr + 2-bit useful + valid.
        const double entry = double(tage.tagBits) + 3.0 + 2.0 + 1.0;
        return double(tage.historyTables)
                   * double(std::uint64_t(1) << tage.tableBits) * entry
               + double(std::uint64_t(1) << tage.baseBits) * 2.0
               + double(tage.maxHistory); // global history register
    }
    SPEC17_PANIC("no storage model for predictor '", name, "'");
}

double
prefetcherStorageBits(const std::string &name,
                      const sim::StreamConfig &stream)
{
    // Line-address fields are 58 bits (64-bit byte address minus a
    // 64 B line offset).
    const double kLineAddr = 58.0;
    if (name == "none")
        return 0.0;
    if (name == "next-line")
        return kLineAddr; // last-line register
    if (name == "stride") {
        // 2^10 entries (sim/prefetch.hh default): 20-bit PC tag +
        // 64-bit last address + 16-bit stride + 2-bit confidence +
        // valid.
        return double(1u << 10) * (20.0 + 64.0 + 16.0 + 2.0 + 1.0);
    }
    if (name == "stream") {
        // Per stream: lastLine + issuedUpTo + LRU stamp + 2-bit
        // direction + 2-bit confidence + valid.
        const double entry =
            2.0 * kLineAddr + pointerBits(stream.streams) + 2.0 + 2.0
            + 1.0;
        return double(stream.streams) * entry;
    }
    SPEC17_PANIC("no storage model for prefetcher '", name, "'");
}

double
wayPredictorStorageBits(sim::WayPredictor predictor,
                        const sim::CacheConfig &l1d)
{
    switch (predictor) {
      case sim::WayPredictor::None:
        return 0.0;
      case sim::WayPredictor::Mru:
        // One MRU way pointer per set.
        return double(l1d.numSets()) * pointerBits(l1d.assoc);
      case sim::WayPredictor::Utag:
        // One 8-bit partial tag per way.
        return double(l1d.numSets()) * double(l1d.assoc) * 8.0;
    }
    SPEC17_PANIC("unknown WayPredictor ", int(predictor));
}

std::vector<ExplorePoint>
planAxis(const std::string &axis, const sim::SystemConfig &base)
{
    std::vector<ExplorePoint> points;
    const auto add = [&](const std::string &label,
                         const sim::SystemConfig &system, double bits) {
        points.push_back({axis, label, system, bits});
    };

    if (axis == "predictor") {
        for (const char *name : {"static-taken", "bimodal", "gshare",
                                 "tournament", "tage"}) {
            sim::SystemConfig system = base;
            system.branchPredictor = name;
            add(name, system, predictorStorageBits(name, base.tage));
        }
        return points;
    }

    sim::StreamConfig stream;
    stream.degree = base.hierarchy.streamDegree;
    stream.distance = base.hierarchy.streamDistance;
    stream.lineBytes = base.hierarchy.l1d.lineBytes;

    if (axis == "prefetcher" || axis == "l2-prefetcher") {
        for (const char *name :
             {"none", "next-line", "stride", "stream"}) {
            sim::SystemConfig system = base;
            if (axis == "prefetcher")
                system.hierarchy.prefetcher = name;
            else
                system.hierarchy.l2Prefetcher = name;
            add(name, system, prefetcherStorageBits(name, stream));
        }
        return points;
    }

    if (axis == "way-predictor") {
        for (const auto predictor :
             {sim::WayPredictor::None, sim::WayPredictor::Mru,
              sim::WayPredictor::Utag}) {
            sim::SystemConfig system = base;
            system.hierarchy.l1d.wayPredictor = predictor;
            add(sim::wayPredictorName(predictor), system,
                wayPredictorStorageBits(predictor,
                                        base.hierarchy.l1d));
        }
        return points;
    }

    SPEC17_PANIC("unknown explore axis '", axis,
                 "' (callers validate with isAxis())");
}

namespace {

/** Geometry-grid planning without the axisPlanError gate (planCross
 *  validates against the original base; intermediate cross configs
 *  may legitimately disable the mechanism, yielding inert knobs). */
std::vector<ExplorePoint>
planGeometryAxis(const std::string &axis, const sim::SystemConfig &base)
{
    std::vector<ExplorePoint> points;
    if (axis == "tage-geometry") {
        // Table-count grid at fixed entry geometry: storage scales
        // linearly while accuracy saturates, which is exactly the
        // knee shape the Pareto selector is for.
        for (const unsigned tables : {1u, 2u, 4u, 8u}) {
            sim::SystemConfig system = base;
            system.tage.historyTables = tables;
            points.push_back(
                {axis, "tables" + std::to_string(tables), system,
                 predictorStorageBits("tage", system.tage)});
        }
        return points;
    }

    // stream-geometry: degree x distance grid, applied to both
    // prefetcher slots (HierarchyConfig's knobs are shared).
    for (const unsigned degree : {2u, 4u, 8u}) {
        for (const unsigned distance : {8u, 16u, 32u}) {
            if (degree > distance)
                continue; // cannot keep fewer lines ahead than issued
            sim::SystemConfig system = base;
            system.hierarchy.streamDegree = degree;
            system.hierarchy.streamDistance = distance;
            sim::StreamConfig stream;
            stream.degree = degree;
            stream.distance = distance;
            stream.lineBytes = system.hierarchy.l1d.lineBytes;
            points.push_back({axis,
                              "deg" + std::to_string(degree) + "-dist"
                                  + std::to_string(distance),
                              system,
                              prefetcherStorageBits("stream", stream)});
        }
    }
    return points;
}

/** Planning dispatch used by the cross product: no plan-error gate. */
std::vector<ExplorePoint>
planOneAxis(const std::string &axis, const sim::SystemConfig &base)
{
    if (isAxis(axis))
        return planAxis(axis, base);
    SPEC17_ASSERT(isGeometryAxis(axis), "unknown explore axis '", axis,
                  "' (callers validate with isAxis()/isGeometryAxis())");
    return planGeometryAxis(axis, base);
}

} // namespace

std::vector<ExplorePoint>
planAnyAxis(const std::string &axis, const sim::SystemConfig &base)
{
    if (isGeometryAxis(axis)) {
        const std::string error = axisPlanError(axis, base);
        SPEC17_ASSERT(error.empty(), error);
    }
    return planOneAxis(axis, base);
}

std::vector<ExplorePoint>
planCross(const std::vector<std::string> &axes,
          const sim::SystemConfig &base)
{
    SPEC17_ASSERT(!axes.empty(), "cross-product plan without axes");
    for (const std::string &axis : axes) {
        // Geometry axes validate against the ORIGINAL base (the
        // CLI's contract); intermediate combinations may disable the
        // mechanism, which just leaves that axis' knobs inert there.
        const std::string error = axisPlanError(axis, base);
        SPEC17_ASSERT(error.empty(), error);
    }
    std::vector<ExplorePoint> points = planOneAxis(axes.front(), base);
    for (std::size_t k = 1; k < axes.size(); ++k) {
        std::vector<ExplorePoint> next;
        for (const ExplorePoint &left : points) {
            // Later axes plan from the partially-applied config so
            // every combination carries all its knobs.
            for (const ExplorePoint &right :
                 planOneAxis(axes[k], left.system)) {
                ExplorePoint combined;
                combined.axis = left.axis + "+" + right.axis;
                combined.label = left.label + "," + right.label;
                combined.system = right.system;
                combined.costBits = left.costBits + right.costBits;
                next.push_back(std::move(combined));
            }
        }
        points = std::move(next);
    }
    return points;
}

} // namespace explore
} // namespace spec17
