/**
 * @file
 * Hand-written deterministic kernel traces.
 *
 * Unlike the statistical generator, these emit exactly predictable
 * micro-op streams (a streaming loop, a pointer chase, a 2-D array
 * walk), which makes them the right fixtures for validating cache and
 * predictor behaviour analytically, and useful as simple example
 * workloads.
 */

#ifndef SPEC17_TRACE_KERNELS_HH_
#define SPEC17_TRACE_KERNELS_HH_

#include <cstdint>
#include <vector>

#include "trace/source.hh"
#include "util/random.hh"

namespace spec17 {
namespace trace {

/**
 * STREAM-like kernel: `for i: sum += a[i]` repeated over a working
 * set, with an optional store stream `b[i] = ...` and a loop-back
 * conditional branch per iteration. Sequential 8-byte accesses.
 */
class StreamKernel : public TraceSource
{
  public:
    /**
     * @param array_bytes working-set size of the load array.
     * @param num_iterations loop iterations to run.
     * @param with_store also emit a store per iteration to a second
     *        array of the same size.
     */
    StreamKernel(std::uint64_t array_bytes, std::uint64_t num_iterations,
                 bool with_store = false);

    bool next(isa::MicroOp &op) override;
    void reset() override;
    std::uint64_t virtualReserveBytes() const override;

    /** Micro-ops per loop iteration (load[, store], add, branch). */
    std::uint64_t opsPerIteration() const { return withStore_ ? 4 : 3; }

  private:
    std::uint64_t arrayBytes_;
    std::uint64_t numIterations_;
    bool withStore_;
    std::uint64_t iter_ = 0;
    unsigned phase_ = 0;
};

/**
 * Linked-list traversal over a shuffled permutation: every load's
 * address is produced by the previous load (depOnLoad), so there is
 * no memory-level parallelism -- the classic latency-bound workload.
 */
class PointerChaseKernel : public TraceSource
{
  public:
    /**
     * @param region_bytes size of the node pool (one node per line).
     * @param num_hops dependent loads to perform.
     * @param seed permutation seed.
     */
    PointerChaseKernel(std::uint64_t region_bytes, std::uint64_t num_hops,
                       std::uint64_t seed = 7);

    bool next(isa::MicroOp &op) override;
    void reset() override;
    std::uint64_t virtualReserveBytes() const override;

  private:
    std::uint64_t regionBytes_;
    std::uint64_t numHops_;
    std::vector<std::uint32_t> nextIndex_; //!< permutation cycle
    std::uint64_t hop_ = 0;
    std::uint32_t node_ = 0;
    unsigned phase_ = 0;
};

/**
 * Row-major or column-major walk over a rows x cols matrix of 8-byte
 * elements; the column-major variant strides by the row length and
 * demonstrates pathological spatial locality.
 */
class MatrixWalkKernel : public TraceSource
{
  public:
    MatrixWalkKernel(std::uint64_t rows, std::uint64_t cols,
                     bool row_major, std::uint64_t passes = 1);

    bool next(isa::MicroOp &op) override;
    void reset() override;
    std::uint64_t virtualReserveBytes() const override;

  private:
    std::uint64_t rows_;
    std::uint64_t cols_;
    bool rowMajor_;
    std::uint64_t passes_;
    std::uint64_t index_ = 0;
    unsigned phase_ = 0;
};

/** Wraps a pre-recorded vector of micro-ops as a TraceSource. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<isa::MicroOp> ops);

    bool next(isa::MicroOp &op) override;
    void reset() override { pos_ = 0; }

  private:
    std::vector<isa::MicroOp> ops_;
    std::size_t pos_ = 0;
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_KERNELS_HH_
