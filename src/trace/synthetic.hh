/**
 * @file
 * Statistical micro-op trace generation.
 *
 * This is the framework's stand-in for executing licensed SPEC
 * binaries: a workload is described by its microarchitecture-
 * independent statistics (instruction mix, branch-site population,
 * memory-region working sets and access patterns) and the generator
 * emits a deterministic micro-op stream with those statistics. The
 * approach follows the statistical-simulation lineage the paper's own
 * methodology cites (Eeckhout et al., program-input pair selection).
 */

#ifndef SPEC17_TRACE_SYNTHETIC_HH_
#define SPEC17_TRACE_SYNTHETIC_HH_

#include <cstdint>
#include <vector>

#include "trace/source.hh"
#include "util/random.hh"

namespace spec17 {
namespace trace {

/** How a memory region is walked. */
enum class AccessPattern : std::uint8_t
{
    Sequential,   //!< unit-stride streaming (lbm-like)
    Strided,      //!< constant stride > one line (column walks)
    Random,       //!< independent uniform accesses (hash tables)
    PointerChase, //!< dependent random accesses (mcf-like lists)
};

/** Human-readable pattern name. */
const char *accessPatternName(AccessPattern pattern);

/**
 * One logically contiguous data region of the synthetic workload.
 * Its size against the cache capacities determines where its accesses
 * hit; its pattern determines the memory-level parallelism the core
 * model can extract.
 */
struct MemoryRegionParams
{
    AccessPattern pattern = AccessPattern::Sequential;
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint64_t strideBytes = 64;  //!< used by Strided
    double loadWeight = 1.0;   //!< share of loads landing here
    double storeWeight = 1.0;  //!< share of stores landing here
};

/** Full parameterization of a synthetic workload trace. */
struct SyntheticTraceParams
{
    /** Micro-ops to emit. */
    std::uint64_t numOps = 1'000'000;
    /** Root seed; every internal stream derives from it. */
    std::uint64_t seed = 1;

    /** @name Instruction mix (fractions of all micro-ops) */
    /// @{
    double loadFrac = 0.25;
    double storeFrac = 0.09;
    double branchFrac = 0.15;
    /// @}

    /** Fraction of the remaining compute ops that are FP. */
    double fpFrac = 0.0;
    /** Fraction of int/fp compute that is multiply. */
    double mulFrac = 0.05;
    /** Fraction of int/fp compute that is divide (unpipelined). */
    double divFrac = 0.005;

    /** @name Branch-kind mix (fractions of all branches; rest become
     *        conditional if they do not sum to 1) */
    /// @{
    double condFrac = 0.79;
    double directJumpFrac = 0.08;
    double nearCallFrac = 0.055;
    double indirectJumpFrac = 0.015;
    double nearReturnFrac = 0.06;
    /// @}

    /** Static conditional-branch sites in the synthetic program. */
    std::size_t numBranchSites = 1024;
    /**
     * Fraction of dynamic conditional branches coming from
     * data-dependent ~50/50 sites (the knob that positions an app's
     * mispredict rate: leela-like game trees are high, lbm-like
     * stencils are near zero).
     */
    double hardBranchFrac = 0.04;
    /**
     * Taken bias of the easy (predictable) branch sites. A site with
     * bias b has min(b, 1-b) intrinsic mispredicts under any
     * predictor, so this must stay near 1 for realistic floors.
     */
    double easyTakenBias = 0.98;
    /** Fraction of conditional branches whose input is a load. */
    double branchDepOnLoadFrac = 0.2;

    /**
     * Fraction of compute ops that depend on the immediately
     * preceding op -- the workload's serial-chain density, which
     * bounds achievable ILP (x264-like media code is low, latency-
     * chained FP solvers are high).
     */
    double computeDepFrac = 0.25;

    /** Distinct indirect-jump target count per indirect site. */
    std::size_t indirectTargets = 4;
    /**
     * Probability an indirect jump leaves its dominant target; the
     * BTB mispredicts roughly every switch, so this positions the
     * indirect contribution to the mispredict rate.
     */
    double indirectSwitchProb = 0.25;

    /** Instruction footprint (drives the I-cache). */
    std::uint64_t codeFootprintBytes = 192 * 1024;
    /** Fraction of taken-branch targets inside the hot (L1I-sized)
     *  prefix of the code. */
    double hotCodeFrac = 0.95;

    /** Static indirect-jump sites (scaled down for workloads whose
     *  dynamic indirect count could not warm a larger population). */
    std::size_t numIndirectSites = 64;

    /** Data regions; weights are normalized internally. */
    std::vector<MemoryRegionParams> regions;

    /** Address space reserved but never touched (VSZ - RSS slack). */
    std::uint64_t extraVirtualBytes = 8 * 1024 * 1024;

    /**
     * Constant added to every data-region base address. Zero means
     * all generators built from the same region list share data (the
     * OpenMP shared-heap case); per-thread offsets model private
     * heaps that multiply the combined working set.
     */
    std::uint64_t addressOffset = 0;

    /** Validates fractions and region weights; panics on nonsense. */
    void validate() const;
};

/**
 * Deterministic statistical trace generator. Two generators built
 * from equal params emit identical streams; reset() rewinds exactly.
 */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    explicit SyntheticTraceGenerator(SyntheticTraceParams params);

    bool next(isa::MicroOp &op) override;
    std::size_t nextBatch(isa::MicroOp *out, std::size_t n) override;
    std::size_t nextBatchSoA(MicroOpBatch &out, std::size_t at,
                             std::size_t n) override;
    void reset() override;
    std::uint64_t virtualReserveBytes() const override;

    /** True while the borrowed cancel flag is raised (see
     *  setCancelFlag); the stream resumes when it clears. */
    bool
    cancelled() const override
    {
        return cancel_ != nullptr && *cancel_;
    }

    const SyntheticTraceParams &params() const { return params_; }

    /**
     * Cooperative cancellation: while @p flag points at a true value,
     * next() emits nothing and reports end-of-stream, letting a
     * watchdog stop runaway generation at the next micro-op boundary.
     * The flag is borrowed, not owned; pass nullptr to detach.
     */
    void setCancelFlag(const bool *flag) { cancel_ = flag; }

    /** Micro-ops emitted so far (telemetry counter). */
    std::uint64_t emittedOps() const { return emitted_; }

    /** Base virtual address of data region @p index (for tests). */
    std::uint64_t regionBase(std::size_t index) const;

    /** Base virtual address of the code segment. */
    std::uint64_t codeBase() const { return kCodeBase; }

  private:
    struct BranchSite
    {
        std::uint64_t pc = 0;
        double takenProb = 0.5;
        bool hard = false;
    };

    struct RegionState
    {
        std::uint64_t base = 0;
        std::uint64_t cursor = 0;
    };

    /** Per-op constants hoisted out of the emission loop. The class
     *  and branch-kind cuts are kept as BernoulliDraw::thresholdOf()
     *  integer images of the cumulative double cuts: the roll is
     *  drawn once as a raw 53-bit value and compared against them
     *  with exactly the nextDouble()-vs-double-cut outcomes. */
    struct EmitConsts
    {
        std::uint64_t hotSpan;
        std::uint64_t loadCut;    //!< roll < loadCut -> load
        std::uint64_t storeCut;   //!< roll < storeCut -> store
        std::uint64_t branchCut;  //!< roll < branchCut -> branch
        std::uint64_t condCut;    //!< branch-kind cuts, cumulative
        std::uint64_t directJumpCut;
        std::uint64_t nearCallCut;
        std::uint64_t indirectJumpCut;
        std::uint64_t nearReturnCut;
        std::uint64_t divCut;     //!< compute-unit cuts, cumulative
        std::uint64_t mulCut;
        std::size_t numHardSites;
    };

    void rebuildStaticStructure();
    EmitConsts emitConsts() const;
    /**
     * Emits exactly one op through @p w (the caller has checked
     * termination). There is a single emission body shared by the AoS
     * and SoA surfaces: the writer only chooses where the fields land
     * (a MicroOp struct or batch lanes), so the RNG draw order -- and
     * therefore the emitted stream -- cannot diverge between them.
     */
    template <typename Writer>
    void emitOpTo(Writer &&w, const EmitConsts &k);
    /** AoS form of emitOpTo (next()/nextBatch() surfaces). */
    void emitOp(isa::MicroOp &op, const EmitConsts &k);
    std::uint64_t pickAddress(std::size_t region_index, bool &dep_on_load);
    std::uint64_t pickBranchTarget();
    /** Rng::nextDiscrete with the weight sum precomputed (the weight
     *  vectors are fixed after configuration): consumes the same
     *  single nextDouble() draw and selects by the same sequential
     *  subtraction, so the emitted stream is unchanged. */
    std::size_t pickWeighted(const std::vector<double> &weights,
                             double total);

    SyntheticTraceParams params_;
    Rng rng_;
    const bool *cancel_ = nullptr;
    std::uint64_t emitted_ = 0;
    std::uint64_t pc_ = 0;

    std::vector<BranchSite> condSites_;
    std::vector<std::uint64_t> indirectSitePcs_;
    std::vector<std::vector<std::uint64_t>> indirectSiteTargets_;
    std::vector<RegionState> regionState_;
    /** @name Cached bounded draws (see BoundedDraw)
     *  Every nextBounded() bound in the emission path is fixed by
     *  params_ / the static structure, so the per-call division pair
     *  is hoisted to construction time. Draw-for-draw identical to
     *  the direct nextBounded() calls they replace. */
    /// @{
    std::vector<BoundedDraw> regionOffsetDraw_; //!< per region
    BoundedDraw hotTargetDraw_;
    BoundedDraw coldTargetDraw_;
    BoundedDraw hardSiteDraw_;
    BoundedDraw easySiteDraw_;
    BoundedDraw allSiteDraw_;
    BoundedDraw indirectSiteDraw_;
    std::vector<BoundedDraw> indirectPickDraw_; //!< per site fanout
    /// @}
    /** @name Cached Bernoulli draws (see BernoulliDraw)
     *  Same hoisting for every fixed-probability nextBernoulli() in
     *  the emission path, including one per conditional site for its
     *  taken bias. Draw-for-draw identical to the calls replaced. */
    /// @{
    BernoulliDraw hardBranchDraw_;
    BernoulliDraw branchDepDraw_;
    BernoulliDraw hotCodeDraw_;
    BernoulliDraw indirectSwitchDraw_;
    BernoulliDraw fpDraw_;
    BernoulliDraw computeDepDraw_;
    std::vector<BernoulliDraw> condSiteTakenDraw_; //!< per site
    /// @}
    std::vector<double> loadWeights_;
    std::vector<double> storeWeights_;
    double loadWeightTotal_ = 0.0;
    double storeWeightTotal_ = 0.0;

    static constexpr std::uint64_t kCodeBase = 0x400000;
    static constexpr std::uint64_t kDataBase = 0x10000000;
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_SYNTHETIC_HH_
