#include "trace/kernels.hh"

#include <numeric>

#include "util/logging.hh"

namespace spec17 {
namespace trace {

namespace {

constexpr std::uint64_t kCodeBase = 0x400000;
constexpr std::uint64_t kLoadArrayBase = 0x10000000;
constexpr std::uint64_t kStoreArrayBase = 0x30000000;
constexpr std::uint64_t kLineBytes = 64;

} // namespace

// ---------------------------------------------------------------------
// StreamKernel
// ---------------------------------------------------------------------

StreamKernel::StreamKernel(std::uint64_t array_bytes,
                           std::uint64_t num_iterations, bool with_store)
    : arrayBytes_(array_bytes / 8 * 8), numIterations_(num_iterations),
      withStore_(with_store)
{
    SPEC17_ASSERT(arrayBytes_ >= 8, "stream array too small");
    SPEC17_ASSERT(numIterations_ > 0, "stream kernel needs iterations");
}

bool
StreamKernel::next(isa::MicroOp &op)
{
    if (iter_ >= numIterations_)
        return false;

    const std::uint64_t offset = (iter_ * 8) % arrayBytes_;
    switch (phase_) {
      case 0:
        op = isa::makeLoad(kCodeBase + 0, kLoadArrayBase + offset);
        break;
      case 1:
        if (withStore_) {
            op = isa::makeStore(kCodeBase + 4, kStoreArrayBase + offset);
            break;
        }
        ++phase_;
        [[fallthrough]];
      case 2:
        op = isa::makeAlu(kCodeBase + 8);
        break;
      case 3: {
        const bool last = (iter_ + 1 == numIterations_);
        op = isa::makeBranch(kCodeBase + 12, isa::BranchKind::Conditional,
                             !last, kCodeBase + 0);
        break;
      }
      default:
        SPEC17_PANIC("bad stream kernel phase");
    }
    if (++phase_ > 3) {
        phase_ = 0;
        ++iter_;
    }
    return true;
}

void
StreamKernel::reset()
{
    iter_ = 0;
    phase_ = 0;
}

std::uint64_t
StreamKernel::virtualReserveBytes() const
{
    return arrayBytes_ * (withStore_ ? 2 : 1);
}

// ---------------------------------------------------------------------
// PointerChaseKernel
// ---------------------------------------------------------------------

PointerChaseKernel::PointerChaseKernel(std::uint64_t region_bytes,
                                       std::uint64_t num_hops,
                                       std::uint64_t seed)
    : regionBytes_(region_bytes), numHops_(num_hops)
{
    const std::uint64_t nodes = regionBytes_ / kLineBytes;
    SPEC17_ASSERT(nodes >= 2, "pointer chase needs >= 2 nodes");
    SPEC17_ASSERT(numHops_ > 0, "pointer chase needs hops");

    // Sattolo's algorithm: a single cycle through all nodes, so the
    // chase touches the whole region before repeating.
    nextIndex_.resize(nodes);
    std::iota(nextIndex_.begin(), nextIndex_.end(), 0u);
    Rng rng(deriveSeed(seed, "chase-perm"));
    for (std::uint64_t i = nodes - 1; i > 0; --i) {
        const std::uint64_t j = rng.nextBounded(i);
        std::swap(nextIndex_[i], nextIndex_[j]);
    }
}

bool
PointerChaseKernel::next(isa::MicroOp &op)
{
    if (hop_ >= numHops_)
        return false;

    switch (phase_) {
      case 0:
        // The pointer load: address depends on the previous load.
        op = isa::makeLoad(kCodeBase + 0,
                           kLoadArrayBase
                               + static_cast<std::uint64_t>(node_)
                                     * kLineBytes,
                           8, hop_ > 0);
        node_ = nextIndex_[node_];
        break;
      case 1: {
        const bool last = (hop_ + 1 == numHops_);
        op = isa::makeBranch(kCodeBase + 4, isa::BranchKind::Conditional,
                             !last, kCodeBase + 0, true);
        break;
      }
      default:
        SPEC17_PANIC("bad chase kernel phase");
    }
    if (++phase_ > 1) {
        phase_ = 0;
        ++hop_;
    }
    return true;
}

void
PointerChaseKernel::reset()
{
    hop_ = 0;
    node_ = 0;
    phase_ = 0;
}

std::uint64_t
PointerChaseKernel::virtualReserveBytes() const
{
    return regionBytes_;
}

// ---------------------------------------------------------------------
// MatrixWalkKernel
// ---------------------------------------------------------------------

MatrixWalkKernel::MatrixWalkKernel(std::uint64_t rows, std::uint64_t cols,
                                   bool row_major, std::uint64_t passes)
    : rows_(rows), cols_(cols), rowMajor_(row_major), passes_(passes)
{
    SPEC17_ASSERT(rows_ > 0 && cols_ > 0, "matrix must be non-empty");
    SPEC17_ASSERT(passes_ > 0, "matrix walk needs passes");
}

bool
MatrixWalkKernel::next(isa::MicroOp &op)
{
    const std::uint64_t total = rows_ * cols_ * passes_;
    if (index_ >= total)
        return false;

    const std::uint64_t flat = index_ % (rows_ * cols_);
    std::uint64_t element;
    if (rowMajor_) {
        element = flat; // natural layout order
    } else {
        // Walk column by column over a row-major layout.
        const std::uint64_t r = flat % rows_;
        const std::uint64_t c = flat / rows_;
        element = r * cols_ + c;
    }

    switch (phase_) {
      case 0:
        op = isa::makeLoad(kCodeBase + 0, kLoadArrayBase + element * 8);
        break;
      case 1: {
        const bool last = (index_ + 1 == total);
        op = isa::makeBranch(kCodeBase + 4, isa::BranchKind::Conditional,
                             !last, kCodeBase + 0);
        break;
      }
      default:
        SPEC17_PANIC("bad matrix kernel phase");
    }
    if (++phase_ > 1) {
        phase_ = 0;
        ++index_;
    }
    return true;
}

void
MatrixWalkKernel::reset()
{
    index_ = 0;
    phase_ = 0;
}

std::uint64_t
MatrixWalkKernel::virtualReserveBytes() const
{
    return rows_ * cols_ * 8;
}

// ---------------------------------------------------------------------
// VectorTrace
// ---------------------------------------------------------------------

VectorTrace::VectorTrace(std::vector<isa::MicroOp> ops)
    : ops_(std::move(ops))
{
}

bool
VectorTrace::next(isa::MicroOp &op)
{
    if (pos_ >= ops_.size())
        return false;
    op = ops_[pos_++];
    return true;
}

} // namespace trace
} // namespace spec17
