/**
 * @file
 * Trace persistence: write any TraceSource to a compact binary file
 * and replay it later. This is the bring-your-own-trace surface: a
 * user can generate traces elsewhere (e.g. from a binary-
 * instrumentation tool), convert them to this format, and
 * characterize them on the simulated machine.
 *
 * Format (little-endian):
 *   header: magic "S17T", u32 version, u64 record count,
 *           u64 virtual-reserve bytes
 *   records: packed MicroOp fields, 28 bytes each
 */

#ifndef SPEC17_TRACE_FILE_HH_
#define SPEC17_TRACE_FILE_HH_

#include <fstream>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace spec17 {
namespace trace {

/**
 * Drains @p source into the trace file at @p path.
 * @return number of micro-ops written. Fatal on I/O failure.
 */
std::uint64_t writeTrace(const std::string &path, TraceSource &source);

/**
 * Streams a trace file from disk. Records are read through a
 * fixed-size buffer; reset() rewinds to the first record.
 */
class FileTrace : public TraceSource
{
  public:
    /** Opens and validates @p path; fatal on missing/corrupt files. */
    explicit FileTrace(const std::string &path);

    bool next(isa::MicroOp &op) override;
    std::size_t nextBatch(isa::MicroOp *out, std::size_t n) override;
    std::size_t nextBatchSoA(MicroOpBatch &out, std::size_t at,
                             std::size_t n) override;
    void reset() override;
    std::uint64_t virtualReserveBytes() const override;

    /** Total records in the file. */
    std::uint64_t size() const { return count_; }

  private:
    void refill();

    std::string path_;
    std::ifstream in_;
    std::uint64_t count_ = 0;
    std::uint64_t reserveBytes_ = 0;
    std::uint64_t delivered_ = 0;
    std::vector<isa::MicroOp> buffer_;
    std::size_t bufferPos_ = 0;
    std::vector<unsigned char> rawScratch_;
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_FILE_HH_
