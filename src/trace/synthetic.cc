#include "trace/synthetic.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace trace {

namespace {

/** Page granularity used to separate region base addresses. */
constexpr std::uint64_t kPageBytes = 4096;

std::uint64_t
pageAlignUp(std::uint64_t bytes)
{
    return (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
}

void
checkFraction(double value, const char *what)
{
    SPEC17_ASSERT(value >= 0.0 && value <= 1.0,
                  what, " must be in [0, 1], got ", value);
}

} // namespace

const char *
accessPatternName(AccessPattern pattern)
{
    switch (pattern) {
      case AccessPattern::Sequential: return "sequential";
      case AccessPattern::Strided: return "strided";
      case AccessPattern::Random: return "random";
      case AccessPattern::PointerChase: return "pointer_chase";
    }
    SPEC17_PANIC("unknown AccessPattern");
}

void
SyntheticTraceParams::validate() const
{
    checkFraction(loadFrac, "loadFrac");
    checkFraction(storeFrac, "storeFrac");
    checkFraction(branchFrac, "branchFrac");
    SPEC17_ASSERT(loadFrac + storeFrac + branchFrac <= 1.0 + 1e-9,
                  "instruction mix exceeds 100%");
    checkFraction(fpFrac, "fpFrac");
    checkFraction(mulFrac, "mulFrac");
    checkFraction(divFrac, "divFrac");
    checkFraction(hardBranchFrac, "hardBranchFrac");
    checkFraction(easyTakenBias, "easyTakenBias");
    checkFraction(branchDepOnLoadFrac, "branchDepOnLoadFrac");
    checkFraction(computeDepFrac, "computeDepFrac");
    checkFraction(indirectSwitchProb, "indirectSwitchProb");
    checkFraction(hotCodeFrac, "hotCodeFrac");
    const double kinds = condFrac + directJumpFrac + nearCallFrac
        + indirectJumpFrac + nearReturnFrac;
    SPEC17_ASSERT(kinds <= 1.0 + 1e-9,
                  "branch kind fractions exceed 100%");
    SPEC17_ASSERT(numBranchSites >= 2, "need at least two branch sites");
    SPEC17_ASSERT(codeFootprintBytes >= 4096,
                  "code footprint implausibly small");
    if (loadFrac > 0.0 || storeFrac > 0.0) {
        SPEC17_ASSERT(!regions.empty(),
                      "memory mix requires at least one region");
    }
    double load_w = 0.0, store_w = 0.0;
    for (const auto &region : regions) {
        SPEC17_ASSERT(region.sizeBytes >= 64,
                      "region smaller than one cache line");
        SPEC17_ASSERT(region.loadWeight >= 0.0 && region.storeWeight >= 0.0,
                      "region weights must be non-negative");
        load_w += region.loadWeight;
        store_w += region.storeWeight;
    }
    if (loadFrac > 0.0)
        SPEC17_ASSERT(load_w > 0.0, "loads emitted but no load weight");
    if (storeFrac > 0.0)
        SPEC17_ASSERT(store_w > 0.0, "stores emitted but no store weight");
}

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticTraceParams params)
    : params_(std::move(params)),
      rng_(deriveSeed(params_.seed, "uop-stream"))
{
    params_.validate();
    rebuildStaticStructure();
    reset();
}

void
SyntheticTraceGenerator::rebuildStaticStructure()
{
    // The static program shape (branch sites, indirect targets, region
    // bases) comes from its own RNG stream so that reset() does not
    // need to rebuild it.
    Rng srng(deriveSeed(params_.seed, "static-structure"));

    const std::uint64_t code_span = params_.codeFootprintBytes;
    // Branch sites concentrate in the hot (L1I-resident) code like
    // the rest of the fetch stream; a small tail lives in cold code.
    const std::uint64_t hot_span =
        std::min<std::uint64_t>(code_span, 16 * 1024);
    // Sites get distinct, evenly spaced PCs inside the hot span so
    // that predictor-table aliasing reflects table capacity, not
    // random birthday collisions the per-site bias model would read
    // as noise. The population is capped at one site per 8 bytes.
    const std::size_t num_sites = std::min<std::size_t>(
        params_.numBranchSites,
        static_cast<std::size_t>(hot_span / 8));
    const std::uint64_t spacing =
        std::max<std::uint64_t>(4, hot_span / num_sites / 4 * 4);
    condSites_.clear();
    condSites_.reserve(num_sites);
    // At least one hard site so hardBranchFrac > 0 always has a source.
    const std::size_t num_hard = std::max<std::size_t>(1, num_sites / 8);
    for (std::size_t i = 0; i < num_sites; ++i) {
        BranchSite site;
        site.pc = kCodeBase + (i * spacing) % hot_span;
        site.hard = i < num_hard;
        if (site.hard) {
            site.takenProb = 0.5;
        } else {
            // Biased one way or the other. The per-site jitter is
            // multiplicative in the miss side (1 - bias) so that very
            // predictable workloads keep their tiny floors.
            const double floor = 1.0 - params_.easyTakenBias;
            const double jittered =
                floor * (0.75 + 0.5 * srng.nextDouble());
            const double clamped =
                std::clamp(1.0 - jittered, 0.5, 0.99995);
            site.takenProb =
                srng.nextBernoulli(0.5) ? clamped : 1.0 - clamped;
        }
        condSites_.push_back(site);
    }

    const std::size_t num_indirect_sites =
        std::max<std::size_t>(1, params_.numIndirectSites);
    indirectSitePcs_.clear();
    indirectSiteTargets_.clear();
    for (std::size_t i = 0; i < num_indirect_sites; ++i) {
        // Spread through hot code; BTB entries are distinct from the
        // direction tables, so overlap with conditional sites is
        // harmless.
        indirectSitePcs_.push_back(kCodeBase
                                   + (i * 64 + 32) % hot_span);
        std::vector<std::uint64_t> targets;
        const std::size_t fanout =
            std::max<std::size_t>(1, params_.indirectTargets);
        for (std::size_t t = 0; t < fanout; ++t) {
            targets.push_back(
                kCodeBase + (srng.nextBounded(code_span / 4) * 4));
        }
        indirectSiteTargets_.push_back(std::move(targets));
    }

    regionState_.clear();
    loadWeights_.clear();
    storeWeights_.clear();
    std::uint64_t next_base = kDataBase + params_.addressOffset;
    for (const auto &region : params_.regions) {
        RegionState state;
        state.base = next_base;
        state.cursor = 0;
        regionState_.push_back(state);
        // Guard page between regions keeps them disjoint.
        next_base += pageAlignUp(region.sizeBytes) + kPageBytes;
        loadWeights_.push_back(region.loadWeight);
        storeWeights_.push_back(region.storeWeight);
    }
    // Index-order sums, exactly as nextDiscrete would accumulate them
    // per call; caching them here keeps the emitted stream identical.
    loadWeightTotal_ = 0.0;
    storeWeightTotal_ = 0.0;
    for (double w : loadWeights_)
        loadWeightTotal_ += w;
    for (double w : storeWeights_)
        storeWeightTotal_ += w;

    // Every bounded draw in the emission path uses a bound fixed by
    // the static structure; precompute the division pair each would
    // otherwise pay per call. Bounds of guarded-off draws (no easy
    // sites, monomorphic indirect sites) are pinned to 1 unused.
    regionOffsetDraw_.clear();
    for (const auto &region : params_.regions) {
        const std::uint64_t span = region.sizeBytes / 8 * 8;
        regionOffsetDraw_.emplace_back(span / 8);
    }
    hotTargetDraw_ = BoundedDraw(hot_span / 4);
    coldTargetDraw_ = BoundedDraw(code_span / 4);
    hardSiteDraw_ = BoundedDraw(num_hard);
    easySiteDraw_ = BoundedDraw(
        num_sites > num_hard ? num_sites - num_hard : 1);
    allSiteDraw_ = BoundedDraw(num_sites);
    indirectSiteDraw_ = BoundedDraw(indirectSitePcs_.size());
    indirectPickDraw_.clear();
    for (const auto &targets : indirectSiteTargets_)
        indirectPickDraw_.emplace_back(
            targets.size() > 1 ? targets.size() - 1 : 1);

    // Likewise for every fixed-probability Bernoulli draw, including
    // the per-site taken biases.
    hardBranchDraw_ = BernoulliDraw(params_.hardBranchFrac);
    branchDepDraw_ = BernoulliDraw(params_.branchDepOnLoadFrac);
    hotCodeDraw_ = BernoulliDraw(params_.hotCodeFrac);
    indirectSwitchDraw_ = BernoulliDraw(params_.indirectSwitchProb);
    fpDraw_ = BernoulliDraw(params_.fpFrac);
    computeDepDraw_ = BernoulliDraw(params_.computeDepFrac);
    condSiteTakenDraw_.clear();
    condSiteTakenDraw_.reserve(condSites_.size());
    for (const BranchSite &site : condSites_)
        condSiteTakenDraw_.emplace_back(site.takenProb);
}

std::size_t
SyntheticTraceGenerator::pickWeighted(const std::vector<double> &weights,
                                      double total)
{
    SPEC17_ASSERT(total > 0.0, "weights sum to zero in pickWeighted");
    double pick = rng_.nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    // Floating-point slack: fall back to the last non-zero weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    SPEC17_PANIC("unreachable in pickWeighted");
}

void
SyntheticTraceGenerator::reset()
{
    rng_ = Rng(deriveSeed(params_.seed, "uop-stream"));
    emitted_ = 0;
    pc_ = kCodeBase;
    for (auto &state : regionState_)
        state.cursor = 0;
}

std::uint64_t
SyntheticTraceGenerator::virtualReserveBytes() const
{
    std::uint64_t total =
        pageAlignUp(params_.codeFootprintBytes) + params_.extraVirtualBytes;
    for (const auto &region : params_.regions)
        total += pageAlignUp(region.sizeBytes) + kPageBytes;
    return total;
}

std::uint64_t
SyntheticTraceGenerator::regionBase(std::size_t index) const
{
    SPEC17_ASSERT(index < regionState_.size(), "region index out of range");
    return regionState_[index].base;
}

std::uint64_t
SyntheticTraceGenerator::pickAddress(std::size_t region_index,
                                     bool &dep_on_load)
{
    const MemoryRegionParams &region = params_.regions[region_index];
    RegionState &state = regionState_[region_index];
    const std::uint64_t span = region.sizeBytes / 8 * 8;
    dep_on_load = false;

    switch (region.pattern) {
      case AccessPattern::Sequential:
        state.cursor = (state.cursor + 8) % span;
        return state.base + state.cursor;
      case AccessPattern::Strided: {
        const std::uint64_t stride =
            std::max<std::uint64_t>(8, region.strideBytes / 8 * 8);
        state.cursor = (state.cursor + stride) % span;
        return state.base + state.cursor;
      }
      case AccessPattern::Random:
        return state.base
            + regionOffsetDraw_[region_index].draw(rng_) * 8;
      case AccessPattern::PointerChase:
        dep_on_load = true;
        return state.base
            + regionOffsetDraw_[region_index].draw(rng_) * 8;
    }
    SPEC17_PANIC("unknown AccessPattern");
}

std::uint64_t
SyntheticTraceGenerator::pickBranchTarget()
{
    // Hot targets concentrate in an L1I-resident prefix of the code
    // (inner loops), matching the strong fetch locality real
    // applications show even with multi-megabyte binaries.
    const BoundedDraw &zone = hotCodeDraw_.draw(rng_)
        ? hotTargetDraw_
        : coldTargetDraw_;
    return kCodeBase + zone.draw(rng_) * 4;
}

SyntheticTraceGenerator::EmitConsts
SyntheticTraceGenerator::emitConsts() const
{
    // Everything here is a pure function of params_ and the static
    // structure, recomputed per op before the batched lane existed;
    // hoisting it cannot perturb the RNG stream.
    EmitConsts k;
    k.hotSpan =
        std::min<std::uint64_t>(params_.codeFootprintBytes, 16 * 1024);
    // Cumulative cuts are summed in double exactly as the original
    // per-op comparisons did, then mapped to their integer images:
    // thresholdOf() preserves every (roll < cut) outcome bit-exactly.
    const double load_cut = params_.loadFrac;
    const double store_cut = load_cut + params_.storeFrac;
    const double branch_cut = store_cut + params_.branchFrac;
    k.loadCut = BernoulliDraw::thresholdOf(load_cut);
    k.storeCut = BernoulliDraw::thresholdOf(store_cut);
    k.branchCut = BernoulliDraw::thresholdOf(branch_cut);
    const double cond_cut = params_.condFrac;
    const double direct_jump_cut = cond_cut + params_.directJumpFrac;
    const double near_call_cut = direct_jump_cut + params_.nearCallFrac;
    const double indirect_jump_cut =
        near_call_cut + params_.indirectJumpFrac;
    const double near_return_cut =
        indirect_jump_cut + params_.nearReturnFrac;
    k.condCut = BernoulliDraw::thresholdOf(cond_cut);
    k.directJumpCut = BernoulliDraw::thresholdOf(direct_jump_cut);
    k.nearCallCut = BernoulliDraw::thresholdOf(near_call_cut);
    k.indirectJumpCut = BernoulliDraw::thresholdOf(indirect_jump_cut);
    k.nearReturnCut = BernoulliDraw::thresholdOf(near_return_cut);
    k.divCut = BernoulliDraw::thresholdOf(params_.divFrac);
    k.mulCut =
        BernoulliDraw::thresholdOf(params_.divFrac + params_.mulFrac);
    k.numHardSites = std::max<std::size_t>(1, condSites_.size() / 8);
    return k;
}

namespace {

/** emitOpTo() writer landing fields in one AoS MicroOp. */
struct AosOpWriter
{
    isa::MicroOp &op;

    void
    load(std::uint64_t pc, std::uint64_t addr, std::uint8_t size,
         bool dep_on_load)
    {
        op = isa::makeLoad(pc, addr, size, dep_on_load);
    }
    void
    store(std::uint64_t pc, std::uint64_t addr, std::uint8_t size)
    {
        op = isa::makeStore(pc, addr, size);
    }
    void
    branch(std::uint64_t pc, isa::BranchKind kind, bool taken,
           std::uint64_t target, bool dep_on_load)
    {
        op = isa::makeBranch(pc, kind, taken, target, dep_on_load);
    }
    void
    compute(std::uint64_t pc, isa::UopClass cls, bool dep_on_prev)
    {
        op = isa::makeAlu(pc, cls);
        op.depOnPrev = dep_on_prev;
    }
};

/** emitOpTo() writer landing fields directly in SoA batch lanes.
 *  The caller zeroFill()s the batch span first, so each method only
 *  stores the fields its op class can set away from the construction
 *  defaults -- roughly half the lane stores of a full scatter. Holds
 *  raw restrict-qualified lane pointers captured once per batch: the
 *  byte-typed lanes would otherwise make every store a universal-
 *  aliasing store (std::uint8_t is unsigned char) and force the
 *  emit loop to reload the vector data pointers and RNG state after
 *  each one. */
struct SoaLaneWriter
{
    isa::UopClass *__restrict clsLane;
    isa::BranchKind *__restrict kindLane;
    std::uint64_t *__restrict pcLane;
    std::uint64_t *__restrict addrLane;
    std::uint8_t *__restrict sizeLane;
    std::uint8_t *__restrict takenLane;
    std::uint64_t *__restrict targetLane;
    std::uint8_t *__restrict depOnLoadLane;
    std::uint8_t *__restrict depOnPrevLane;
    std::size_t i = 0;

    explicit SoaLaneWriter(MicroOpBatch &b)
        : clsLane(b.cls.data()), kindLane(b.kind.data()),
          pcLane(b.pc.data()), addrLane(b.addr.data()),
          sizeLane(b.accessSize.data()), takenLane(b.taken.data()),
          targetLane(b.target.data()),
          depOnLoadLane(b.depOnLoad.data()),
          depOnPrevLane(b.depOnPrev.data())
    {}

    void
    load(std::uint64_t pc, std::uint64_t addr, std::uint8_t size,
         bool dep_on_load)
    {
        clsLane[i] = isa::UopClass::Load;
        pcLane[i] = pc;
        addrLane[i] = addr;
        sizeLane[i] = size;
        depOnLoadLane[i] = dep_on_load ? 1 : 0;
    }
    void
    store(std::uint64_t pc, std::uint64_t addr, std::uint8_t size)
    {
        clsLane[i] = isa::UopClass::Store;
        pcLane[i] = pc;
        addrLane[i] = addr;
        sizeLane[i] = size;
    }
    void
    branch(std::uint64_t pc, isa::BranchKind kind, bool taken,
           std::uint64_t target, bool dep_on_load)
    {
        clsLane[i] = isa::UopClass::Branch;
        kindLane[i] = kind;
        pcLane[i] = pc;
        takenLane[i] = taken ? 1 : 0;
        targetLane[i] = target;
        depOnLoadLane[i] = dep_on_load ? 1 : 0;
    }
    void
    compute(std::uint64_t pc, isa::UopClass cls, bool dep_on_prev)
    {
        clsLane[i] = cls;
        pcLane[i] = pc;
        depOnPrevLane[i] = dep_on_prev ? 1 : 0;
    }
};

} // namespace

template <typename Writer>
void
SyntheticTraceGenerator::emitOpTo(Writer &&w, const EmitConsts &k)
{
    // Sequential fetch. Execution loops within the hot (L1I-sized)
    // code prefix; a fall-through from colder code walks linearly
    // until some taken branch redirects it (usually back to hot
    // code), mirroring the loop-dominated fetch behaviour of real
    // programs.
    // pc_ always lies inside the code footprint, so the advanced
    // offset can exceed a span by at most the 4-byte step: the modulo
    // reduces to a single conditional subtraction.
    const std::uint64_t offset = pc_ - kCodeBase + 4;
    if (offset <= k.hotSpan)
        pc_ = kCodeBase + (offset == k.hotSpan ? 0 : offset);
    else
        pc_ = kCodeBase
            + (offset >= params_.codeFootprintBytes
                   ? offset - params_.codeFootprintBytes
                   : offset);

    // One raw 53-bit roll against the integer cut images; identical
    // outcomes to the nextDouble()-vs-double-cut comparisons (see
    // EmitConsts), with no int->double conversion per op.
    const std::uint64_t roll = rng_.next() >> 11;
    if (roll < k.loadCut) {
        const std::size_t region =
            pickWeighted(loadWeights_, loadWeightTotal_);
        bool dep = false;
        const std::uint64_t addr = pickAddress(region, dep);
        w.load(pc_, addr, 8, dep);
        return;
    }
    if (roll < k.storeCut) {
        const std::size_t region =
            pickWeighted(storeWeights_, storeWeightTotal_);
        bool dep = false;
        const std::uint64_t addr = pickAddress(region, dep);
        w.store(pc_, addr, 8);
        return;
    }
    if (roll < k.branchCut) {
        // All kinds funnel through one writer call so the taken-pc
        // redirect below sees the same (taken, target) pair in every
        // surface; RNG draw order matches the pre-SoA emitOp exactly.
        isa::BranchKind kind;
        std::uint64_t br_pc;
        bool taken;
        std::uint64_t target;
        bool dep = false;
        const std::uint64_t kind_roll = rng_.next() >> 11;
        if (kind_roll < k.condCut || kind_roll >= k.nearReturnCut) {
            // Conditional branch from a static site population.
            const bool hard = hardBranchDraw_.draw(rng_);
            std::size_t site_index;
            if (hard) {
                site_index = hardSiteDraw_.draw(rng_);
            } else {
                site_index = k.numHardSites == condSites_.size()
                    ? allSiteDraw_.draw(rng_)
                    : k.numHardSites + easySiteDraw_.draw(rng_);
            }
            const BranchSite &site = condSites_[site_index];
            kind = isa::BranchKind::Conditional;
            br_pc = site.pc;
            taken = condSiteTakenDraw_[site_index].draw(rng_);
            dep = branchDepDraw_.draw(rng_);
            target = pickBranchTarget();
        } else if (kind_roll < k.directJumpCut) {
            kind = isa::BranchKind::DirectJump;
            br_pc = pc_;
            taken = true;
            target = pickBranchTarget();
        } else if (kind_roll < k.nearCallCut) {
            kind = isa::BranchKind::DirectNearCall;
            br_pc = pc_;
            taken = true;
            target = pickBranchTarget();
        } else if (kind_roll < k.indirectJumpCut) {
            const std::size_t site = indirectSiteDraw_.draw(rng_);
            const auto &targets = indirectSiteTargets_[site];
            // Mostly-monomorphic dispatch: the first target dominates.
            std::size_t pick = 0;
            if (targets.size() > 1 && indirectSwitchDraw_.draw(rng_))
                pick = 1 + indirectPickDraw_[site].draw(rng_);
            kind = isa::BranchKind::IndirectJumpNonCallRet;
            br_pc = indirectSitePcs_[site];
            taken = true;
            target = targets[pick];
        } else {
            kind = isa::BranchKind::IndirectNearReturn;
            br_pc = pc_;
            taken = true;
            target = pickBranchTarget();
        }
        w.branch(br_pc, kind, taken, target, dep);
        if (taken)
            pc_ = target;
        return;
    }

    // Compute op.
    isa::UopClass cls;
    const bool fp = fpDraw_.draw(rng_);
    const std::uint64_t unit_roll = rng_.next() >> 11;
    if (unit_roll < k.divCut)
        cls = fp ? isa::UopClass::FpDiv : isa::UopClass::IntDiv;
    else if (unit_roll < k.mulCut)
        cls = fp ? isa::UopClass::FpMul : isa::UopClass::IntMul;
    else
        cls = fp ? isa::UopClass::FpAdd : isa::UopClass::IntAlu;
    const bool dep_on_prev = computeDepDraw_.draw(rng_);
    w.compute(pc_, cls, dep_on_prev);
}

void
SyntheticTraceGenerator::emitOp(isa::MicroOp &op, const EmitConsts &k)
{
    emitOpTo(AosOpWriter{op}, k);
}

bool
SyntheticTraceGenerator::next(isa::MicroOp &op)
{
    return nextBatch(&op, 1) == 1;
}

std::size_t
SyntheticTraceGenerator::nextBatch(isa::MicroOp *out, std::size_t n)
{
    if (cancel_ != nullptr && *cancel_)
        return 0;
    const std::uint64_t remaining = params_.numOps - emitted_;
    if (remaining < n)
        n = static_cast<std::size_t>(remaining);
    const EmitConsts k = emitConsts();
    for (std::size_t i = 0; i < n; ++i)
        emitOp(out[i], k);
    emitted_ += n;
    return n;
}

std::size_t
SyntheticTraceGenerator::nextBatchSoA(MicroOpBatch &out, std::size_t at,
                                      std::size_t n)
{
    if (cancel_ != nullptr && *cancel_)
        return 0;
    const std::uint64_t remaining = params_.numOps - emitted_;
    if (remaining < n)
        n = static_cast<std::size_t>(remaining);
    out.ensure(at + n);
    out.zeroFill(at, n);
    const EmitConsts k = emitConsts();
    SoaLaneWriter w(out);
    for (std::size_t i = 0; i < n; ++i) {
        w.i = at + i;
        emitOpTo(w, k);
    }
    emitted_ += n;
    return n;
}

} // namespace trace
} // namespace spec17
