#include "trace/phased.hh"

#include "util/logging.hh"

namespace spec17 {
namespace trace {

PhasedTrace::PhasedTrace(std::vector<std::shared_ptr<TraceSource>> phases)
    : phases_(std::move(phases))
{
    SPEC17_ASSERT(!phases_.empty(), "phased trace needs >= 1 phase");
    for (const auto &phase : phases_)
        SPEC17_ASSERT(phase != nullptr, "null phase source");
}

bool
PhasedTrace::next(isa::MicroOp &op)
{
    while (current_ < phases_.size()) {
        if (phases_[current_]->next(op))
            return true;
        // A child that produced nothing is either exhausted or merely
        // paused by cooperative cancellation. Advancing past a paused
        // child would silently drop its remaining ops and splice the
        // next phase's head into the stream, so only an exhausted
        // child moves the cursor.
        if (phases_[current_]->cancelled())
            return false;
        ++current_;
    }
    return false;
}

std::size_t
PhasedTrace::nextBatch(isa::MicroOp *out, std::size_t n)
{
    // One phase-boundary check per child batch instead of per op; a
    // batch spanning a phase boundary is stitched together from the
    // tail of one child and the head of the next.
    std::size_t filled = 0;
    while (filled < n && current_ < phases_.size()) {
        const std::size_t want = n - filled;
        const std::size_t got =
            phases_[current_]->nextBatch(out + filled, want);
        filled += got;
        if (got < want) {
            // Short child return: exhausted -> next phase; paused by
            // cancellation -> stop here so the phase remainder resumes
            // once the flag clears (matches the next()-loop stream).
            if (phases_[current_]->cancelled())
                break;
            ++current_;
        }
    }
    return filled;
}

std::size_t
PhasedTrace::nextBatchSoA(MicroOpBatch &out, std::size_t at, std::size_t n)
{
    // Same stitching as nextBatch, offset into the lanes: each child
    // writes its contribution at the running lane position.
    out.ensure(at + n);
    std::size_t filled = 0;
    while (filled < n && current_ < phases_.size()) {
        const std::size_t want = n - filled;
        const std::size_t got =
            phases_[current_]->nextBatchSoA(out, at + filled, want);
        filled += got;
        if (got < want) {
            if (phases_[current_]->cancelled())
                break;
            ++current_;
        }
    }
    return filled;
}

bool
PhasedTrace::cancelled() const
{
    return current_ < phases_.size() && phases_[current_]->cancelled();
}

void
PhasedTrace::reset()
{
    for (const auto &phase : phases_)
        phase->reset();
    current_ = 0;
}

std::uint64_t
PhasedTrace::virtualReserveBytes() const
{
    std::uint64_t most = 0;
    for (const auto &phase : phases_) {
        if (phase->virtualReserveBytes() > most)
            most = phase->virtualReserveBytes();
    }
    return most;
}

} // namespace trace
} // namespace spec17
