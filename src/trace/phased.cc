#include "trace/phased.hh"

#include "util/logging.hh"

namespace spec17 {
namespace trace {

PhasedTrace::PhasedTrace(std::vector<std::shared_ptr<TraceSource>> phases)
    : phases_(std::move(phases))
{
    SPEC17_ASSERT(!phases_.empty(), "phased trace needs >= 1 phase");
    for (const auto &phase : phases_)
        SPEC17_ASSERT(phase != nullptr, "null phase source");
}

bool
PhasedTrace::next(isa::MicroOp &op)
{
    while (current_ < phases_.size()) {
        if (phases_[current_]->next(op))
            return true;
        ++current_;
    }
    return false;
}

void
PhasedTrace::reset()
{
    for (const auto &phase : phases_)
        phase->reset();
    current_ = 0;
}

std::uint64_t
PhasedTrace::virtualReserveBytes() const
{
    std::uint64_t most = 0;
    for (const auto &phase : phases_) {
        if (phase->virtualReserveBytes() > most)
            most = phase->virtualReserveBytes();
    }
    return most;
}

} // namespace trace
} // namespace spec17
