#include "trace/phased.hh"

#include "util/logging.hh"

namespace spec17 {
namespace trace {

PhasedTrace::PhasedTrace(std::vector<std::shared_ptr<TraceSource>> phases)
    : phases_(std::move(phases))
{
    SPEC17_ASSERT(!phases_.empty(), "phased trace needs >= 1 phase");
    for (const auto &phase : phases_)
        SPEC17_ASSERT(phase != nullptr, "null phase source");
}

bool
PhasedTrace::next(isa::MicroOp &op)
{
    while (current_ < phases_.size()) {
        if (phases_[current_]->next(op))
            return true;
        ++current_;
    }
    return false;
}

std::size_t
PhasedTrace::nextBatch(isa::MicroOp *out, std::size_t n)
{
    // One phase-boundary check per child batch instead of per op; a
    // batch spanning a phase boundary is stitched together from the
    // tail of one child and the head of the next.
    std::size_t filled = 0;
    while (filled < n && current_ < phases_.size()) {
        const std::size_t want = n - filled;
        const std::size_t got =
            phases_[current_]->nextBatch(out + filled, want);
        filled += got;
        if (got < want)
            ++current_;
    }
    return filled;
}

void
PhasedTrace::reset()
{
    for (const auto &phase : phases_)
        phase->reset();
    current_ = 0;
}

std::uint64_t
PhasedTrace::virtualReserveBytes() const
{
    std::uint64_t most = 0;
    for (const auto &phase : phases_) {
        if (phase->virtualReserveBytes() > most)
            most = phase->virtualReserveBytes();
    }
    return most;
}

} // namespace trace
} // namespace spec17
