/**
 * @file
 * Abstract micro-op trace source consumed by the CPU simulator.
 */

#ifndef SPEC17_TRACE_SOURCE_HH_
#define SPEC17_TRACE_SOURCE_HH_

#include <cstdint>

#include "isa/uop.hh"

namespace spec17 {
namespace trace {

/**
 * A finite stream of micro-ops. Sources are pull-based: the simulator
 * calls next() until it returns false. reset() rewinds to the first
 * micro-op and must reproduce the identical stream (the framework's
 * determinism guarantee hinges on this).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produces the next micro-op.
     * @param op output micro-op; untouched when the stream is done.
     * @return true if @p op was produced, false at end of stream.
     */
    virtual bool next(isa::MicroOp &op) = 0;

    /** Rewinds to the beginning of the identical stream. */
    virtual void reset() = 0;

    /**
     * Virtual address space the workload reserves beyond what it
     * touches (the paper's VSZ vs RSS gap). Defaults to zero.
     */
    virtual std::uint64_t virtualReserveBytes() const { return 0; }
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_SOURCE_HH_
