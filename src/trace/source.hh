/**
 * @file
 * Abstract micro-op trace source consumed by the CPU simulator.
 */

#ifndef SPEC17_TRACE_SOURCE_HH_
#define SPEC17_TRACE_SOURCE_HH_

#include <cstddef>
#include <cstdint>

#include "isa/uop.hh"
#include "trace/batch.hh"

namespace spec17 {
namespace trace {

/**
 * A finite stream of micro-ops. Sources are pull-based: the simulator
 * calls next() until it returns false, or pulls whole chunks through
 * nextBatch() (the simulator's batched fast lane -- see
 * docs/performance.md).
 *
 * The two surfaces describe one stream: pulling N ops one at a time
 * through next() and pulling them through nextBatch() in chunks of
 * any size must yield the identical op sequence, and the two may be
 * mixed freely at any point of the stream.
 *
 * reset() rewinds to the first micro-op and must reproduce the
 * identical stream (the framework's determinism guarantee hinges on
 * this). The contract is unconditional on how far and in what chunk
 * sizes the stream was consumed: a reset() issued mid-stream -- in
 * particular after a partially filled batch -- replays the same ops
 * from the beginning. The suite runner's retry-with-seed-perturbation
 * and the record/replay tooling both depend on it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produces the next micro-op.
     * @param op output micro-op; untouched when the stream is done.
     * @return true if @p op was produced, false at end of stream.
     */
    virtual bool next(isa::MicroOp &op) = 0;

    /**
     * Produces up to @p n micro-ops into @p out.
     *
     * Semantically equivalent to calling next() @p n times: the ops
     * delivered and the post-call source state are identical. A short
     * return (fewer than @p n ops) means the stream ended -- or, for
     * cancellable sources, that cooperative cancellation engaged --
     * exactly where next() would have returned false; subsequent
     * calls return 0 until reset().
     *
     * The default implementation loops next(); sources with per-call
     * overhead worth amortizing (RNG setup, phase-boundary checks,
     * buffered file reads) override it.
     *
     * @return number of micro-ops written to @p out (<= @p n).
     */
    virtual std::size_t
    nextBatch(isa::MicroOp *out, std::size_t n)
    {
        std::size_t filled = 0;
        while (filled < n && next(out[filled]))
            ++filled;
        return filled;
    }

    /**
     * Produces up to @p n micro-ops into the SoA lanes of @p out,
     * starting at lane slot @p at -- the batched fast lane's native
     * surface (the simulator consumes lanes, never AoS structs).
     *
     * Same stream contract as nextBatch(): op for op identical to
     * @p n next() pulls, mixable freely with the other two surfaces,
     * same short-return semantics. Writers fill every lane of every
     * delivered op (see MicroOpBatch).
     *
     * The default adapter stages a nextBatch() pull in the batch's
     * AoS scratch and scatters it, so existing sources keep their
     * amortized batched path; sources on the hot path override this
     * to fill lanes directly.
     *
     * @return number of micro-ops written (<= @p n); lanes are sized
     *         to at least @p at + @p n on entry.
     */
    virtual std::size_t
    nextBatchSoA(MicroOpBatch &out, std::size_t at, std::size_t n)
    {
        out.ensure(at + n);
        isa::MicroOp *buf = out.scratch(n);
        const std::size_t got = nextBatch(buf, n);
        for (std::size_t i = 0; i < got; ++i)
            out.set(at + i, buf[i]);
        return got;
    }

    /**
     * Zero-copy variant of nextBatchSoA(): instead of copying lanes
     * into a caller-owned batch, returns a pointer to a lane buffer
     * the SOURCE owns, with @p at set to the slot of the first
     * delivered op and @p got to the number delivered (<= @p n). The
     * stream contract is unchanged -- the delivered ops and the
     * post-call state are exactly those of a nextBatchSoA() pull of
     * @p n ops, and a short @p got has the same end-of-stream /
     * cancellation meaning.
     *
     * The returned lanes stay valid until the source is mutated or
     * destroyed; callers must not write through them. Sources without
     * a resident lane representation return nullptr (the default, and
     * then @p at / @p got are untouched); callers fall back to
     * nextBatchSoA(). The replay arena (trace/arena.hh) overrides
     * this to serve captured lanes without a copy.
     */
    virtual const MicroOpBatch *
    nextLanes(std::size_t n, std::size_t &at, std::size_t &got)
    {
        (void)n;
        (void)at;
        (void)got;
        return nullptr;
    }

    /**
     * True while cooperative cancellation is holding the stream back:
     * a short return in that state does NOT mean the ops ran out, and
     * clearing the cancel flag resumes exactly where the stream
     * stopped. Sources without a cancellation mechanism return false.
     * Combinators (PhasedTrace) consult this to distinguish a child
     * that finished from a child that was paused -- advancing past a
     * merely-paused child would silently drop its remainder.
     */
    virtual bool cancelled() const { return false; }

    /** Rewinds to the beginning of the identical stream (see the
     *  class comment for the exact contract). */
    virtual void reset() = 0;

    /**
     * Virtual address space the workload reserves beyond what it
     * touches (the paper's VSZ vs RSS gap). Defaults to zero.
     */
    virtual std::uint64_t virtualReserveBytes() const { return 0; }
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_SOURCE_HH_
