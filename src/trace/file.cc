#include "trace/file.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace spec17 {
namespace trace {

namespace {

constexpr char kMagic[4] = {'S', '1', '7', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr std::size_t kRecordBytes = 28;
constexpr std::size_t kBufferRecords = 4096;

/** Packs one micro-op into a 28-byte record. */
void
pack(const isa::MicroOp &op, unsigned char *out)
{
    out[0] = static_cast<unsigned char>(op.cls);
    out[1] = static_cast<unsigned char>(op.branch);
    out[2] = static_cast<unsigned char>(
        (op.taken ? 1 : 0) | (op.depOnLoad ? 2 : 0)
        | (op.depOnPrev ? 4 : 0));
    out[3] = op.size;
    std::memcpy(out + 4, &op.pc, 8);
    std::memcpy(out + 12, &op.effAddr, 8);
    std::memcpy(out + 20, &op.target, 8);
}

/** Unpacks a 28-byte record; panics on invalid enum bytes. */
isa::MicroOp
unpack(const unsigned char *in)
{
    SPEC17_ASSERT(in[0] < isa::kNumUopClasses,
                  "corrupt trace record: bad uop class ", int(in[0]));
    SPEC17_ASSERT(in[1] <= isa::kNumBranchKinds,
                  "corrupt trace record: bad branch kind ", int(in[1]));
    isa::MicroOp op;
    op.cls = static_cast<isa::UopClass>(in[0]);
    op.branch = static_cast<isa::BranchKind>(in[1]);
    op.taken = (in[2] & 1) != 0;
    op.depOnLoad = (in[2] & 2) != 0;
    op.depOnPrev = (in[2] & 4) != 0;
    op.size = in[3];
    std::memcpy(&op.pc, in + 4, 8);
    std::memcpy(&op.effAddr, in + 12, 8);
    std::memcpy(&op.target, in + 20, 8);
    return op;
}

} // namespace

std::uint64_t
writeTrace(const std::string &path, TraceSource &source)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        SPEC17_FATAL("cannot open trace file for writing: ", path);

    // Header with a placeholder count, patched at the end.
    std::uint64_t count = 0;
    const std::uint64_t reserve = source.virtualReserveBytes();
    out.write(kMagic, 4);
    out.write(reinterpret_cast<const char *>(&kVersion), 4);
    out.write(reinterpret_cast<const char *>(&count), 8);
    out.write(reinterpret_cast<const char *>(&reserve), 8);

    unsigned char record[kRecordBytes];
    isa::MicroOp op;
    while (source.next(op)) {
        pack(op, record);
        out.write(reinterpret_cast<const char *>(record),
                  kRecordBytes);
        ++count;
    }
    out.seekp(8);
    out.write(reinterpret_cast<const char *>(&count), 8);
    if (!out)
        SPEC17_FATAL("write failure on trace file: ", path);
    return count;
}

FileTrace::FileTrace(const std::string &path) : path_(path)
{
    in_.open(path, std::ios::binary);
    if (!in_)
        SPEC17_FATAL("cannot open trace file: ", path);
    char magic[4];
    std::uint32_t version = 0;
    in_.read(magic, 4);
    in_.read(reinterpret_cast<char *>(&version), 4);
    in_.read(reinterpret_cast<char *>(&count_), 8);
    in_.read(reinterpret_cast<char *>(&reserveBytes_), 8);
    if (!in_ || std::memcmp(magic, kMagic, 4) != 0)
        SPEC17_FATAL("not a spec17 trace file: ", path);
    if (version != kVersion)
        SPEC17_FATAL("trace file version ", version,
                     " unsupported (want ", kVersion, "): ", path);
    buffer_.reserve(kBufferRecords);
}

void
FileTrace::refill()
{
    buffer_.clear();
    bufferPos_ = 0;
    const std::uint64_t remaining = count_ - delivered_;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, kBufferRecords));
    if (want == 0)
        return;
    std::vector<unsigned char> raw(want * kRecordBytes);
    in_.read(reinterpret_cast<char *>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
    SPEC17_ASSERT(static_cast<std::size_t>(in_.gcount()) == raw.size(),
                  "trace file truncated: ", path_);
    for (std::size_t i = 0; i < want; ++i)
        buffer_.push_back(unpack(raw.data() + i * kRecordBytes));
}

bool
FileTrace::next(isa::MicroOp &op)
{
    if (delivered_ >= count_)
        return false;
    if (bufferPos_ >= buffer_.size())
        refill();
    op = buffer_[bufferPos_++];
    ++delivered_;
    return true;
}

std::size_t
FileTrace::nextBatch(isa::MicroOp *out, std::size_t n)
{
    // Bulk copies out of the decode buffer instead of a bounds check
    // and virtual call per record.
    std::size_t filled = 0;
    while (filled < n && delivered_ < count_) {
        if (bufferPos_ >= buffer_.size())
            refill();
        const std::size_t avail = buffer_.size() - bufferPos_;
        const std::size_t take = std::min(n - filled, avail);
        std::copy_n(buffer_.begin()
                        + static_cast<std::ptrdiff_t>(bufferPos_),
                    take, out + filled);
        bufferPos_ += take;
        delivered_ += take;
        filled += take;
    }
    return filled;
}

std::size_t
FileTrace::nextBatchSoA(MicroOpBatch &out, std::size_t at, std::size_t n)
{
    // Drains whatever the decode buffer still holds (records already
    // unpacked for the AoS surfaces), then scatters the rest of the
    // pull straight from raw file records into the lanes, skipping
    // the intermediate MicroOp buffer entirely.
    out.ensure(at + n);
    std::size_t filled = 0;
    while (filled < n && bufferPos_ < buffer_.size()) {
        out.set(at + filled, buffer_[bufferPos_++]);
        ++delivered_;
        ++filled;
    }
    while (filled < n && delivered_ < count_) {
        const std::uint64_t remaining = count_ - delivered_;
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(
                remaining,
                std::min<std::uint64_t>(n - filled, kBufferRecords)));
        rawScratch_.resize(want * kRecordBytes);
        in_.read(reinterpret_cast<char *>(rawScratch_.data()),
                 static_cast<std::streamsize>(rawScratch_.size()));
        SPEC17_ASSERT(
            static_cast<std::size_t>(in_.gcount()) == rawScratch_.size(),
            "trace file truncated: ", path_);
        for (std::size_t i = 0; i < want; ++i)
            out.set(at + filled + i,
                    unpack(rawScratch_.data() + i * kRecordBytes));
        delivered_ += want;
        filled += want;
    }
    return filled;
}

void
FileTrace::reset()
{
    in_.clear();
    in_.seekg(kHeaderBytes);
    delivered_ = 0;
    buffer_.clear();
    bufferPos_ = 0;
}

std::uint64_t
FileTrace::virtualReserveBytes() const
{
    return reserveBytes_;
}

} // namespace trace
} // namespace spec17
