/**
 * @file
 * Capture-once/replay-many trace arenas.
 *
 * A TraceArena holds a fully generated micro-op stream as resident
 * SoA MicroOpBatch lanes. Capturing runs the generator exactly once;
 * every subsequent simulation of the same (profile, seed,
 * trace-config) replays the captured lanes through a ReplaySource,
 * whose batched surface serves the lanes zero-copy (the simulator
 * consumes a view straight into the arena instead of a per-batch
 * regeneration). Replay is draw-for-draw identical to live
 * generation -- the golden tests in tests/trace/arena_test.cc pin it
 * against the unbatched reference lane -- so arena membership is an
 * execution-strategy detail, never semantics (and is therefore
 * excluded from result-cache config keys; see docs/determinism.md).
 *
 * Arenas optionally spill to a versioned on-disk format ("S17A") via
 * the same atomic temp+rename seam the result journal uses, so a
 * budget-evicted arena can be reloaded instead of recaptured.
 */

#ifndef SPEC17_TRACE_ARENA_HH_
#define SPEC17_TRACE_ARENA_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "trace/batch.hh"
#include "trace/source.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace trace {

/** A captured micro-op stream: resident lanes plus the stream-level
 *  attributes replay must reproduce. Immutable once captured. */
struct TraceArena
{
    MicroOpBatch lanes;
    /** Ops actually captured (lanes may be over-allocated). */
    std::size_t numOps = 0;
    /** TraceSource::virtualReserveBytes() of the captured source. */
    std::uint64_t virtualReserveBytes = 0;

    /** Resident lane bytes (the byte-budget accounting unit). */
    std::uint64_t byteSize() const;
};

/**
 * Drains @p source to exhaustion (at most @p expected_ops, the
 * caller's knowledge of the stream length) into a fresh arena with
 * one bulk nextBatchSoA pull. The source must be freshly constructed
 * or reset.
 */
TraceArena captureArena(TraceSource &source, std::size_t expected_ops);

/** Captures the stream of a generator built from @p params. */
TraceArena captureArena(const SyntheticTraceParams &params);

/**
 * Canonical one-line description of a synthetic trace configuration:
 * every SyntheticTraceParams field, doubles in hex-float so the key
 * is exact. Two parameter sets describe equal iff they generate the
 * identical stream, making this the arena-store cache key.
 */
std::string describeTraceParams(const SyntheticTraceParams &params);

/** @name S17A spill format (versioned, atomic temp+rename commit) */
/// @{

/** Serializes @p arena to @p path atomically; false on I/O failure. */
bool saveArena(const std::string &path, const TraceArena &arena);

/** Loads an arena spilled by saveArena(); nullptr when the file is
 *  missing, torn, or has a foreign magic/version (the caller then
 *  recaptures -- a bad spill never aborts a run). */
std::unique_ptr<TraceArena> loadArena(const std::string &path);

/// @}

/**
 * Replays a captured arena as a TraceSource. Satisfies the full
 * stream contract: next(), nextBatch(), nextBatchSoA() and the
 * zero-copy nextLanes() all deliver the identical op sequence, mixed
 * freely, and reset() rewinds exactly. Supports the same cooperative
 * cancellation surface as SyntheticTraceGenerator so the suite
 * runner can swap one for the other without observable difference.
 *
 * Many ReplaySources may share one arena (each holds its own cursor);
 * the shared_ptr keeps the arena alive across store evictions.
 */
class ReplaySource : public TraceSource
{
  public:
    explicit ReplaySource(std::shared_ptr<const TraceArena> arena);

    bool next(isa::MicroOp &op) override;
    std::size_t nextBatch(isa::MicroOp *out, std::size_t n) override;
    std::size_t nextBatchSoA(MicroOpBatch &out, std::size_t at,
                             std::size_t n) override;
    const MicroOpBatch *nextLanes(std::size_t n, std::size_t &at,
                                  std::size_t &got) override;

    bool
    cancelled() const override
    {
        return cancel_ != nullptr && *cancel_;
    }

    void reset() override { cursor_ = 0; }

    std::uint64_t
    virtualReserveBytes() const override
    {
        return arena_->virtualReserveBytes;
    }

    /** Borrowed cancel flag, same contract as the generator's. */
    void setCancelFlag(const bool *flag) { cancel_ = flag; }

    /** Ops delivered since construction/reset -- the replay twin of
     *  SyntheticTraceGenerator::emittedOps() (telemetry counter). */
    std::uint64_t deliveredOps() const { return cursor_; }

    const TraceArena &arena() const { return *arena_; }

  private:
    std::shared_ptr<const TraceArena> arena_;
    std::size_t cursor_ = 0;
    const bool *cancel_ = nullptr;
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_ARENA_HH_
