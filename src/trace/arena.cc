#include "trace/arena.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace spec17 {
namespace trace {

namespace {

constexpr char kMagic[4] = {'S', '1', '7', 'A'};
constexpr std::uint32_t kVersion = 1;

/** Appends one lane's raw bytes to the spill image. */
template <typename T>
void
appendLane(std::string &out, const std::vector<T> &lane, std::size_t n)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "spill lanes must be raw-copyable");
    out.append(reinterpret_cast<const char *>(lane.data()),
               n * sizeof(T));
}

/** Reads one lane's raw bytes back; false on a short image. */
template <typename T>
bool
readLane(std::istream &in, std::vector<T> &lane, std::size_t n)
{
    in.read(reinterpret_cast<char *>(lane.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    return static_cast<std::size_t>(in.gcount()) == n * sizeof(T);
}

} // namespace

std::uint64_t
TraceArena::byteSize() const
{
    const std::size_t n = lanes.capacity();
    return static_cast<std::uint64_t>(
        n * (sizeof(lanes.cls[0]) + sizeof(lanes.kind[0])
             + sizeof(lanes.pc[0]) + sizeof(lanes.addr[0])
             + sizeof(lanes.accessSize[0]) + sizeof(lanes.taken[0])
             + sizeof(lanes.target[0]) + sizeof(lanes.depOnLoad[0])
             + sizeof(lanes.depOnPrev[0])));
}

TraceArena
captureArena(TraceSource &source, std::size_t expected_ops)
{
    TraceArena arena;
    arena.lanes.ensure(expected_ops);
    arena.numOps = source.nextBatchSoA(arena.lanes, 0, expected_ops);
    arena.virtualReserveBytes = source.virtualReserveBytes();
    return arena;
}

TraceArena
captureArena(const SyntheticTraceParams &params)
{
    SyntheticTraceGenerator generator(params);
    return captureArena(generator,
                        static_cast<std::size_t>(params.numOps));
}

std::string
describeTraceParams(const SyntheticTraceParams &params)
{
    std::ostringstream out;
    out << std::hexfloat;
    out << "trace-v1|ops=" << params.numOps << "|seed=" << params.seed
        << "|ld=" << params.loadFrac << "|st=" << params.storeFrac
        << "|br=" << params.branchFrac << "|fp=" << params.fpFrac
        << "|mul=" << params.mulFrac << "|div=" << params.divFrac
        << "|cond=" << params.condFrac
        << "|djmp=" << params.directJumpFrac
        << "|call=" << params.nearCallFrac
        << "|ijmp=" << params.indirectJumpFrac
        << "|ret=" << params.nearReturnFrac
        << "|bsites=" << params.numBranchSites
        << "|hard=" << params.hardBranchFrac
        << "|bias=" << params.easyTakenBias
        << "|brdep=" << params.branchDepOnLoadFrac
        << "|cdep=" << params.computeDepFrac
        << "|itgt=" << params.indirectTargets
        << "|iswitch=" << params.indirectSwitchProb
        << "|code=" << params.codeFootprintBytes
        << "|hot=" << params.hotCodeFrac
        << "|isites=" << params.numIndirectSites
        << "|extra=" << params.extraVirtualBytes
        << "|off=" << params.addressOffset;
    for (const MemoryRegionParams &region : params.regions) {
        out << "|r=" << accessPatternName(region.pattern) << ','
            << region.sizeBytes << ',' << region.strideBytes << ','
            << region.loadWeight << ',' << region.storeWeight;
    }
    return out.str();
}

bool
saveArena(const std::string &path, const TraceArena &arena)
{
    const std::size_t n = arena.numOps;
    std::string image;
    image.reserve(24 + static_cast<std::size_t>(arena.byteSize()));
    image.append(kMagic, 4);
    image.append(reinterpret_cast<const char *>(&kVersion), 4);
    const std::uint64_t count = n;
    image.append(reinterpret_cast<const char *>(&count), 8);
    image.append(
        reinterpret_cast<const char *>(&arena.virtualReserveBytes), 8);
    appendLane(image, arena.lanes.cls, n);
    appendLane(image, arena.lanes.kind, n);
    appendLane(image, arena.lanes.pc, n);
    appendLane(image, arena.lanes.addr, n);
    appendLane(image, arena.lanes.accessSize, n);
    appendLane(image, arena.lanes.taken, n);
    appendLane(image, arena.lanes.target, n);
    appendLane(image, arena.lanes.depOnLoad, n);
    appendLane(image, arena.lanes.depOnPrev, n);
    return writeFileAtomic(path, image);
}

std::unique_ptr<TraceArena>
loadArena(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return nullptr;
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    std::uint64_t reserve = 0;
    in.read(magic, 4);
    in.read(reinterpret_cast<char *>(&version), 4);
    in.read(reinterpret_cast<char *>(&count), 8);
    in.read(reinterpret_cast<char *>(&reserve), 8);
    if (!in || std::memcmp(magic, kMagic, 4) != 0
        || version != kVersion) {
        warn("ignoring unreadable arena spill (bad header): ", path);
        return nullptr;
    }
    auto arena = std::make_unique<TraceArena>();
    const std::size_t n = static_cast<std::size_t>(count);
    arena->lanes.ensure(n);
    arena->numOps = n;
    arena->virtualReserveBytes = reserve;
    const bool ok = readLane(in, arena->lanes.cls, n)
        && readLane(in, arena->lanes.kind, n)
        && readLane(in, arena->lanes.pc, n)
        && readLane(in, arena->lanes.addr, n)
        && readLane(in, arena->lanes.accessSize, n)
        && readLane(in, arena->lanes.taken, n)
        && readLane(in, arena->lanes.target, n)
        && readLane(in, arena->lanes.depOnLoad, n)
        && readLane(in, arena->lanes.depOnPrev, n);
    if (!ok) {
        warn("ignoring truncated arena spill: ", path);
        return nullptr;
    }
    // Reject out-of-range enum bytes so a corrupt spill cannot feed
    // the simulator undefined class values.
    for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<std::uint8_t>(arena->lanes.cls[i])
                >= isa::kNumUopClasses
            || static_cast<std::uint8_t>(arena->lanes.kind[i])
                > isa::kNumBranchKinds) {
            warn("ignoring corrupt arena spill (bad op record): ",
                 path);
            return nullptr;
        }
    }
    return arena;
}

ReplaySource::ReplaySource(std::shared_ptr<const TraceArena> arena)
    : arena_(std::move(arena))
{
    SPEC17_ASSERT(arena_ != nullptr, "ReplaySource needs an arena");
}

bool
ReplaySource::next(isa::MicroOp &op)
{
    if (cursor_ >= arena_->numOps || cancelled())
        return false;
    op = arena_->lanes.get(cursor_++);
    return true;
}

std::size_t
ReplaySource::nextBatch(isa::MicroOp *out, std::size_t n)
{
    if (cancelled())
        return 0;
    const std::size_t m = std::min(n, arena_->numOps - cursor_);
    for (std::size_t i = 0; i < m; ++i)
        out[i] = arena_->lanes.get(cursor_ + i);
    cursor_ += m;
    return m;
}

std::size_t
ReplaySource::nextBatchSoA(MicroOpBatch &out, std::size_t at,
                           std::size_t n)
{
    out.ensure(at + n);
    if (cancelled())
        return 0;
    const std::size_t m = std::min(n, arena_->numOps - cursor_);
    const MicroOpBatch &lanes = arena_->lanes;
    std::memcpy(out.cls.data() + at, lanes.cls.data() + cursor_,
                m * sizeof(lanes.cls[0]));
    std::memcpy(out.kind.data() + at, lanes.kind.data() + cursor_,
                m * sizeof(lanes.kind[0]));
    std::memcpy(out.pc.data() + at, lanes.pc.data() + cursor_,
                m * sizeof(lanes.pc[0]));
    std::memcpy(out.addr.data() + at, lanes.addr.data() + cursor_,
                m * sizeof(lanes.addr[0]));
    std::memcpy(out.accessSize.data() + at,
                lanes.accessSize.data() + cursor_, m);
    std::memcpy(out.taken.data() + at, lanes.taken.data() + cursor_, m);
    std::memcpy(out.target.data() + at, lanes.target.data() + cursor_,
                m * sizeof(lanes.target[0]));
    std::memcpy(out.depOnLoad.data() + at,
                lanes.depOnLoad.data() + cursor_, m);
    std::memcpy(out.depOnPrev.data() + at,
                lanes.depOnPrev.data() + cursor_, m);
    cursor_ += m;
    return m;
}

const MicroOpBatch *
ReplaySource::nextLanes(std::size_t n, std::size_t &at,
                        std::size_t &got)
{
    if (cancelled()) {
        at = cursor_;
        got = 0;
        return &arena_->lanes;
    }
    const std::size_t m = std::min(n, arena_->numOps - cursor_);
    at = cursor_;
    got = m;
    cursor_ += m;
    return &arena_->lanes;
}

} // namespace trace
} // namespace spec17
