/**
 * @file
 * Trace composition: concatenates several trace sources into one
 * stream. Real programs execute through phases (initialization,
 * compute sweeps, cleanup); the paper's future-work section proposes
 * exploiting such phase behaviour, and this combinator lets tests,
 * examples and the phase analyzer construct programs with known
 * phase structure.
 */

#ifndef SPEC17_TRACE_PHASED_HH_
#define SPEC17_TRACE_PHASED_HH_

#include <memory>
#include <vector>

#include "trace/source.hh"

namespace spec17 {
namespace trace {

/** Plays its child sources back to back; reset rewinds all. */
class PhasedTrace : public TraceSource
{
  public:
    /** @param phases child sources, played in order (none null). */
    explicit PhasedTrace(
        std::vector<std::shared_ptr<TraceSource>> phases);

    bool next(isa::MicroOp &op) override;
    std::size_t nextBatch(isa::MicroOp *out, std::size_t n) override;
    std::size_t nextBatchSoA(MicroOpBatch &out, std::size_t at,
                             std::size_t n) override;
    void reset() override;
    std::uint64_t virtualReserveBytes() const override;

    /** A phased trace is paused exactly while its current child is. */
    bool cancelled() const override;

    /** Number of child phases. */
    std::size_t numPhases() const { return phases_.size(); }

    /** Index of the child currently playing (== numPhases() at end). */
    std::size_t currentPhase() const { return current_; }

  private:
    std::vector<std::shared_ptr<TraceSource>> phases_;
    std::size_t current_ = 0;
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_PHASED_HH_
