/**
 * @file
 * Structure-of-arrays micro-op batch: the delivery format of the
 * simulator's batched fast lane.
 *
 * A MicroOpBatch carries the same nine fields as isa::MicroOp, but as
 * parallel lanes (one contiguous array per field) instead of an array
 * of structs. The simulator's per-component passes each walk only the
 * lanes they consume -- the branch pass never loads effective
 * addresses, the footprint pass never loads branch kinds -- which
 * keeps the hot loops dense and lets the compiler vectorize the lane
 * arithmetic (line/set/page decomposition, class tests).
 *
 * Every writer fills every lane for every op (lanes irrelevant to an
 * op's class hold the same defaults isa::MicroOp construction would:
 * zero / None / false), so get(i) reproduces the exact op a next()
 * pull would have delivered and lane-level tests can compare streams
 * field for field.
 */

#ifndef SPEC17_TRACE_BATCH_HH_
#define SPEC17_TRACE_BATCH_HH_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "isa/uop.hh"

namespace spec17 {
namespace trace {

/** SoA twin of isa::MicroOp (see file comment for the contract). */
struct MicroOpBatch
{
    /** @name Lanes (index i across all lanes describes one op) */
    /// @{
    std::vector<isa::UopClass> cls;
    std::vector<isa::BranchKind> kind;
    std::vector<std::uint64_t> pc;
    std::vector<std::uint64_t> addr;    //!< MicroOp::effAddr
    std::vector<std::uint8_t> accessSize;
    std::vector<std::uint8_t> taken;    //!< bool lane (0/1)
    std::vector<std::uint64_t> target;
    std::vector<std::uint8_t> depOnLoad;
    std::vector<std::uint8_t> depOnPrev;
    /// @}

    /** Lane capacity in ops (all lanes always share one size). */
    std::size_t capacity() const { return cls.size(); }

    /** Grows every lane to hold at least @p n ops (never shrinks --
     *  the simulator reuses one batch across its whole run). */
    void
    ensure(std::size_t n)
    {
        if (capacity() >= n)
            return;
        cls.resize(n, isa::UopClass::IntAlu);
        kind.resize(n, isa::BranchKind::None);
        pc.resize(n, 0);
        addr.resize(n, 0);
        accessSize.resize(n, 0);
        taken.resize(n, 0);
        target.resize(n, 0);
        depOnLoad.resize(n, 0);
        depOnPrev.resize(n, 0);
    }

    /**
     * Resets ops [at, at+n) of every lane except pc to the MicroOp
     * construction defaults (zero / IntAlu / None -- all are
     * representation zero, asserted below). A generator that calls
     * this first only has to store each op's class-relevant fields;
     * the untouched lanes already hold what a full writer would have
     * stored. pc is exempt because every op class writes it.
     */
    void
    zeroFill(std::size_t at, std::size_t n)
    {
        static_assert(static_cast<int>(isa::UopClass::IntAlu) == 0
                          && static_cast<int>(isa::BranchKind::None)
                              == 0,
                      "memset pre-fill relies on zero defaults");
        std::memset(cls.data() + at, 0, n * sizeof(cls[0]));
        std::memset(kind.data() + at, 0, n * sizeof(kind[0]));
        std::memset(addr.data() + at, 0, n * sizeof(addr[0]));
        std::memset(accessSize.data() + at, 0, n);
        std::memset(taken.data() + at, 0, n);
        std::memset(target.data() + at, 0, n * sizeof(target[0]));
        std::memset(depOnLoad.data() + at, 0, n);
        std::memset(depOnPrev.data() + at, 0, n);
    }

    /** Scatters one AoS op into lane slot @p i (i < capacity()). */
    void
    set(std::size_t i, const isa::MicroOp &op)
    {
        cls[i] = op.cls;
        kind[i] = op.branch;
        pc[i] = op.pc;
        addr[i] = op.effAddr;
        accessSize[i] = op.size;
        taken[i] = op.taken ? 1 : 0;
        target[i] = op.target;
        depOnLoad[i] = op.depOnLoad ? 1 : 0;
        depOnPrev[i] = op.depOnPrev ? 1 : 0;
    }

    /** Gathers lane slot @p i back into an AoS op. */
    isa::MicroOp
    get(std::size_t i) const
    {
        isa::MicroOp op;
        op.cls = cls[i];
        op.branch = kind[i];
        op.pc = pc[i];
        op.effAddr = addr[i];
        op.size = accessSize[i];
        op.taken = taken[i] != 0;
        op.target = target[i];
        op.depOnLoad = depOnLoad[i] != 0;
        op.depOnPrev = depOnPrev[i] != 0;
        return op;
    }

    /**
     * AoS scratch buffer of at least @p n ops, owned by the batch.
     * The base-class nextBatchSoA() adapter stages a nextBatch() pull
     * here before scattering into the lanes, so sources that only
     * override the AoS surface still amortize their per-call overhead.
     */
    isa::MicroOp *
    scratch(std::size_t n)
    {
        if (aosScratch_.size() < n)
            aosScratch_.resize(n);
        return aosScratch_.data();
    }

  private:
    std::vector<isa::MicroOp> aosScratch_;
};

} // namespace trace
} // namespace spec17

#endif // SPEC17_TRACE_BATCH_HH_
