/**
 * @file
 * Workload profiles: the microarchitecture-independent description of
 * one benchmark application, the framework's substitute for a
 * licensed SPEC binary + input.
 *
 * A profile records (a) identity (name, mini-suite, language), (b)
 * the application's instruction mix and branch structure, (c) its
 * memory behaviour as per-level cache pressure targets plus a
 * pointer-chase share and streaming flag, and (d) paper-scale
 * magnitudes (instruction count in billions, RSS/VSZ). The builder
 * (workloads/builder.hh) lowers a profile + input selection to
 * SyntheticTraceParams for the simulator.
 *
 * Numeric values are seeded from the paper's reported measurements
 * (Tables II, IV, V, IX; Figures 1-6) where the paper names the
 * application, and from the application's well-documented behaviour
 * otherwise (e.g. mcf = pointer chasing, lbm = streaming stencil).
 */

#ifndef SPEC17_WORKLOADS_PROFILE_HH_
#define SPEC17_WORKLOADS_PROFILE_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace spec17 {
namespace workloads {

/** The four CPU2017 mini-suites (and two CPU2006 halves). */
enum class SuiteKind : std::uint8_t
{
    RateInt,
    RateFp,
    SpeedInt,
    SpeedFp,
};

/** Human-readable mini-suite name ("rate int" etc.). */
std::string suiteKindName(SuiteKind kind);

/** True for the integer mini-suites. */
bool isIntSuite(SuiteKind kind);

/** True for the speed mini-suites. */
bool isSpeedSuite(SuiteKind kind);

/** SPEC input sizes. */
enum class InputSize : std::uint8_t
{
    Test,
    Train,
    Ref,
};

/** Human-readable input-size name ("test"/"train"/"ref"). */
std::string inputSizeName(InputSize size);

/** All three input sizes, in Test/Train/Ref order. */
inline constexpr InputSize kAllInputSizes[] = {
    InputSize::Test, InputSize::Train, InputSize::Ref};

/** Source benchmark generation. */
enum class SuiteGeneration : std::uint8_t
{
    Cpu2006,
    Cpu2017,
};

/**
 * Memory behaviour targets. The builder converts these into a
 * four-region working set (L1-resident, L2-resident, L3-resident,
 * DRAM) whose access weights reproduce the targets on the Table I
 * cache geometry; the actual rates are then *measured* from cache
 * simulation.
 */
struct MemoryBehavior
{
    /** Target L1D load miss rate (misses / loads). */
    double l1MissRate = 0.03;
    /** Target L2 miss rate (L2 misses / L1 misses). */
    double l2MissRate = 0.30;
    /** Target L3 miss rate (L3 misses / L2 misses). */
    double l3MissRate = 0.15;
    /**
     * Share of L3/DRAM-level accesses that are dependent pointer
     * chases (no memory-level parallelism). mcf-like codes are high;
     * streaming codes are zero.
     */
    double chaseFrac = 0.2;
    /**
     * Streaming workload: deep regions are walked sequentially
     * (prefetch-friendly, one miss per line) instead of randomly.
     */
    bool streaming = false;
};

/** Branch structure of the application. */
struct BranchBehavior
{
    /** Conditional share of all branches (paper average: 78.7%). */
    double condFrac = 0.787;
    double directJumpFrac = 0.08;
    double nearCallFrac = 0.055;
    double indirectJumpFrac = 0.018;
    double nearReturnFrac = 0.06;
    /**
     * Target overall branch mispredict rate (mispredicts / branches,
     * the paper's Fig. 6 quantity). The builder converts this into
     * the generator's hard-site fraction against the predictor's
     * easy-site floor.
     */
    double mispredictRate = 0.022;
    /** Fraction of conditionals fed directly by loads. */
    double depOnLoadFrac = 0.2;
    /** Static conditional sites (code size proxy for the predictor). */
    std::size_t numSites = 1024;
};

/** One application's full profile. */
struct WorkloadProfile
{
    /** Full SPEC name, e.g. "505.mcf_r". */
    std::string name;
    /** Numeric benchmark id (505 for 505.mcf_r). */
    int benchmarkId = 0;
    SuiteKind suite = SuiteKind::RateInt;
    SuiteGeneration generation = SuiteGeneration::Cpu2017;
    /** Source language, informational ("C", "C++", "Fortran", mixes). */
    std::string language = "C";

    /** Inputs available per input size (test, train, ref). */
    unsigned numInputs[3] = {1, 1, 1};

    /** @name Instruction mix (fractions of micro-ops) */
    /// @{
    double loadFrac = 0.25;
    double storeFrac = 0.09;
    double branchFrac = 0.15;
    /// @}
    /** FP share of compute micro-ops. */
    double fpFrac = 0.0;
    /** Serial-dependency density of compute ops (ILP limiter). */
    double computeDepFrac = 0.25;

    BranchBehavior branches;
    MemoryBehavior memory;

    /** Instruction footprint driving the I-cache. */
    std::uint64_t codeFootprintKiB = 192;

    /** @name Paper-scale magnitudes for the ref input */
    /// @{
    double refInstrBillions = 1000.0;
    double rssRefMiB = 1024.0;
    double vszRefMiB = 1280.0;
    /// @}
    /** Instruction-count scale of test/train inputs vs ref. */
    double testScale = 0.04;
    double trainScale = 0.13;

    /**
     * Threads the application runs with (1 for rate; 4 for the
     * OpenMP-capable speed applications, matching the paper's
     * configuration).
     */
    unsigned numThreads = 1;
    /**
     * Fraction of the data working set private to each thread (the
     * rest is shared). Only meaningful when numThreads > 1.
     */
    double threadPrivateFrac = 0.5;

    /**
     * Application-input pairs the paper could not collect perf data
     * for (627.cam4_s everywhere; perlbench's test.pl). Indices into
     * the input list per input size.
     */
    std::vector<std::pair<InputSize, unsigned>> erroredInputs;

    /** Instruction count (billions) for one input of @p size. */
    double instrBillions(InputSize size) const;

    /** RSS in MiB for one input of @p size (test/train inputs touch
     *  a fraction of the ref working set). */
    double rssMiB(InputSize size) const;

    /** VSZ in MiB for one input of @p size. */
    double vszMiB(InputSize size) const;

    /** True when the paper failed to collect the given pair. */
    bool isErrored(InputSize size, unsigned input_index) const;

    /**
     * Diagnoses the first malformed field (fraction outside [0, 1],
     * NaN, non-positive magnitude, mix leaving no room for compute),
     * or returns "" when the profile is well-formed. The suite runner
     * uses this to reject a bad profile as a contained per-pair
     * failure instead of producing NaN metrics.
     */
    std::string validationError() const;

    /** Validates all fractions and magnitudes; panics on nonsense. */
    void validate() const;
};

/**
 * One concrete run unit: an application plus a chosen input. The
 * characterization operates over these (the paper's 194 pairs).
 */
struct AppInputPair
{
    const WorkloadProfile *profile = nullptr;
    InputSize size = InputSize::Ref;
    unsigned inputIndex = 0;

    /** Display name, e.g. "502.gcc_r-in3" (plain name if 1 input). */
    std::string displayName() const;
};

/** The full CPU2017 suite: 43 applications across 4 mini-suites. */
const std::vector<WorkloadProfile> &cpu2017Suite();

/** The CPU2006 comparison suite (29 applications). */
const std::vector<WorkloadProfile> &cpu2006Suite();

/**
 * Enumerates application-input pairs of @p suite for @p size,
 * optionally filtered to one mini-suite. With the CPU2017 suite this
 * yields the paper's 69 (test) / 61 (train) / 64 (ref) pairs.
 */
std::vector<AppInputPair> enumeratePairs(
    const std::vector<WorkloadProfile> &suite, InputSize size);

/** Pairs restricted to one mini-suite. */
std::vector<AppInputPair> enumeratePairs(
    const std::vector<WorkloadProfile> &suite, InputSize size,
    SuiteKind kind);

/** Finds a profile by name; panics if absent. */
const WorkloadProfile &findProfile(
    const std::vector<WorkloadProfile> &suite, const std::string &name);

} // namespace workloads
} // namespace spec17

#endif // SPEC17_WORKLOADS_PROFILE_HH_
