#include "workloads/builder.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace spec17 {
namespace workloads {

namespace {

using trace::AccessPattern;
using trace::MemoryRegionParams;
using trace::SyntheticTraceParams;

/** Region sizes against the Table I hierarchy. */
constexpr std::uint64_t kHotBytes = 16 * kKiB;
constexpr std::uint64_t kL2Bytes = 112 * kKiB;
constexpr std::uint64_t kL3Bytes = 2 * kMiB;
// Large enough that its stationary L3 residency is small: a random
// walk over 256 MiB keeps ~12% of its lines in the 30 MiB L3.
constexpr std::uint64_t kMemBytes = 256 * kMiB;

/** Expected per-access L1-miss probability of a random region. */
double
randomMissProb(std::uint64_t region_bytes, std::uint64_t cache_bytes)
{
    if (region_bytes <= cache_bytes)
        return 0.0;
    return 1.0 - static_cast<double>(cache_bytes)
        / static_cast<double>(region_bytes);
}

/** Derives the per-pair deterministic jitter stream. */
Rng
pairRng(const AppInputPair &pair, std::uint64_t seed)
{
    const std::uint64_t generation =
        pair.profile->generation == SuiteGeneration::Cpu2017 ? 17 : 6;
    std::uint64_t s = deriveSeed(seed, pair.profile->name);
    s = deriveSeed(s, generation,
                   static_cast<std::uint64_t>(pair.size));
    return Rng(deriveSeed(s, pair.inputIndex, 0));
}

/** Multiplicative jitter in [1-amount, 1+amount]. */
double
jitter(Rng &rng, double amount)
{
    return 1.0 + amount * (2.0 * rng.nextDouble() - 1.0);
}

} // namespace

trace::SyntheticTraceParams
buildTraceParams(const AppInputPair &pair, const BuildOptions &options,
                 unsigned thread_index)
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without a profile");
    const WorkloadProfile &profile = *pair.profile;
    profile.validate();
    SPEC17_ASSERT(thread_index < profile.numThreads,
                  profile.name, ": thread ", thread_index, " out of ",
                  profile.numThreads);
    const unsigned inputs =
        profile.numInputs[static_cast<std::size_t>(pair.size)];
    SPEC17_ASSERT(pair.inputIndex < inputs,
                  profile.name, ": input ", pair.inputIndex, " out of ",
                  inputs, " for ", inputSizeName(pair.size));

    Rng rng = pairRng(pair, options.seed);

    SyntheticTraceParams params;
    params.numOps = std::max<std::uint64_t>(
        1, options.sampleOps / profile.numThreads);
    params.seed = deriveSeed(
        deriveSeed(options.seed, profile.name),
        static_cast<std::uint64_t>(pair.size) * 131 + pair.inputIndex,
        thread_index);

    // ---- Instruction mix (small per-input perturbation) ----
    params.loadFrac = std::clamp(profile.loadFrac * jitter(rng, 0.03),
                                 0.0, 0.6);
    params.storeFrac = std::clamp(profile.storeFrac * jitter(rng, 0.03),
                                  0.0, 0.4);
    params.branchFrac =
        std::clamp(profile.branchFrac * jitter(rng, 0.03), 0.0, 0.45);
    params.fpFrac = profile.fpFrac;
    params.computeDepFrac = profile.computeDepFrac;
    params.mulFrac = 0.08;
    params.divFrac = profile.fpFrac > 0.2 ? 0.01 : 0.003;

    // ---- Branch structure ----
    const BranchBehavior &branch = profile.branches;
    params.condFrac = branch.condFrac;
    params.directJumpFrac = branch.directJumpFrac;
    params.nearCallFrac = branch.nearCallFrac;
    params.indirectJumpFrac = branch.indirectJumpFrac;
    params.nearReturnFrac = branch.nearReturnFrac;
    params.branchDepOnLoadFrac = branch.depOnLoadFrac;
    // Scale the site populations to what the sampled run can actually
    // train: a predictor that would be warm after 10^12 instructions
    // must not read as cold because the sample visits each site a
    // handful of times.
    const double dyn_cond =
        double(params.numOps) * params.branchFrac * params.condFrac;
    params.numBranchSites = std::clamp<std::size_t>(
        std::min<std::size_t>(branch.numSites,
                              static_cast<std::size_t>(dyn_cond / 400.0)),
        16, 16384);
    const double dyn_indirect = double(params.numOps)
        * params.branchFrac * branch.indirectJumpFrac;
    params.numIndirectSites = std::clamp<std::size_t>(
        static_cast<std::size_t>(dyn_indirect / 200.0), 4, 64);

    // Decompose the mispredict target T (over all branches) into:
    //   easy-site floor f, hard-site fraction h, indirect switches q:
    //   T ~= cond*( (1-h)*f + h/2 ) + indirect*1.5q
    const double target =
        std::max(1e-4, branch.mispredictRate * jitter(rng, 0.05));
    const double floor = std::clamp(target * 0.4, 0.0005, 0.015);
    params.easyTakenBias = 1.0 - floor;
    const double q = std::min(0.2, target);
    params.indirectSwitchProb = q;
    const double indirect_part =
        branch.indirectJumpFrac * 1.5 * q;
    const double cond = std::max(branch.condFrac, 1e-6);
    const double hard =
        (target - indirect_part - cond * floor) / (cond * (0.5 - floor));
    params.hardBranchFrac = std::clamp(hard, 0.0, 1.0);

    // ---- Memory regions from the miss-rate targets ----
    // Geometry-compensation factors: measured rates deviate from the
    // requested shares in systematic ways (the L2-resident region
    // loses some lines to competing streams -> L2 misses overshoot;
    // the hot region is not perfectly L1-resident -> L1 overshoots;
    // the DRAM region keeps a small L3 residency -> L3 undershoots).
    // These constants were calibrated once against the full suite.
    const MemoryBehavior &memory = profile.memory;
    const double m1 = std::clamp(
        memory.l1MissRate * 0.93 * jitter(rng, 0.06), 0.0, 0.98);
    const double m2 = std::clamp(
        memory.l2MissRate * 0.88 * jitter(rng, 0.06), 0.0, 1.0);
    const double m3 = std::clamp(
        memory.l3MissRate * 1.08 * jitter(rng, 0.06), 0.0, 1.0);

    // Desired shares of *L1 misses* per backing level.
    const double share_l2 = m1 * (1.0 - m2);
    const double share_l3 = m1 * m2 * (1.0 - m3);
    const double share_mem = m1 * m2 * m3;

    // The L2-resident region is always random (its lines survive in
    // L2 by recency); only the deeper regions stream for streaming
    // profiles.
    const AccessPattern deep_pattern = memory.streaming
        ? AccessPattern::Strided
        : AccessPattern::Random;

    // Per-access L1-miss probabilities used to convert miss shares
    // into access weights. Strided (line-stride) and chase regions
    // miss on (almost) every access; the random L2 region keeps a
    // partial L1 residency.
    const double p_l2 =
        std::max(0.25, randomMissProb(kL2Bytes, 32 * kKiB));
    const double p_l3 = 1.0;
    const double p_mem = 1.0;

    const double chase = memory.chaseFrac;
    std::vector<MemoryRegionParams> regions;
    auto add_region = [&](AccessPattern pattern, std::uint64_t size,
                          double weight) {
        if (weight <= 0.0)
            return;
        MemoryRegionParams region;
        region.pattern = pattern;
        region.sizeBytes = size;
        region.strideBytes = 64;
        region.loadWeight = weight;
        region.storeWeight = weight;
        regions.push_back(region);
    };

    double w_l2 = share_l2 / p_l2;
    double w_l3 = share_l3 / p_l3;
    double w_mem = share_mem / p_mem;
    double w_deep = w_l2 + w_l3 + w_mem;
    if (w_deep > 0.97) {
        // Infeasible target mix for this geometry; keep proportions.
        const double scale = 0.97 / w_deep;
        w_l2 *= scale;
        w_l3 *= scale;
        w_mem *= scale;
        w_deep = 0.97;
    }

    add_region(AccessPattern::Random, kHotBytes,
               std::max(0.03, 1.0 - w_deep));
    add_region(AccessPattern::Random, kL2Bytes, w_l2);
    add_region(deep_pattern, kL3Bytes, w_l3 * (1.0 - chase));
    add_region(AccessPattern::PointerChase, kL3Bytes, w_l3 * chase);
    add_region(deep_pattern, kMemBytes, w_mem * (1.0 - chase));
    add_region(AccessPattern::PointerChase, kMemBytes, w_mem * chase);
    params.regions = std::move(regions);

    // Threads with mostly-private working sets get disjoint address
    // ranges, multiplying pressure on the shared L3; mostly-shared
    // working sets overlap completely.
    if (profile.numThreads > 1 && profile.threadPrivateFrac >= 0.5)
        params.addressOffset = std::uint64_t(thread_index) * kGiB;

    // ---- Code and address-space magnitudes ----
    params.codeFootprintBytes =
        std::max<std::uint64_t>(4 * kKiB, profile.codeFootprintKiB * kKiB);
    params.hotCodeFrac = 0.98;
    // Paper-scale VSZ is reported by the suite runner; the trace-level
    // reservation only needs to cover its own regions.
    params.extraVirtualBytes = 0;

    params.validate();
    return params;
}

} // namespace workloads
} // namespace spec17
