/**
 * @file
 * Lowers a WorkloadProfile + input selection to the synthetic trace
 * generator's parameters.
 *
 * The lowering implements the profile's cache-pressure targets with
 * a four-region working set sized against the Table I hierarchy:
 *
 *   hot  (16 KiB, random)          -> L1-resident
 *   l2   (160 KiB)                 -> misses L1, hits L2
 *   l3   (2 MiB)                   -> misses L2, hits L3
 *   mem  (64 MiB)                  -> misses L3 (DRAM)
 *
 * Load weights are solved from the target per-level miss rates (and
 * each region's expected per-access miss probability); the chase
 * fraction routes a share of the two deep levels through
 * pointer-chase regions; streaming profiles walk deep regions with a
 * line-sized stride (prefetch-friendly, fully missing) instead of
 * randomly. The mispredict-rate target is decomposed into an
 * easy-site floor, a hard-site fraction, and an indirect-switch
 * probability.
 *
 * Multiple inputs of one application perturb magnitudes and targets
 * by a few percent (deterministically per input index), mirroring how
 * e.g. 603.bwaves_s's two ref inputs behave almost identically in the
 * paper's Table IX.
 */

#ifndef SPEC17_WORKLOADS_BUILDER_HH_
#define SPEC17_WORKLOADS_BUILDER_HH_

#include "trace/synthetic.hh"
#include "workloads/profile.hh"

namespace spec17 {
namespace workloads {

/** Options for lowering a pair to trace parameters. */
struct BuildOptions
{
    /** Micro-ops to simulate for this pair (whole pair, all threads). */
    std::uint64_t sampleOps = 2'000'000;
    /** Root seed mixed with the pair identity. */
    std::uint64_t seed = 0x5bec17;
};

/**
 * Builds generator parameters for one thread of an application-input
 * pair. Threads of a threaded application share the same targets but
 * receive distinct streams, and private address offsets when the
 * profile declares a mostly-private working set.
 *
 * @param pair which application + input to lower.
 * @param options sampling configuration.
 * @param thread_index 0-based thread (< pair.profile->numThreads).
 */
trace::SyntheticTraceParams buildTraceParams(const AppInputPair &pair,
                                             const BuildOptions &options,
                                             unsigned thread_index = 0);

} // namespace workloads
} // namespace spec17

#endif // SPEC17_WORKLOADS_BUILDER_HH_
