/**
 * @file
 * Profiles for all 43 SPEC CPU2017 applications.
 *
 * Where the paper reports a number for a named application (IPC
 * extremes, instruction-mix extremes, per-level cache miss-rate
 * extremes, mispredict extremes, footprints, Table IX's
 * characteristics), that number is encoded here directly. The
 * remaining applications get values consistent with (a) the paper's
 * mini-suite averages and standard deviations and (b) each program's
 * well-documented behaviour. Instruction counts are chosen so each
 * mini-suite's ref average reproduces Table II.
 *
 * Input counts per size are chosen to reproduce the paper's pair
 * totals: 69 (test), 61 (train), 64 (ref); the ref counts match the
 * real SPEC workload lists. The five pairs the paper could not
 * collect (627.cam4_s everywhere, perlbench's test.pl) are flagged.
 */

#include "workloads/profile.hh"

namespace spec17 {
namespace workloads {

namespace {

/** Common scaffolding for one application. */
WorkloadProfile
base(int id, const char *name, SuiteKind suite, const char *lang)
{
    WorkloadProfile p;
    p.benchmarkId = id;
    p.name = name;
    p.suite = suite;
    p.generation = SuiteGeneration::Cpu2017;
    p.language = lang;
    switch (suite) {
      case SuiteKind::RateInt:
        p.testScale = 0.044;
        p.trainScale = 0.132;
        break;
      case SuiteKind::RateFp:
        p.testScale = 0.021;
        p.trainScale = 0.156;
        break;
      case SuiteKind::SpeedInt:
        p.testScale = 0.034;
        p.trainScale = 0.103;
        break;
      case SuiteKind::SpeedFp:
        p.testScale = 0.0027;
        p.trainScale = 0.022;
        // All speed-fp applications use 4 OpenMP threads in the
        // paper's configuration.
        p.numThreads = 4;
        break;
    }
    if (isIntSuite(suite)) {
        p.fpFrac = 0.03;
        p.computeDepFrac = 0.30;
        p.branches.condFrac = 0.785;
    } else {
        p.fpFrac = 0.55;
        p.computeDepFrac = 0.35;
        p.branches.condFrac = 0.75;
        p.branches.depOnLoadFrac = 0.10;
    }
    return p;
}

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> apps;

    // =================================================================
    // SPECrate 2017 Integer (10 applications)
    // =================================================================
    {
        // Perl interpreter: branchy, pointer-rich, code-footprint
        // heavy, modest data working set.
        WorkloadProfile p =
            base(500, "500.perlbench_r", SuiteKind::RateInt, "C");
        p.numInputs[0] = 6; p.numInputs[1] = 2; p.numInputs[2] = 3;
        p.erroredInputs = {{InputSize::Test, 0}}; // test.pl (paper §III)
        p.loadFrac = 0.245; p.storeFrac = 0.115; p.branchFrac = 0.205;
        p.branches.mispredictRate = 0.035;
        p.branches.indirectJumpFrac = 0.04; // dispatch tables
        p.branches.condFrac = 0.765;
        p.branches.depOnLoadFrac = 0.30;
        p.memory = {0.015, 0.25, 0.072, 0.35, false};
        p.codeFootprintKiB = 1024;
        p.refInstrBillions = 2000;
        p.rssRefMiB = 88.2; p.vszRefMiB = 127.4;
        apps.push_back(p);
    }
    {
        // Compiler: large code, irregular heap, high mispredicts.
        WorkloadProfile p =
            base(502, "502.gcc_r", SuiteKind::RateInt, "C");
        p.numInputs[0] = 5; p.numInputs[1] = 5; p.numInputs[2] = 5;
        p.loadFrac = 0.26; p.storeFrac = 0.12; p.branchFrac = 0.215;
        p.branches.mispredictRate = 0.045;
        p.branches.indirectJumpFrac = 0.03;
        p.branches.condFrac = 0.775;
        p.branches.depOnLoadFrac = 0.30;
        p.memory = {0.045, 0.40, 0.18, 0.40, false};
        p.codeFootprintKiB = 2048;
        p.refInstrBillions = 1200;
        p.rssRefMiB = 441.0; p.vszRefMiB = 539.0;
        apps.push_back(p);
    }
    {
        // Vehicle scheduling: the classic pointer-chasing graph code.
        // Paper: lowest rate-int IPC (0.886), highest branch share
        // (31.277%), highest L2 miss rate (65.721%).
        WorkloadProfile p =
            base(505, "505.mcf_r", SuiteKind::RateInt, "C");
        p.loadFrac = 0.27; p.storeFrac = 0.09; p.branchFrac = 0.31277;
        p.branches.mispredictRate = 0.055;
        p.branches.depOnLoadFrac = 0.45;
        p.memory = {0.09, 0.657, 0.30, 0.55, false};
        p.computeDepFrac = 0.40;
        p.codeFootprintKiB = 48;
        p.refInstrBillions = 1000;
        p.rssRefMiB = 269.5; p.vszRefMiB = 303.8;
        apps.push_back(p);
    }
    {
        // Discrete-event network simulation: scattered heap objects.
        WorkloadProfile p =
            base(520, "520.omnetpp_r", SuiteKind::RateInt, "C++");
        p.loadFrac = 0.28; p.storeFrac = 0.10; p.branchFrac = 0.20;
        p.branches.mispredictRate = 0.030;
        p.branches.indirectJumpFrac = 0.045; // virtual dispatch
        p.branches.condFrac = 0.76;
        p.branches.depOnLoadFrac = 0.40;
        p.memory = {0.05, 0.45, 0.252, 0.60, false};
        p.codeFootprintKiB = 768;
        p.refInstrBillions = 1000;
        p.rssRefMiB = 122.5; p.vszRefMiB = 156.8;
        apps.push_back(p);
    }
    {
        // XML/XSLT processing. Paper: highest rate-int L1 miss rate
        // (12.174%) and highest int load share (29.151%).
        WorkloadProfile p =
            base(523, "523.xalancbmk_r", SuiteKind::RateInt, "C++");
        p.loadFrac = 0.29151; p.storeFrac = 0.08; p.branchFrac = 0.225;
        p.branches.mispredictRate = 0.025;
        p.branches.indirectJumpFrac = 0.05;
        p.branches.condFrac = 0.755;
        p.branches.depOnLoadFrac = 0.20;
        p.memory = {0.12174, 0.30, 0.108, 0.30, false};
        p.codeFootprintKiB = 1536;
        p.refInstrBillions = 1250;
        p.rssRefMiB = 235.2; p.vszRefMiB = 274.4;
        apps.push_back(p);
    }
    {
        // Video encoder. Paper: highest int IPC (3.024): dense
        // SIMD-style compute, tiny miss rates, few branches.
        WorkloadProfile p =
            base(525, "525.x264_r", SuiteKind::RateInt, "C");
        p.numInputs[0] = 3; p.numInputs[1] = 3; p.numInputs[2] = 3;
        p.loadFrac = 0.25; p.storeFrac = 0.08; p.branchFrac = 0.08;
        p.branches.mispredictRate = 0.015;
        p.memory = {0.012, 0.20, 0.0864, 0.05, true};
        p.computeDepFrac = 0.03;
        p.codeFootprintKiB = 384;
        p.refInstrBillions = 3000;
        p.rssRefMiB = 78.4; p.vszRefMiB = 107.8;
        apps.push_back(p);
    }
    {
        // Chess search. Paper: highest rate-int L3 miss rate
        // (67.516%) -- transposition-table lookups sail past L3.
        WorkloadProfile p =
            base(531, "531.deepsjeng_r", SuiteKind::RateInt, "C++");
        p.loadFrac = 0.22; p.storeFrac = 0.09; p.branchFrac = 0.16;
        p.branches.mispredictRate = 0.055;
        p.branches.depOnLoadFrac = 0.30;
        p.memory = {0.03, 0.35, 0.82, 0.50, false};
        p.codeFootprintKiB = 96;
        p.refInstrBillions = 1900;
        p.rssRefMiB = 343.0; p.vszRefMiB = 372.4;
        apps.push_back(p);
    }
    {
        // Go engine (MCTS). Paper: worst mispredict rate (8.656%).
        WorkloadProfile p =
            base(541, "541.leela_r", SuiteKind::RateInt, "C++");
        p.loadFrac = 0.20; p.storeFrac = 0.08; p.branchFrac = 0.17;
        p.branches.mispredictRate = 0.08656;
        p.branches.depOnLoadFrac = 0.25;
        p.memory = {0.02, 0.25, 0.144, 0.30, false};
        p.codeFootprintKiB = 128;
        p.refInstrBillions = 1950;
        p.rssRefMiB = 14.7; p.vszRefMiB = 36.8;
        apps.push_back(p);
    }
    {
        // Fortran puzzle solver: register-resident recursion. Paper:
        // highest int store share (15.911%), smallest footprint
        // (RSS 1.148 MiB, VSZ 15.160 MiB).
        WorkloadProfile p =
            base(548, "548.exchange2_r", SuiteKind::RateInt, "Fortran");
        p.loadFrac = 0.18; p.storeFrac = 0.15911; p.branchFrac = 0.15;
        p.branches.mispredictRate = 0.040;
        p.memory = {0.005, 0.15, 0.036, 0.0, false};
        p.computeDepFrac = 0.20;
        p.codeFootprintKiB = 64;
        p.refInstrBillions = 2800;
        p.rssRefMiB = 1.148; p.vszRefMiB = 15.160;
        apps.push_back(p);
    }
    {
        // LZMA compression. Paper: rate-int IPC 1.741; big
        // dictionaries stress L3.
        WorkloadProfile p =
            base(557, "557.xz_r", SuiteKind::RateInt, "C");
        p.numInputs[0] = 2; p.numInputs[1] = 2; p.numInputs[2] = 3;
        p.loadFrac = 0.22; p.storeFrac = 0.09; p.branchFrac = 0.17;
        p.branches.mispredictRate = 0.050;
        p.branches.depOnLoadFrac = 0.35;
        p.memory = {0.04, 0.45, 0.288, 0.55, false};
        p.codeFootprintKiB = 96;
        p.refInstrBillions = 1415;
        p.rssRefMiB = 1715.0; p.vszRefMiB = 1911.0;
        apps.push_back(p);
    }

    // =================================================================
    // SPECrate 2017 Floating Point (13 applications)
    // =================================================================
    {
        // Explicit CFD solver: blocked dense loops.
        WorkloadProfile p =
            base(503, "503.bwaves_r", SuiteKind::RateFp, "Fortran");
        p.numInputs[0] = 2; p.numInputs[1] = 2; p.numInputs[2] = 4;
        p.loadFrac = 0.275; p.storeFrac = 0.05; p.branchFrac = 0.134;
        p.branches.mispredictRate = 0.008;
        p.memory = {0.02, 0.35, 0.108, 0.0, true};
        p.computeDepFrac = 0.45;
        p.codeFootprintKiB = 64;
        p.refInstrBillions = 2200;
        p.rssRefMiB = 1470.0; p.vszRefMiB = 1617.0;
        apps.push_back(p);
    }
    {
        // Numerical relativity. Paper: highest memory micro-op share
        // (48.375%: 39.786% loads), highest rate-fp L1 miss (19.485%).
        WorkloadProfile p =
            base(507, "507.cactuBSSN_r", SuiteKind::RateFp, "C++/C/F");
        p.loadFrac = 0.39786; p.storeFrac = 0.08589; p.branchFrac = 0.04;
        p.branches.mispredictRate = 0.005;
        p.memory = {0.19485, 0.30, 0.144, 0.10, true};
        p.codeFootprintKiB = 1024;
        p.refInstrBillions = 1800;
        p.rssRefMiB = 637.0; p.vszRefMiB = 710.5;
        apps.push_back(p);
    }
    {
        // Molecular dynamics. Paper: highest fp IPC (2.265).
        WorkloadProfile p =
            base(508, "508.namd_r", SuiteKind::RateFp, "C++");
        p.loadFrac = 0.28; p.storeFrac = 0.07; p.branchFrac = 0.06;
        p.branches.mispredictRate = 0.009;
        p.memory = {0.015, 0.18, 0.0576, 0.0, false};
        p.computeDepFrac = 0.28;
        p.codeFootprintKiB = 256;
        p.refInstrBillions = 2900;
        p.rssRefMiB = 83.3; p.vszRefMiB = 112.7;
        apps.push_back(p);
    }
    {
        // Finite-element biomedical solver (deal.II).
        WorkloadProfile p =
            base(510, "510.parest_r", SuiteKind::RateFp, "C++");
        p.loadFrac = 0.30; p.storeFrac = 0.06; p.branchFrac = 0.11;
        p.branches.mispredictRate = 0.010;
        p.memory = {0.03, 0.30, 0.108, 0.15, false};
        p.codeFootprintKiB = 1024;
        p.refInstrBillions = 2500;
        p.rssRefMiB = 161.7; p.vszRefMiB = 200.9;
        apps.push_back(p);
    }
    {
        // Ray tracer: compute-dense, cache-friendly.
        WorkloadProfile p =
            base(511, "511.povray_r", SuiteKind::RateFp, "C++/C");
        p.loadFrac = 0.28; p.storeFrac = 0.10; p.branchFrac = 0.13;
        p.branches.mispredictRate = 0.018;
        p.memory = {0.010, 0.12, 0.036, 0.10, false};
        p.computeDepFrac = 0.40;
        p.codeFootprintKiB = 512;
        p.refInstrBillions = 3200;
        p.rssRefMiB = 14.7; p.vszRefMiB = 36.8;
        apps.push_back(p);
    }
    {
        // Lattice Boltzmann: pure streaming stencil. Paper: fewest
        // branches (1.198%), highest fp store share (13.076%).
        WorkloadProfile p =
            base(519, "519.lbm_r", SuiteKind::RateFp, "C");
        p.loadFrac = 0.25; p.storeFrac = 0.13076; p.branchFrac = 0.01198;
        p.branches.mispredictRate = 0.002;
        p.memory = {0.06, 0.75, 0.36, 0.0, true};
        p.computeDepFrac = 0.40;
        p.codeFootprintKiB = 16;
        p.refInstrBillions = 1600;
        p.rssRefMiB = 205.8; p.vszRefMiB = 235.2;
        apps.push_back(p);
    }
    {
        // Weather model: mixed stencil sweeps.
        WorkloadProfile p =
            base(521, "521.wrf_r", SuiteKind::RateFp, "Fortran/C");
        p.loadFrac = 0.26; p.storeFrac = 0.07; p.branchFrac = 0.10;
        p.branches.mispredictRate = 0.012;
        p.memory = {0.035, 0.35, 0.1296, 0.05, true};
        p.codeFootprintKiB = 4096;
        p.refInstrBillions = 2400;
        p.rssRefMiB = 107.8; p.vszRefMiB = 147.0;
        apps.push_back(p);
    }
    {
        // 3-D renderer: large scene graph, moderate locality.
        WorkloadProfile p =
            base(526, "526.blender_r", SuiteKind::RateFp, "C++/C");
        p.loadFrac = 0.26; p.storeFrac = 0.08; p.branchFrac = 0.12;
        p.branches.mispredictRate = 0.015;
        p.memory = {0.02, 0.25, 0.108, 0.20, false};
        p.codeFootprintKiB = 3072;
        p.refInstrBillions = 2000;
        p.rssRefMiB = 294.0; p.vszRefMiB = 343.0;
        apps.push_back(p);
    }
    {
        // Atmosphere model.
        WorkloadProfile p =
            base(527, "527.cam4_r", SuiteKind::RateFp, "Fortran/C");
        p.loadFrac = 0.25; p.storeFrac = 0.08; p.branchFrac = 0.12;
        p.branches.mispredictRate = 0.016;
        p.memory = {0.03, 0.30, 0.1296, 0.05, true};
        p.codeFootprintKiB = 4096;
        p.refInstrBillions = 2100;
        p.rssRefMiB = 441.0; p.vszRefMiB = 490.0;
        apps.push_back(p);
    }
    {
        // Image processing: convolution-heavy, cache-resident.
        WorkloadProfile p =
            base(538, "538.imagick_r", SuiteKind::RateFp, "C");
        p.loadFrac = 0.27; p.storeFrac = 0.06; p.branchFrac = 0.09;
        p.branches.mispredictRate = 0.006;
        p.memory = {0.010, 0.15, 0.072, 0.0, true};
        p.computeDepFrac = 0.45;
        p.codeFootprintKiB = 256;
        p.refInstrBillions = 3100;
        p.rssRefMiB = 137.2; p.vszRefMiB = 166.6;
        apps.push_back(p);
    }
    {
        // Molecular modelling (AMBER nab).
        WorkloadProfile p =
            base(544, "544.nab_r", SuiteKind::RateFp, "C");
        p.loadFrac = 0.28; p.storeFrac = 0.06; p.branchFrac = 0.10;
        p.branches.mispredictRate = 0.010;
        p.memory = {0.015, 0.20, 0.072, 0.05, false};
        p.computeDepFrac = 0.42;
        p.codeFootprintKiB = 128;
        p.refInstrBillions = 2700;
        p.rssRefMiB = 68.6; p.vszRefMiB = 98.0;
        apps.push_back(p);
    }
    {
        // Maxwell solver. Paper: lowest rate-fp IPC (1.117), highest
        // rate-fp L2 (71.609%) and L3 (54.730%) miss rates.
        WorkloadProfile p =
            base(549, "549.fotonik3d_r", SuiteKind::RateFp, "Fortran");
        p.loadFrac = 0.28; p.storeFrac = 0.06; p.branchFrac = 0.09;
        p.branches.mispredictRate = 0.003;
        p.memory = {0.07, 0.71609, 0.62, 0.0, true};
        p.computeDepFrac = 0.40;
        p.codeFootprintKiB = 64;
        p.refInstrBillions = 1700;
        p.rssRefMiB = 416.5; p.vszRefMiB = 465.5;
        apps.push_back(p);
    }
    {
        // Ocean model: regular grid sweeps.
        WorkloadProfile p =
            base(554, "554.roms_r", SuiteKind::RateFp, "Fortran");
        p.loadFrac = 0.26; p.storeFrac = 0.05; p.branchFrac = 0.10;
        p.branches.mispredictRate = 0.007;
        p.memory = {0.04, 0.40, 0.18, 0.0, true};
        p.codeFootprintKiB = 512;
        p.refInstrBillions = 1583;
        p.rssRefMiB = 343.0; p.vszRefMiB = 392.0;
        apps.push_back(p);
    }

    // =================================================================
    // SPECspeed 2017 Integer (10 applications)
    // =================================================================
    {
        WorkloadProfile p =
            base(600, "600.perlbench_s", SuiteKind::SpeedInt, "C");
        p.numInputs[0] = 6; p.numInputs[1] = 2; p.numInputs[2] = 3;
        p.erroredInputs = {{InputSize::Test, 0}}; // test.pl (paper §III)
        p.loadFrac = 0.245; p.storeFrac = 0.115; p.branchFrac = 0.205;
        p.branches.mispredictRate = 0.035;
        p.branches.indirectJumpFrac = 0.04;
        p.branches.condFrac = 0.765;
        p.branches.depOnLoadFrac = 0.30;
        p.memory = {0.015, 0.25, 0.0864, 0.35, false};
        p.codeFootprintKiB = 1024;
        p.refInstrBillions = 2450;
        p.rssRefMiB = 802.8; p.vszRefMiB = 929.5;
        apps.push_back(p);
    }
    {
        WorkloadProfile p =
            base(602, "602.gcc_s", SuiteKind::SpeedInt, "C");
        p.numInputs[0] = 5; p.numInputs[1] = 5; p.numInputs[2] = 3;
        p.loadFrac = 0.26; p.storeFrac = 0.12; p.branchFrac = 0.215;
        p.branches.mispredictRate = 0.045;
        p.branches.indirectJumpFrac = 0.03;
        p.branches.condFrac = 0.775;
        p.branches.depOnLoadFrac = 0.30;
        p.memory = {0.05, 0.42, 0.2016, 0.40, false};
        p.codeFootprintKiB = 2048;
        p.refInstrBillions = 1700;
        p.rssRefMiB = 3633.5; p.vszRefMiB = 4056.0;
        apps.push_back(p);
    }
    {
        // Paper: highest speed-int load share (29.581%), L1 miss
        // (14.138%) and L2 miss (77.824%).
        WorkloadProfile p =
            base(605, "605.mcf_s", SuiteKind::SpeedInt, "C");
        p.loadFrac = 0.29581; p.storeFrac = 0.09; p.branchFrac = 0.32939;
        p.branches.mispredictRate = 0.055;
        p.branches.depOnLoadFrac = 0.55;
        p.memory = {0.14138, 0.86, 0.35, 0.75, false};
        p.computeDepFrac = 0.45;
        p.codeFootprintKiB = 48;
        p.refInstrBillions = 1300;
        p.rssRefMiB = 3549.0; p.vszRefMiB = 3887.0;
        apps.push_back(p);
    }
    {
        WorkloadProfile p =
            base(620, "620.omnetpp_s", SuiteKind::SpeedInt, "C++");
        p.loadFrac = 0.28; p.storeFrac = 0.10; p.branchFrac = 0.20;
        p.branches.mispredictRate = 0.030;
        p.branches.indirectJumpFrac = 0.045;
        p.branches.condFrac = 0.76;
        p.branches.depOnLoadFrac = 0.40;
        p.memory = {0.05, 0.48, 0.288, 0.60, false};
        p.codeFootprintKiB = 768;
        p.refInstrBillions = 1200;
        p.rssRefMiB = 1436.5; p.vszRefMiB = 1605.5;
        apps.push_back(p);
    }
    {
        WorkloadProfile p =
            base(623, "623.xalancbmk_s", SuiteKind::SpeedInt, "C++");
        p.loadFrac = 0.29; p.storeFrac = 0.08; p.branchFrac = 0.225;
        p.branches.mispredictRate = 0.025;
        p.branches.indirectJumpFrac = 0.05;
        p.branches.condFrac = 0.755;
        p.branches.depOnLoadFrac = 0.35;
        p.memory = {0.11, 0.32, 0.1296, 0.45, false};
        p.codeFootprintKiB = 1536;
        p.refInstrBillions = 1500;
        p.rssRefMiB = 828.1; p.vszRefMiB = 929.5;
        apps.push_back(p);
    }
    {
        // Paper: highest IPC of the whole suite (3.038).
        WorkloadProfile p =
            base(625, "625.x264_s", SuiteKind::SpeedInt, "C");
        p.numInputs[0] = 3; p.numInputs[1] = 3; p.numInputs[2] = 3;
        p.loadFrac = 0.25; p.storeFrac = 0.08; p.branchFrac = 0.08;
        p.branches.mispredictRate = 0.015;
        p.memory = {0.012, 0.20, 0.0864, 0.05, true};
        p.computeDepFrac = 0.03;
        p.codeFootprintKiB = 384;
        p.refInstrBillions = 3700;
        p.rssRefMiB = 633.8; p.vszRefMiB = 718.2;
        apps.push_back(p);
    }
    {
        // Paper: highest speed-int L3 miss rate (68.579%).
        WorkloadProfile p =
            base(631, "631.deepsjeng_s", SuiteKind::SpeedInt, "C++");
        p.loadFrac = 0.22; p.storeFrac = 0.09; p.branchFrac = 0.16;
        p.branches.mispredictRate = 0.055;
        p.branches.depOnLoadFrac = 0.30;
        p.memory = {0.03, 0.38, 0.83, 0.50, false};
        p.codeFootprintKiB = 96;
        p.refInstrBillions = 2350;
        p.rssRefMiB = 5746.0; p.vszRefMiB = 6084.0;
        apps.push_back(p);
    }
    {
        // Paper: mispredict 8.636%.
        WorkloadProfile p =
            base(641, "641.leela_s", SuiteKind::SpeedInt, "C++");
        p.loadFrac = 0.20; p.storeFrac = 0.08; p.branchFrac = 0.17;
        p.branches.mispredictRate = 0.08636;
        p.branches.depOnLoadFrac = 0.25;
        p.memory = {0.02, 0.25, 0.144, 0.30, false};
        p.codeFootprintKiB = 128;
        p.refInstrBillions = 2400;
        p.rssRefMiB = 59.1; p.vszRefMiB = 109.8;
        apps.push_back(p);
    }
    {
        // Paper: store share 15.910%.
        WorkloadProfile p =
            base(648, "648.exchange2_s", SuiteKind::SpeedInt, "Fortran");
        p.loadFrac = 0.18; p.storeFrac = 0.1591; p.branchFrac = 0.15;
        p.branches.mispredictRate = 0.040;
        p.memory = {0.005, 0.15, 0.036, 0.0, false};
        p.computeDepFrac = 0.20;
        p.codeFootprintKiB = 64;
        p.refInstrBillions = 3450;
        p.rssRefMiB = 1.5; p.vszRefMiB = 16;
        apps.push_back(p);
    }
    {
        // Paper: IPC 0.903 and the largest footprint of the suite
        // (RSS 12.385 GiB, VSZ 15.422 GiB). Optionally threaded; the
        // paper ran it with 4 OpenMP threads.
        WorkloadProfile p =
            base(657, "657.xz_s", SuiteKind::SpeedInt, "C");
        p.numInputs[0] = 2; p.numInputs[1] = 2; p.numInputs[2] = 2;
        p.numThreads = 4;
        p.loadFrac = 0.22; p.storeFrac = 0.09; p.branchFrac = 0.17;
        p.branches.mispredictRate = 0.050;
        p.branches.depOnLoadFrac = 0.35;
        p.memory = {0.05, 0.45, 0.30, 0.45, false};
        // Threads share the compression dictionary (mostly-shared
        // working set); the remaining IPC gap to the paper's 0.903
        // comes from multithread cycle accounting, see
        // docs/architecture.md and EXPERIMENTS.md known-gaps.
        p.threadPrivateFrac = 0.35;
        p.codeFootprintKiB = 96;
        p.refInstrBillions = 2600;
        p.rssRefMiB = 12682.24; // 12.385 GiB
        p.vszRefMiB = 15792.13; // 15.422 GiB
        apps.push_back(p);
    }

    // =================================================================
    // SPECspeed 2017 Floating Point (10 applications, 4 threads each)
    // =================================================================
    {
        // Table IX: in1 48788.718 / in2 50116.477 billion
        // instructions; 27.5% loads, 5.0% stores, 13.4% branches,
        // RSS ~11.7 GiB.
        WorkloadProfile p =
            base(603, "603.bwaves_s", SuiteKind::SpeedFp, "Fortran");
        p.numInputs[0] = 2; p.numInputs[1] = 2; p.numInputs[2] = 2;
        p.loadFrac = 0.274; p.storeFrac = 0.05; p.branchFrac = 0.1345;
        p.branches.mispredictRate = 0.008;
        p.memory = {0.03, 0.50, 0.40, 0.0, true};
        p.threadPrivateFrac = 0.6;
        p.codeFootprintKiB = 64;
        p.refInstrBillions = 49452;
        p.rssRefMiB = 11997.2;  // ~11.71 GiB (in1/in2 average)
        p.vszRefMiB = 12402.2;  // ~12.11 GiB
        apps.push_back(p);
    }
    {
        // Table IX: 10616.666 billion instructions, 33.536% loads,
        // 7.610% stores, 3.734% branches, RSS 6.885 GiB. Highest
        // speed-fp L1 miss rate (14.584%).
        WorkloadProfile p =
            base(607, "607.cactuBSSN_s", SuiteKind::SpeedFp, "C++/C/F");
        p.loadFrac = 0.33536; p.storeFrac = 0.0761; p.branchFrac = 0.03734;
        p.branches.mispredictRate = 0.005;
        p.memory = {0.14584, 0.40, 0.216, 0.10, true};
        p.threadPrivateFrac = 0.6;
        p.codeFootprintKiB = 1024;
        p.refInstrBillions = 10616;
        p.rssRefMiB = 7050.2; // 6.885 GiB
        p.vszRefMiB = 7461.9; // 7.287 GiB
        apps.push_back(p);
    }
    {
        // Paper: lowest IPC in the whole study (0.062): four threads
        // of pure streaming saturating DRAM. Store share 13.480%,
        // branches 3.646%.
        WorkloadProfile p =
            base(619, "619.lbm_s", SuiteKind::SpeedFp, "C");
        p.loadFrac = 0.25; p.storeFrac = 0.1348; p.branchFrac = 0.03646;
        p.branches.mispredictRate = 0.002;
        p.memory = {0.12, 0.92, 0.92, 0.0, true};
        p.computeDepFrac = 0.50;
        p.threadPrivateFrac = 0.95;
        p.codeFootprintKiB = 16;
        p.refInstrBillions = 18000;
        p.rssRefMiB = 2942.0; p.vszRefMiB = 3288.1;
        apps.push_back(p);
    }
    {
        WorkloadProfile p =
            base(621, "621.wrf_s", SuiteKind::SpeedFp, "Fortran/C");
        p.loadFrac = 0.26; p.storeFrac = 0.07; p.branchFrac = 0.10;
        p.branches.mispredictRate = 0.012;
        p.memory = {0.045, 0.50, 0.35, 0.05, true};
        p.threadPrivateFrac = 0.7;
        p.codeFootprintKiB = 4096;
        p.refInstrBillions = 22000;
        p.rssRefMiB = 2450.5; p.vszRefMiB = 2788.5;
        apps.push_back(p);
    }
    {
        // The paper could not collect perf data for cam4_s on any
        // input size; the profile exists so the suite is complete.
        WorkloadProfile p =
            base(627, "627.cam4_s", SuiteKind::SpeedFp, "Fortran/C");
        p.erroredInputs = {{InputSize::Test, 0}, {InputSize::Train, 0},
                           {InputSize::Ref, 0}};
        p.loadFrac = 0.25; p.storeFrac = 0.08; p.branchFrac = 0.12;
        p.branches.mispredictRate = 0.016;
        p.memory = {0.04, 0.45, 0.30, 0.05, true};
        p.threadPrivateFrac = 0.7;
        p.codeFootprintKiB = 4096;
        p.refInstrBillions = 20000;
        p.rssRefMiB = 1098.5; p.vszRefMiB = 1267.5;
        apps.push_back(p);
    }
    {
        // Ocean model (POP2). Paper: highest speed-fp IPC (1.642).
        WorkloadProfile p =
            base(628, "628.pop2_s", SuiteKind::SpeedFp, "Fortran/C");
        p.loadFrac = 0.26; p.storeFrac = 0.08; p.branchFrac = 0.12;
        p.branches.mispredictRate = 0.012;
        p.memory = {0.02, 0.30, 0.15, 0.05, true};
        p.computeDepFrac = 0.38;
        p.threadPrivateFrac = 0.4; // mostly shared grid: mild contention
        p.codeFootprintKiB = 3072;
        p.refInstrBillions = 25000;
        p.rssRefMiB = 1352.0; p.vszRefMiB = 1605.5;
        apps.push_back(p);
    }
    {
        WorkloadProfile p =
            base(638, "638.imagick_s", SuiteKind::SpeedFp, "C");
        p.loadFrac = 0.27; p.storeFrac = 0.06; p.branchFrac = 0.09;
        p.branches.mispredictRate = 0.006;
        p.memory = {0.015, 0.30, 0.30, 0.0, true};
        p.computeDepFrac = 0.20;
        p.threadPrivateFrac = 0.8;
        p.codeFootprintKiB = 256;
        p.refInstrBillions = 24000;
        p.rssRefMiB = 4394.0; p.vszRefMiB = 4816.5;
        apps.push_back(p);
    }
    {
        WorkloadProfile p =
            base(644, "644.nab_s", SuiteKind::SpeedFp, "C");
        p.loadFrac = 0.28; p.storeFrac = 0.06; p.branchFrac = 0.10;
        p.branches.mispredictRate = 0.010;
        p.memory = {0.02, 0.30, 0.20, 0.05, false};
        p.threadPrivateFrac = 0.6;
        p.codeFootprintKiB = 128;
        p.refInstrBillions = 19000;
        p.rssRefMiB = 507.0; p.vszRefMiB = 633.8;
        apps.push_back(p);
    }
    {
        // Paper: highest speed-fp L2 (66.291%) and L3 (41.369%) miss
        // rates.
        WorkloadProfile p =
            base(649, "649.fotonik3d_s", SuiteKind::SpeedFp, "Fortran");
        p.loadFrac = 0.28; p.storeFrac = 0.06; p.branchFrac = 0.09;
        p.branches.mispredictRate = 0.003;
        p.memory = {0.09, 0.66291, 0.47, 0.0, true};
        p.computeDepFrac = 0.40;
        p.threadPrivateFrac = 0.8;
        p.codeFootprintKiB = 64;
        p.refInstrBillions = 15000;
        p.rssRefMiB = 8281.0; p.vszRefMiB = 8957.0;
        apps.push_back(p);
    }
    {
        // Paper: lowest memory micro-op share in the whole suite
        // (11.504% loads + 0.895% stores).
        WorkloadProfile p =
            base(654, "654.roms_s", SuiteKind::SpeedFp, "Fortran");
        p.loadFrac = 0.11504; p.storeFrac = 0.00895; p.branchFrac = 0.10;
        p.branches.mispredictRate = 0.007;
        p.memory = {0.05, 0.50, 0.40, 0.0, true};
        p.computeDepFrac = 0.45;
        p.threadPrivateFrac = 0.7;
        p.codeFootprintKiB = 512;
        p.refInstrBillions = 15734;
        p.rssRefMiB = 9126.0; p.vszRefMiB = 9802.0;
        apps.push_back(p);
    }

    for (WorkloadProfile &p : apps)
        p.validate();
    return apps;
}

} // namespace

const std::vector<WorkloadProfile> &
cpu2017Suite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

} // namespace workloads
} // namespace spec17
