#include "workloads/profile.hh"

#include <cmath>
#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace spec17 {
namespace workloads {

std::string
suiteKindName(SuiteKind kind)
{
    switch (kind) {
      case SuiteKind::RateInt: return "rate int";
      case SuiteKind::RateFp: return "rate fp";
      case SuiteKind::SpeedInt: return "speed int";
      case SuiteKind::SpeedFp: return "speed fp";
    }
    SPEC17_PANIC("unknown SuiteKind");
}

bool
isIntSuite(SuiteKind kind)
{
    return kind == SuiteKind::RateInt || kind == SuiteKind::SpeedInt;
}

bool
isSpeedSuite(SuiteKind kind)
{
    return kind == SuiteKind::SpeedInt || kind == SuiteKind::SpeedFp;
}

std::string
inputSizeName(InputSize size)
{
    switch (size) {
      case InputSize::Test: return "test";
      case InputSize::Train: return "train";
      case InputSize::Ref: return "ref";
    }
    SPEC17_PANIC("unknown InputSize");
}

double
WorkloadProfile::instrBillions(InputSize size) const
{
    switch (size) {
      case InputSize::Test: return refInstrBillions * testScale;
      case InputSize::Train: return refInstrBillions * trainScale;
      case InputSize::Ref: return refInstrBillions;
    }
    SPEC17_PANIC("unknown InputSize");
}

namespace {

/** Footprint shrink factor of the smaller input sizes vs ref. */
double
footprintScale(InputSize size)
{
    switch (size) {
      case InputSize::Test: return 0.3;
      case InputSize::Train: return 0.6;
      case InputSize::Ref: return 1.0;
    }
    SPEC17_PANIC("unknown InputSize");
}

} // namespace

double
WorkloadProfile::rssMiB(InputSize size) const
{
    return rssRefMiB * footprintScale(size);
}

double
WorkloadProfile::vszMiB(InputSize size) const
{
    return vszRefMiB * footprintScale(size);
}

bool
WorkloadProfile::isErrored(InputSize size, unsigned input_index) const
{
    for (const auto &[errored_size, errored_index] : erroredInputs) {
        if (errored_size == size && errored_index == input_index)
            return true;
    }
    return false;
}

namespace {

std::string
fractionError(double value, const char *what, const std::string &name)
{
    if (std::isfinite(value) && value >= 0.0 && value <= 1.0)
        return "";
    std::ostringstream os;
    os << name << ": " << what << " must be in [0, 1], got " << value;
    return os.str();
}

} // namespace

std::string
WorkloadProfile::validationError() const
{
    if (name.empty())
        return "profile without a name";
    if (benchmarkId <= 0)
        return name + ": benchmark id missing";
    const std::pair<double, const char *> fractions[] = {
        {loadFrac, "loadFrac"},
        {storeFrac, "storeFrac"},
        {branchFrac, "branchFrac"},
        {fpFrac, "fpFrac"},
        {computeDepFrac, "computeDepFrac"},
        {memory.l1MissRate, "l1MissRate"},
        {memory.l2MissRate, "l2MissRate"},
        {memory.l3MissRate, "l3MissRate"},
        {memory.chaseFrac, "chaseFrac"},
        {branches.condFrac, "condFrac"},
        {branches.mispredictRate, "mispredictRate"},
        {branches.depOnLoadFrac, "depOnLoadFrac"},
        {threadPrivateFrac, "threadPrivateFrac"},
    };
    for (const auto &[value, what] : fractions) {
        const std::string error = fractionError(value, what, name);
        if (!error.empty())
            return error;
    }
    if (!(loadFrac + storeFrac + branchFrac < 1.0))
        return name + ": mix leaves no room for compute";
    const double kinds = branches.condFrac + branches.directJumpFrac
        + branches.nearCallFrac + branches.indirectJumpFrac
        + branches.nearReturnFrac;
    if (!(kinds <= 1.0 + 1e-9))
        return name + ": branch kinds exceed 100%";
    if (!(std::isfinite(refInstrBillions) && refInstrBillions > 0.0))
        return name + ": instruction count must be positive";
    if (!(std::isfinite(rssRefMiB) && std::isfinite(vszRefMiB)
          && rssRefMiB > 0.0 && vszRefMiB >= rssRefMiB))
        return name + ": need 0 < RSS <= VSZ";
    if (!(testScale > 0.0 && trainScale > 0.0))
        return name + ": input scales must be positive";
    if (numThreads < 1)
        return name + ": needs at least one thread";
    for (unsigned n : numInputs) {
        if (n < 1)
            return name + ": every size needs >= 1 input";
    }
    if (codeFootprintKiB < 4)
        return name + ": code too small";
    return "";
}

void
WorkloadProfile::validate() const
{
    const std::string error = validationError();
    SPEC17_ASSERT(error.empty(), error);
}

std::string
AppInputPair::displayName() const
{
    SPEC17_ASSERT(profile != nullptr, "pair without profile");
    const unsigned inputs =
        profile->numInputs[static_cast<std::size_t>(size)];
    if (inputs <= 1)
        return profile->name;
    return profile->name + "-in" + std::to_string(inputIndex + 1);
}

std::vector<AppInputPair>
enumeratePairs(const std::vector<WorkloadProfile> &suite, InputSize size)
{
    std::vector<AppInputPair> pairs;
    for (const WorkloadProfile &profile : suite) {
        const unsigned inputs =
            profile.numInputs[static_cast<std::size_t>(size)];
        for (unsigned i = 0; i < inputs; ++i)
            pairs.push_back({&profile, size, i});
    }
    return pairs;
}

std::vector<AppInputPair>
enumeratePairs(const std::vector<WorkloadProfile> &suite, InputSize size,
               SuiteKind kind)
{
    std::vector<AppInputPair> pairs;
    for (const AppInputPair &pair : enumeratePairs(suite, size)) {
        if (pair.profile->suite == kind)
            pairs.push_back(pair);
    }
    return pairs;
}

const WorkloadProfile &
findProfile(const std::vector<WorkloadProfile> &suite,
            const std::string &name)
{
    for (const WorkloadProfile &profile : suite) {
        if (profile.name == name)
            return profile;
    }
    SPEC17_PANIC("no profile named '", name, "'");
}

} // namespace workloads
} // namespace spec17
