#include "workloads/profile.hh"

#include "util/logging.hh"

namespace spec17 {
namespace workloads {

std::string
suiteKindName(SuiteKind kind)
{
    switch (kind) {
      case SuiteKind::RateInt: return "rate int";
      case SuiteKind::RateFp: return "rate fp";
      case SuiteKind::SpeedInt: return "speed int";
      case SuiteKind::SpeedFp: return "speed fp";
    }
    SPEC17_PANIC("unknown SuiteKind");
}

bool
isIntSuite(SuiteKind kind)
{
    return kind == SuiteKind::RateInt || kind == SuiteKind::SpeedInt;
}

bool
isSpeedSuite(SuiteKind kind)
{
    return kind == SuiteKind::SpeedInt || kind == SuiteKind::SpeedFp;
}

std::string
inputSizeName(InputSize size)
{
    switch (size) {
      case InputSize::Test: return "test";
      case InputSize::Train: return "train";
      case InputSize::Ref: return "ref";
    }
    SPEC17_PANIC("unknown InputSize");
}

double
WorkloadProfile::instrBillions(InputSize size) const
{
    switch (size) {
      case InputSize::Test: return refInstrBillions * testScale;
      case InputSize::Train: return refInstrBillions * trainScale;
      case InputSize::Ref: return refInstrBillions;
    }
    SPEC17_PANIC("unknown InputSize");
}

namespace {

/** Footprint shrink factor of the smaller input sizes vs ref. */
double
footprintScale(InputSize size)
{
    switch (size) {
      case InputSize::Test: return 0.3;
      case InputSize::Train: return 0.6;
      case InputSize::Ref: return 1.0;
    }
    SPEC17_PANIC("unknown InputSize");
}

} // namespace

double
WorkloadProfile::rssMiB(InputSize size) const
{
    return rssRefMiB * footprintScale(size);
}

double
WorkloadProfile::vszMiB(InputSize size) const
{
    return vszRefMiB * footprintScale(size);
}

bool
WorkloadProfile::isErrored(InputSize size, unsigned input_index) const
{
    for (const auto &[errored_size, errored_index] : erroredInputs) {
        if (errored_size == size && errored_index == input_index)
            return true;
    }
    return false;
}

namespace {

void
checkFraction(double value, const char *what, const std::string &name)
{
    SPEC17_ASSERT(value >= 0.0 && value <= 1.0,
                  name, ": ", what, " must be in [0, 1], got ", value);
}

} // namespace

void
WorkloadProfile::validate() const
{
    SPEC17_ASSERT(!name.empty(), "profile without a name");
    SPEC17_ASSERT(benchmarkId > 0, name, ": benchmark id missing");
    checkFraction(loadFrac, "loadFrac", name);
    checkFraction(storeFrac, "storeFrac", name);
    checkFraction(branchFrac, "branchFrac", name);
    SPEC17_ASSERT(loadFrac + storeFrac + branchFrac < 1.0,
                  name, ": mix leaves no room for compute");
    checkFraction(fpFrac, "fpFrac", name);
    checkFraction(computeDepFrac, "computeDepFrac", name);
    checkFraction(memory.l1MissRate, "l1MissRate", name);
    checkFraction(memory.l2MissRate, "l2MissRate", name);
    checkFraction(memory.l3MissRate, "l3MissRate", name);
    checkFraction(memory.chaseFrac, "chaseFrac", name);
    checkFraction(branches.condFrac, "condFrac", name);
    checkFraction(branches.mispredictRate, "mispredictRate", name);
    checkFraction(branches.depOnLoadFrac, "depOnLoadFrac", name);
    checkFraction(threadPrivateFrac, "threadPrivateFrac", name);
    const double kinds = branches.condFrac + branches.directJumpFrac
        + branches.nearCallFrac + branches.indirectJumpFrac
        + branches.nearReturnFrac;
    SPEC17_ASSERT(kinds <= 1.0 + 1e-9, name,
                  ": branch kinds exceed 100%");
    SPEC17_ASSERT(refInstrBillions > 0.0, name,
                  ": instruction count must be positive");
    SPEC17_ASSERT(rssRefMiB > 0.0 && vszRefMiB >= rssRefMiB, name,
                  ": need 0 < RSS <= VSZ");
    SPEC17_ASSERT(testScale > 0.0 && trainScale > 0.0, name,
                  ": input scales must be positive");
    SPEC17_ASSERT(numThreads >= 1, name, ": needs at least one thread");
    for (unsigned n : numInputs)
        SPEC17_ASSERT(n >= 1, name, ": every size needs >= 1 input");
    SPEC17_ASSERT(codeFootprintKiB >= 4, name, ": code too small");
}

std::string
AppInputPair::displayName() const
{
    SPEC17_ASSERT(profile != nullptr, "pair without profile");
    const unsigned inputs =
        profile->numInputs[static_cast<std::size_t>(size)];
    if (inputs <= 1)
        return profile->name;
    return profile->name + "-in" + std::to_string(inputIndex + 1);
}

std::vector<AppInputPair>
enumeratePairs(const std::vector<WorkloadProfile> &suite, InputSize size)
{
    std::vector<AppInputPair> pairs;
    for (const WorkloadProfile &profile : suite) {
        const unsigned inputs =
            profile.numInputs[static_cast<std::size_t>(size)];
        for (unsigned i = 0; i < inputs; ++i)
            pairs.push_back({&profile, size, i});
    }
    return pairs;
}

std::vector<AppInputPair>
enumeratePairs(const std::vector<WorkloadProfile> &suite, InputSize size,
               SuiteKind kind)
{
    std::vector<AppInputPair> pairs;
    for (const AppInputPair &pair : enumeratePairs(suite, size)) {
        if (pair.profile->suite == kind)
            pairs.push_back(pair);
    }
    return pairs;
}

const WorkloadProfile &
findProfile(const std::vector<WorkloadProfile> &suite,
            const std::string &name)
{
    for (const WorkloadProfile &profile : suite) {
        if (profile.name == name)
            return profile;
    }
    SPEC17_PANIC("no profile named '", name, "'");
}

} // namespace workloads
} // namespace spec17
