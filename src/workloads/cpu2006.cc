/**
 * @file
 * Profiles for the SPEC CPU2006 comparison suite (29 applications).
 *
 * The paper uses CPU2006 only at suite granularity (Tables III-VII
 * compare int/fp/all averages and standard deviations), so these
 * profiles carry one ref input each and are tuned so the suite-level
 * aggregates land near the paper's CPU06 columns: int IPC ~1.76 /
 * fp ~1.82, loads 26.2%/23.7%, stores 10.3%/7.2%, branches
 * 19.1%/10.8%, L1 miss 4.1%/2.5%, L2 miss 40.9%/31.9%, L3 miss
 * 12.2%/14.0%, mispredicts 2.39%/1.97%, RSS ~0.39/0.37 GiB, and
 * instruction counts ~1/3.8 of CPU17 (the paper's "3.830x" note).
 */

#include "workloads/profile.hh"

namespace spec17 {
namespace workloads {

namespace {

WorkloadProfile
base06(int id, const char *name, SuiteKind suite, const char *lang)
{
    WorkloadProfile p;
    p.benchmarkId = id;
    p.name = name;
    p.suite = suite; // CPU06 has no rate/speed split; Rate* is used.
    p.generation = SuiteGeneration::Cpu2006;
    p.language = lang;
    p.testScale = 0.02;
    p.trainScale = 0.10;
    if (isIntSuite(suite)) {
        p.fpFrac = 0.03;
        p.computeDepFrac = 0.30;
        p.branches.condFrac = 0.785;
    } else {
        p.fpFrac = 0.55;
        p.computeDepFrac = 0.35;
        p.branches.condFrac = 0.75;
        p.branches.depOnLoadFrac = 0.10;
    }
    return p;
}

/** Shorthand: one CPU2006 application row. */
WorkloadProfile
app06(int id, const char *name, SuiteKind suite, const char *lang,
      double load, double store, double branch, double mispredict,
      MemoryBehavior memory, double instr_billions, double rss_mib,
      double code_kib, double compute_dep = -1.0)
{
    WorkloadProfile p = base06(id, name, suite, lang);
    p.loadFrac = load;
    p.storeFrac = store;
    p.branchFrac = branch;
    p.branches.mispredictRate = mispredict;
    p.memory = memory;
    p.refInstrBillions = instr_billions;
    p.rssRefMiB = rss_mib;
    p.vszRefMiB = rss_mib * 1.25 + 20.0;
    p.codeFootprintKiB = static_cast<std::uint64_t>(code_kib);
    if (compute_dep >= 0.0)
        p.computeDepFrac = compute_dep;
    return p;
}

std::vector<WorkloadProfile>
buildSuite()
{
    using SK = SuiteKind;
    std::vector<WorkloadProfile> apps;

    // ---------------- CINT2006 (12 applications) ----------------
    apps.push_back(app06(400, "400.perlbench", SK::RateInt, "C",
                         0.26, 0.12, 0.21, 0.025,
                         {0.015, 0.25, 0.08, 0.35, false},
                         600, 170, 1024));
    apps.push_back(app06(401, "401.bzip2", SK::RateInt, "C",
                         0.26, 0.09, 0.15, 0.035,
                         {0.03, 0.35, 0.10, 0.30, false},
                         550, 380, 64));
    apps.push_back(app06(403, "403.gcc", SK::RateInt, "C",
                         0.25, 0.13, 0.22, 0.030,
                         {0.04, 0.40, 0.20, 0.40, false},
                         380, 350, 2048));
    apps.push_back(app06(429, "429.mcf", SK::RateInt, "C",
                         0.31, 0.09, 0.28, 0.050,
                         {0.12, 0.70, 0.35, 0.80, false},
                         330, 860, 48, 0.45));
    apps.push_back(app06(445, "445.gobmk", SK::RateInt, "C",
                         0.25, 0.12, 0.20, 0.038,
                         {0.01, 0.20, 0.10, 0.25, false},
                         480, 28, 512));
    apps.push_back(app06(456, "456.hmmer", SK::RateInt, "C",
                         0.29, 0.13, 0.14, 0.008,
                         {0.005, 0.15, 0.05, 0.0, false},
                         900, 25, 64, 0.15));
    apps.push_back(app06(458, "458.sjeng", SK::RateInt, "C",
                         0.22, 0.09, 0.19, 0.038,
                         {0.015, 0.30, 0.50, 0.45, false},
                         650, 170, 96));
    apps.push_back(app06(462, "462.libquantum", SK::RateInt, "C",
                         0.20, 0.06, 0.26, 0.012,
                         {0.09, 0.75, 0.40, 0.0, true},
                         950, 96, 16, 0.35));
    apps.push_back(app06(464, "464.h264ref", SK::RateInt, "C",
                         0.32, 0.12, 0.10, 0.015,
                         {0.012, 0.18, 0.08, 0.05, true},
                         1100, 64, 384, 0.10));
    apps.push_back(app06(471, "471.omnetpp", SK::RateInt, "C++",
                         0.29, 0.12, 0.21, 0.022,
                         {0.05, 0.55, 0.25, 0.60, false},
                         280, 170, 768));
    apps.push_back(app06(473, "473.astar", SK::RateInt, "C++",
                         0.28, 0.08, 0.18, 0.032,
                         {0.04, 0.50, 0.20, 0.55, false},
                         400, 330, 64));
    apps.push_back(app06(483, "483.xalancbmk", SK::RateInt, "C++",
                         0.30, 0.09, 0.24, 0.018,
                         {0.09, 0.30, 0.10, 0.45, false},
                         360, 420, 1536));

    // ---------------- CFP2006 (17 applications) ----------------
    apps.push_back(app06(410, "410.bwaves", SK::RateFp, "Fortran",
                         0.28, 0.05, 0.13, 0.008,
                         {0.02, 0.40, 0.18, 0.0, true},
                         700, 880, 64));
    apps.push_back(app06(416, "416.gamess", SK::RateFp, "Fortran",
                         0.27, 0.08, 0.11, 0.012,
                         {0.008, 0.10, 0.05, 0.05, false},
                         1100, 45, 2048, 0.20));
    apps.push_back(app06(433, "433.milc", SK::RateFp, "C",
                         0.24, 0.07, 0.08, 0.004,
                         {0.05, 0.65, 0.35, 0.0, true},
                         450, 680, 64, 0.40));
    apps.push_back(app06(434, "434.zeusmp", SK::RateFp, "Fortran",
                         0.23, 0.06, 0.07, 0.006,
                         {0.03, 0.40, 0.20, 0.0, true},
                         620, 510, 256));
    apps.push_back(app06(435, "435.gromacs", SK::RateFp, "C/Fortran",
                         0.27, 0.09, 0.07, 0.010,
                         {0.01, 0.15, 0.08, 0.05, false},
                         750, 28, 512, 0.20));
    apps.push_back(app06(436, "436.cactusADM", SK::RateFp, "C/Fortran",
                         0.36, 0.07, 0.03, 0.003,
                         {0.06, 0.45, 0.25, 0.05, true},
                         580, 650, 1024));
    apps.push_back(app06(437, "437.leslie3d", SK::RateFp, "Fortran",
                         0.26, 0.06, 0.06, 0.005,
                         {0.04, 0.45, 0.22, 0.0, true},
                         560, 130, 128));
    apps.push_back(app06(444, "444.namd", SK::RateFp, "C++",
                         0.28, 0.07, 0.06, 0.009,
                         {0.012, 0.15, 0.06, 0.0, false},
                         950, 48, 256, 0.15));
    apps.push_back(app06(447, "447.dealII", SK::RateFp, "C++",
                         0.30, 0.08, 0.14, 0.015,
                         {0.025, 0.25, 0.12, 0.20, false},
                         680, 800, 2048));
    apps.push_back(app06(450, "450.soplex", SK::RateFp, "C++",
                         0.27, 0.06, 0.15, 0.022,
                         {0.05, 0.50, 0.30, 0.45, false},
                         420, 440, 512));
    apps.push_back(app06(453, "453.povray", SK::RateFp, "C++",
                         0.28, 0.11, 0.14, 0.020,
                         {0.008, 0.10, 0.04, 0.10, false},
                         820, 7, 512, 0.25));
    apps.push_back(app06(454, "454.calculix", SK::RateFp, "C/Fortran",
                         0.26, 0.07, 0.10, 0.012,
                         {0.015, 0.25, 0.12, 0.05, false},
                         900, 160, 1024));
    apps.push_back(app06(459, "459.GemsFDTD", SK::RateFp, "Fortran",
                         0.28, 0.06, 0.08, 0.004,
                         {0.055, 0.65, 0.40, 0.0, true},
                         470, 820, 256, 0.40));
    apps.push_back(app06(465, "465.tonto", SK::RateFp, "Fortran",
                         0.27, 0.09, 0.12, 0.014,
                         {0.012, 0.18, 0.08, 0.10, false},
                         780, 40, 2048));
    apps.push_back(app06(470, "470.lbm", SK::RateFp, "C",
                         0.24, 0.12, 0.012, 0.002,
                         {0.055, 0.60, 0.35, 0.0, true},
                         540, 410, 16, 0.40));
    apps.push_back(app06(481, "481.wrf", SK::RateFp, "Fortran/C",
                         0.26, 0.07, 0.10, 0.012,
                         {0.025, 0.30, 0.15, 0.05, true},
                         720, 690, 4096));
    apps.push_back(app06(482, "482.sphinx3", SK::RateFp, "C",
                         0.29, 0.04, 0.11, 0.016,
                         {0.035, 0.50, 0.25, 0.10, false},
                         650, 43, 256));

    for (WorkloadProfile &p : apps)
        p.validate();
    return apps;
}

} // namespace

const std::vector<WorkloadProfile> &
cpu2006Suite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

} // namespace workloads
} // namespace spec17
