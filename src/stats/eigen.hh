/**
 * @file
 * Symmetric eigenproblem solver (cyclic Jacobi rotations). The PCA
 * input here is at most a 20x20 correlation matrix, for which Jacobi
 * is simple, numerically robust, and plenty fast.
 */

#ifndef SPEC17_STATS_EIGEN_HH_
#define SPEC17_STATS_EIGEN_HH_

#include <vector>

#include "stats/matrix.hh"

namespace spec17 {
namespace stats {

/** Result of a symmetric eigendecomposition A = V diag(w) V^T. */
struct EigenDecomposition
{
    /** Eigenvalues sorted descending. */
    std::vector<double> values;
    /** Column c of this matrix is the eigenvector for values[c]. */
    Matrix vectors;
    /** Number of Jacobi sweeps performed. */
    int sweeps = 0;
};

/**
 * Decomposes a symmetric matrix with the cyclic Jacobi method.
 *
 * @param a symmetric input matrix (asymmetry beyond 1e-9 panics).
 * @param tol convergence threshold on the off-diagonal Frobenius norm.
 * @return eigenpairs sorted by descending eigenvalue. Each eigenvector
 *         is sign-normalized so its largest-magnitude entry is positive,
 *         which keeps PCA output deterministic.
 */
EigenDecomposition jacobiEigenSymmetric(const Matrix &a,
                                        double tol = 1e-20);

} // namespace stats
} // namespace spec17

#endif // SPEC17_STATS_EIGEN_HH_
