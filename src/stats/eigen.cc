#include "stats/eigen.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace spec17 {
namespace stats {

namespace {

/** Sum of squares of strictly off-diagonal entries. */
double
offDiagonalNorm(const Matrix &a)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j)
                s += a.at(i, j) * a.at(i, j);
    return s;
}

} // namespace

EigenDecomposition
jacobiEigenSymmetric(const Matrix &a, double tol)
{
    const std::size_t n = a.rows();
    SPEC17_ASSERT(n == a.cols(), "eigen: matrix must be square");
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            SPEC17_ASSERT(std::fabs(a.at(i, j) - a.at(j, i)) < 1e-9,
                          "eigen: matrix not symmetric at (", i, ",", j,
                          ")");

    Matrix d = a;                 // becomes diagonal
    Matrix v = Matrix::identity(n); // accumulates rotations

    EigenDecomposition out;
    constexpr int kMaxSweeps = 100;
    for (out.sweeps = 0; out.sweeps < kMaxSweeps; ++out.sweeps) {
        if (offDiagonalNorm(d) <= tol)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = d.at(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                const double app = d.at(p, p);
                const double aqq = d.at(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                const double t = (theta >= 0.0 ? 1.0 : -1.0)
                    / (std::fabs(theta)
                       + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double dkp = d.at(k, p);
                    const double dkq = d.at(k, q);
                    d.at(k, p) = c * dkp - s * dkq;
                    d.at(k, q) = s * dkp + c * dkq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double dpk = d.at(p, k);
                    const double dqk = d.at(q, k);
                    d.at(p, k) = c * dpk - s * dqk;
                    d.at(q, k) = s * dpk + c * dqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p);
                    const double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }
    SPEC17_ASSERT(offDiagonalNorm(d) <= std::max(tol, 1e-10),
                  "Jacobi failed to converge in ", out.sweeps, " sweeps");

    // Sort eigenpairs by descending eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return d.at(x, x) > d.at(y, y);
    });

    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t src = order[c];
        out.values[c] = d.at(src, src);
        // Deterministic sign: largest-magnitude component positive.
        std::size_t arg = 0;
        double best = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            if (std::fabs(v.at(r, src)) > best) {
                best = std::fabs(v.at(r, src));
                arg = r;
            }
        }
        const double sign = v.at(arg, src) < 0.0 ? -1.0 : 1.0;
        for (std::size_t r = 0; r < n; ++r)
            out.vectors.at(r, c) = sign * v.at(r, src);
    }
    return out;
}

} // namespace stats
} // namespace spec17
