/**
 * @file
 * Factor analysis over PCA loadings (the paper's Fig. 8): for each
 * retained principal component, report which original characteristics
 * dominate it positively and negatively.
 */

#ifndef SPEC17_STATS_FACTOR_HH_
#define SPEC17_STATS_FACTOR_HH_

#include <string>
#include <vector>

#include "stats/pca.hh"

namespace spec17 {
namespace stats {

/** One characteristic's influence on one principal component. */
struct FactorContribution
{
    std::string characteristic;
    double loading = 0.0;
};

/** Dominance summary for a single principal component. */
struct FactorSummary
{
    std::size_t component = 0;       //!< 0-based PC index
    double explainedVariance = 0.0;  //!< fraction of total variance
    /** Characteristics sorted by descending loading (most positive). */
    std::vector<FactorContribution> positiveDominators;
    /** Characteristics sorted by ascending loading (most negative). */
    std::vector<FactorContribution> negativeDominators;
};

/**
 * Summarizes the first @p numComponents PCs of @p pca.
 *
 * @param pca a computed PCA result.
 * @param names one name per original characteristic (must match the
 *              PCA's column count).
 * @param numComponents PCs to summarize.
 * @param threshold absolute loading below which a characteristic is
 *                  not considered a dominator.
 * @param topK maximum dominators reported per direction.
 */
std::vector<FactorSummary> summarizeFactors(
    const PcaResult &pca, const std::vector<std::string> &names,
    std::size_t numComponents, double threshold = 0.3,
    std::size_t topK = 6);

} // namespace stats
} // namespace spec17

#endif // SPEC17_STATS_FACTOR_HH_
