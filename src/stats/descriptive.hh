/**
 * @file
 * Descriptive statistics used throughout the characterization pipeline
 * (suite averages, standard deviations, and the counter-vs-IPC
 * correlations reported in Section IV of the paper).
 */

#ifndef SPEC17_STATS_DESCRIPTIVE_HH_
#define SPEC17_STATS_DESCRIPTIVE_HH_

#include <cstddef>
#include <vector>

namespace spec17 {
namespace stats {

/** Arithmetic mean; panics on an empty sample. */
double mean(const std::vector<double> &xs);

/**
 * Sample standard deviation (n-1 denominator, matching the paper's
 * "Std. Dev." columns). A single-element sample yields 0.
 */
double stddev(const std::vector<double> &xs);

/** Population variance (n denominator). */
double variancePopulation(const std::vector<double> &xs);

/** Minimum; panics on an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; panics on an empty sample. */
double maxOf(const std::vector<double> &xs);

/** Median (average of middle two for even n); panics on empty. */
double median(std::vector<double> xs);

/**
 * Pearson correlation coefficient. Returns 0 when either sample has
 * zero variance (the paper's correlations are all over dispersed data).
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Geometric mean; panics if any element is non-positive or empty. */
double geomean(const std::vector<double> &xs);

/**
 * Online accumulator (Welford) for streaming mean/variance, used by
 * the phase-analysis extension over long counter streams.
 */
class RunningStats
{
  public:
    void add(double x);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1); 0 for fewer than two observations. */
    double variance() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace stats
} // namespace spec17

#endif // SPEC17_STATS_DESCRIPTIVE_HH_
