/**
 * @file
 * Small dense row-major matrix used by the PCA / factor-analysis
 * pipeline. The data sets here are tiny (194 x 20), so clarity wins
 * over blocking or expression templates.
 */

#ifndef SPEC17_STATS_MATRIX_HH_
#define SPEC17_STATS_MATRIX_HH_

#include <cstddef>
#include <vector>

namespace spec17 {
namespace stats {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Creates a rows x cols matrix initialized to @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Builds from nested vectors; all rows must have equal length. */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of order @p n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Returns row @p r as a vector copy. */
    std::vector<double> row(std::size_t r) const;

    /** Returns column @p c as a vector copy. */
    std::vector<double> col(std::size_t c) const;

    Matrix transpose() const;

    /** Matrix product; panics on incompatible shapes. */
    Matrix multiply(const Matrix &rhs) const;

    /** Element-wise maximum absolute difference against @p rhs. */
    double maxAbsDiff(const Matrix &rhs) const;

    /**
     * Covariance matrix of the columns (rows are observations);
     * uses the n-1 denominator. Requires at least two rows.
     */
    Matrix covariance() const;

    /** Correlation matrix of the columns; zero-variance columns get
     *  unit self-correlation and zero cross-correlation. */
    Matrix correlation() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Column standardization: subtracts the column mean and divides by the
 * sample standard deviation. Zero-variance columns become all-zero
 * (they carry no information for PCA). Returns the standardized matrix.
 */
Matrix standardizeColumns(const Matrix &m);

} // namespace stats
} // namespace spec17

#endif // SPEC17_STATS_MATRIX_HH_
