#include "stats/pca.hh"

#include <cmath>

#include "stats/eigen.hh"
#include "util/logging.hh"

namespace spec17 {
namespace stats {

std::size_t
PcaResult::componentsForVariance(double fraction) const
{
    SPEC17_ASSERT(fraction > 0.0 && fraction <= 1.0,
                  "variance fraction must be in (0, 1]");
    for (std::size_t k = 0; k < cumulativeVariance.size(); ++k) {
        if (cumulativeVariance[k] >= fraction)
            return k + 1;
    }
    return cumulativeVariance.size();
}

Matrix
PcaResult::truncatedScores(std::size_t k) const
{
    SPEC17_ASSERT(k >= 1 && k <= scores.cols(),
                  "truncation rank ", k, " out of range");
    Matrix out(scores.rows(), k);
    for (std::size_t r = 0; r < scores.rows(); ++r)
        for (std::size_t c = 0; c < k; ++c)
            out.at(r, c) = scores.at(r, c);
    return out;
}

PcaResult
computePca(const Matrix &observations)
{
    SPEC17_ASSERT(observations.rows() >= 2,
                  "PCA needs at least two observations");
    SPEC17_ASSERT(observations.cols() >= 1,
                  "PCA needs at least one characteristic");

    const Matrix z = standardizeColumns(observations);
    const Matrix corr = z.covariance();
    EigenDecomposition eig = jacobiEigenSymmetric(corr);

    PcaResult out;
    out.eigenvalues = eig.values;
    // Numerical noise can push tiny eigenvalues slightly negative.
    for (double &v : out.eigenvalues)
        if (v < 0.0 && v > -1e-9)
            v = 0.0;

    double total = 0.0;
    for (double v : out.eigenvalues)
        total += v;
    SPEC17_ASSERT(total > 0.0, "PCA input has no variance at all");

    out.explainedVariance.resize(out.eigenvalues.size());
    out.cumulativeVariance.resize(out.eigenvalues.size());
    double running = 0.0;
    for (std::size_t i = 0; i < out.eigenvalues.size(); ++i) {
        out.explainedVariance[i] = out.eigenvalues[i] / total;
        running += out.explainedVariance[i];
        out.cumulativeVariance[i] = running;
    }

    out.components = eig.vectors;
    out.loadings = Matrix(eig.vectors.rows(), eig.vectors.cols());
    for (std::size_t c = 0; c < eig.vectors.cols(); ++c) {
        const double scale = std::sqrt(std::max(0.0, out.eigenvalues[c]));
        for (std::size_t r = 0; r < eig.vectors.rows(); ++r)
            out.loadings.at(r, c) = eig.vectors.at(r, c) * scale;
    }
    out.scores = z.multiply(out.components);
    return out;
}

} // namespace stats
} // namespace spec17
