/**
 * @file
 * Principal Component Analysis, the core statistical tool of the
 * paper's Section V. Observations are standardized per characteristic
 * (the PCA therefore operates on the correlation matrix, as is standard
 * for workload characterization following Eeckhout et al.), decomposed
 * into uncorrelated principal components, and truncated at a requested
 * explained-variance fraction.
 */

#ifndef SPEC17_STATS_PCA_HH_
#define SPEC17_STATS_PCA_HH_

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace spec17 {
namespace stats {

/** Output of a PCA run. */
struct PcaResult
{
    /** Per-component eigenvalues (variances), descending. */
    std::vector<double> eigenvalues;
    /** Fraction of total variance explained by each component. */
    std::vector<double> explainedVariance;
    /** Cumulative explained variance. */
    std::vector<double> cumulativeVariance;
    /**
     * Loadings matrix [p x p]: column c holds the weights a_cj that map
     * standardized characteristics onto PC c, scaled by sqrt(lambda_c)
     * so each entry is the correlation between characteristic and PC
     * (the quantity plotted in the paper's Fig. 8).
     */
    Matrix loadings;
    /** Raw (unit-norm) eigenvector matrix [p x p]. */
    Matrix components;
    /** Scores matrix [n x p]: observations projected onto all PCs. */
    Matrix scores;

    /**
     * Smallest k whose cumulative explained variance reaches
     * @p fraction (the paper keeps 4 PCs at 76.321%).
     */
    std::size_t componentsForVariance(double fraction) const;

    /** Scores truncated to the first k components. */
    Matrix truncatedScores(std::size_t k) const;
};

/**
 * Runs PCA over @p observations (rows = observations, columns =
 * characteristics). Columns are standardized internally; constant
 * columns contribute a zero-variance component and never dominate.
 */
PcaResult computePca(const Matrix &observations);

} // namespace stats
} // namespace spec17

#endif // SPEC17_STATS_PCA_HH_
