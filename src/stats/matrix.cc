#include "stats/matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace spec17 {
namespace stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    SPEC17_ASSERT(!rows.empty(), "fromRows: no rows");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        SPEC17_ASSERT(rows[r].size() == m.cols_,
                      "fromRows: ragged row ", r);
        for (std::size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    SPEC17_ASSERT(r < rows_ && c < cols_, "index (", r, ",", c,
                  ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    SPEC17_ASSERT(r < rows_ && c < cols_, "index (", r, ",", c,
                  ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    std::vector<double> out(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        out[c] = at(r, c);
    return out;
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = at(r, c);
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    SPEC17_ASSERT(cols_ == rhs.rows_, "multiply: ", rows_, "x", cols_,
                  " by ", rhs.rows_, "x", rhs.cols_);
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = at(r, k);
            if (a == 0.0)
                continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c)
                out.at(r, c) += a * rhs.at(k, c);
        }
    }
    return out;
}

double
Matrix::maxAbsDiff(const Matrix &rhs) const
{
    SPEC17_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "maxAbsDiff: shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::fabs(data_[i] - rhs.data_[i]));
    return worst;
}

Matrix
Matrix::covariance() const
{
    SPEC17_ASSERT(rows_ >= 2, "covariance needs >= 2 observations");
    std::vector<double> mu(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            mu[c] += at(r, c);
    for (double &m : mu)
        m /= static_cast<double>(rows_);

    Matrix cov(cols_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t i = 0; i < cols_; ++i) {
            const double di = at(r, i) - mu[i];
            for (std::size_t j = i; j < cols_; ++j)
                cov.at(i, j) += di * (at(r, j) - mu[j]);
        }
    }
    const double denom = static_cast<double>(rows_ - 1);
    for (std::size_t i = 0; i < cols_; ++i) {
        for (std::size_t j = i; j < cols_; ++j) {
            cov.at(i, j) /= denom;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

Matrix
Matrix::correlation() const
{
    Matrix cov = covariance();
    Matrix corr(cols_, cols_);
    for (std::size_t i = 0; i < cols_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            const double denom =
                std::sqrt(cov.at(i, i) * cov.at(j, j));
            if (denom == 0.0)
                corr.at(i, j) = (i == j) ? 1.0 : 0.0;
            else
                corr.at(i, j) = cov.at(i, j) / denom;
        }
    }
    return corr;
}

Matrix
standardizeColumns(const Matrix &m)
{
    SPEC17_ASSERT(m.rows() >= 2, "standardize needs >= 2 observations");
    Matrix out(m.rows(), m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) {
        double mu = 0.0;
        for (std::size_t r = 0; r < m.rows(); ++r)
            mu += m.at(r, c);
        mu /= static_cast<double>(m.rows());
        double ss = 0.0;
        for (std::size_t r = 0; r < m.rows(); ++r)
            ss += (m.at(r, c) - mu) * (m.at(r, c) - mu);
        const double sd =
            std::sqrt(ss / static_cast<double>(m.rows() - 1));
        for (std::size_t r = 0; r < m.rows(); ++r)
            out.at(r, c) = sd > 0.0 ? (m.at(r, c) - mu) / sd : 0.0;
    }
    return out;
}

} // namespace stats
} // namespace spec17
