#include "stats/factor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace stats {

std::vector<FactorSummary>
summarizeFactors(const PcaResult &pca, const std::vector<std::string> &names,
                 std::size_t numComponents, double threshold,
                 std::size_t topK)
{
    SPEC17_ASSERT(names.size() == pca.loadings.rows(),
                  "factor names (", names.size(),
                  ") must match characteristics (", pca.loadings.rows(),
                  ")");
    SPEC17_ASSERT(numComponents <= pca.loadings.cols(),
                  "asked for more components than PCA produced");

    std::vector<FactorSummary> out;
    out.reserve(numComponents);
    for (std::size_t c = 0; c < numComponents; ++c) {
        FactorSummary fs;
        fs.component = c;
        fs.explainedVariance = pca.explainedVariance[c];

        std::vector<FactorContribution> all;
        all.reserve(names.size());
        for (std::size_t r = 0; r < names.size(); ++r)
            all.push_back({names[r], pca.loadings.at(r, c)});

        std::vector<FactorContribution> pos, neg;
        for (const auto &fc : all) {
            if (fc.loading >= threshold)
                pos.push_back(fc);
            else if (fc.loading <= -threshold)
                neg.push_back(fc);
        }
        std::sort(pos.begin(), pos.end(), [](auto &a, auto &b) {
            return a.loading > b.loading;
        });
        std::sort(neg.begin(), neg.end(), [](auto &a, auto &b) {
            return a.loading < b.loading;
        });
        if (pos.size() > topK)
            pos.resize(topK);
        if (neg.size() > topK)
            neg.resize(topK);
        fs.positiveDominators = std::move(pos);
        fs.negativeDominators = std::move(neg);
        out.push_back(std::move(fs));
    }
    return out;
}

} // namespace stats
} // namespace spec17
