#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace spec17 {
namespace stats {

double
mean(const std::vector<double> &xs)
{
    SPEC17_ASSERT(!xs.empty(), "mean of empty sample");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    SPEC17_ASSERT(!xs.empty(), "stddev of empty sample");
    if (xs.size() == 1)
        return 0.0;
    const double mu = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mu) * (x - mu);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
variancePopulation(const std::vector<double> &xs)
{
    SPEC17_ASSERT(!xs.empty(), "variance of empty sample");
    const double mu = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mu) * (x - mu);
    return ss / static_cast<double>(xs.size());
}

double
minOf(const std::vector<double> &xs)
{
    SPEC17_ASSERT(!xs.empty(), "min of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    SPEC17_ASSERT(!xs.empty(), "max of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
median(std::vector<double> xs)
{
    SPEC17_ASSERT(!xs.empty(), "median of empty sample");
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    SPEC17_ASSERT(xs.size() == ys.size(), "pearson: size mismatch");
    SPEC17_ASSERT(xs.size() >= 2, "pearson: need at least two points");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
geomean(const std::vector<double> &xs)
{
    SPEC17_ASSERT(!xs.empty(), "geomean of empty sample");
    double acc = 0.0;
    for (double x : xs) {
        SPEC17_ASSERT(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace stats
} // namespace spec17
