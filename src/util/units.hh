/**
 * @file
 * Size and unit constants shared across the simulator and workloads.
 */

#ifndef SPEC17_UTIL_UNITS_HH_
#define SPEC17_UTIL_UNITS_HH_

#include <cstdint>

namespace spec17 {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** One billion, the unit the paper uses for instruction counts. */
inline constexpr double kBillion = 1e9;

} // namespace spec17

#endif // SPEC17_UTIL_UNITS_HH_
