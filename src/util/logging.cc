#include "util/logging.hh"

#include <cstdio>

namespace spec17 {

void
logEvent(const std::string &name,
         std::initializer_list<LogField> fields)
{
    std::string line = "event: " + name;
    for (const LogField &field : fields) {
        line += " " + field.key + "=";
        if (field.value.find(' ') == std::string::npos)
            line += field.value;
        else
            line += "\"" + field.value + "\"";
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace spec17
