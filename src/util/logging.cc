#include "util/logging.hh"

#include <cctype>
#include <cstdio>
#include <mutex>

namespace spec17 {

namespace {

/**
 * Serializes every log line writer (logEvent, warn, inform) so
 * concurrent callers -- parallel-sweep workers logging retry and
 * progress events -- can never interleave characters of one line into
 * another. The abort paths (panic/fatal) stay lock-free on purpose:
 * they must terminate even if a thread died holding this mutex.
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** True when @p value survives unquoted in key=value framing. */
bool
isPlainValue(const std::string &value)
{
    if (value.empty())
        return false;
    for (char c : value) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isspace(uc) || uc < 0x20 || c == '"' || c == '\\'
            || c == '=')
            return false;
    }
    return true;
}

/** Double-quotes @p value, escaping framing metacharacters. */
std::string
quoteValue(const std::string &value)
{
    std::string out = "\"";
    for (char c : value) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    out += "\"";
    return out;
}

} // namespace

std::string
formatEvent(const std::string &name, const std::vector<LogField> &fields)
{
    std::string line = "event: " + name;
    for (const LogField &field : fields) {
        line += " " + field.key + "=";
        line += isPlainValue(field.value) ? field.value
                                          : quoteValue(field.value);
    }
    return line;
}

void
logEvent(const std::string &name, const std::vector<LogField> &fields)
{
    const std::string line = formatEvent(name, fields);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
logEvent(const std::string &name,
         std::initializer_list<LogField> fields)
{
    logEvent(name, std::vector<LogField>(fields));
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace spec17
