/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * Severity taxonomy (mirrors gem5's src/base/logging.hh contract):
 *  - panic():  an internal invariant was violated -- a framework bug.
 *              Prints and calls std::abort().
 *  - fatal():  the run cannot continue due to a user error (bad
 *              configuration, invalid arguments). Prints and exits(1).
 *  - warn():   something is degraded but the run continues.
 *  - inform(): plain status output.
 */

#ifndef SPEC17_UTIL_LOGGING_HH_
#define SPEC17_UTIL_LOGGING_HH_

#include <cstdlib>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace spec17 {

/** One key of a structured log event. */
struct LogField
{
    std::string key;
    std::string value;
};

/**
 * Formats a structured machine-parsable event line:
 * `event: <name> key=value key="value with spaces" ...`.
 *
 * Values containing whitespace, quotes, '=', backslashes or control
 * characters (or empty values) are double-quoted with `"`, `\`,
 * newline, CR and tab escaped as `\"`, `\\`, `\n`, `\r`, `\t`, so a
 * hostile value can never corrupt the key="value" framing.
 */
std::string formatEvent(const std::string &name,
                        const std::vector<LogField> &fields);

/**
 * Writes a formatEvent() line to stderr. Used for failure/retry and
 * sweep-progress telemetry so logs can be grepped and post-processed
 * without parsing prose.
 */
void logEvent(const std::string &name,
              const std::vector<LogField> &fields);

/** Overload so brace-literal field lists keep working. */
void logEvent(const std::string &name,
              std::initializer_list<LogField> fields);

namespace detail {

/** Joins any stream-formattable arguments into a single string. */
template <typename... Args>
std::string
concatArgs(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort on an internal invariant violation (framework bug).
 * Usage: panic("bad state: ", x);
 */
#define SPEC17_PANIC(...) \
    ::spec17::detail::panicImpl(__FILE__, __LINE__, \
        ::spec17::detail::concatArgs(__VA_ARGS__))

/** Exit with an error on a user-caused unrecoverable condition. */
#define SPEC17_FATAL(...) \
    ::spec17::detail::fatalImpl(__FILE__, __LINE__, \
        ::spec17::detail::concatArgs(__VA_ARGS__))

/** Warn and continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concatArgs(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concatArgs(std::forward<Args>(args)...));
}

/**
 * Assert-like guard for internal invariants that must hold in release
 * builds too. Panics with the formatted message when the condition fails.
 */
#define SPEC17_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SPEC17_PANIC("assertion '" #cond "' failed: ", \
                         ::spec17::detail::concatArgs(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace spec17

#endif // SPEC17_UTIL_LOGGING_HH_
