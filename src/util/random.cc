#include "util/random.hh"

#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace spec17 {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro256** must not start from the all-zero state; SplitMix64
    // cannot produce four zero outputs in a row, so the state is valid.
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    SPEC17_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextGaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
}

std::size_t
Rng::nextDiscrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        SPEC17_ASSERT(w >= 0.0, "negative weight in nextDiscrete");
        total += w;
    }
    SPEC17_ASSERT(total > 0.0, "weights sum to zero in nextDiscrete");

    double pick = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    // Floating-point slack: fall back to the last non-zero weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    SPEC17_PANIC("unreachable in nextDiscrete");
}

std::uint64_t
deriveSeed(std::uint64_t root, std::string_view label)
{
    // FNV-1a over the label, then mixed with the root through SplitMix64.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    std::uint64_t state = root ^ h;
    return splitMix64(state);
}

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t salt0, std::uint64_t salt1)
{
    std::uint64_t state = root ^ (salt0 * 0x9e3779b97f4a7c15ULL)
        ^ std::rotl(salt1, 32);
    splitMix64(state);
    return splitMix64(state);
}

} // namespace spec17
