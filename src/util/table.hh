/**
 * @file
 * Plain-text table and CSV writers used by the bench harness to print
 * the paper's tables and figure series.
 */

#ifndef SPEC17_UTIL_TABLE_HH_
#define SPEC17_UTIL_TABLE_HH_

#include <ostream>
#include <string>
#include <vector>

namespace spec17 {

/**
 * Accumulates rows of string cells and renders them as an aligned
 * monospace table (first row treated as the header) or as CSV.
 */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends a row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows (excluding the header). */
    std::size_t numRows() const { return rows_.size(); }

    /** Renders with aligned columns and a header rule. */
    void render(std::ostream &os) const;

    /** Renders as RFC-4180-ish CSV (quotes cells containing , " \n). */
    void renderCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p digits fractional digits. */
std::string fmtDouble(double value, int digits = 3);

/** Formats a byte count as B/KiB/MiB/GiB with three digits. */
std::string fmtBytes(double bytes);

/** Formats an integer with thousands separators ("1,234,567"). */
std::string fmtCount(std::uint64_t value);

} // namespace spec17

#endif // SPEC17_UTIL_TABLE_HH_
