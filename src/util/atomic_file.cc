#include "util/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/logging.hh"

namespace spec17 {

bool
writeFileAtomic(const std::string &path, const std::string &contents)
{
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("cannot write ", temp, "; ", path, " not updated");
            return false;
        }
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            warn("short write to ", temp, "; ", path, " not updated");
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        warn("cannot commit ", path, ": ", std::strerror(errno));
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

} // namespace spec17
