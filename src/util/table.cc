#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace spec17 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SPEC17_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SPEC17_ASSERT(cells.size() <= headers_.size(),
                  "row has more cells than headers");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::render(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t w : width)
        rule += w + 2;
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::renderCsv(std::ostream &os) const
{
    auto emit_cell = [&](const std::string &cell) {
        if (cell.find_first_of(",\"\n") != std::string::npos) {
            os << '"';
            for (char ch : cell) {
                if (ch == '"')
                    os << '"';
                os << ch;
            }
            os << '"';
        } else {
            os << cell;
        }
    };
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            emit_cell(row[c]);
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
fmtDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtBytes(double bytes)
{
    static const char *const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    return fmtDouble(bytes, 3) + " " + kUnits[unit];
}

std::string
fmtCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const std::size_t lead = digits.size() % 3 ? digits.size() % 3 : 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i >= lead && (i - lead) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

} // namespace spec17
