/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component in the framework draws from an Rng seeded
 * through deriveSeed() so that a given (application, input, component)
 * triple always observes the same stream, independent of the order in
 * which other components draw.
 */

#ifndef SPEC17_UTIL_RANDOM_HH_
#define SPEC17_UTIL_RANDOM_HH_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/logging.hh"

namespace spec17 {

/**
 * xoshiro256** PRNG (Blackman & Vigna) with SplitMix64 seeding.
 *
 * Chosen over std::mt19937_64 for speed (the trace generator draws
 * several values per micro-op) and for a guaranteed cross-platform
 * stable sequence.
 */
class Rng
{
  public:
    /** Constructs a generator whose state is expanded from @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit value. Inline: the trace
     *  generator draws several values per micro-op, so the xoshiro
     *  step must not cost a function call. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Returns a uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high bits -> [0, 1) with full double precision.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Returns a uniform integer in [0, bound) without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound)
    {
        SPEC17_ASSERT(bound > 0, "nextBounded requires bound > 0");
        // Power-of-two bound: the rejection threshold below is 0, so
        // the first draw is always accepted and the modulo is a
        // mask -- same value, no 64-bit divisions.
        if ((bound & (bound - 1)) == 0)
            return next() & (bound - 1);
        // Lemire-style rejection to avoid modulo bias.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Returns a uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Returns true with probability @p p. */
    bool nextBernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Returns a standard-normal variate (polar Box-Muller). */
    double nextGaussian();

    /**
     * Samples an index according to non-negative @p weights
     * (unnormalized). Weights summing to zero panic.
     */
    std::size_t nextDiscrete(const std::vector<double> &weights);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/** SplitMix64 step; exposed for seed derivation and tests. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Derives a stable child seed from a root seed and a component label
 * (FNV-1a hash mixed through SplitMix64). Used so that adding a new
 * stochastic component does not perturb existing streams.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::string_view label);

/** Derives a stable child seed from a root seed and numeric salts. */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t salt0,
                         std::uint64_t salt1 = 0);

} // namespace spec17

#endif // SPEC17_UTIL_RANDOM_HH_
