/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component in the framework draws from an Rng seeded
 * through deriveSeed() so that a given (application, input, component)
 * triple always observes the same stream, independent of the order in
 * which other components draw.
 */

#ifndef SPEC17_UTIL_RANDOM_HH_
#define SPEC17_UTIL_RANDOM_HH_

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/logging.hh"

namespace spec17 {

/**
 * xoshiro256** PRNG (Blackman & Vigna) with SplitMix64 seeding.
 *
 * Chosen over std::mt19937_64 for speed (the trace generator draws
 * several values per micro-op) and for a guaranteed cross-platform
 * stable sequence.
 */
class Rng
{
  public:
    /** Constructs a generator whose state is expanded from @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit value. Inline: the trace
     *  generator draws several values per micro-op, so the xoshiro
     *  step must not cost a function call. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Returns a uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high bits -> [0, 1) with full double precision.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Returns a uniform integer in [0, bound) without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound)
    {
        SPEC17_ASSERT(bound > 0, "nextBounded requires bound > 0");
        // Power-of-two bound: the rejection threshold below is 0, so
        // the first draw is always accepted and the modulo is a
        // mask -- same value, no 64-bit divisions.
        if ((bound & (bound - 1)) == 0)
            return next() & (bound - 1);
        // Lemire-style rejection to avoid modulo bias.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Returns a uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Returns true with probability @p p. */
    bool nextBernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Returns a standard-normal variate (polar Box-Muller). */
    double nextGaussian();

    /**
     * Samples an index according to non-negative @p weights
     * (unnormalized). Weights summing to zero panic.
     */
    std::size_t nextDiscrete(const std::vector<double> &weights);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Precomputed form of Rng::nextBounded() for a bound that is fixed
 * across many draws (the trace generator's region spans, site counts
 * and target zones). nextBounded() pays two 64-bit divisions per call
 * on a non-power-of-two bound -- the rejection threshold and the
 * final modulo; this caches the threshold and replaces the modulo
 * with a Lemire-style multiply against a cached 128-bit reciprocal.
 * draw() consumes exactly the same Rng values and returns exactly the
 * same result as rng.nextBounded(bound) for every Rng state.
 */
class BoundedDraw
{
  public:
    BoundedDraw() : BoundedDraw(1) {}

    explicit BoundedDraw(std::uint64_t bound) : bound_(bound)
    {
        SPEC17_ASSERT(bound > 0, "BoundedDraw requires bound > 0");
        if ((bound & (bound - 1)) == 0) {
            mask_ = bound - 1;
            return;
        }
        threshold_ = (-bound) % bound;
        // ceil(2^128 / bound); exact-modulo proof needs headroom for
        // the error term, covered for any bound below 2^63 (see
        // draw()); larger bounds fall back to hardware modulo.
        if (bound < (std::uint64_t(1) << 63))
            magic_ = ~(unsigned __int128)0 / bound + 1;
    }

    std::uint64_t bound() const { return bound_; }

    /** Same value and Rng-state advance as rng.nextBounded(bound). */
    std::uint64_t
    draw(Rng &rng) const
    {
        if (threshold_ == 0) // power-of-two bound
            return rng.next() & mask_;
        for (;;) {
            const std::uint64_t r = rng.next();
            if (r >= threshold_)
                return mod(r);
        }
    }

  private:
    std::uint64_t
    mod(std::uint64_t r) const
    {
        if (magic_ == 0)
            return r % bound_; // bound >= 2^63: headroom proof fails
        // Lemire & Kaser fastmod, 64-bit operands: frac is the low
        // 128 bits of magic * r, i.e. 2^128 * (r/bound mod 1); the
        // remainder is then the high 64 bits of frac * bound. Exact
        // for bound < 2^63 because the rounding error in magic
        // contributes less than one unit after the final shift.
        const unsigned __int128 frac = magic_ * r;
        const std::uint64_t lo = static_cast<std::uint64_t>(frac);
        const std::uint64_t hi =
            static_cast<std::uint64_t>(frac >> 64);
        const unsigned __int128 prod = (unsigned __int128)hi * bound_
            + (((unsigned __int128)lo * bound_) >> 64);
        return static_cast<std::uint64_t>(prod >> 64);
    }

    std::uint64_t bound_ = 1;
    std::uint64_t mask_ = 0;      //!< power-of-two path
    std::uint64_t threshold_ = 0; //!< rejection threshold
    unsigned __int128 magic_ = 0; //!< ceil(2^128 / bound_), or 0
};

/**
 * Precomputed form of Rng::nextBernoulli() for a probability that is
 * fixed across many draws. nextBernoulli() converts a 53-bit draw x
 * to double and compares x * 2^-53 < p; both that scaling and the
 * conversion are exact, so the comparison holds exactly when
 * x < ceil(p * 2^53). Caching that integer threshold turns each draw
 * into a shift and an integer compare with the identical outcome.
 * The degenerate probabilities (p <= 0, p >= 1) are answered without
 * consuming an Rng value, exactly like nextBernoulli().
 */
class BernoulliDraw
{
  public:
    BernoulliDraw() = default;

    explicit BernoulliDraw(double p)
    {
        if (p <= 0.0) {
            degenerate_ = 1; // always false, no draw
        } else if (p >= 1.0) {
            degenerate_ = 2; // always true, no draw
        } else {
            degenerate_ = 0;
            threshold_ = thresholdOf(p);
        }
    }

    /** Same value and Rng-state advance as rng.nextBernoulli(p). */
    bool
    draw(Rng &rng) const
    {
        if (degenerate_ != 0)
            return degenerate_ == 2;
        return (rng.next() >> 11) < threshold_;
    }

    /** Integer threshold t in [0, 2^53] with, for every 53-bit x,
     *  (x * 2^-53 < p) == (x < t): ceil(p * 2^53), clamped. The
     *  scaling p * 2^53 is an exact exponent shift, so the ceiling
     *  is computed on the exact product. */
    static std::uint64_t thresholdOf(double p)
    {
        if (!(p > 0.0))
            return 0;
        if (p >= 1.0)
            return std::uint64_t{1} << 53;
        return static_cast<std::uint64_t>(
            std::ceil(std::ldexp(p, 53)));
    }

  private:
    std::uint64_t threshold_ = 0;
    std::uint8_t degenerate_ = 1; //!< 0 real, 1 never, 2 always
};

/** SplitMix64 step; exposed for seed derivation and tests. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Derives a stable child seed from a root seed and a component label
 * (FNV-1a hash mixed through SplitMix64). Used so that adding a new
 * stochastic component does not perturb existing streams.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::string_view label);

/** Derives a stable child seed from a root seed and numeric salts. */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t salt0,
                         std::uint64_t salt1 = 0);

} // namespace spec17

#endif // SPEC17_UTIL_RANDOM_HH_
