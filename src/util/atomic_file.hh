/**
 * @file
 * Atomic whole-file writes: the temp+rename commit discipline the
 * result-cache journal and telemetry file sinks use, factored out for
 * any producer of a single-file artifact (bench JSON baselines, trace
 * exports). A crash or interruption mid-write can never leave a torn
 * file at the target path -- either the old contents survive or the
 * new contents are fully committed.
 */

#ifndef SPEC17_UTIL_ATOMIC_FILE_HH_
#define SPEC17_UTIL_ATOMIC_FILE_HH_

#include <string>

namespace spec17 {

/**
 * Writes @p contents to @p path atomically: the bytes go to
 * `path + ".tmp"`, are flushed and checked, and the temp file is then
 * renamed over @p path (an atomic replacement on POSIX filesystems).
 * On any failure the temp file is removed, the target is left
 * untouched, and a warning is emitted.
 *
 * @return true when the file was fully committed.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &contents);

} // namespace spec17

#endif // SPEC17_UTIL_ATOMIC_FILE_HH_
