/**
 * @file
 * Simulated hardware performance counters.
 *
 * The paper instruments a Haswell Xeon with the Linux perf utility;
 * this module reproduces the same event vocabulary over the simulator.
 * Every event name below is the literal counter flag the paper lists
 * in Sections III-IV, plus two pseudo-events (rss/vsz) standing in for
 * the paper's `ps -o vsz,rss` polling.
 */

#ifndef SPEC17_COUNTERS_PERF_EVENT_HH_
#define SPEC17_COUNTERS_PERF_EVENT_HH_

#include <array>
#include <cstdint>
#include <string>

namespace spec17 {
namespace counters {

/** Every counter the framework exposes. */
enum class PerfEvent : std::uint8_t
{
    InstRetiredAny,                     //!< inst_retired.any
    UopsRetiredAll,                     //!< uops_retired.all
    CpuClkUnhaltedRefTsc,               //!< cpu_clk_unhalted.ref_tsc
    MemUopsRetiredAllLoads,             //!< mem_uops_retired.all_loads
    MemUopsRetiredAllStores,            //!< mem_uops_retired.all_stores
    BrInstExecAllBranches,              //!< br_inst_exec.all_branches
    BrInstExecAllConditional,           //!< br_inst_exec.all_conditional
    BrInstExecAllDirectJmp,             //!< br_inst_exec.all_direct_jmp
    BrInstExecAllDirectNearCall,        //!< br_inst_exec.all_direct_near_call
    BrInstExecAllIndirectJumpNonCallRet, //!< ...all_indirect_jump_non_call_ret
    BrInstExecAllIndirectNearReturn,    //!< ...all_indirect_near_return
    BrMispExecAllBranches,              //!< br_misp_exec.all_branches
    MemLoadUopsRetiredL1Hit,            //!< mem_load_uops_retired.l1_hit
    MemLoadUopsRetiredL1Miss,           //!< mem_load_uops_retired.l1_miss
    MemLoadUopsRetiredL2Hit,            //!< mem_load_uops_retired.l2_hit
    MemLoadUopsRetiredL2Miss,           //!< mem_load_uops_retired.l2_miss
    MemLoadUopsRetiredL3Hit,            //!< mem_load_uops_retired.l3_hit
    MemLoadUopsRetiredL3Miss,           //!< mem_load_uops_retired.l3_miss
    DtlbLoadMissesWalk,  //!< dtlb_load_misses.miss_causes_a_walk
    ItlbMissesWalk,      //!< itlb_misses.miss_causes_a_walk
    RssBytes,                           //!< max resident set size (ps rss)
    VszBytes,                           //!< max virtual set size (ps vsz)
    NumEvents,                          //!< sentinel
};

/** Number of real events. */
inline constexpr std::size_t kNumPerfEvents =
    static_cast<std::size_t>(PerfEvent::NumEvents);

/** The perf flag string for @p event (e.g. "inst_retired.any"). */
std::string perfEventName(PerfEvent event);

/**
 * Parses a perf flag string back to its event; panics on an unknown
 * name (used by the perf-list style CLI surface and tests).
 */
PerfEvent perfEventFromName(const std::string &name);

/**
 * A fixed-size bank of counters, one slot per PerfEvent. Semantics
 * follow `perf stat`: counters only accumulate; diff() gives interval
 * deltas for phase analysis.
 */
class CounterSet
{
  public:
    CounterSet() { counts_.fill(0); }

    std::uint64_t
    get(PerfEvent event) const
    {
        return counts_[index(event)];
    }

    void
    add(PerfEvent event, std::uint64_t amount = 1)
    {
        counts_[index(event)] += amount;
    }

    /** Overwrites a gauge-style counter (rss/vsz maxima). */
    void
    set(PerfEvent event, std::uint64_t value)
    {
        counts_[index(event)] = value;
    }

    /** Raises a gauge to @p value if larger (running maximum). */
    void raiseTo(PerfEvent event, std::uint64_t value);

    /** Adds every counter of @p other into this set. */
    void accumulate(const CounterSet &other);

    /** Returns this minus @p earlier, element-wise; panics if any
     *  counter would go negative (counters are monotonic). */
    CounterSet diff(const CounterSet &earlier) const;

  private:
    static std::size_t
    index(PerfEvent event)
    {
        return static_cast<std::size_t>(event);
    }

    std::array<std::uint64_t, kNumPerfEvents> counts_;
};

} // namespace counters
} // namespace spec17

#endif // SPEC17_COUNTERS_PERF_EVENT_HH_
