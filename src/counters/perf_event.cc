#include "counters/perf_event.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spec17 {
namespace counters {

namespace {

struct NameEntry
{
    PerfEvent event;
    const char *name;
};

constexpr NameEntry kNames[] = {
    {PerfEvent::InstRetiredAny, "inst_retired.any"},
    {PerfEvent::UopsRetiredAll, "uops_retired.all"},
    {PerfEvent::CpuClkUnhaltedRefTsc, "cpu_clk_unhalted.ref_tsc"},
    {PerfEvent::MemUopsRetiredAllLoads, "mem_uops_retired.all_loads"},
    {PerfEvent::MemUopsRetiredAllStores, "mem_uops_retired.all_stores"},
    {PerfEvent::BrInstExecAllBranches, "br_inst_exec.all_branches"},
    {PerfEvent::BrInstExecAllConditional, "br_inst_exec.all_conditional"},
    {PerfEvent::BrInstExecAllDirectJmp, "br_inst_exec.all_direct_jmp"},
    {PerfEvent::BrInstExecAllDirectNearCall,
     "br_inst_exec.all_direct_near_call"},
    {PerfEvent::BrInstExecAllIndirectJumpNonCallRet,
     "br_inst_exec.all_indirect_jump_non_call_ret"},
    {PerfEvent::BrInstExecAllIndirectNearReturn,
     "br_inst_exec.all_indirect_near_return"},
    {PerfEvent::BrMispExecAllBranches, "br_misp_exec.all_branches"},
    {PerfEvent::MemLoadUopsRetiredL1Hit, "mem_load_uops_retired.l1_hit"},
    {PerfEvent::MemLoadUopsRetiredL1Miss, "mem_load_uops_retired.l1_miss"},
    {PerfEvent::MemLoadUopsRetiredL2Hit, "mem_load_uops_retired.l2_hit"},
    {PerfEvent::MemLoadUopsRetiredL2Miss, "mem_load_uops_retired.l2_miss"},
    {PerfEvent::MemLoadUopsRetiredL3Hit, "mem_load_uops_retired.l3_hit"},
    {PerfEvent::MemLoadUopsRetiredL3Miss, "mem_load_uops_retired.l3_miss"},
    {PerfEvent::DtlbLoadMissesWalk,
     "dtlb_load_misses.miss_causes_a_walk"},
    {PerfEvent::ItlbMissesWalk, "itlb_misses.miss_causes_a_walk"},
    {PerfEvent::RssBytes, "rss"},
    {PerfEvent::VszBytes, "vsz"},
};

static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumPerfEvents,
              "perf event name table out of sync with enum");

} // namespace

std::string
perfEventName(PerfEvent event)
{
    for (const auto &entry : kNames) {
        if (entry.event == event)
            return entry.name;
    }
    SPEC17_PANIC("unknown PerfEvent ", static_cast<int>(event));
}

PerfEvent
perfEventFromName(const std::string &name)
{
    for (const auto &entry : kNames) {
        if (name == entry.name)
            return entry.event;
    }
    SPEC17_PANIC("unknown perf event name '", name, "'");
}

void
CounterSet::raiseTo(PerfEvent event, std::uint64_t value)
{
    counts_[index(event)] = std::max(counts_[index(event)], value);
}

void
CounterSet::accumulate(const CounterSet &other)
{
    for (std::size_t i = 0; i < kNumPerfEvents; ++i)
        counts_[i] += other.counts_[i];
}

CounterSet
CounterSet::diff(const CounterSet &earlier) const
{
    CounterSet out;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        SPEC17_ASSERT(counts_[i] >= earlier.counts_[i],
                      "counter ",
                      perfEventName(static_cast<PerfEvent>(i)),
                      " went backwards");
        out.counts_[i] = counts_[i] - earlier.counts_[i];
    }
    return out;
}

} // namespace counters
} // namespace spec17
