/**
 * @file
 * SharedMemo: the compute-once/reuse-many concurrency primitive the
 * co-run solo-baseline memo and the trace-arena store share.
 *
 * The pattern both need: many pool workers race toward the same
 * expensive, deterministic computation (a solo-baseline simulation, a
 * trace capture). The value is computed OUTSIDE any lock -- holding a
 * mutex across a multi-millisecond simulation would serialize the
 * pool -- and published first-write-wins: losers discard their copy
 * and adopt the winner's, which is safe exactly because the
 * computation is deterministic (every racer produced the identical
 * value). Results therefore never depend on scheduling.
 */

#ifndef SPEC17_SUITE_MEMO_HH_
#define SPEC17_SUITE_MEMO_HH_

#include <map>
#include <mutex>
#include <optional>
#include <utility>

namespace spec17 {
namespace suite {

/** Thread-safe first-write-wins memo (see the file comment). */
template <typename Key, typename Value>
class SharedMemo
{
  public:
    /** The memoized value for @p key, if one has been published. */
    std::optional<Value>
    tryGet(const Key &key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    /**
     * Publishes @p value for @p key unless another thread already
     * did; returns the winning value either way (the caller adopts
     * it and discards its own on a lost race).
     */
    Value
    publish(const Key &key, Value value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.emplace(key, std::move(value)).first->second;
    }

    /**
     * The memoized value for @p key, computing it via @p compute()
     * outside the lock when absent. Racing computations are resolved
     * first-write-wins.
     */
    template <typename Compute>
    Value
    getOrCompute(const Key &key, Compute &&compute)
    {
        if (std::optional<Value> hit = tryGet(key))
            return *std::move(hit);
        return publish(key, std::forward<Compute>(compute)());
    }

    /** Drops @p key's entry; true when one existed. */
    bool
    erase(const Key &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.erase(key) != 0;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

    /** Visits every entry in key order under the lock; @p fn must not
     *  reenter the memo. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : map_)
            fn(entry.first, entry.second);
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::map<Key, Value> map_;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_MEMO_HH_
