/**
 * @file
 * Deterministic fault-injection hooks for suite execution.
 *
 * The runner consults an optional FaultInjector once per attempt at
 * each application-input pair, before simulation starts. Tests use
 * this to force throws, runaway (stalled) trace generation and
 * transient attempt-1 failures at chosen pairs, making every recovery
 * path of the fault-isolation layer exercisable without timing races:
 * injection decisions are keyed on (pair name, attempt index), both
 * of which are deterministic under a fixed root seed.
 */

#ifndef SPEC17_SUITE_FAULT_INJECTION_HH_
#define SPEC17_SUITE_FAULT_INJECTION_HH_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace spec17 {
namespace suite {

/** Injection interface the runner consults once per pair attempt. */
class FaultInjector
{
  public:
    /** What to inject into the consulted attempt. */
    enum class Action
    {
        None,  //!< run normally
        Throw, //!< raise an exception before simulation starts
        Stall, //!< make trace generation run past its op budget
    };

    virtual ~FaultInjector();

    /**
     * Called at the start of every attempt (including replays under
     * retry). @p pair is the display name, @p attempt is 0-based.
     */
    virtual Action onAttempt(const std::string &pair,
                             unsigned attempt) = 0;
};

/**
 * Scripted injector for tests: actions are programmed per
 * (pair, attempt) and every consultation is recorded, so tests can
 * also use it as a probe for which pairs a sweep actually simulated
 * (e.g. to prove resume-from-journal skips completed pairs).
 * Consultations are serialized internally, so the probe also works
 * under parallel sweeps -- though with jobs > 1 the recorded order
 * reflects completion order, not pair order (compare as sets).
 */
class ScriptedFaultInjector : public FaultInjector
{
  public:
    /** Injects @p action when @p pair reaches @p attempt. */
    void set(const std::string &pair, unsigned attempt, Action action);

    /** Throws on attempts [0, fail_count): a transient failure that
     *  succeeds once retries get past it. */
    void failFirstAttempts(const std::string &pair, unsigned fail_count);

    Action onAttempt(const std::string &pair,
                     unsigned attempt) override;

    /** Every (pair, attempt) the runner consulted, in consultation
     *  order. Read after the sweep has joined its workers. */
    const std::vector<std::pair<std::string, unsigned>> &
    consulted() const
    {
        return consulted_;
    }

  private:
    /** Guards consulted_ against concurrent sweep workers (plan_ is
     *  only written before the sweep starts). */
    std::mutex mutex_;
    std::map<std::pair<std::string, unsigned>, Action> plan_;
    std::vector<std::pair<std::string, unsigned>> consulted_;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_FAULT_INJECTION_HH_
