/**
 * @file
 * Deterministic fault-injection hooks for suite execution and
 * journal I/O.
 *
 * Two seams:
 *
 *  - FaultInjector: the runner consults it once per attempt at each
 *    application-input pair, before simulation starts. Tests use
 *    this to force throws, runaway (stalled) trace generation and
 *    transient attempt-1 failures at chosen pairs, making every
 *    recovery path of the fault-isolation layer exercisable without
 *    timing races: injection decisions are keyed on (pair name,
 *    attempt index), both of which are deterministic under a fixed
 *    root seed.
 *
 *  - JournalIoFaultInjector: the result cache consults it at every
 *    journal commit and reopen. Tests script torn writes (a crash
 *    or power cut leaves a byte-level prefix on disk), ENOSPC-style
 *    failed commits, short reads and bit-flips-on-reopen, proving
 *    the sweep degrades to warn-and-continue -- committed records
 *    stay trustworthy, damaged ones are recomputed on resume, and
 *    nothing ever crashes or silently returns corrupt results.
 */

#ifndef SPEC17_SUITE_FAULT_INJECTION_HH_
#define SPEC17_SUITE_FAULT_INJECTION_HH_

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace spec17 {
namespace suite {

/** Injection interface the runner consults once per pair attempt. */
class FaultInjector
{
  public:
    /** What to inject into the consulted attempt. */
    enum class Action
    {
        None,  //!< run normally
        Throw, //!< raise an exception before simulation starts
        Stall, //!< make trace generation run past its op budget
    };

    virtual ~FaultInjector();

    /**
     * Called at the start of every attempt (including replays under
     * retry). @p pair is the display name, @p attempt is 0-based.
     */
    virtual Action onAttempt(const std::string &pair,
                             unsigned attempt) = 0;
};

/**
 * Scripted injector for tests: actions are programmed per
 * (pair, attempt) and every consultation is recorded, so tests can
 * also use it as a probe for which pairs a sweep actually simulated
 * (e.g. to prove resume-from-journal skips completed pairs).
 * Consultations are serialized internally, so the probe also works
 * under parallel sweeps -- though with jobs > 1 the recorded order
 * reflects completion order, not pair order (compare as sets).
 */
class ScriptedFaultInjector : public FaultInjector
{
  public:
    /** Injects @p action when @p pair reaches @p attempt. */
    void set(const std::string &pair, unsigned attempt, Action action);

    /** Throws on attempts [0, fail_count): a transient failure that
     *  succeeds once retries get past it. */
    void failFirstAttempts(const std::string &pair, unsigned fail_count);

    Action onAttempt(const std::string &pair,
                     unsigned attempt) override;

    /** Every (pair, attempt) the runner consulted, in consultation
     *  order. Read after the sweep has joined its workers. */
    const std::vector<std::pair<std::string, unsigned>> &
    consulted() const
    {
        return consulted_;
    }

  private:
    /** Guards consulted_ against concurrent sweep workers (plan_ is
     *  only written before the sweep starts). */
    std::mutex mutex_;
    std::map<std::pair<std::string, unsigned>, Action> plan_;
    std::vector<std::pair<std::string, unsigned>> consulted_;
};

/**
 * Journal-I/O injection interface. The result cache consults
 * onJournalWrite() once per commit attempt (with the 0-based commit
 * index of the sweep) and onJournalRead() once per journal reopen,
 * applying the returned fault to that one operation.
 */
class JournalIoFaultInjector
{
  public:
    /** What to do to one journal commit. */
    struct WriteFault
    {
        enum class Kind
        {
            None,      //!< commit normally
            TornWrite, //!< leave only keepBytes of the new content on
                       //!< disk (simulated crash/power cut mid-write)
                       //!< and report the commit failed
            Enospc,    //!< fail the commit outright, leaving the
                       //!< previous journal intact (no space / EIO)
        };
        Kind kind = Kind::None;
        std::size_t keepBytes = 0;
    };

    /** What to do to one journal reopen. */
    struct ReadFault
    {
        enum class Kind
        {
            None,      //!< read normally
            ShortRead, //!< deliver only keepBytes of the file
            BitFlip,   //!< flip bit @c bit of byte @c offset
        };
        Kind kind = Kind::None;
        std::size_t keepBytes = 0;
        std::size_t offset = 0;
        unsigned bit = 0;
    };

    virtual ~JournalIoFaultInjector();

    /** Consulted before commit @p commit_index (0-based within one
     *  sweep) of the journal at @p path. */
    virtual WriteFault onJournalWrite(const std::string &path,
                                      unsigned commit_index) = 0;

    /** Consulted at every reopen of the journal at @p path. */
    virtual ReadFault onJournalRead(const std::string &path) = 0;
};

/**
 * Scripted journal-I/O injector for tests. Write faults are keyed on
 * the sweep's commit index; read faults form a queue consumed one
 * per reopen (unscripted operations run clean). Thread-safe like
 * ScriptedFaultInjector, and usable as a probe: consultation counts
 * record how often the cache actually touched the journal.
 */
class ScriptedJournalIoFaults : public JournalIoFaultInjector
{
  public:
    /** Tears commit @p commit_index down to @p keep_bytes bytes. */
    void tornWriteAt(unsigned commit_index, std::size_t keep_bytes);

    /** Fails commit @p commit_index outright (ENOSPC semantics). */
    void enospcAt(unsigned commit_index);

    /** Fails every commit from @p commit_index on. */
    void enospcFrom(unsigned commit_index);

    /** Queues a short read delivering only @p keep_bytes. */
    void shortReadNext(std::size_t keep_bytes);

    /** Queues a bit-flip of bit @p bit of byte @p offset. */
    void bitFlipNext(std::size_t offset, unsigned bit);

    WriteFault onJournalWrite(const std::string &path,
                              unsigned commit_index) override;
    ReadFault onJournalRead(const std::string &path) override;

    /** Commits / reopens consulted so far. */
    unsigned writesConsulted() const;
    unsigned readsConsulted() const;

  private:
    mutable std::mutex mutex_;
    std::map<unsigned, WriteFault> writePlan_;
    /** All commits >= this index fail with Enospc (disabled when
     *  larger than any commit index, the default). */
    unsigned enospcFrom_ = 0xffffffffu;
    std::deque<ReadFault> readPlan_;
    unsigned writes_ = 0;
    unsigned reads_ = 0;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_FAULT_INJECTION_HH_
