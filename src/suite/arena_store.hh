/**
 * @file
 * TraceArenaStore: process-wide capture-once/replay-many cache of
 * trace arenas (trace/arena.hh), keyed by the exact synthetic trace
 * configuration.
 *
 * The first acquire() of a (profile, seed, trace-config) captures the
 * generated stream into an arena; subsequent acquires -- other design
 * points of a multi-point sweep, the co-run engine's repeated solo
 * baselines, retries at the same seed -- replay it instead of
 * regenerating. Resident arenas live under a byte budget with
 * least-recently-used eviction; an optional spill directory persists
 * every captured arena in the versioned S17A format (atomic
 * temp+rename), so evicted or cross-run arenas reload instead of
 * recapturing.
 *
 * Replay is observation-equivalent to live generation (pinned by the
 * arena golden tests), so whether a store is attached -- and its
 * budget, eviction behaviour, and spill directory -- is an execution
 * strategy, never semantics: none of it enters result-cache config
 * keys (docs/determinism.md).
 */

#ifndef SPEC17_SUITE_ARENA_STORE_HH_
#define SPEC17_SUITE_ARENA_STORE_HH_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "suite/memo.hh"
#include "trace/arena.hh"

namespace spec17 {
namespace suite {

/** Thread-safe arena cache (see the file comment). */
class TraceArenaStore
{
  public:
    /** Observability counters (approximate under concurrency). */
    struct Stats
    {
        std::uint64_t captures = 0;   //!< streams generated
        std::uint64_t hits = 0;       //!< served from residency
        std::uint64_t spillLoads = 0; //!< reloaded from disk
        std::uint64_t evictions = 0;  //!< dropped for budget
        std::uint64_t residentBytes = 0;
        std::uint64_t entries = 0;
    };

    /**
     * @param budget_bytes resident-lane byte budget (> 0); arenas
     *        larger than the whole budget are served uncached.
     * @param spill_dir optional directory for S17A spill files
     *        (created on demand); empty disables spilling.
     */
    explicit TraceArenaStore(std::uint64_t budget_bytes,
                             std::string spill_dir = "");

    /**
     * The arena for @p params: resident hit, spill reload, or fresh
     * capture, in that order. Never returns nullptr -- an uncachable
     * (over-budget) arena is still captured and returned, it just
     * isn't retained. Racing captures resolve first-write-wins
     * (identical streams, so results cannot depend on the winner).
     */
    std::shared_ptr<const trace::TraceArena>
    acquire(const trace::SyntheticTraceParams &params);

    Stats stats() const;

    std::uint64_t budgetBytes() const { return budgetBytes_; }
    const std::string &spillDir() const { return spillDir_; }

    /** Spill file path for @p key (exposed for tests). */
    std::string spillPathFor(const std::string &key) const;

  private:
    struct Entry
    {
        std::shared_ptr<const trace::TraceArena> arena;
        /** Recency stamp, shared so hits can touch it without
         *  mutating the memo. */
        std::shared_ptr<std::atomic<std::uint64_t>> lastUse;
    };

    /** Evicts least-recently-used entries until under budget. */
    void evictOverBudget();

    std::uint64_t budgetBytes_;
    std::string spillDir_;
    SharedMemo<std::string, Entry> table_;
    std::atomic<std::uint64_t> useSeq_{0};
    std::atomic<std::uint64_t> captures_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> spillLoads_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_ARENA_STORE_HH_
