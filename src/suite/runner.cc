#include "suite/runner.hh"

#include <memory>
#include <sstream>

#include "sim/multicore.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace spec17 {
namespace suite {

using counters::CounterSet;
using counters::PerfEvent;
using workloads::AppInputPair;
using workloads::WorkloadProfile;

void
prefillSteadyState(sim::CpuSimulator &core,
                   const trace::SyntheticTraceGenerator &generator)
{
    // Models the steady-state cache residency a long-running SPEC
    // process would have: regions that fit a level are pre-installed
    // there, so a short measured sample is not dominated by
    // compulsory misses the full-length run would amortize away.
    const auto &regions = generator.params().regions;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const auto &region = regions[i];
        sim::HitLevel level;
        if (region.sizeBytes <= 32 * kKiB)
            level = sim::HitLevel::L1;
        else if (region.sizeBytes <= 256 * kKiB)
            level = sim::HitLevel::L2;
        else if (region.sizeBytes <= 8 * kMiB)
            level = sim::HitLevel::L3;
        else
            continue; // DRAM-level regions start (and stay) cold
        core.prefillData(generator.regionBase(i), region.sizeBytes,
                         level);
    }
    // The binary itself is equally warm in steady state: without
    // this, every cold-code excursion reads as a compulsory DRAM
    // fetch the real full-length run would never see.
    const std::uint64_t code = generator.params().codeFootprintBytes;
    core.prefillData(generator.codeBase(), code,
                     code <= 96 * kKiB ? sim::HitLevel::L2
                                       : sim::HitLevel::L3);
}

double
PairResult::ipc() const
{
    const std::uint64_t cycles =
        counters.get(PerfEvent::CpuClkUnhaltedRefTsc);
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(counters.get(PerfEvent::InstRetiredAny))
        / static_cast<double>(cycles);
}

SuiteRunner::SuiteRunner(RunnerOptions options)
    : options_(std::move(options))
{
    SPEC17_ASSERT(options_.sampleOps >= 1000,
                  "sample too small to be meaningful");
}

std::string
SuiteRunner::configKey() const
{
    // kResultVersion changes whenever simulator or workload semantics
    // change, invalidating on-disk caches produced by older builds.
    static constexpr const char *kResultVersion = "spec17-results-v2";
    std::ostringstream os;
    os << kResultVersion << "|" << options_.system.describe()
       << "|sample=" << options_.sampleOps
       << "|warmup=" << options_.warmupOps << "|seed=" << options_.seed;
    return os.str();
}

PairResult
SuiteRunner::runPair(const AppInputPair &pair) const
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without profile");
    const WorkloadProfile &profile = *pair.profile;

    workloads::BuildOptions build;
    build.sampleOps = options_.sampleOps + options_.warmupOps;
    build.seed = options_.seed;

    PairResult result;
    result.name = pair.displayName();
    result.profile = &profile;
    result.size = pair.size;
    result.inputIndex = pair.inputIndex;
    result.errored = profile.isErrored(pair.size, pair.inputIndex);

    const std::uint64_t pair_seed =
        deriveSeed(deriveSeed(options_.seed, profile.name),
                   static_cast<std::uint64_t>(pair.size),
                   pair.inputIndex);

    sim::SimResult sim_result;
    if (profile.numThreads > 1) {
        std::vector<std::shared_ptr<trace::TraceSource>> sources;
        sim::MulticoreSimulator multicore(options_.system,
                                          profile.numThreads, pair_seed);
        for (unsigned t = 0; t < profile.numThreads; ++t) {
            auto gen = std::make_shared<trace::SyntheticTraceGenerator>(
                workloads::buildTraceParams(pair, build, t));
            prefillSteadyState(multicore.mutableCore(t), *gen);
            sources.push_back(std::move(gen));
        }
        sim_result = multicore.run(
            sources, 10'000, options_.warmupOps / profile.numThreads);
    } else {
        trace::SyntheticTraceGenerator source(
            workloads::buildTraceParams(pair, build, 0));
        sim::CpuSimulator simulator(options_.system, pair_seed);
        prefillSteadyState(simulator, source);
        simulator.step(source, options_.warmupOps);
        const CounterSet warm = simulator.snapshot();
        const double warm_cycles = simulator.core().cycles();
        while (simulator.step(source, 1 << 20) == (1 << 20)) {
        }
        sim_result = simulator.finish(source);
        const std::uint64_t vsz =
            sim_result.counters.get(PerfEvent::VszBytes);
        sim_result.counters = sim_result.counters.diff(warm);
        sim_result.counters.set(PerfEvent::VszBytes, vsz);
        sim_result.counters.set(PerfEvent::RssBytes,
                                simulator.footprint().rssBytes());
        sim_result.cycles -= warm_cycles;
    }

    result.counters = sim_result.counters;
    result.wallCycles = sim_result.cycles;

    // ---- Scale back to paper units ----
    // The simulated sample stands in for the full run: rates (IPC,
    // miss and mispredict rates, mix percentages) are taken from the
    // sample; instruction count and execution time are reported at
    // paper scale.
    result.instrBillions = profile.instrBillions(pair.size);
    const double sim_instr = static_cast<double>(
        result.counters.get(PerfEvent::InstRetiredAny));
    SPEC17_ASSERT(sim_instr > 0.0, result.name,
                  ": measured interval retired nothing");
    const double wall_seconds = result.wallCycles
        / (options_.system.core.frequencyGHz * 1e9);
    result.seconds =
        wall_seconds * (result.instrBillions * kBillion / sim_instr);

    // RSS/VSZ are microarchitecture-independent input magnitudes; the
    // sampled run cannot touch a paper-scale working set, so OVERRIDE
    // the gauges with the profile's declared values. Touched pages
    // remain a floor so tiny declarations stay honest; the simulated
    // region reservation (an artifact of the sampling substrate) is
    // discarded.
    const auto declared_rss = static_cast<std::uint64_t>(
        profile.rssMiB(pair.size) * double(kMiB));
    const auto declared_vsz = static_cast<std::uint64_t>(
        profile.vszMiB(pair.size) * double(kMiB));
    const std::uint64_t touched =
        result.counters.get(PerfEvent::RssBytes);
    result.counters.set(PerfEvent::RssBytes,
                        std::max(touched, declared_rss));
    result.counters.set(
        PerfEvent::VszBytes,
        std::max(result.counters.get(PerfEvent::RssBytes),
                 declared_vsz));
    return result;
}

std::vector<PairResult>
SuiteRunner::runAll(const std::vector<WorkloadProfile> &suite,
                    workloads::InputSize size) const
{
    std::vector<PairResult> results;
    for (const AppInputPair &pair : enumeratePairs(suite, size))
        results.push_back(runPair(pair));
    return results;
}

} // namespace suite
} // namespace spec17
