#include "suite/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/multicore.hh"
#include "sim/simulator.hh"
#include "suite/arena_store.hh"
#include "telemetry/registry.hh"
#include "trace/arena.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace spec17 {
namespace suite {

using counters::CounterSet;
using counters::PerfEvent;
using workloads::AppInputPair;
using workloads::WorkloadProfile;

void
prefillSteadyState(sim::CpuSimulator &core,
                   const trace::SyntheticTraceGenerator &generator)
{
    // Models the steady-state cache residency a long-running SPEC
    // process would have: regions that fit a level are pre-installed
    // there, so a short measured sample is not dominated by
    // compulsory misses the full-length run would amortize away.
    const auto &regions = generator.params().regions;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const auto &region = regions[i];
        sim::HitLevel level;
        if (region.sizeBytes <= 32 * kKiB)
            level = sim::HitLevel::L1;
        else if (region.sizeBytes <= 256 * kKiB)
            level = sim::HitLevel::L2;
        else if (region.sizeBytes <= 8 * kMiB)
            level = sim::HitLevel::L3;
        else
            continue; // DRAM-level regions start (and stay) cold
        core.prefillData(generator.regionBase(i), region.sizeBytes,
                         level);
    }
    // The binary itself is equally warm in steady state: without
    // this, every cold-code excursion reads as a compulsory DRAM
    // fetch the full-length run would never see.
    const std::uint64_t code = generator.params().codeFootprintBytes;
    core.prefillData(generator.codeBase(), code,
                     code <= 96 * kKiB ? sim::HitLevel::L2
                                       : sim::HitLevel::L3);
}

std::string
ShardSpec::label() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

std::optional<ShardSpec>
ShardSpec::parse(const std::string &text)
{
    const auto slash = text.find('/');
    if (slash == std::string::npos || slash == 0
        || slash + 1 >= text.size())
        return std::nullopt;
    const auto number = [](const std::string &cell)
        -> std::optional<unsigned> {
        if (cell.empty() || cell.size() > 9)
            return std::nullopt;
        unsigned value = 0;
        for (char c : cell) {
            if (c < '0' || c > '9')
                return std::nullopt;
            value = value * 10 + static_cast<unsigned>(c - '0');
        }
        return value;
    };
    const auto index = number(text.substr(0, slash));
    const auto count = number(text.substr(slash + 1));
    if (!index || !count || *count == 0 || *index == 0
        || *index > *count)
        return std::nullopt;
    return ShardSpec{*index, *count};
}

std::vector<AppInputPair>
shardPairs(const std::vector<AppInputPair> &pairs,
           const ShardSpec &shard)
{
    return shardSlice(pairs, shard);
}

unsigned
resolveWorkerCount(unsigned jobs, std::size_t count)
{
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (count < jobs)
        jobs = static_cast<unsigned>(std::max<std::size_t>(count, 1));
    return jobs;
}

std::uint64_t
retryBackoffDelayMs(std::uint64_t base_ms, unsigned attempt)
{
    if (base_ms == 0 || attempt == 0)
        return 0;
    const unsigned exponent =
        std::min(attempt - 1, kMaxBackoffExponent);
    // With the exponent clamped, base_ms <= kMaxBackoffDelayMs >>
    // exponent guarantees the shift cannot overflow either.
    if (base_ms > (kMaxBackoffDelayMs >> exponent))
        return kMaxBackoffDelayMs;
    return base_ms << exponent;
}

double
PairResult::ipc() const
{
    const std::uint64_t cycles =
        counters.get(PerfEvent::CpuClkUnhaltedRefTsc);
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(counters.get(PerfEvent::InstRetiredAny))
        / static_cast<double>(cycles);
}

const FailureRecord *
PairResult::finalFailure() const
{
    return errored && !failures.empty() ? &failures.back() : nullptr;
}

SuiteRunner::SuiteRunner(RunnerOptions options)
    : options_(std::move(options))
{
    SPEC17_ASSERT(options_.sampleOps >= 1000,
                  "sample too small to be meaningful");
}

std::string
SuiteRunner::configKey() const
{
    // kResultVersion changes whenever simulator or workload semantics
    // change, invalidating on-disk caches produced by older builds.
    // v4: uarch knobs (TAGE geometry, stream prefetcher degree and
    // distance, l2 prefetcher slot, way predictor + penalty) entered
    // the config through SystemConfig::describe().
    static constexpr const char *kResultVersion = "spec17-results-v4";
    std::ostringstream os;
    os << kResultVersion << "|" << options_.system.describe()
       << "|sample=" << options_.sampleOps
       << "|warmup=" << options_.warmupOps << "|seed=" << options_.seed
       << "|retries=" << options_.maxRetries
       << "|deadline_ops=" << options_.pairDeadlineOps
       << "|deadline_ms=" << options_.pairDeadlineMs;
    return os.str();
}

namespace {

/**
 * Per-attempt watchdog: deterministic micro-op budget plus a coarse
 * wall-clock limit. Consulted at chunk boundaries of the simulation
 * loop; on expiry it raises a Deadline failure carrying how far the
 * attempt got.
 */
class Watchdog
{
  public:
    Watchdog(std::uint64_t op_budget, std::uint64_t ms_budget)
        : opBudget_(op_budget), msBudget_(ms_budget),
          start_(std::chrono::steady_clock::now())
    {
    }

    void
    check(std::uint64_t executed_ops, bool &cancel_flag) const
    {
        if (opBudget_ != 0 && executed_ops > opBudget_) {
            cancel_flag = true;
            std::ostringstream os;
            os << "op budget expired: " << executed_ops << " > "
               << opBudget_ << " micro-ops";
            throw PairExecutionError(FailureCategory::Deadline,
                                     os.str(), executed_ops);
        }
        if (msBudget_ != 0) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            if (static_cast<std::uint64_t>(elapsed) > msBudget_) {
                cancel_flag = true;
                std::ostringstream os;
                os << "wall-clock budget expired: " << elapsed << " > "
                   << msBudget_ << " ms";
                throw PairExecutionError(FailureCategory::Deadline,
                                         os.str(), executed_ops);
            }
        }
    }

  private:
    std::uint64_t opBudget_;
    std::uint64_t msBudget_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace

workloads::BuildOptions
attemptBuildOptions(const RunnerOptions &options, unsigned attempt)
{
    workloads::BuildOptions build;
    build.sampleOps = options.sampleOps + options.warmupOps;
    // Attempt 0 uses the unperturbed seed (byte-identical to a run
    // without the fault layer); retries perturb it deterministically
    // so transiently unlucky stochastic states are not replayed.
    build.seed = attempt == 0
        ? options.seed
        : deriveSeed(deriveSeed(options.seed, "retry"), attempt);
    return build;
}

std::uint64_t
pairSimSeed(const AppInputPair &pair, std::uint64_t build_seed)
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without profile");
    return deriveSeed(deriveSeed(build_seed, pair.profile->name),
                      static_cast<std::uint64_t>(pair.size),
                      pair.inputIndex);
}

PairResult
makePairResult(const AppInputPair &pair)
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without profile");
    PairResult result;
    result.name = pair.displayName();
    result.profile = pair.profile;
    result.size = pair.size;
    result.inputIndex = pair.inputIndex;
    result.errored =
        pair.profile->isErrored(pair.size, pair.inputIndex);
    return result;
}

void
finalizePairResult(const RunnerOptions &options,
                   const sim::SimResult &sim_result, PairResult &result)
{
    result.counters = sim_result.counters;
    result.wallCycles = sim_result.cycles;

    // ---- Scale back to paper units ----
    // The simulated sample stands in for the full run: rates (IPC,
    // miss and mispredict rates, mix percentages) are taken from the
    // sample; instruction count and execution time are reported at
    // paper scale.
    const WorkloadProfile &profile = *result.profile;
    result.instrBillions = profile.instrBillions(result.size);
    const double sim_instr = static_cast<double>(
        result.counters.get(PerfEvent::InstRetiredAny));
    if (!(sim_instr > 0.0)) {
        throw PairExecutionError(
            FailureCategory::Invariant,
            result.name + ": measured interval retired nothing");
    }
    const double wall_seconds = result.wallCycles
        / (options.system.core.frequencyGHz * 1e9);
    result.seconds =
        wall_seconds * (result.instrBillions * kBillion / sim_instr);

    // RSS/VSZ are microarchitecture-independent input magnitudes; the
    // sampled run cannot touch a paper-scale working set, so OVERRIDE
    // the gauges with the profile's declared values. Touched pages
    // remain a floor so tiny declarations stay honest; the simulated
    // region reservation (an artifact of the sampling substrate) is
    // discarded.
    const auto declared_rss = static_cast<std::uint64_t>(
        profile.rssMiB(result.size) * double(kMiB));
    const auto declared_vsz = static_cast<std::uint64_t>(
        profile.vszMiB(result.size) * double(kMiB));
    const std::uint64_t touched =
        result.counters.get(PerfEvent::RssBytes);
    result.counters.set(PerfEvent::RssBytes,
                        std::max(touched, declared_rss));
    result.counters.set(
        PerfEvent::VszBytes,
        std::max(result.counters.get(PerfEvent::RssBytes),
                 declared_vsz));
}

PairResult
SuiteRunner::runPairAttempt(const AppInputPair &pair,
                            unsigned attempt) const
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without profile");
    const WorkloadProfile &profile = *pair.profile;

    PairResult result = makePairResult(pair);

    // A malformed profile is a contained, diagnosable failure -- not
    // a NaN row and not a process abort mid-sweep.
    const std::string profile_error = profile.validationError();
    if (!profile_error.empty()) {
        throw PairExecutionError(FailureCategory::BadProfile,
                                 profile_error);
    }

    FaultInjector::Action injected = FaultInjector::Action::None;
    if (options_.faultInjector != nullptr)
        injected = options_.faultInjector->onAttempt(result.name, attempt);
    if (injected == FaultInjector::Action::Throw) {
        throw PairExecutionError(FailureCategory::Injected,
                                 "injected fault before simulation");
    }

    workloads::BuildOptions build = attemptBuildOptions(options_, attempt);
    if (injected == FaultInjector::Action::Stall) {
        // Runaway trace generation: emit far past the declared sample
        // so only the watchdog can stop the attempt.
        const std::uint64_t runaway = options_.pairDeadlineOps != 0
            ? options_.pairDeadlineOps * 4
            : (options_.sampleOps + options_.warmupOps) * 64;
        build.sampleOps = std::max(build.sampleOps, runaway);
    }

    const std::uint64_t pair_seed = pairSimSeed(pair, build.seed);

    const Watchdog watchdog(options_.pairDeadlineOps,
                            options_.pairDeadlineMs);
    bool cancelled = false;

    // Replay eligibility: the watchdog's cooperative cancel must act
    // DURING trace generation -- a fault-injected runaway captured to
    // completion would defeat it -- so replay stands down whenever the
    // fault layer or a per-attempt deadline is armed.
    const bool replay_eligible = options_.arenaStore != nullptr
        && options_.faultInjector == nullptr
        && options_.pairDeadlineOps == 0 && options_.pairDeadlineMs == 0;

    sim::SimResult sim_result;
    if (profile.numThreads > 1) {
        // The multicore interleaver runs to completion in one call, so
        // the op budget is enforced up front against the statically
        // known total; cooperative cancellation still bounds the
        // generators if the budget trips after the fact.
        watchdog.check(build.sampleOps, cancelled);
        std::vector<std::shared_ptr<trace::TraceSource>> sources;
        std::vector<std::shared_ptr<trace::SyntheticTraceGenerator>>
            generators;
        std::vector<std::shared_ptr<trace::ReplaySource>> replays;
        sim::MulticoreSimulator multicore(options_.system,
                                          profile.numThreads, pair_seed);
        for (unsigned t = 0; t < profile.numThreads; ++t) {
            sim::CpuSimulator &core = multicore.mutableCore(t);
            if (options_.batchOps != 0)
                core.setBatchOps(options_.batchOps);
            core.setUnbatchedStepping(options_.unbatchedStepping);
            // The generator is constructed even under replay: prefill
            // reads its region layout without consuming ops, so the
            // replayed stream still lands on warm caches.
            auto gen = std::make_shared<trace::SyntheticTraceGenerator>(
                workloads::buildTraceParams(pair, build, t));
            gen->setCancelFlag(&cancelled);
            prefillSteadyState(multicore.mutableCore(t), *gen);
            generators.push_back(gen);
            if (replay_eligible) {
                auto replay = std::make_shared<trace::ReplaySource>(
                    options_.arenaStore->acquire(gen->params()));
                replay->setCancelFlag(&cancelled);
                replays.push_back(replay);
                sources.push_back(std::move(replay));
            } else {
                sources.push_back(gen);
            }
        }

        // Interval telemetry, coarse mode: the interleaver's chunk
        // size shapes shared-L3 contention, so chunks cannot be
        // capped at sampling boundaries without changing results;
        // rows land at the first chunk end past each boundary. The
        // baseline is taken before the run, so intervals spanning
        // another context's warmup include that warmup traffic (the
        // contexts genuinely share the L3 during it).
        std::unique_ptr<telemetry::MetricsRegistry> registry;
        std::unique_ptr<telemetry::IntervalSampler> sampler;
        if (options_.sampleIntervalOps > 0) {
            registry = std::make_unique<telemetry::MetricsRegistry>();
            telemetry::registerMulticoreMetrics(*registry, multicore);
            for (unsigned t = 0; t < profile.numThreads; ++t) {
                const std::string prefix =
                    "core" + std::to_string(t) + ".";
                if (replay_eligible) {
                    telemetry::registerTraceMetrics(
                        *registry, *replays[t], prefix);
                } else {
                    telemetry::registerTraceMetrics(
                        *registry, *generators[t], prefix);
                }
            }
            sampler = std::make_unique<telemetry::IntervalSampler>(
                *registry, options_.sampleIntervalOps,
                telemetry::defaultDerivedSpecs());
            sampler->setCoarseBoundaries(true);
            sampler->begin();
        }

        std::uint64_t measured_total = 0;
        const sim::MulticoreSimulator::ChunkObserver on_chunk =
            sampler ? sim::MulticoreSimulator::ChunkObserver(
                          [&](std::uint64_t measured_ops) {
                              measured_total = measured_ops;
                              sampler->onProgress(measured_ops);
                          })
                    : sim::MulticoreSimulator::ChunkObserver();
        sim_result = multicore.run(sources, 10'000,
                                   options_.warmupOps
                                       / profile.numThreads,
                                   on_chunk);
        if (sampler) {
            sampler->finish(measured_total);
            result.series =
                std::make_shared<const telemetry::TimeSeries>(
                    sampler->series());
        }
        watchdog.check(
            sim_result.counters.get(PerfEvent::InstRetiredAny),
            cancelled);
    } else {
        trace::SyntheticTraceGenerator generator(
            workloads::buildTraceParams(pair, build, 0));
        generator.setCancelFlag(&cancelled);
        // Under replay the generator still exists -- prefill reads its
        // region layout without consuming ops -- but the simulated
        // stream comes from the captured arena instead.
        std::unique_ptr<trace::ReplaySource> replay;
        if (replay_eligible) {
            replay = std::make_unique<trace::ReplaySource>(
                options_.arenaStore->acquire(generator.params()));
            replay->setCancelFlag(&cancelled);
        }
        trace::TraceSource &source = replay
            ? static_cast<trace::TraceSource &>(*replay)
            : static_cast<trace::TraceSource &>(generator);
        sim::CpuSimulator simulator(options_.system, pair_seed);
        if (options_.batchOps != 0)
            simulator.setBatchOps(options_.batchOps);
        simulator.setUnbatchedStepping(options_.unbatchedStepping);
        prefillSteadyState(simulator, generator);
        std::uint64_t executed =
            simulator.step(source, options_.warmupOps);
        watchdog.check(executed, cancelled);
        const CounterSet warm = simulator.snapshot();
        const double warm_cycles = simulator.core().cycles();

        // Interval telemetry: the baseline lands exactly at the end
        // of warmup, so interval deltas sum to the measured-window
        // aggregates. Chunks are capped at the next boundary, which
        // keeps samples on exact micro-op boundaries (determinism)
        // without perturbing the simulated stream.
        std::unique_ptr<telemetry::MetricsRegistry> registry;
        std::unique_ptr<telemetry::IntervalSampler> sampler;
        if (options_.sampleIntervalOps > 0) {
            registry = std::make_unique<telemetry::MetricsRegistry>();
            telemetry::registerSimulatorMetrics(*registry, simulator);
            if (replay)
                telemetry::registerTraceMetrics(*registry, *replay);
            else
                telemetry::registerTraceMetrics(*registry, generator);
            sampler = std::make_unique<telemetry::IntervalSampler>(
                *registry, options_.sampleIntervalOps,
                telemetry::defaultDerivedSpecs());
            sampler->begin();
        }

        constexpr std::uint64_t kChunk = 1 << 20;
        std::uint64_t measured = 0;
        while (true) {
            std::uint64_t chunk = kChunk;
            if (sampler) {
                chunk = std::min(
                    chunk, sampler->opsUntilNextSample(measured));
            }
            const std::uint64_t done = simulator.step(source, chunk);
            executed += done;
            measured += done;
            watchdog.check(executed, cancelled);
            if (sampler)
                sampler->onProgress(measured);
            if (done < chunk)
                break;
        }
        if (sampler) {
            sampler->finish(measured);
            result.series =
                std::make_shared<const telemetry::TimeSeries>(
                    sampler->series());
        }
        sim_result = simulator.finish(source);
        const std::uint64_t vsz =
            sim_result.counters.get(PerfEvent::VszBytes);
        sim_result.counters = sim_result.counters.diff(warm);
        sim_result.counters.set(PerfEvent::VszBytes, vsz);
        sim_result.counters.set(PerfEvent::RssBytes,
                                simulator.footprint().rssBytes());
        sim_result.cycles -= warm_cycles;
    }

    finalizePairResult(options_, sim_result, result);
    return result;
}

PairResult
SuiteRunner::runPair(const AppInputPair &pair) const
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without profile");
    const std::string name = pair.displayName();

    std::vector<FailureRecord> failures;
    const unsigned max_attempts = options_.maxRetries + 1;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        const std::uint64_t delay_ms =
            attempt > 0
            ? retryBackoffDelayMs(options_.retryBackoffMs, attempt)
            : 0;
        if (delay_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
        }
        try {
            PairResult result = runPairAttempt(pair, attempt);
            result.attempts = attempt + 1;
            result.failures = std::move(failures);
            // Series from failed attempts never reach this point
            // (the attempt threw and its sampler died with it); only
            // the successful attempt's series is committed.
            if (options_.telemetrySink != nullptr
                && result.series != nullptr) {
                options_.telemetrySink->write(result.name,
                                              *result.series);
            }
            if (result.recovered()) {
                logEvent("pair_recovered",
                         {{"pair", name},
                          {"attempts",
                           std::to_string(result.attempts)}});
            }
            return result;
        } catch (const PairExecutionError &error) {
            failures.push_back({error.category(), error.what(), attempt,
                                error.opsCompleted()});
        } catch (const std::exception &error) {
            failures.push_back({FailureCategory::Exception, error.what(),
                                attempt, 0});
        }
        const FailureRecord &last = failures.back();
        logEvent("pair_attempt_failed",
                 {{"pair", name},
                  {"attempt", std::to_string(attempt)},
                  {"category", failureCategoryName(last.category)},
                  {"ops", std::to_string(last.opsCompleted)},
                  {"message", last.message}});
        // A malformed profile fails every attempt identically --
        // retrying (and sleeping the backoff) would only replay the
        // same diagnosis, so fail fast instead.
        if (last.category == FailureCategory::BadProfile)
            break;
    }

    // Every attempt failed: surface an errored result mirroring the
    // paper's "could not collect" semantics so aggregate analysis
    // excludes the pair while the sweep carries on.
    PairResult failed;
    failed.name = name;
    failed.profile = pair.profile;
    failed.size = pair.size;
    failed.inputIndex = pair.inputIndex;
    failed.errored = true;
    failed.attempts = static_cast<unsigned>(failures.size());
    failed.failures = std::move(failures);
    logEvent("pair_errored",
             {{"pair", name},
              {"attempts", std::to_string(failed.attempts)},
              {"category",
               failureCategoryName(failed.failures.back().category)}});
    return failed;
}

std::vector<PairResult>
SuiteRunner::runAll(const std::vector<WorkloadProfile> &suite,
                    workloads::InputSize size) const
{
    return runAll(suite, size, PairObserver());
}

std::vector<PairResult>
SuiteRunner::runAll(const std::vector<WorkloadProfile> &suite,
                    workloads::InputSize size,
                    const PairObserver &observer) const
{
    return runPairs(enumeratePairs(suite, size), observer);
}

std::vector<PairResult>
SuiteRunner::runPairs(const std::vector<AppInputPair> &pairs,
                      const PairObserver &observer,
                      std::size_t index_offset, std::size_t total) const
{
    if (total == 0)
        total = index_offset + pairs.size();
    // The ordered pool commits completed pairs to the observer
    // strictly in canonical index order, which is what lets the
    // result cache journal a valid prefix mid-sweep and keeps
    // progress/journal output byte-compatible with a sequential run.
    return runOrderedPool<PairResult>(
        pairs.size(), options_.jobs,
        [&](std::size_t i) { return runPair(pairs[i]); },
        [&](const PairResult &result, std::size_t i) {
            if (observer)
                observer(result, index_offset + i, total);
        });
}

} // namespace suite
} // namespace spec17
