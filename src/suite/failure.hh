/**
 * @file
 * Structured failure records for fault-isolated suite execution.
 *
 * The paper's own measurement campaign had to tolerate pairs it could
 * not collect (627.cam4_s, perlbench's test.pl); this framework's
 * sweeps face the software analogues: bad profiles, runaway trace
 * generation, transiently flaky components. A FailureRecord captures
 * one failed attempt in a machine-readable form that survives the
 * result cache, so downstream analysis can exclude the pair (paper
 * semantics) while operators can still diagnose what went wrong.
 */

#ifndef SPEC17_SUITE_FAILURE_HH_
#define SPEC17_SUITE_FAILURE_HH_

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace spec17 {
namespace suite {

/** Why an attempt at a pair failed. */
enum class FailureCategory : std::uint8_t
{
    Exception,  //!< an unclassified exception escaped the pair
    Invariant,  //!< a runner invariant failed (e.g. nothing retired)
    BadProfile, //!< the workload profile did not validate
    Deadline,   //!< the watchdog op/wall-clock budget expired
    Injected,   //!< a test-controlled injected fault
};

/** Stable machine-readable category name ("deadline" etc.). */
const char *failureCategoryName(FailureCategory category);

/** Inverse of failureCategoryName(); nullopt for unknown names. */
std::optional<FailureCategory> failureCategoryFromName(
    std::string_view name);

/** One failed attempt at one application-input pair. */
struct FailureRecord
{
    FailureCategory category = FailureCategory::Exception;
    /** Human-readable diagnosis (sanitized before persisting). */
    std::string message;
    /** 0-based attempt that produced this failure. */
    unsigned attempt = 0;
    /** Micro-ops the attempt completed before failing. */
    std::uint64_t opsCompleted = 0;
};

/**
 * Thrown inside the per-pair failure boundary to abort one attempt
 * with a classified cause. The runner converts it (and any other
 * exception) into FailureRecords; it never escapes a sweep.
 */
class PairExecutionError : public std::runtime_error
{
  public:
    PairExecutionError(FailureCategory category, const std::string &msg,
                       std::uint64_t ops_completed = 0)
        : std::runtime_error(msg), category_(category),
          opsCompleted_(ops_completed)
    {
    }

    FailureCategory category() const { return category_; }
    std::uint64_t opsCompleted() const { return opsCompleted_; }

  private:
    FailureCategory category_;
    std::uint64_t opsCompleted_;
};

/**
 * Serializes an attempt history into a single CSV-safe cell:
 * records joined by '|', fields by '@', messages sanitized. An empty
 * history serializes to "-".
 */
std::string serializeFailures(const std::vector<FailureRecord> &failures);

/** Inverse of serializeFailures(); nullopt on malformed input. */
std::optional<std::vector<FailureRecord>> parseFailures(
    const std::string &cell);

/** Replaces serializer/CSV metacharacters in a diagnosis with '_'. */
std::string sanitizeFailureMessage(std::string message);

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_FAILURE_HH_
