/**
 * @file
 * On-disk cache of suite-run results, doubling as a crash-safe,
 * self-validating sweep journal.
 *
 * A full characterization sweep simulates hundreds of millions of
 * micro-ops; every bench binary needs the same sweep. The cache
 * persists PairResults to a journal file (format v2, see
 * docs/journal_format.md and suite/journal.hh) keyed by a campaign
 * header -- config-key fingerprint, pair-set digest, shard identity,
 * format version -- with a content hash on every record, so any
 * record's provenance and integrity is checkable offline.
 *
 * Crash safety: during a sweep the file is re-committed after every
 * completed pair via write-temp-then-rename, so readers only ever see
 * a complete prefix of rows (an append-only journal with atomic
 * commits). An interrupted sweep leaves a valid partial journal;
 * with resume enabled, the next run replays the completed prefix and
 * simulates only the remainder. Malformed or hash-failing rows (torn
 * tails, bit flips, stale formats) are quarantined as cache misses
 * with a logged reason -- never a crash, never garbage results. A
 * failed journal commit (e.g. ENOSPC, or an injected I/O fault)
 * demotes to warn-and-continue: the sweep still returns correct
 * results, and uncommitted pairs are recomputed on resume.
 *
 * Sharded campaigns: with a ShardSpec set, the cache runs only the
 * shard's slice of the pair cross-product and journals it to a
 * per-shard file (`<base>.<gen>.<size>.shardKofN.csv`). Shard
 * journals of one campaign merge into the canonical unsharded
 * journal byte-identically via `spec17 merge` (suite/journal.hh).
 *
 * Parallel sweeps (RunnerOptions::jobs > 1) journal through the
 * runner's ordered observer seam: completions are delivered in
 * canonical pair order regardless of which worker finished first, so
 * every checkpoint is still a valid prefix and a journal truncated
 * mid-parallel-sweep resumes byte-identically.
 */

#ifndef SPEC17_SUITE_RESULT_CACHE_HH_
#define SPEC17_SUITE_RESULT_CACHE_HH_

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "suite/fault_injection.hh"
#include "suite/runner.hh"

namespace spec17 {
namespace suite {

/**
 * Thrown when --resume finds a journal written under a different
 * config key: replaying it would splice results from one campaign
 * into another, so the sweep refuses loudly instead of guessing.
 * (Without resume, a mismatched journal is an ordinary cache miss.)
 */
class JournalConfigMismatchError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** 16-hex-digit FNV-1a fingerprint of @p runner's config key. */
std::string configFingerprint(const SuiteRunner &runner);

/**
 * 16-hex-digit digest of the full canonical pair enumeration of
 * (@p suite, @p size) -- generation, size and every pair display
 * name, pre-shard. Shards of one campaign share it; journals from a
 * different suite or size cannot be confused for shards.
 */
std::string pairSetDigest(
    const std::vector<workloads::WorkloadProfile> &suite,
    workloads::InputSize size);

/**
 * Journal-backed result store. Results are keyed by (suite
 * generation, input size, shard) and validated against the campaign
 * header and per-record hashes.
 */
class ResultCache
{
  public:
    /**
     * @param path journal base path; created on first save. Empty
     *        path disables persistence (pure pass-through).
     * @param resume when true, a partial journal left by an
     *        interrupted sweep is replayed instead of discarded.
     */
    explicit ResultCache(std::string path, bool resume = false);

    /** Default cache location: $SPEC17_CACHE or spec17_results.csv. */
    static std::string defaultPath();

    /** Enables/disables resuming from a partial journal. */
    void setResume(bool resume) { resume_ = resume; }

    /** Restricts sweeps to one shard of the pair cross-product. */
    void setShard(ShardSpec shard) { shard_ = shard; }

    /** Test-only journal-I/O injection hook; borrowed pointer,
     *  nullptr in production. */
    void setIoFaults(JournalIoFaultInjector *faults)
    {
        ioFaults_ = faults;
    }

    /** Journal file this cache reads/writes for (@p suite, @p size)
     *  under the current shard (empty when persistence is off). */
    std::string journalFile(
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;

    /**
     * Loads cached results for (@p suite, @p size) recorded under
     * @p runner's fingerprint, or runs the sweep and persists it,
     * journaling each completed pair. With resume enabled, a partial
     * journal seeds the sweep and only missing pairs are simulated;
     * a journal from a different config key is refused
     * (JournalConfigMismatchError). With a shard set, only the
     * shard's slice is loaded/run/journaled.
     * Profile pointers in returned results are rebound into @p suite.
     *
     * @param observer notified after each pair of a simulated sweep,
     *        always in canonical pair order (even when the runner
     *        executes pairs on a worker pool) and including
     *        journal-replayed prefix pairs -- flagged via
     *        PairResult::replayed -- so progress counts stay
     *        consistent; never invoked on a full cache hit. Pass an
     *        empty function to disable.
     */
    std::vector<PairResult> runOrLoad(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size,
        const SuiteRunner::PairObserver &observer = {});

    /**
     * @name Sweep-session seam
     * runOrLoad() decomposed for engines that interleave many sweeps
     * (suite/fanout.hh runs one session per design point, committing
     * every point's journal as the shared pass advances). A session is
     * beginSweep() once, checkpoint() after each newly completed pair,
     * finish() at the end -- producing journal bytes identical to a
     * runOrLoad() sweep at any job count.
     */
    /// @{

    /** The journal-replayed state a sweep session starts from. */
    struct SweepPrefix
    {
        /** Order-verified replayed prefix, profiles bound into the
         *  session's suite, PairResult::replayed set. */
        std::vector<PairResult> rows;
        /** Every expected pair was already journaled: the session has
         *  nothing to run (rows are the full result set). */
        bool complete = false;
    };

    /**
     * Opens a sweep session: reads the journal under runOrLoad()'s
     * exact policy -- a complete order-verified journal returns all
     * rows with complete=true even without resume; a partial prefix is
     * returned only with resume enabled; a config-mismatched journal
     * under resume throws JournalConfigMismatchError; anything else is
     * an empty prefix -- and resets the per-sweep commit state.
     * @p pairs must be the shard slice the session will run, in
     * canonical order (shardPairs of the full enumeration).
     */
    SweepPrefix beginSweep(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size,
        const std::vector<workloads::AppInputPair> &pairs);

    /** Quiet mid-sweep checkpoint: atomically commits @p results as
     *  the journal's new prefix (unwritable locations warn once per
     *  session, not once per pair). */
    void checkpoint(const SuiteRunner &runner,
                    const std::vector<workloads::WorkloadProfile> &suite,
                    workloads::InputSize size,
                    const std::vector<PairResult> &results) const;

    /** Final loud commit of a sweep session. */
    void finish(const SuiteRunner &runner,
                const std::vector<workloads::WorkloadProfile> &suite,
                workloads::InputSize size,
                const std::vector<PairResult> &results) const;

    /// @}

    /** Drops everything persisted at this path (current shard's
     *  files included). */
    void invalidate();

  private:
    /** One journal read: campaign-header classification plus the
     *  longest order-verified record prefix. */
    struct JournalRead
    {
        enum class Status
        {
            Missing,        //!< no file / unreadable
            Malformed,      //!< campaign header damaged or legacy
            ConfigMismatch, //!< other campaign's config key
            PairsMismatch,  //!< other suite/size enumeration
            ShardMismatch,  //!< other shard's journal
            FormatMismatch, //!< other build's counter columns
            Ok,
        };
        Status status = Status::Missing;
        /** Campaign fingerprint found in the file (diagnostics). */
        std::string foundFingerprint;
        /** Order-verified prefix, profiles bound, replayed=true. */
        std::vector<PairResult> rows;
        /** Every expected pair present and nothing quarantined. */
        bool complete = false;
    };

    JournalRead readJournal(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size,
        const std::vector<workloads::AppInputPair> &pairs) const;

    /** Atomically commits @p results (write temp, then rename),
     *  consulting the I/O fault hook. */
    void save(const SuiteRunner &runner,
              const std::vector<workloads::WorkloadProfile> &suite,
              workloads::InputSize size,
              const std::vector<PairResult> &results,
              bool quiet = false) const;

    std::string path_;
    bool resume_ = false;
    ShardSpec shard_;
    JournalIoFaultInjector *ioFaults_ = nullptr;
    /** Commit counter within the current sweep (I/O fault keying). */
    mutable unsigned commitIndex_ = 0;
    /** Set after one failed journal commit so a read-only location
     *  warns once per sweep instead of once per pair. */
    mutable bool journalWarned_ = false;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_RESULT_CACHE_HH_
