/**
 * @file
 * On-disk cache of suite-run results.
 *
 * A full characterization sweep simulates hundreds of millions of
 * micro-ops; every bench binary needs the same sweep. The cache
 * persists PairResults to a CSV file keyed by a fingerprint of the
 * runner configuration, so the first binary pays for the sweep and
 * the rest replay it. Deleting the file (or changing any
 * configuration knob) invalidates it.
 */

#ifndef SPEC17_SUITE_RESULT_CACHE_HH_
#define SPEC17_SUITE_RESULT_CACHE_HH_

#include <optional>
#include <string>
#include <vector>

#include "suite/runner.hh"

namespace spec17 {
namespace suite {

/**
 * CSV-backed result store. Results are keyed by (suite generation,
 * input size) and validated against the runner's config fingerprint.
 */
class ResultCache
{
  public:
    /**
     * @param path CSV file; created on first save. Empty path
     *        disables persistence (pure pass-through).
     */
    explicit ResultCache(std::string path);

    /** Default cache location: $SPEC17_CACHE or spec17_results.csv. */
    static std::string defaultPath();

    /**
     * Loads cached results for (@p suite, @p size) recorded under
     * @p runner's fingerprint, or runs the sweep and persists it.
     * Profile pointers in returned results are rebound into @p suite.
     */
    std::vector<PairResult> runOrLoad(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size);

    /** Drops everything persisted at this path. */
    void invalidate();

  private:
    std::optional<std::vector<PairResult>> load(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;
    void save(const SuiteRunner &runner,
              const std::vector<workloads::WorkloadProfile> &suite,
              workloads::InputSize size,
              const std::vector<PairResult> &results) const;

    std::string path_;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_RESULT_CACHE_HH_
