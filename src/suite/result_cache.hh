/**
 * @file
 * On-disk cache of suite-run results, doubling as a crash-safe sweep
 * journal.
 *
 * A full characterization sweep simulates hundreds of millions of
 * micro-ops; every bench binary needs the same sweep. The cache
 * persists PairResults to a CSV file keyed by a fingerprint of the
 * runner configuration, so the first binary pays for the sweep and
 * the rest replay it.
 *
 * Crash safety: during a sweep the file is re-committed after every
 * completed pair via write-temp-then-rename, so readers only ever see
 * a complete prefix of rows (an append-only journal with atomic
 * commits). An interrupted sweep leaves a valid partial journal;
 * with resume enabled, the next run replays the completed prefix and
 * simulates only the remainder. Malformed rows (torn tails, stale
 * formats) are quarantined as cache misses with a logged reason --
 * never a crash, never garbage results.
 *
 * Parallel sweeps (RunnerOptions::jobs > 1) journal through the
 * runner's ordered observer seam: completions are delivered in
 * canonical pair order regardless of which worker finished first, so
 * every checkpoint is still a valid prefix and a journal truncated
 * mid-parallel-sweep resumes byte-identically.
 */

#ifndef SPEC17_SUITE_RESULT_CACHE_HH_
#define SPEC17_SUITE_RESULT_CACHE_HH_

#include <optional>
#include <string>
#include <vector>

#include "suite/runner.hh"

namespace spec17 {
namespace suite {

/**
 * CSV-backed result store. Results are keyed by (suite generation,
 * input size) and validated against the runner's config fingerprint.
 */
class ResultCache
{
  public:
    /**
     * @param path CSV file; created on first save. Empty path
     *        disables persistence (pure pass-through).
     * @param resume when true, a partial journal left by an
     *        interrupted sweep is replayed instead of discarded.
     */
    explicit ResultCache(std::string path, bool resume = false);

    /** Default cache location: $SPEC17_CACHE or spec17_results.csv. */
    static std::string defaultPath();

    /** Enables/disables resuming from a partial journal. */
    void setResume(bool resume) { resume_ = resume; }

    /**
     * Loads cached results for (@p suite, @p size) recorded under
     * @p runner's fingerprint, or runs the sweep and persists it,
     * journaling each completed pair. With resume enabled, a partial
     * journal seeds the sweep and only missing pairs are simulated.
     * Profile pointers in returned results are rebound into @p suite.
     *
     * @param observer notified after each pair of a simulated sweep,
     *        always in canonical pair order (even when the runner
     *        executes pairs on a worker pool) and including
     *        journal-replayed prefix pairs -- flagged via
     *        PairResult::replayed -- so progress counts stay
     *        consistent; never invoked on a full cache hit. Pass an
     *        empty function to disable.
     */
    std::vector<PairResult> runOrLoad(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size,
        const SuiteRunner::PairObserver &observer = {});

    /** Drops everything persisted at this path. */
    void invalidate();

  private:
    std::optional<std::vector<PairResult>> load(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;
    /** Longest valid journal prefix matching the expected pair order
     *  (empty on fingerprint/header mismatch). */
    std::vector<PairResult> loadPartial(
        const SuiteRunner &runner,
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;
    /** Atomically commits @p results (write temp, then rename). */
    void save(const SuiteRunner &runner,
              const std::vector<workloads::WorkloadProfile> &suite,
              workloads::InputSize size,
              const std::vector<PairResult> &results,
              bool quiet = false) const;

    std::string path_;
    bool resume_ = false;
    /** Set after one failed journal commit so a read-only location
     *  warns once per sweep instead of once per pair. */
    mutable bool journalWarned_ = false;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_RESULT_CACHE_HH_
