/**
 * @file
 * Suite execution: runs application-input pairs on the simulator the
 * way the paper runs SPEC under `perf stat` -- one pair at a time,
 * collecting the full counter set -- and scales sampled measurements
 * back to paper units (billions of instructions, seconds).
 */

#ifndef SPEC17_SUITE_RUNNER_HH_
#define SPEC17_SUITE_RUNNER_HH_

#include <string>
#include <vector>

#include "counters/perf_event.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace spec17 {
namespace suite {

/**
 * Installs the steady-state cache residency a long-running process
 * would have built: each data region of @p generator that fits a
 * cache level is pre-filled into that level, and the code footprint
 * into L2/L3. Used by the runner before every measured sample; also
 * useful for standalone experiments that bypass the runner.
 */
void prefillSteadyState(sim::CpuSimulator &core,
                        const trace::SyntheticTraceGenerator &generator);

/** Runner configuration. */
struct RunnerOptions
{
    sim::SystemConfig system = sim::SystemConfig::haswellXeonE52650Lv3();
    /** Micro-ops measured per pair (after warmup). */
    std::uint64_t sampleOps = 2'000'000;
    /** Micro-ops executed before measurement starts (cold caches). */
    std::uint64_t warmupOps = 600'000;
    /** Root seed for all stochastic components. */
    std::uint64_t seed = 0x5bec17;
};

/** Result of one application-input pair. */
struct PairResult
{
    std::string name;                      //!< e.g. "502.gcc_r-in3"
    const workloads::WorkloadProfile *profile = nullptr;
    workloads::InputSize size = workloads::InputSize::Ref;
    unsigned inputIndex = 0;
    /** True when the paper could not collect this pair (excluded
     *  from all aggregate analysis, like in the paper). */
    bool errored = false;

    /** Counters over the measured interval (simulation scale). */
    counters::CounterSet counters;
    /** Measured-interval cycles (max across threads). */
    double wallCycles = 0.0;

    /** Paper-scale instruction count for this pair, in billions. */
    double instrBillions = 0.0;
    /** Paper-scale execution time in seconds. */
    double seconds = 0.0;

    /** inst_retired.any / cpu_clk_unhalted.ref_tsc. */
    double ipc() const;
};

/**
 * Runs pairs on a fresh simulator each (no cross-pair pollution).
 * Deterministic: identical options produce identical results.
 */
class SuiteRunner
{
  public:
    explicit SuiteRunner(RunnerOptions options = {});

    /** Runs a single pair. */
    PairResult runPair(const workloads::AppInputPair &pair) const;

    /** Runs every pair of @p suite at @p size, in suite order. */
    std::vector<PairResult> runAll(
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;

    const RunnerOptions &options() const { return options_; }

    /** Stable fingerprint of everything that affects results. */
    std::string configKey() const;

  private:
    RunnerOptions options_;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_RUNNER_HH_
