/**
 * @file
 * Suite execution: runs application-input pairs on the simulator the
 * way the paper runs SPEC under `perf stat` -- each pair on a fresh
 * simulator, collecting the full counter set -- and scales sampled
 * measurements back to paper units (billions of instructions,
 * seconds). Pairs are embarrassingly parallel (every seed derives
 * purely from the root seed and the pair identity), so sweeps can run
 * on a worker pool (RunnerOptions::jobs) while results, journal
 * commits and observer callbacks stay in canonical pair order.
 */

#ifndef SPEC17_SUITE_RUNNER_HH_
#define SPEC17_SUITE_RUNNER_HH_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "counters/perf_event.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "suite/failure.hh"
#include "suite/fault_injection.hh"
#include "telemetry/sampler.hh"
#include "util/logging.hh"
#include "telemetry/sink.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace spec17 {
namespace suite {

class TraceArenaStore;

/**
 * Installs the steady-state cache residency a long-running process
 * would have built: each data region of @p generator that fits a
 * cache level is pre-filled into that level, and the code footprint
 * into L2/L3. Used by the runner before every measured sample; also
 * useful for standalone experiments that bypass the runner.
 */
void prefillSteadyState(sim::CpuSimulator &core,
                        const trace::SyntheticTraceGenerator &generator);

/**
 * One shard of a sweep campaign: this process runs shard `index` of
 * `count` (both 1-based, `1/1` = the whole sweep). The partition is
 * deterministic round-robin over the canonical pair order -- pair i
 * belongs to shard `(i % count) + 1` -- so shards balance load, any
 * process can compute its slice without coordination, and a merge
 * can reconstruct canonical order from shard identity alone (record
 * j of shard K/N is canonical pair j*N + K-1).
 *
 * Sharding partitions *work*, never results: it is deliberately NOT
 * part of the config key, and merging complete shards reproduces the
 * unsharded journal byte-identically.
 */
struct ShardSpec
{
    unsigned index = 1;
    unsigned count = 1;

    /** True when the sweep is actually split (count > 1). */
    bool active() const { return count > 1; }

    /** "K/N" label, e.g. "2/4". */
    std::string label() const;

    /** Parses "K/N" (1 <= K <= N); nullopt on malformed input. */
    static std::optional<ShardSpec> parse(const std::string &text);
};

/**
 * The slice of @p items belonging to @p shard, in canonical order
 * (round-robin: item i belongs to shard (i % count) + 1). Generic so
 * every campaign type -- suite pairs, co-run groups -- shards with
 * the same deterministic partition the merge toolchain understands.
 */
template <typename T>
std::vector<T>
shardSlice(const std::vector<T> &items, const ShardSpec &shard)
{
    SPEC17_ASSERT(shard.count >= 1 && shard.index >= 1
                      && shard.index <= shard.count,
                  "invalid shard ", shard.index, "/", shard.count);
    if (!shard.active())
        return items;
    std::vector<T> slice;
    slice.reserve(items.size() / shard.count + 1);
    for (std::size_t i = shard.index - 1; i < items.size();
         i += shard.count)
        slice.push_back(items[i]);
    return slice;
}

/** The slice of @p pairs belonging to @p shard, in canonical order. */
std::vector<workloads::AppInputPair> shardPairs(
    const std::vector<workloads::AppInputPair> &pairs,
    const ShardSpec &shard);

/** Worker threads a pool of @p count items actually uses: resolves
 *  jobs == 0 to the hardware concurrency and never exceeds the item
 *  count (minimum 1). */
unsigned resolveWorkerCount(unsigned jobs, std::size_t count);

/**
 * The ordered worker pool every sweep runs on: executes
 * `work(0..count-1)` on @p jobs threads (1 = sequential on the
 * calling thread) and returns results in item order regardless of
 * completion order. @p commit is invoked as `commit(result, index)`
 * strictly in index order and never concurrently -- a completed item
 * is held back until every earlier item has been delivered (lowest-
 * uncommitted-index drain) -- which is what lets journals written
 * from the commit hook always extend a valid prefix, byte-identical
 * to a sequential run at any job count. @p work must be safe to call
 * concurrently from multiple threads for distinct indices.
 */
template <typename Result, typename Work, typename Commit>
std::vector<Result>
runOrderedPool(std::size_t count, unsigned jobs, Work &&work,
               Commit &&commit)
{
    std::vector<Result> results(count);
    jobs = resolveWorkerCount(jobs, count);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            results[i] = work(i);
            commit(results[i], i);
        }
        return results;
    }

    // Each worker pulls the next item index from the shared counter
    // and stores the result into that item's slot, so the result
    // vector is in canonical order no matter which worker finished
    // first; the drain below delivers commits in index order.
    std::atomic<std::size_t> next{0};
    std::mutex commit_mutex;
    std::vector<char> done(count, 0);
    std::size_t committed = 0;

    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            Result result = work(i);
            std::lock_guard<std::mutex> lock(commit_mutex);
            results[i] = std::move(result);
            done[i] = 1;
            while (committed < count && done[committed]) {
                commit(results[committed], committed);
                ++committed;
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        workers.emplace_back(worker);
    for (std::thread &thread : workers)
        thread.join();
    return results;
}

/** Runner configuration. */
struct RunnerOptions
{
    sim::SystemConfig system = sim::SystemConfig::haswellXeonE52650Lv3();
    /** Micro-ops measured per pair (after warmup). */
    std::uint64_t sampleOps = 2'000'000;
    /** Micro-ops executed before measurement starts (cold caches). */
    std::uint64_t warmupOps = 600'000;
    /** Root seed for all stochastic components. */
    std::uint64_t seed = 0x5bec17;

    /** @name Fault isolation */
    /// @{
    /** Additional attempts after a failed first try (0 = fail fast). */
    unsigned maxRetries = 0;
    /**
     * Watchdog: micro-op budget per attempt, detecting runaway trace
     * generation deterministically. 0 disables. Must comfortably
     * exceed sampleOps + warmupOps or every pair trips it.
     */
    std::uint64_t pairDeadlineOps = 0;
    /** Watchdog: wall-clock budget per attempt in ms (0 disables).
     *  Catches genuine stalls; unlike the op budget it is inherently
     *  non-deterministic, so keep it generous. */
    std::uint64_t pairDeadlineMs = 0;
    /** Base delay before retry attempt k of 2^(k-1) * this (ms),
     *  with the exponent clamped (kMaxBackoffExponent) and the delay
     *  capped (kMaxBackoffDelayMs) -- see retryBackoffDelayMs().
     *  0 retries immediately (the deterministic-test default). */
    std::uint64_t retryBackoffMs = 0;
    /** Test-only injection hook; not part of the config key.
     *  Borrowed pointer, nullptr in production. */
    FaultInjector *faultInjector = nullptr;
    /// @}

    /** @name Interval telemetry */
    /// @{
    /**
     * Micro-op sampling interval for per-pair time series (the
     * simulated `perf stat -I`); 0 (default) disables sampling.
     * Sampling is observation-only: aggregate results are
     * byte-identical with it on or off, so it is deliberately NOT
     * part of the config key. Multi-threaded pairs sample in coarse
     * mode: the interleaver's chunks cannot be capped at boundaries
     * (chunk size shapes L3 contention), so rows land at the first
     * chunk end past each boundary instead of exactly on it.
     */
    std::uint64_t sampleIntervalOps = 0;
    /** Where completed series go; borrowed pointer, may stay null to
     *  only populate PairResult::series. Written from worker threads
     *  when jobs > 1, so the sink must be safe for concurrent
     *  callers (the bundled sinks are). */
    telemetry::TelemetrySink *telemetrySink = nullptr;
    /// @}

    /** @name Parallel execution */
    /// @{
    /**
     * Worker threads a sweep runs on (1 = sequential, 0 = hardware
     * concurrency). Results, aggregates and journal commits are
     * byte-identical at any job count -- every pair's seed derives
     * purely from (root seed, profile, size, input) and completions
     * are committed in canonical pair order -- so this is
     * deliberately NOT part of the config key.
     */
    unsigned jobs = 1;
    /// @}

    /** @name Hot-path batching (see docs/performance.md) */
    /// @{
    /**
     * Micro-ops per TraceSource::nextBatch() pull on the simulator's
     * batched fast lane (0 = the simulator default). Purely an
     * execution-strategy knob: results, journals and telemetry are
     * byte-identical at any batch size, so it is deliberately NOT
     * part of the config key.
     */
    std::uint64_t batchOps = 0;
    /**
     * Forces the per-op reference lane (TraceSource::next() plus
     * per-op consume). The golden identity tests and bench_hot_path
     * diff the batched lane against it; also NOT in the config key.
     */
    bool unbatchedStepping = false;
    /// @}

    /** @name Trace capture/replay (see docs/performance.md) */
    /// @{
    /**
     * Capture-once/replay-many arena store. When set, eligible pairs
     * (no fault injector, no watchdog deadlines -- the watchdog's
     * cooperative cancel must act DURING generation) replay the
     * recorded micro-op stream instead of regenerating it. Replay is
     * draw-for-draw identical to live generation (pinned by the arena
     * golden tests), so the store -- and its budget, eviction and
     * spill knobs -- is an execution strategy and deliberately NOT
     * part of the config key. Borrowed pointer; must outlive the
     * runner and supports concurrent acquires.
     */
    TraceArenaStore *arenaStore = nullptr;
    /// @}
};

/** Retry backoff policy constants (see retryBackoffDelayMs). */
/// @{
/** Largest exponent 2^k the backoff doubling may reach; clamping it
 *  keeps the shift well-defined for any retry count (shifting by the
 *  type width is undefined behaviour). */
inline constexpr unsigned kMaxBackoffExponent = 16;
/** Hard ceiling on a single retry delay. */
inline constexpr std::uint64_t kMaxBackoffDelayMs = 60'000;
/// @}

/**
 * Delay before retry @p attempt (1-based; attempt 0 is the first try
 * and never sleeps): `base_ms * 2^(attempt-1)` with the exponent
 * clamped to kMaxBackoffExponent and the result capped at
 * kMaxBackoffDelayMs, so arbitrarily large retry counts can neither
 * shift past the type width nor sleep for geological time.
 */
std::uint64_t retryBackoffDelayMs(std::uint64_t base_ms,
                                  unsigned attempt);

/** Result of one application-input pair. */
struct PairResult
{
    std::string name;                      //!< e.g. "502.gcc_r-in3"
    const workloads::WorkloadProfile *profile = nullptr;
    workloads::InputSize size = workloads::InputSize::Ref;
    unsigned inputIndex = 0;
    /** True when the pair must be excluded from aggregate analysis:
     *  either the paper could not collect it, or every attempt at it
     *  failed at runtime (same downstream semantics). */
    bool errored = false;
    /** Attempts consumed (1 = first try succeeded). */
    unsigned attempts = 1;
    /** One record per failed attempt, oldest first. Non-empty with
     *  errored == false means the pair recovered under retry. */
    std::vector<FailureRecord> failures;

    /** Last failure when the pair errored at runtime, else nullptr
     *  (paper-errored pairs carry no runtime failure). */
    const FailureRecord *finalFailure() const;

    /** True when retries recovered the pair after transient failures. */
    bool recovered() const { return !failures.empty() && !errored; }

    /**
     * True when this result was replayed from the result-cache
     * journal instead of simulated this session. Not persisted;
     * progress reporting uses it to keep rate/ETA estimates honest on
     * resumed sweeps (replays complete in microseconds).
     */
    bool replayed = false;

    /** Counters over the measured interval (simulation scale). */
    counters::CounterSet counters;
    /** Measured-interval cycles (max across threads). */
    double wallCycles = 0.0;

    /**
     * Per-interval time series of the measured window when interval
     * sampling was enabled, else null. Multi-threaded pairs carry a
     * coarse-boundary series (see RunnerOptions::sampleIntervalOps).
     * Only the successful attempt's series survives: retried
     * attempts discard their partial series. Not persisted by the
     * result cache -- cache replays carry no series.
     */
    std::shared_ptr<const telemetry::TimeSeries> series;

    /** Paper-scale instruction count for this pair, in billions. */
    double instrBillions = 0.0;
    /** Paper-scale execution time in seconds. */
    double seconds = 0.0;

    /** inst_retired.any / cpu_clk_unhalted.ref_tsc. */
    double ipc() const;
};

/**
 * @name Pair-identity helpers
 * The exact derivations SuiteRunner::runPairAttempt() uses, exposed
 * so alternate execution engines (suite/fanout.hh) reproduce per-pair
 * identity -- build options, seeds and paper-unit scaling -- by
 * construction rather than by copy.
 */
/// @{

/** Build options for @p attempt of a pair under @p options: the
 *  sample+warmup op budget with the deterministic per-attempt seed
 *  perturbation (attempt 0 always uses the unperturbed seed). */
workloads::BuildOptions attemptBuildOptions(const RunnerOptions &options,
                                            unsigned attempt);

/** The per-pair simulator/trace seed: derives purely from the build
 *  seed and the pair identity (profile name, size, input index). */
std::uint64_t pairSimSeed(const workloads::AppInputPair &pair,
                          std::uint64_t build_seed);

/** A PairResult shell for @p pair: identity fields plus the
 *  paper-errored flag, no measurements yet. */
PairResult makePairResult(const workloads::AppInputPair &pair);

/**
 * The shared measurement tail: installs @p sim_result into @p result
 * and scales the sampled interval back to paper units (instruction
 * billions, seconds; the profile's declared RSS/VSZ override the
 * sampling substrate's footprint, floored by pages actually touched).
 * Throws PairExecutionError(Invariant) when the measured interval
 * retired nothing.
 */
void finalizePairResult(const RunnerOptions &options,
                        const sim::SimResult &sim_result,
                        PairResult &result);

/// @}

/**
 * Runs pairs on a fresh simulator each (no cross-pair pollution).
 * Deterministic: identical options produce identical results, at any
 * job count -- a parallel sweep is byte-identical to a sequential
 * one.
 *
 * Every pair runs inside a failure boundary: exceptions, invariant
 * violations, malformed profiles and watchdog expiries become an
 * errored PairResult with a FailureRecord per failed attempt, so one
 * bad pair can never sink a sweep. Failed attempts are retried up to
 * RunnerOptions::maxRetries times with exponential backoff and a
 * deterministic per-attempt seed perturbation (attempt 0 always uses
 * the unperturbed seed, so fault-free sweeps are byte-identical
 * whether or not retries are enabled).
 */
class SuiteRunner
{
  public:
    /** Called after each pair of a sweep completes (observer gets the
     *  result plus the pair's index and the sweep size). */
    using PairObserver = std::function<void(
        const PairResult &, std::size_t index, std::size_t total)>;

    explicit SuiteRunner(RunnerOptions options = {});

    /** Runs a single pair inside the failure boundary; never throws
     *  for per-pair faults (the result is marked errored instead). */
    PairResult runPair(const workloads::AppInputPair &pair) const;

    /** Runs every pair of @p suite at @p size, in suite order. */
    std::vector<PairResult> runAll(
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;

    /** runAll() variant notifying @p observer after each pair, which
     *  is how the result cache journals completed pairs. */
    std::vector<PairResult> runAll(
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size, const PairObserver &observer) const;

    /**
     * Runs @p pairs through the worker pool (RunnerOptions::jobs;
     * 1 = sequential on the calling thread) and returns results in
     * pair order regardless of completion order: each worker pulls
     * the next pair index from a shared counter and stores its result
     * into the pre-sized slot for that pair.
     *
     * @p observer is invoked in canonical pair order -- a completed
     * pair is held back until every earlier pair has been delivered
     * (lowest-uncommitted-index drain) -- and never concurrently, so
     * journaling through it always extends a valid prefix. Observer
     * indices run from @p index_offset; @p total is the sweep size
     * reported to the observer (0 = index_offset + pairs.size()),
     * letting a resumed sweep report progress against the full sweep.
     */
    std::vector<PairResult> runPairs(
        const std::vector<workloads::AppInputPair> &pairs,
        const PairObserver &observer = {}, std::size_t index_offset = 0,
        std::size_t total = 0) const;

    const RunnerOptions &options() const { return options_; }

    /** Stable fingerprint of everything that affects results. */
    std::string configKey() const;

  private:
    /** One uncontained attempt; throws PairExecutionError on faults. */
    PairResult runPairAttempt(const workloads::AppInputPair &pair,
                              unsigned attempt) const;

    RunnerOptions options_;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_RUNNER_HH_
