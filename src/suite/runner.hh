/**
 * @file
 * Suite execution: runs application-input pairs on the simulator the
 * way the paper runs SPEC under `perf stat` -- one pair at a time,
 * collecting the full counter set -- and scales sampled measurements
 * back to paper units (billions of instructions, seconds).
 */

#ifndef SPEC17_SUITE_RUNNER_HH_
#define SPEC17_SUITE_RUNNER_HH_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "counters/perf_event.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "suite/failure.hh"
#include "suite/fault_injection.hh"
#include "telemetry/sampler.hh"
#include "telemetry/sink.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace spec17 {
namespace suite {

/**
 * Installs the steady-state cache residency a long-running process
 * would have built: each data region of @p generator that fits a
 * cache level is pre-filled into that level, and the code footprint
 * into L2/L3. Used by the runner before every measured sample; also
 * useful for standalone experiments that bypass the runner.
 */
void prefillSteadyState(sim::CpuSimulator &core,
                        const trace::SyntheticTraceGenerator &generator);

/** Runner configuration. */
struct RunnerOptions
{
    sim::SystemConfig system = sim::SystemConfig::haswellXeonE52650Lv3();
    /** Micro-ops measured per pair (after warmup). */
    std::uint64_t sampleOps = 2'000'000;
    /** Micro-ops executed before measurement starts (cold caches). */
    std::uint64_t warmupOps = 600'000;
    /** Root seed for all stochastic components. */
    std::uint64_t seed = 0x5bec17;

    /** @name Fault isolation */
    /// @{
    /** Additional attempts after a failed first try (0 = fail fast). */
    unsigned maxRetries = 0;
    /**
     * Watchdog: micro-op budget per attempt, detecting runaway trace
     * generation deterministically. 0 disables. Must comfortably
     * exceed sampleOps + warmupOps or every pair trips it.
     */
    std::uint64_t pairDeadlineOps = 0;
    /** Watchdog: wall-clock budget per attempt in ms (0 disables).
     *  Catches genuine stalls; unlike the op budget it is inherently
     *  non-deterministic, so keep it generous. */
    std::uint64_t pairDeadlineMs = 0;
    /** Base delay before retry attempt k of 2^(k-1) * this (ms).
     *  0 retries immediately (the deterministic-test default). */
    std::uint64_t retryBackoffMs = 0;
    /** Test-only injection hook; not part of the config key.
     *  Borrowed pointer, nullptr in production. */
    FaultInjector *faultInjector = nullptr;
    /// @}

    /** @name Interval telemetry */
    /// @{
    /**
     * Micro-op sampling interval for per-pair time series (the
     * simulated `perf stat -I`); 0 (default) disables sampling.
     * Sampling is observation-only: aggregate results are
     * byte-identical with it on or off, so it is deliberately NOT
     * part of the config key. Multi-threaded pairs run through the
     * one-shot multicore interleaver and are not sampled.
     */
    std::uint64_t sampleIntervalOps = 0;
    /** Where completed series go; borrowed pointer, may stay null to
     *  only populate PairResult::series. */
    telemetry::TelemetrySink *telemetrySink = nullptr;
    /// @}
};

/** Result of one application-input pair. */
struct PairResult
{
    std::string name;                      //!< e.g. "502.gcc_r-in3"
    const workloads::WorkloadProfile *profile = nullptr;
    workloads::InputSize size = workloads::InputSize::Ref;
    unsigned inputIndex = 0;
    /** True when the pair must be excluded from aggregate analysis:
     *  either the paper could not collect it, or every attempt at it
     *  failed at runtime (same downstream semantics). */
    bool errored = false;
    /** Attempts consumed (1 = first try succeeded). */
    unsigned attempts = 1;
    /** One record per failed attempt, oldest first. Non-empty with
     *  errored == false means the pair recovered under retry. */
    std::vector<FailureRecord> failures;

    /** Last failure when the pair errored at runtime, else nullptr
     *  (paper-errored pairs carry no runtime failure). */
    const FailureRecord *finalFailure() const;

    /** True when retries recovered the pair after transient failures. */
    bool recovered() const { return !failures.empty() && !errored; }

    /** Counters over the measured interval (simulation scale). */
    counters::CounterSet counters;
    /** Measured-interval cycles (max across threads). */
    double wallCycles = 0.0;

    /**
     * Per-interval time series of the measured window when interval
     * sampling was enabled (single-threaded pairs only), else null.
     * Only the successful attempt's series survives: retried
     * attempts discard their partial series. Not persisted by the
     * result cache -- cache replays carry no series.
     */
    std::shared_ptr<const telemetry::TimeSeries> series;

    /** Paper-scale instruction count for this pair, in billions. */
    double instrBillions = 0.0;
    /** Paper-scale execution time in seconds. */
    double seconds = 0.0;

    /** inst_retired.any / cpu_clk_unhalted.ref_tsc. */
    double ipc() const;
};

/**
 * Runs pairs on a fresh simulator each (no cross-pair pollution).
 * Deterministic: identical options produce identical results.
 *
 * Every pair runs inside a failure boundary: exceptions, invariant
 * violations, malformed profiles and watchdog expiries become an
 * errored PairResult with a FailureRecord per failed attempt, so one
 * bad pair can never sink a sweep. Failed attempts are retried up to
 * RunnerOptions::maxRetries times with exponential backoff and a
 * deterministic per-attempt seed perturbation (attempt 0 always uses
 * the unperturbed seed, so fault-free sweeps are byte-identical
 * whether or not retries are enabled).
 */
class SuiteRunner
{
  public:
    /** Called after each pair of a sweep completes (observer gets the
     *  result plus the pair's index and the sweep size). */
    using PairObserver = std::function<void(
        const PairResult &, std::size_t index, std::size_t total)>;

    explicit SuiteRunner(RunnerOptions options = {});

    /** Runs a single pair inside the failure boundary; never throws
     *  for per-pair faults (the result is marked errored instead). */
    PairResult runPair(const workloads::AppInputPair &pair) const;

    /** Runs every pair of @p suite at @p size, in suite order. */
    std::vector<PairResult> runAll(
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size) const;

    /** runAll() variant notifying @p observer after each pair, which
     *  is how the result cache journals completed pairs. */
    std::vector<PairResult> runAll(
        const std::vector<workloads::WorkloadProfile> &suite,
        workloads::InputSize size, const PairObserver &observer) const;

    const RunnerOptions &options() const { return options_; }

    /** Stable fingerprint of everything that affects results. */
    std::string configKey() const;

  private:
    /** One uncontained attempt; throws PairExecutionError on faults. */
    PairResult runPairAttempt(const workloads::AppInputPair &pair,
                              unsigned attempt) const;

    RunnerOptions options_;
};

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_RUNNER_HH_
