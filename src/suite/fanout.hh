/**
 * @file
 * Multi-point fan-out execution: runs M design points (same pair
 * enumeration, different SystemConfigs) through one shared trace
 * arena, reading each pair's captured stream once per lockstep chunk
 * instead of once per point.
 *
 * Three cost levers compose here (docs/performance.md):
 *  - capture-once/replay-many arenas (suite/arena_store.hh): the
 *    pair's trace is generated once and every point replays it
 *    zero-copy;
 *  - prefill-state cloning: points sharing a hierarchy configuration
 *    form a clone group -- one leader pays the steady-state prefill,
 *    siblings copy its cache state (CpuSimulator::copyPrefillFrom);
 *  - simulator buffer recycling: dead simulators from the previous
 *    pair donate their page-faulted heap buffers to the next pair's
 *    constructions (the recycle parameter).
 *
 * Identity by construction: every cell reuses the runner's own
 * derivations (attemptBuildOptions, pairSimSeed, prefillSteadyState,
 * finalizePairResult) and replay is draw-for-draw identical to live
 * generation, so a fan-out sweep's results -- and each point's
 * journal bytes -- are identical to M independent per-point sweeps.
 * Any cell the engine cannot run this way (multi-threaded pairs,
 * malformed profiles, cells that fault mid-replay) delegates to
 * SuiteRunner::runPair, which reproduces the per-point semantics
 * (retries, failure records) exactly.
 */

#ifndef SPEC17_SUITE_FANOUT_HH_
#define SPEC17_SUITE_FANOUT_HH_

#include <string>
#include <vector>

#include "suite/result_cache.hh"
#include "suite/runner.hh"

namespace spec17 {
namespace suite {

/** One design point of a fan-out sweep. */
struct FanoutSession
{
    /** The point's full runner configuration (typically the shared
     *  base with only `system` changed). Must satisfy
     *  fanoutEligible() and share every non-system knob -- and the
     *  arena store -- with its sibling sessions. */
    RunnerOptions runner;
    /** Result-journal base path for this point (the same path a
     *  per-point ResultCache would use); empty disables journaling. */
    std::string cachePath;
    /** Notified after each of this point's pairs, in canonical order
     *  (journal-replayed prefix rows included, exactly as
     *  ResultCache::runOrLoad reports them). */
    SuiteRunner::PairObserver observer;
};

/** Sweep-wide execution knobs shared by every session. */
struct FanoutOptions
{
    /** Resume each point from its partial journal. */
    bool resume = false;
    /** Shard slice of the pair cross-product (shared by all points). */
    ShardSpec shard;
};

/**
 * True when @p options can run on the fan-out engine: an arena store
 * is attached and nothing that requires live generation or per-pair
 * observation hooks is armed (interval telemetry, telemetry sink,
 * fault injection, watchdog deadlines, the unbatched reference lane).
 * Ineligible configurations should run per-point sweeps instead; the
 * results are identical either way.
 */
bool fanoutEligible(const RunnerOptions &options);

/**
 * Runs every pair of (@p suite, @p size) across all @p sessions,
 * pair-major: per pair, the arena is acquired once and all points
 * simulate it in lockstep chunks. Returns one result vector per
 * session, in session order, each byte-equivalent to that session's
 * ResultCache::runOrLoad (journals included, at any job count).
 * Sessions must be non-empty, eligible, and agree on every
 * non-system runner knob.
 */
std::vector<std::vector<PairResult>> runFanoutSweep(
    const std::vector<FanoutSession> &sessions,
    const std::vector<workloads::WorkloadProfile> &suite,
    workloads::InputSize size, const FanoutOptions &options = {});

/**
 * Clone-group key of @p hierarchy: serializes every field that
 * shapes post-prefill cache state (all four cache geometries
 * including way predictor, both prefetcher slots, stream geometry).
 * Two points with equal keys may share one prefill via
 * CpuSimulator::copyPrefillFrom. Exposed for tests.
 */
std::string hierarchyCloneKey(const sim::HierarchyConfig &hierarchy);

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_FANOUT_HH_
