#include "suite/result_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace spec17 {
namespace suite {

using counters::PerfEvent;
using workloads::InputSize;
using workloads::WorkloadProfile;

namespace {

std::string
fingerprint(const SuiteRunner &runner)
{
    // FNV-1a over the full config key; collisions would need a
    // deliberately crafted configuration.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : runner.configKey()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
sectionFile(const std::string &base, const WorkloadProfile &any,
            InputSize size)
{
    const char *generation =
        any.generation == workloads::SuiteGeneration::Cpu2017
        ? "cpu2017" : "cpu2006";
    return base + "." + generation + "."
        + workloads::inputSizeName(size) + ".csv";
}

} // namespace

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
}

std::string
ResultCache::defaultPath()
{
    if (const char *env = std::getenv("SPEC17_CACHE"))
        return env;
    return "spec17_results";
}

std::optional<std::vector<PairResult>>
ResultCache::load(const SuiteRunner &runner,
                  const std::vector<WorkloadProfile> &suite,
                  InputSize size) const
{
    if (path_.empty() || suite.empty())
        return std::nullopt;
    std::ifstream in(sectionFile(path_, suite.front(), size));
    if (!in)
        return std::nullopt;

    std::string line;
    if (!std::getline(in, line) || line != fingerprint(runner))
        return std::nullopt;
    // The header row doubles as a format check: a cache written by a
    // build with a different counter set must read as a miss, not as
    // corrupt data.
    std::string expected_header =
        "name,input,errored,wall_cycles,instr_billions,seconds";
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        expected_header +=
            "," + perfEventName(static_cast<PerfEvent>(e));
    }
    if (!std::getline(in, line) || line != expected_header)
        return std::nullopt;

    const auto pairs = enumeratePairs(suite, size);
    std::vector<PairResult> results;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream cells(line);
        std::string cell;
        PairResult r;
        auto next = [&]() {
            SPEC17_ASSERT(std::getline(cells, cell, ','),
                          "truncated cache row");
            return cell;
        };
        r.name = next();
        r.size = size;
        r.inputIndex = static_cast<unsigned>(std::stoul(next()));
        r.errored = next() == "1";
        r.wallCycles = std::stod(next());
        r.instrBillions = std::stod(next());
        r.seconds = std::stod(next());
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            r.counters.set(static_cast<PerfEvent>(e),
                           std::stoull(next()));
        }
        results.push_back(std::move(r));
    }
    if (results.size() != pairs.size())
        return std::nullopt;
    // Rebind profile pointers by position (pair order is stable).
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].name != pairs[i].displayName())
            return std::nullopt;
        results[i].profile = pairs[i].profile;
    }
    return results;
}

void
ResultCache::save(const SuiteRunner &runner,
                  const std::vector<WorkloadProfile> &suite,
                  InputSize size,
                  const std::vector<PairResult> &results) const
{
    if (path_.empty() || suite.empty())
        return;
    const std::string file = sectionFile(path_, suite.front(), size);
    std::ofstream out(file, std::ios::trunc);
    if (!out) {
        warn("cannot write result cache at ", file);
        return;
    }
    out << fingerprint(runner) << "\n";
    out << "name,input,errored,wall_cycles,instr_billions,seconds";
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e)
        out << "," << perfEventName(static_cast<PerfEvent>(e));
    out << "\n";
    out.precision(17);
    for (const PairResult &r : results) {
        out << r.name << "," << r.inputIndex << ","
            << (r.errored ? 1 : 0) << "," << r.wallCycles << ","
            << r.instrBillions << "," << r.seconds;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            out << ","
                << r.counters.get(static_cast<PerfEvent>(e));
        }
        out << "\n";
    }
}

std::vector<PairResult>
ResultCache::runOrLoad(const SuiteRunner &runner,
                       const std::vector<WorkloadProfile> &suite,
                       InputSize size)
{
    if (auto cached = load(runner, suite, size))
        return std::move(*cached);
    std::vector<PairResult> results = runner.runAll(suite, size);
    save(runner, suite, size, results);
    return results;
}

void
ResultCache::invalidate()
{
    if (path_.empty())
        return;
    for (const char *generation : {"cpu2017", "cpu2006"}) {
        for (InputSize size : workloads::kAllInputSizes) {
            const std::string file = path_ + "." + generation + "."
                + workloads::inputSizeName(size) + ".csv";
            std::remove(file.c_str());
        }
    }
}

} // namespace suite
} // namespace spec17
