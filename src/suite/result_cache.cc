#include "suite/result_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace spec17 {
namespace suite {

using counters::PerfEvent;
using workloads::InputSize;
using workloads::WorkloadProfile;

namespace {

std::string
fingerprint(const SuiteRunner &runner)
{
    // FNV-1a over the full config key; collisions would need a
    // deliberately crafted configuration.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : runner.configKey()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
sectionFile(const std::string &base, const WorkloadProfile &any,
            InputSize size)
{
    const char *generation =
        any.generation == workloads::SuiteGeneration::Cpu2017
        ? "cpu2017" : "cpu2006";
    return base + "." + generation + "."
        + workloads::inputSizeName(size) + ".csv";
}

std::string
expectedHeader()
{
    std::string header = "name,input,errored,attempts,failures,"
                         "wall_cycles,instr_billions,seconds";
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e)
        header += "," + perfEventName(static_cast<PerfEvent>(e));
    return header;
}

/** Fixed cells before the per-event counter columns. */
constexpr std::size_t kFixedFields = 8;

std::optional<double>
parseDouble(const std::string &cell)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(cell.c_str(), &end);
    if (cell.empty() || end == nullptr || *end != '\0' || errno != 0)
        return std::nullopt;
    return value;
}

std::optional<std::uint64_t>
parseUint(const std::string &cell)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long value =
        std::strtoull(cell.c_str(), &end, 10);
    if (cell.empty() || end == nullptr || *end != '\0' || errno != 0)
        return std::nullopt;
    return value;
}

/**
 * Parses one journal row into a PairResult (profile left unbound).
 * Returns nullopt -- with @p reason set -- on any malformation: wrong
 * field count, unparsable number, undecodable failure history. The
 * caller decides whether that means a miss or a torn tail.
 */
std::optional<PairResult>
parseRow(const std::string &line, InputSize size, std::string &reason)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    const std::size_t want = kFixedFields + counters::kNumPerfEvents;
    if (cells.size() != want) {
        reason = "expected " + std::to_string(want) + " fields, got "
            + std::to_string(cells.size());
        return std::nullopt;
    }

    PairResult r;
    r.name = cells[0];
    r.size = size;
    const auto input = parseUint(cells[1]);
    const auto errored = parseUint(cells[2]);
    const auto attempts = parseUint(cells[3]);
    const auto failures = parseFailures(cells[4]);
    const auto wall = parseDouble(cells[5]);
    const auto instr = parseDouble(cells[6]);
    const auto seconds = parseDouble(cells[7]);
    if (!input || !errored || !attempts || !failures || !wall || !instr
        || !seconds) {
        reason = "unparsable fixed field";
        return std::nullopt;
    }
    r.inputIndex = static_cast<unsigned>(*input);
    r.errored = *errored != 0;
    r.attempts = static_cast<unsigned>(*attempts);
    r.failures = *failures;
    r.wallCycles = *wall;
    r.instrBillions = *instr;
    r.seconds = *seconds;
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto count = parseUint(cells[kFixedFields + e]);
        if (!count) {
            reason = "unparsable counter "
                + std::string(perfEventName(static_cast<PerfEvent>(e)));
            return std::nullopt;
        }
        r.counters.set(static_cast<PerfEvent>(e), *count);
    }
    return r;
}

void
writeRow(std::ostream &out, const PairResult &r)
{
    out << r.name << "," << r.inputIndex << "," << (r.errored ? 1 : 0)
        << "," << r.attempts << "," << serializeFailures(r.failures)
        << "," << r.wallCycles << "," << r.instrBillions << ","
        << r.seconds;
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e)
        out << "," << r.counters.get(static_cast<PerfEvent>(e));
    out << "\n";
}

/**
 * Reads fingerprint + header + rows. Rows are parsed up to the first
 * malformation; @p torn reports whether trailing content was
 * quarantined (torn tail or stale rows after a valid prefix).
 */
std::vector<PairResult>
readRows(std::istream &in, const SuiteRunner &runner, InputSize size,
         bool &header_ok, bool &torn)
{
    header_ok = false;
    torn = false;
    std::vector<PairResult> rows;
    std::string line;
    if (!std::getline(in, line) || line != fingerprint(runner))
        return rows;
    // The header row doubles as a format check: a cache written by a
    // build with a different counter set must read as a miss, not as
    // corrupt data.
    if (!std::getline(in, line) || line != expectedHeader())
        return rows;
    header_ok = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string reason;
        auto row = parseRow(line, size, reason);
        if (!row) {
            warn("quarantining journal tail (", reason,
                 ") after ", rows.size(), " valid rows");
            torn = true;
            break;
        }
        rows.push_back(std::move(*row));
    }
    return rows;
}

} // namespace

ResultCache::ResultCache(std::string path, bool resume)
    : path_(std::move(path)), resume_(resume)
{
}

std::string
ResultCache::defaultPath()
{
    if (const char *env = std::getenv("SPEC17_CACHE"))
        return env;
    return "spec17_results";
}

std::optional<std::vector<PairResult>>
ResultCache::load(const SuiteRunner &runner,
                  const std::vector<WorkloadProfile> &suite,
                  InputSize size) const
{
    if (path_.empty() || suite.empty())
        return std::nullopt;
    std::ifstream in(sectionFile(path_, suite.front(), size));
    if (!in)
        return std::nullopt;

    bool header_ok = false, torn = false;
    auto results = readRows(in, runner, size, header_ok, torn);
    if (!header_ok || torn)
        return std::nullopt;

    const auto pairs = enumeratePairs(suite, size);
    if (results.size() != pairs.size())
        return std::nullopt;
    // Rebind profile pointers by position (pair order is stable).
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].name != pairs[i].displayName())
            return std::nullopt;
        results[i].profile = pairs[i].profile;
        results[i].replayed = true;
    }
    return results;
}

std::vector<PairResult>
ResultCache::loadPartial(const SuiteRunner &runner,
                         const std::vector<WorkloadProfile> &suite,
                         InputSize size) const
{
    std::vector<PairResult> prefix;
    if (path_.empty() || suite.empty())
        return prefix;
    std::ifstream in(sectionFile(path_, suite.front(), size));
    if (!in)
        return prefix;

    bool header_ok = false, torn = false;
    auto rows = readRows(in, runner, size, header_ok, torn);
    if (!header_ok)
        return prefix;

    // Only a prefix that matches the sweep's pair order is a valid
    // checkpoint; anything beyond a name mismatch is quarantined.
    const auto pairs = enumeratePairs(suite, size);
    for (std::size_t i = 0; i < rows.size() && i < pairs.size(); ++i) {
        if (rows[i].name != pairs[i].displayName()) {
            warn("journal row ", i, " names '", rows[i].name,
                 "' where '", pairs[i].displayName(),
                 "' was expected; discarding the rest");
            break;
        }
        rows[i].profile = pairs[i].profile;
        rows[i].replayed = true;
        prefix.push_back(std::move(rows[i]));
    }
    return prefix;
}

void
ResultCache::save(const SuiteRunner &runner,
                  const std::vector<WorkloadProfile> &suite,
                  InputSize size, const std::vector<PairResult> &results,
                  bool quiet) const
{
    if (path_.empty() || suite.empty())
        return;
    if (quiet && journalWarned_)
        return;
    const std::string file = sectionFile(path_, suite.front(), size);
    // Write-temp-then-rename: a crash mid-save can never leave a
    // half-written cache, and concurrent readers see either the old
    // or the new journal, both complete.
    const std::string temp = file + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out) {
            if (!quiet || !journalWarned_)
                warn("cannot write result cache at ", temp);
            journalWarned_ = true;
            return;
        }
        out << fingerprint(runner) << "\n" << expectedHeader() << "\n";
        out.precision(17);
        for (const PairResult &r : results)
            writeRow(out, r);
        out.flush();
        if (!out) {
            warn("short write to ", temp, "; cache not committed");
            journalWarned_ = true;
            std::remove(temp.c_str());
            return;
        }
    }
    if (std::rename(temp.c_str(), file.c_str()) != 0) {
        if (!quiet || !journalWarned_)
            warn("cannot commit result cache to ", file, ": ",
                 std::strerror(errno));
        journalWarned_ = true;
        std::remove(temp.c_str());
    }
}

std::vector<PairResult>
ResultCache::runOrLoad(const SuiteRunner &runner,
                       const std::vector<WorkloadProfile> &suite,
                       InputSize size,
                       const SuiteRunner::PairObserver &observer)
{
    if (auto cached = load(runner, suite, size))
        return std::move(*cached);

    std::vector<PairResult> results;
    if (resume_) {
        results = loadPartial(runner, suite, size);
        if (!results.empty()) {
            inform("resuming sweep from journal: ", results.size(),
                   " pair(s) replayed without re-simulation");
        }
    }

    const auto pairs = enumeratePairs(suite, size);
    if (observer) {
        for (std::size_t i = 0; i < results.size(); ++i)
            observer(results[i], i, pairs.size());
    }
    journalWarned_ = false;
    const std::vector<workloads::AppInputPair> remaining(
        pairs.begin() + static_cast<std::ptrdiff_t>(results.size()),
        pairs.end());
    // The remainder runs through the runner's worker pool; its
    // observer delivers completions in canonical pair order even when
    // jobs > 1 (and never concurrently), so every checkpoint below
    // extends a valid journal prefix -- an interrupted sweep resumes
    // from here instead of restarting. Quiet on unwritable paths (one
    // warning per sweep, not one per pair).
    runner.runPairs(
        remaining,
        [&](const PairResult &result, std::size_t index,
            std::size_t total) {
            results.push_back(result);
            save(runner, suite, size, results, /*quiet=*/true);
            if (observer)
                observer(result, index, total);
        },
        results.size(), pairs.size());
    // Final commit doubles as the loud failure report for unwritable
    // cache locations.
    save(runner, suite, size, results);
    return results;
}

void
ResultCache::invalidate()
{
    if (path_.empty())
        return;
    for (const char *generation : {"cpu2017", "cpu2006"}) {
        for (InputSize size : workloads::kAllInputSizes) {
            const std::string file = path_ + "." + generation + "."
                + workloads::inputSizeName(size) + ".csv";
            std::remove(file.c_str());
            std::remove((file + ".tmp").c_str());
        }
    }
}

} // namespace suite
} // namespace spec17
