#include "suite/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "suite/journal.hh"
#include "util/logging.hh"

namespace spec17 {
namespace suite {

using counters::PerfEvent;
using workloads::InputSize;
using workloads::WorkloadProfile;

namespace {

const char *
generationName(const WorkloadProfile &any)
{
    return any.generation == workloads::SuiteGeneration::Cpu2017
        ? "cpu2017" : "cpu2006";
}

std::string
sectionFile(const std::string &base, const WorkloadProfile &any,
            InputSize size, const ShardSpec &shard)
{
    std::string name = base + "." + generationName(any) + "."
        + workloads::inputSizeName(size);
    if (shard.active())
        name += ".shard" + std::to_string(shard.index) + "of"
            + std::to_string(shard.count);
    return name + ".csv";
}

/** Payload columns; the journal's column header appends record_hash. */
std::string
payloadHeader()
{
    std::string header = "name,input,errored,attempts,failures,"
                         "wall_cycles,instr_billions,seconds";
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e)
        header += "," + perfEventName(static_cast<PerfEvent>(e));
    return header;
}

std::string
columnHeader()
{
    return payloadHeader() + ",record_hash";
}

/** Fixed cells before the per-event counter columns. */
constexpr std::size_t kFixedFields = 8;

std::optional<double>
parseDouble(const std::string &cell)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(cell.c_str(), &end);
    if (cell.empty() || end == nullptr || *end != '\0' || errno != 0)
        return std::nullopt;
    return value;
}

std::optional<std::uint64_t>
parseUint(const std::string &cell)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long value =
        std::strtoull(cell.c_str(), &end, 10);
    if (cell.empty() || end == nullptr || *end != '\0' || errno != 0)
        return std::nullopt;
    return value;
}

/**
 * Parses one record payload (the record line minus its hash cell)
 * into a PairResult (profile left unbound). Returns nullopt -- with
 * @p reason set -- on any malformation: wrong field count, unparsable
 * number, undecodable failure history. The caller decides whether
 * that means a miss or a torn tail.
 */
std::optional<PairResult>
parseRow(const std::string &line, InputSize size, std::string &reason)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    const std::size_t want = kFixedFields + counters::kNumPerfEvents;
    if (cells.size() != want) {
        reason = "expected " + std::to_string(want) + " fields, got "
            + std::to_string(cells.size());
        return std::nullopt;
    }

    PairResult r;
    r.name = cells[0];
    r.size = size;
    const auto input = parseUint(cells[1]);
    const auto errored = parseUint(cells[2]);
    const auto attempts = parseUint(cells[3]);
    const auto failures = parseFailures(cells[4]);
    const auto wall = parseDouble(cells[5]);
    const auto instr = parseDouble(cells[6]);
    const auto seconds = parseDouble(cells[7]);
    if (!input || !errored || !attempts || !failures || !wall || !instr
        || !seconds) {
        reason = "unparsable fixed field";
        return std::nullopt;
    }
    r.inputIndex = static_cast<unsigned>(*input);
    r.errored = *errored != 0;
    r.attempts = static_cast<unsigned>(*attempts);
    r.failures = *failures;
    r.wallCycles = *wall;
    r.instrBillions = *instr;
    r.seconds = *seconds;
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto count = parseUint(cells[kFixedFields + e]);
        if (!count) {
            reason = "unparsable counter "
                + std::string(perfEventName(static_cast<PerfEvent>(e)));
            return std::nullopt;
        }
        r.counters.set(static_cast<PerfEvent>(e), *count);
    }
    return r;
}

/**
 * Serializes one result into its record payload. Built in a string
 * stream at full double precision so the payload -- and therefore its
 * hash, and therefore the journal bytes -- is identical no matter
 * which process (or shard) writes it.
 */
std::string
serializeRow(const PairResult &r)
{
    std::ostringstream out;
    out.precision(17);
    out << r.name << "," << r.inputIndex << "," << (r.errored ? 1 : 0)
        << "," << r.attempts << "," << serializeFailures(r.failures)
        << "," << r.wallCycles << "," << r.instrBillions << ","
        << r.seconds;
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e)
        out << "," << r.counters.get(static_cast<PerfEvent>(e));
    return out.str();
}

} // namespace

std::string
configFingerprint(const SuiteRunner &runner)
{
    // FNV-1a over the full config key; collisions would need a
    // deliberately crafted configuration.
    return hex16(fnv1a(runner.configKey()));
}

std::string
pairSetDigest(const std::vector<WorkloadProfile> &suite, InputSize size)
{
    std::uint64_t h =
        fnv1a(suite.empty() ? "empty" : generationName(suite.front()));
    h = fnv1a("|", h);
    h = fnv1a(workloads::inputSizeName(size), h);
    for (const auto &pair : enumeratePairs(suite, size)) {
        h = fnv1a("|", h);
        h = fnv1a(pair.displayName(), h);
    }
    return hex16(h);
}

ResultCache::ResultCache(std::string path, bool resume)
    : path_(std::move(path)), resume_(resume)
{
}

std::string
ResultCache::defaultPath()
{
    if (const char *env = std::getenv("SPEC17_CACHE"))
        return env;
    return "spec17_results";
}

std::string
ResultCache::journalFile(const std::vector<WorkloadProfile> &suite,
                         InputSize size) const
{
    if (path_.empty() || suite.empty())
        return "";
    return sectionFile(path_, suite.front(), size, shard_);
}

ResultCache::JournalRead
ResultCache::readJournal(
    const SuiteRunner &runner,
    const std::vector<WorkloadProfile> &suite, InputSize size,
    const std::vector<workloads::AppInputPair> &pairs) const
{
    JournalRead read;
    const std::string file = sectionFile(path_, suite.front(), size,
                                         shard_);
    std::ifstream in(file, std::ios::binary);
    if (!in)
        return read;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();

    if (ioFaults_) {
        const auto fault = ioFaults_->onJournalRead(file);
        using Kind = JournalIoFaultInjector::ReadFault::Kind;
        if (fault.kind == Kind::ShortRead
            && fault.keepBytes < content.size()) {
            content.resize(fault.keepBytes);
        } else if (fault.kind == Kind::BitFlip
                   && fault.offset < content.size()) {
            content[fault.offset] = static_cast<char>(
                static_cast<unsigned char>(content[fault.offset])
                ^ (1u << (fault.bit % 8)));
        }
    }

    const JournalScan scan = scanJournalContent(content, true);
    if (!scan.headerOk) {
        warn("ignoring journal at ", file, ": ", scan.headerError);
        read.status = JournalRead::Status::Malformed;
        return read;
    }
    read.foundFingerprint = scan.header.configFingerprint;
    if (scan.header.configFingerprint != configFingerprint(runner)) {
        read.status = JournalRead::Status::ConfigMismatch;
        return read;
    }
    if (scan.header.pairsDigest != pairSetDigest(suite, size)) {
        read.status = JournalRead::Status::PairsMismatch;
        return read;
    }
    if (scan.header.shardIndex != shard_.index
        || scan.header.shardCount != shard_.count) {
        read.status = JournalRead::Status::ShardMismatch;
        return read;
    }
    if (scan.columnHeader != columnHeader()) {
        // Another build's counter set: a miss, not corruption.
        read.status = JournalRead::Status::FormatMismatch;
        return read;
    }
    read.status = JournalRead::Status::Ok;
    if (scan.corrupt) {
        warn("quarantining journal tail of ", file, " (",
             scan.corruptReason, ") after ", scan.records.size(),
             " valid record(s)");
    }

    // The hash-verified records still cross the semantic parser and
    // the pair-order check: only an order-matching prefix is a valid
    // checkpoint of *this* sweep.
    bool ordered = true;
    for (std::size_t i = 0;
         i < scan.records.size() && i < pairs.size(); ++i) {
        const std::string &record = scan.records[i];
        const std::string payload =
            record.substr(0, record.rfind(','));
        std::string reason;
        auto row = parseRow(payload, size, reason);
        if (!row) {
            warn("quarantining journal tail (", reason, ") after ", i,
                 " valid rows");
            ordered = false;
            break;
        }
        if (row->name != pairs[i].displayName()) {
            warn("journal row ", i, " names '", row->name, "' where '",
                 pairs[i].displayName(),
                 "' was expected; discarding the rest");
            ordered = false;
            break;
        }
        row->profile = pairs[i].profile;
        row->replayed = true;
        read.rows.push_back(std::move(*row));
    }
    read.complete = ordered && !scan.corrupt
        && read.rows.size() == pairs.size()
        && scan.records.size() == pairs.size();
    return read;
}

void
ResultCache::save(const SuiteRunner &runner,
                  const std::vector<WorkloadProfile> &suite,
                  InputSize size, const std::vector<PairResult> &results,
                  bool quiet) const
{
    if (path_.empty() || suite.empty())
        return;
    if (quiet && journalWarned_)
        return;
    const std::string file = sectionFile(path_, suite.front(), size,
                                         shard_);

    // Render the complete journal image up front: the commit (and any
    // injected fault) operates on the exact final bytes.
    const std::string fp = configFingerprint(runner);
    JournalHeader header;
    header.configFingerprint = fp;
    header.pairsDigest = pairSetDigest(suite, size);
    header.shardIndex = shard_.index;
    header.shardCount = shard_.count;
    std::ostringstream image;
    image << header.serialize() << "\n" << columnHeader() << "\n";
    for (const PairResult &r : results) {
        const std::string payload = serializeRow(r);
        image << payload << "," << recordHash(fp, payload) << "\n";
    }
    const std::string content = image.str();

    JournalIoFaultInjector::WriteFault fault;
    if (ioFaults_)
        fault = ioFaults_->onJournalWrite(file, commitIndex_);
    ++commitIndex_;
    using WriteKind = JournalIoFaultInjector::WriteFault::Kind;
    if (fault.kind == WriteKind::Enospc) {
        // Failed commit, previous journal intact: the sweep carries
        // on and the uncommitted pairs are recomputed on resume.
        if (!quiet || !journalWarned_)
            warn("cannot commit result journal to ", file,
                 ": out of space (injected); continuing without "
                 "checkpoint");
        journalWarned_ = true;
        return;
    }
    if (fault.kind == WriteKind::TornWrite) {
        // Simulated crash/power cut mid-write: a byte-level prefix of
        // the new image lands in the *final* file (bypassing the
        // temp-then-rename discipline, which is exactly what this
        // fault models). The hash check quarantines the damaged tail
        // on reopen.
        std::ofstream out(file, std::ios::trunc | std::ios::binary);
        if (out)
            out.write(content.data(),
                      static_cast<std::streamsize>(
                          std::min(fault.keepBytes, content.size())));
        if (!quiet || !journalWarned_)
            warn("torn write to result journal ", file,
                 " (injected); damaged tail will be quarantined on "
                 "reopen");
        journalWarned_ = true;
        return;
    }

    // Write-temp-then-rename: a crash mid-save can never leave a
    // half-written cache, and concurrent readers see either the old
    // or the new journal, both complete.
    const std::string temp = file + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc | std::ios::binary);
        if (!out) {
            if (!quiet || !journalWarned_)
                warn("cannot write result cache at ", temp);
            journalWarned_ = true;
            return;
        }
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            warn("short write to ", temp, "; cache not committed");
            journalWarned_ = true;
            std::remove(temp.c_str());
            return;
        }
    }
    if (std::rename(temp.c_str(), file.c_str()) != 0) {
        if (!quiet || !journalWarned_)
            warn("cannot commit result cache to ", file, ": ",
                 std::strerror(errno));
        journalWarned_ = true;
        std::remove(temp.c_str());
    }
}

ResultCache::SweepPrefix
ResultCache::beginSweep(const SuiteRunner &runner,
                        const std::vector<WorkloadProfile> &suite,
                        InputSize size,
                        const std::vector<workloads::AppInputPair> &pairs)
{
    // A new session always starts with fresh commit state: the I/O
    // fault keying and the warn-once latch are per-sweep, not
    // per-cache-lifetime.
    journalWarned_ = false;
    commitIndex_ = 0;

    SweepPrefix prefix;
    if (path_.empty() || suite.empty())
        return prefix;
    JournalRead read = readJournal(runner, suite, size, pairs);
    using Status = JournalRead::Status;
    if (read.status == Status::ConfigMismatch && resume_) {
        // Replaying another campaign's records would silently
        // splice two configurations into one result set.
        throw JournalConfigMismatchError(
            "refusing to resume from " + journalFile(suite, size)
            + ": journal was written under config "
            + read.foundFingerprint
            + " but this invocation has config "
            + configFingerprint(runner)
            + " (rerun without --resume to recompute and "
              "overwrite, or point the cache elsewhere)");
    }
    if (read.status == Status::Ok && read.complete) {
        prefix.rows = std::move(read.rows);
        prefix.complete = true;
        return prefix;
    }
    if (read.status == Status::Ok && resume_) {
        prefix.rows = std::move(read.rows);
        if (!prefix.rows.empty())
            inform("resuming sweep from journal: ", prefix.rows.size(),
                   " pair(s) replayed without re-simulation");
    }
    return prefix;
}

void
ResultCache::checkpoint(const SuiteRunner &runner,
                        const std::vector<WorkloadProfile> &suite,
                        InputSize size,
                        const std::vector<PairResult> &results) const
{
    save(runner, suite, size, results, /*quiet=*/true);
}

void
ResultCache::finish(const SuiteRunner &runner,
                    const std::vector<WorkloadProfile> &suite,
                    InputSize size,
                    const std::vector<PairResult> &results) const
{
    // The loud commit doubles as the failure report for unwritable
    // cache locations.
    save(runner, suite, size, results);
}

std::vector<PairResult>
ResultCache::runOrLoad(const SuiteRunner &runner,
                       const std::vector<WorkloadProfile> &suite,
                       InputSize size,
                       const SuiteRunner::PairObserver &observer)
{
    const auto allPairs = suite.empty()
        ? std::vector<workloads::AppInputPair>{}
        : enumeratePairs(suite, size);
    const auto pairs = shardPairs(allPairs, shard_);

    SweepPrefix prefix = beginSweep(runner, suite, size, pairs);
    if (prefix.complete)
        return std::move(prefix.rows);
    std::vector<PairResult> results = std::move(prefix.rows);

    if (observer) {
        for (std::size_t i = 0; i < results.size(); ++i)
            observer(results[i], i, pairs.size());
    }
    const std::vector<workloads::AppInputPair> remaining(
        pairs.begin() + static_cast<std::ptrdiff_t>(results.size()),
        pairs.end());
    // The remainder runs through the runner's worker pool; its
    // observer delivers completions in canonical pair order even when
    // jobs > 1 (and never concurrently), so every checkpoint below
    // extends a valid journal prefix -- an interrupted sweep resumes
    // from here instead of restarting. Quiet on unwritable paths (one
    // warning per sweep, not one per pair).
    runner.runPairs(
        remaining,
        [&](const PairResult &result, std::size_t index,
            std::size_t total) {
            results.push_back(result);
            checkpoint(runner, suite, size, results);
            if (observer)
                observer(result, index, total);
        },
        results.size(), pairs.size());
    finish(runner, suite, size, results);
    return results;
}

void
ResultCache::invalidate()
{
    if (path_.empty())
        return;
    for (const char *generation : {"cpu2017", "cpu2006"}) {
        for (InputSize size : workloads::kAllInputSizes) {
            std::string stem = path_ + "." + generation + "."
                + workloads::inputSizeName(size);
            std::vector<std::string> files = {stem + ".csv"};
            if (shard_.active())
                files.push_back(stem + ".shard"
                                + std::to_string(shard_.index) + "of"
                                + std::to_string(shard_.count)
                                + ".csv");
            for (const std::string &file : files) {
                std::remove(file.c_str());
                std::remove((file + ".tmp").c_str());
            }
        }
    }
}

} // namespace suite
} // namespace spec17
