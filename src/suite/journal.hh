/**
 * @file
 * Self-validating sweep-journal format (v2) and its offline
 * toolchain: scan, fsck/repair, and shard merge.
 *
 * A v2 journal is a text file of three parts:
 *
 *   1. a one-line campaign header binding the file to its campaign:
 *      format version, config fingerprint (hash of the runner's
 *      config key), pair-set digest (hash of the full canonical
 *      pair enumeration) and shard identity `K/N`;
 *   2. a CSV column-header line (doubles as a counter-set format
 *      check) whose last column is `record_hash`;
 *   3. one record per completed pair, in the shard's pair order,
 *      each line `payload,hash` where hash covers the campaign's
 *      config fingerprint plus the payload.
 *
 * Every record's provenance and integrity is therefore checkable
 * offline, with no access to the build that wrote it: the hash binds
 * the record both to its bytes (bit-flips) and to its campaign
 * (records smuggled in from a different configuration). Shards of one
 * campaign partition the canonical pair order round-robin -- record j
 * of shard K/N holds canonical index `j*N + (K-1)` -- so a merge can
 * reconstruct the exact unsharded journal without re-enumerating the
 * suite. The unsharded journal is simply shard 1/1; merging complete
 * shards 1..N/N reproduces it byte-identically.
 *
 * This header is deliberately independent of the runner: the merge
 * and fsck tools (and tests) operate on journal files at the line
 * level, never re-simulating or re-parsing results.
 */

#ifndef SPEC17_SUITE_JOURNAL_HH_
#define SPEC17_SUITE_JOURNAL_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spec17 {
namespace suite {

/** Journal format version this build reads and writes. */
inline constexpr unsigned kJournalFormatVersion = 2;

/** FNV-1a over @p data, continuing from @p seed. */
std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/** 16-digit lowercase hex rendering of @p value. */
std::string hex16(std::uint64_t value);

/**
 * Content hash of one journal record: FNV-1a over the campaign's
 * config fingerprint, a separator, and the record payload. Binding
 * the config fingerprint in makes a record unverifiable outside its
 * campaign, not just outside its file.
 */
std::string recordHash(const std::string &config_fingerprint,
                       const std::string &payload);

/** The one-line campaign header leading every v2 journal. */
struct JournalHeader
{
    unsigned version = kJournalFormatVersion;
    /** Fingerprint of the runner config key (see configFingerprint). */
    std::string configFingerprint;
    /** Digest of the full canonical pair enumeration (pre-shard). */
    std::string pairsDigest;
    /** 1-based shard identity; 1/1 is the canonical unsharded file. */
    unsigned shardIndex = 1;
    unsigned shardCount = 1;

    /** Renders the header line (no trailing newline). */
    std::string serialize() const;

    /** Parses a header line; nullopt with @p reason set on any
     *  malformation (including a v1 journal's bare fingerprint). */
    static std::optional<JournalHeader> parse(const std::string &line,
                                              std::string &reason);

    /** "K/N" label, e.g. "2/4". */
    std::string shardLabel() const;
};

/**
 * Line-level scan of one journal file: header validation plus the
 * longest verifiable record prefix. The scan stops at the first
 * damaged record -- journals are prefix-valid by construction, so
 * everything after the first fault is untrusted.
 */
struct JournalScan
{
    /** File existed and was readable. */
    bool fileOk = false;
    /** Campaign header and column header parsed and validated. */
    bool headerOk = false;
    /** Diagnosis when !fileOk or !headerOk. */
    std::string headerError;
    JournalHeader header;
    /** Verbatim column-header line. */
    std::string columnHeader;
    /** Verbatim `payload,hash` record lines of the valid prefix. */
    std::vector<std::string> records;
    /** First CSV cell (pair name) of each valid record. */
    std::vector<std::string> names;
    /** A damaged record (and therefore suffix) was quarantined. */
    bool corrupt = false;
    /** 0-based index of the first damaged record. */
    std::size_t corruptRecord = 0;
    /** Diagnosis of the first damaged record. */
    std::string corruptReason;

    /** Fully intact: header valid and no quarantined suffix. */
    bool clean() const { return headerOk && !corrupt; }
};

/** Scans the journal at @p path (see JournalScan). */
JournalScan scanJournal(const std::string &path);

/** scanJournal() over in-memory content (@p file_ok mirrors a read
 *  failure; pass true when the bytes came from a real file). */
JournalScan scanJournalContent(const std::string &content, bool file_ok);

/**
 * Rewrites the journal at @p path down to its valid prefix (header
 * plus the records scanJournal() verified), atomically. Refuses --
 * returning false with @p error set -- when the header itself is
 * damaged (there is no trusted content to keep) or the file cannot
 * be rewritten. A clean journal is rewritten unchanged.
 */
bool repairJournal(const std::string &path, std::string &error);

/** Outcome of merging shard journals into one canonical journal. */
struct MergeOutcome
{
    bool ok = false;
    /** Diagnosis when !ok. */
    std::string error;
    /** Records written to the merged journal. */
    std::size_t recordsWritten = 0;
    /** Distinct shard files consumed. */
    std::size_t shardsMerged = 0;
    /** Canonical records dropped at the first gap (only ever non-zero
     *  when allow_partial accepted an incomplete shard set). */
    std::size_t recordsDropped = 0;
};

/**
 * Validates and fuses the shard journals at @p shard_paths into one
 * canonical (shard 1/1) journal at @p out_path, written atomically.
 *
 * Merge invariants, each enforced with a named error:
 *  - every input is a clean v2 journal (fsck/--repair first if not);
 *  - all inputs share config fingerprint, pair-set digest, shard
 *    count and column header (one campaign, one format);
 *  - duplicate shard files are tolerated only when byte-identical;
 *    a record claimed twice with different bytes is a divergent
 *    duplicate and fails the merge;
 *  - one pair name may occupy only one canonical slot (overlapping
 *    or mislabeled shards fail the merge);
 *  - the union of records must cover a gap-free canonical prefix;
 *    with @p allow_partial the journal is truncated at the first gap
 *    (reported via recordsDropped), otherwise a gap fails the merge.
 *
 * Merging the complete shards 1..N/N of a campaign reproduces the
 * unsharded journal byte-for-byte.
 */
MergeOutcome mergeJournals(const std::vector<std::string> &shard_paths,
                           const std::string &out_path,
                           bool allow_partial = false);

} // namespace suite
} // namespace spec17

#endif // SPEC17_SUITE_JOURNAL_HH_
