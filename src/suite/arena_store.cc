#include "suite/arena_store.hh"

#include <filesystem>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace spec17 {
namespace suite {

namespace {

/** FNV-1a 64-bit hash of the canonical trace key: short, stable
 *  spill file names (the full key is unbounded). */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace

TraceArenaStore::TraceArenaStore(std::uint64_t budget_bytes,
                                 std::string spill_dir)
    : budgetBytes_(budget_bytes), spillDir_(std::move(spill_dir))
{
    SPEC17_ASSERT(budgetBytes_ > 0,
                  "arena store needs a positive byte budget "
                  "(omit the store to disable replay)");
}

std::string
TraceArenaStore::spillPathFor(const std::string &key) const
{
    std::ostringstream name;
    name << std::hex << fnv1a(key);
    return spillDir_ + "/arena-" + name.str() + ".s17a";
}

std::shared_ptr<const trace::TraceArena>
TraceArenaStore::acquire(const trace::SyntheticTraceParams &params)
{
    const std::string key = trace::describeTraceParams(params);
    if (std::optional<Entry> hit = table_.tryGet(key)) {
        hit->lastUse->store(useSeq_.fetch_add(1) + 1);
        hits_.fetch_add(1);
        return hit->arena;
    }

    std::shared_ptr<const trace::TraceArena> arena;
    if (!spillDir_.empty()) {
        if (auto loaded = trace::loadArena(spillPathFor(key))) {
            arena = std::move(loaded);
            spillLoads_.fetch_add(1);
        }
    }
    if (arena == nullptr) {
        arena = std::make_shared<const trace::TraceArena>(
            trace::captureArena(params));
        captures_.fetch_add(1);
        if (!spillDir_.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(spillDir_, ec);
            if (ec)
                warn("cannot create arena spill dir ", spillDir_, ": ",
                     ec.message());
            else
                saveArena(spillPathFor(key), *arena);
        }
    }

    if (arena->byteSize() > budgetBytes_)
        return arena; // serve uncached; retention would thrash

    Entry entry;
    entry.arena = arena;
    entry.lastUse = std::make_shared<std::atomic<std::uint64_t>>(
        useSeq_.fetch_add(1) + 1);
    const Entry winner = table_.publish(key, std::move(entry));
    evictOverBudget();
    return winner.arena;
}

void
TraceArenaStore::evictOverBudget()
{
    for (;;) {
        std::uint64_t total = 0;
        std::size_t count = 0;
        std::string oldest;
        std::uint64_t oldest_use =
            std::numeric_limits<std::uint64_t>::max();
        table_.forEach([&](const std::string &key, const Entry &entry) {
            total += entry.arena->byteSize();
            ++count;
            const std::uint64_t use = entry.lastUse->load();
            if (use < oldest_use) {
                oldest_use = use;
                oldest = key;
            }
        });
        if (total <= budgetBytes_ || count <= 1)
            return;
        if (table_.erase(oldest))
            evictions_.fetch_add(1);
    }
}

TraceArenaStore::Stats
TraceArenaStore::stats() const
{
    Stats stats;
    stats.captures = captures_.load();
    stats.hits = hits_.load();
    stats.spillLoads = spillLoads_.load();
    stats.evictions = evictions_.load();
    table_.forEach(
        [&stats](const std::string &, const Entry &entry) {
            stats.residentBytes += entry.arena->byteSize();
            ++stats.entries;
        });
    return stats;
}

} // namespace suite
} // namespace spec17
