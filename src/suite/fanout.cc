#include "suite/fanout.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "sim/simulator.hh"
#include "suite/arena_store.hh"
#include "trace/arena.hh"
#include "util/logging.hh"

namespace spec17 {
namespace suite {

using counters::PerfEvent;
using workloads::AppInputPair;
using workloads::WorkloadProfile;

namespace {

/** Micro-ops per lockstep chunk: small enough that one chunk's arena
 *  slice stays cache-resident while every point consumes it, large
 *  enough to amortize the per-step dispatch. Purely an execution-
 *  strategy constant -- batch-size invariance (the golden identity
 *  tests) makes chunk splits result-neutral. */
constexpr std::uint64_t kLockstepOps = 16384;

void
appendCacheConfig(std::ostringstream &os, const sim::CacheConfig &cache)
{
    os << cache.name << "," << cache.sizeBytes << "," << cache.assoc
       << "," << cache.lineBytes << ","
       << sim::replacementPolicyName(cache.policy) << ","
       << cache.hitLatency << ","
       << sim::wayPredictorName(cache.wayPredictor) << ","
       << cache.wayMispredictPenalty << ";";
}

void
appendTlbConfig(std::ostringstream &os, const sim::TlbConfig &tlb)
{
    os << tlb.l1Entries << "," << tlb.l2Entries << "," << tlb.pageBytes
       << "," << tlb.l2HitLatency << "," << tlb.walkLatency << ";";
}

/**
 * Lane-import clone key: two points with equal keys (and equal
 * batchOps, appended by the caller) produce bit-identical memory/TLB
 * lane streams over the same arena, because nothing on the branch
 * side feeds back into cache or TLB state. Everything that shapes the
 * recorded lanes is included -- the full hierarchy, the core
 * parameters (frontendBufferCycles and the op latencies bake into the
 * recorded stall/latency lanes), and both TLBs. The branch predictor
 * and TAGE geometry are deliberately absent: they only influence the
 * per-sim branch pass, which importing siblings still run themselves.
 */
std::string
importCloneKey(const sim::SystemConfig &system)
{
    std::ostringstream os;
    os << hierarchyCloneKey(system.hierarchy) << "|";
    const sim::CoreParams &core = system.core;
    os << core.dispatchWidth << "," << core.robSize << ","
       << core.numMshrs << "," << core.mispredictPenalty << ","
       << core.branchResolveLatency << ","
       << core.frontendBufferCycles << "," << core.intAluLatency << ","
       << core.intMulLatency << "," << core.intDivLatency << ","
       << core.fpAddLatency << "," << core.fpMulLatency << ","
       << core.fpDivLatency << "," << core.frequencyGHz << "|"
       << system.enableTlb << "|";
    appendTlbConfig(os, system.dtlb);
    appendTlbConfig(os, system.itlb);
    return os.str();
}

/** One point's simulated cell for a single-threaded pair, run over a
 *  shared replay cursor. */
struct Cell
{
    /** A fresh (non-journal) result landed this sweep. */
    bool fresh = false;
    PairResult result;
};

using Row = std::vector<Cell>;

/**
 * Bounded freelist of dead simulators whose heap buffers the next
 * pair's constructions adopt. Recycling is an allocation shortcut
 * only (results are bit-identical to fresh construction), so the
 * freelist can drop donors freely when full.
 */
class DonorPool
{
  public:
    explicit DonorPool(std::size_t cap) : cap_(cap) {}

    std::vector<std::unique_ptr<sim::CpuSimulator>>
    take(std::size_t n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::unique_ptr<sim::CpuSimulator>> out;
        while (n-- > 0 && !donors_.empty()) {
            out.push_back(std::move(donors_.back()));
            donors_.pop_back();
        }
        return out;
    }

    void
    give(std::vector<std::unique_ptr<sim::CpuSimulator>> sims)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &sim : sims) {
            if (donors_.size() >= cap_)
                return; // drop the rest: recycling is best-effort
            donors_.push_back(std::move(sim));
        }
    }

  private:
    std::size_t cap_;
    std::mutex mutex_;
    std::vector<std::unique_ptr<sim::CpuSimulator>> donors_;
};

/**
 * Simulates @p pair for every session index in @p active, writing
 * each point's result into @p row. Cells the shared-arena path cannot
 * reproduce exactly (multi-threaded pairs, malformed profiles, any
 * cell that faults) delegate to the point's own SuiteRunner::runPair,
 * which carries the full retry/failure-record semantics.
 */
void
runFanoutPair(const AppInputPair &pair,
              const std::vector<FanoutSession> &sessions,
              const std::vector<std::unique_ptr<SuiteRunner>> &runners,
              const std::vector<std::size_t> &active, Row &row,
              DonorPool &donors)
{
    SPEC17_ASSERT(pair.profile != nullptr, "pair without profile");
    const WorkloadProfile &profile = *pair.profile;

    const auto fallback = [&](std::size_t p) {
        row[p].fresh = true;
        row[p].result = runners[p]->runPair(pair);
    };

    // The multicore interleaver's chunk schedule shapes shared-L3
    // contention; it runs per point. A malformed profile is a
    // contained per-point failure. Both take the ordinary path (the
    // arena store still deduplicates their trace captures).
    if (profile.numThreads > 1 || !profile.validationError().empty()) {
        for (std::size_t p : active)
            fallback(p);
        return;
    }

    const RunnerOptions &base = sessions[active.front()].runner;
    const workloads::BuildOptions build = attemptBuildOptions(base, 0);
    const std::uint64_t pair_seed = pairSimSeed(pair, build.seed);

    // The generator is only consulted for its region layout (prefill
    // never consumes ops); the simulated stream is the shared arena.
    trace::SyntheticTraceGenerator generator(
        workloads::buildTraceParams(pair, build, 0));
    const std::shared_ptr<const trace::TraceArena> arena =
        base.arenaStore->acquire(generator.params());

    const std::size_t n = active.size();
    std::vector<std::unique_ptr<sim::CpuSimulator>> recycled =
        donors.take(n);
    std::vector<std::unique_ptr<sim::CpuSimulator>> sims(n);
    std::vector<trace::ReplaySource> replays;
    replays.reserve(n);
    std::map<std::string, std::size_t> import_leaders;
    std::map<std::string, std::size_t> hier_leaders;
    std::vector<std::size_t> leader_of(n);
    std::vector<char> failed(n, 0);

    for (std::size_t j = 0; j < n; ++j) {
        const RunnerOptions &point = sessions[active[j]].runner;
        std::unique_ptr<sim::CpuSimulator> donor;
        if (!recycled.empty()) {
            donor = std::move(recycled.back());
            recycled.pop_back();
        }
        // Clone groups, two tiers. A point matching an earlier point
        // in everything but the branch side (importCloneKey) becomes
        // a lane-importing sibling: it consumes the leader's recorded
        // memory lanes during lockstep, so its own hierarchy is never
        // accessed -- no prefill, no state copy, and a dirty-recycled
        // construction whose lanes legitimately stay garbage. A point
        // matching only the hierarchy (hierarchyCloneKey) still
        // clones the leader's prefilled cache state instead of
        // re-filling 30 MiB of lines, then simulates independently.
        const std::string import_key =
            importCloneKey(point.system) + "|batch="
            + std::to_string(point.batchOps);
        const auto import_leader = import_leaders.find(import_key);
        if (import_leader != import_leaders.end()) {
            leader_of[j] = import_leader->second;
            sims[j] = std::make_unique<sim::CpuSimulator>(
                point.system, pair_seed, nullptr, nullptr, donor.get(),
                true);
        } else {
            leader_of[j] = j;
            const std::string hier_key =
                hierarchyCloneKey(point.system.hierarchy);
            const auto hier_leader = hier_leaders.find(hier_key);
            const bool clone = hier_leader != hier_leaders.end();
            sims[j] = std::make_unique<sim::CpuSimulator>(
                point.system, pair_seed, nullptr, nullptr, donor.get(),
                clone);
            if (clone) {
                sims[j]->copyPrefillFrom(*sims[hier_leader->second]);
            } else {
                prefillSteadyState(*sims[j], generator);
                hier_leaders.emplace(hier_key, j);
            }
            import_leaders.emplace(import_key, j);
        }
        if (point.batchOps != 0)
            sims[j]->setBatchOps(point.batchOps);
        replays.emplace_back(arena);
    }

    // Per-leader lane logs, recorded fresh each lockstep chunk.
    // Leaders without siblings skip recording entirely. A sibling is
    // marked failed as soon as its leader fails, BEFORE it would
    // consume the (then partial) log; the fallback below reruns it on
    // the ordinary per-point path.
    std::vector<std::size_t> group_size(n, 0);
    for (std::size_t j = 0; j < n; ++j)
        ++group_size[leader_of[j]];
    std::vector<sim::MemoryLaneLog> logs(n);
    std::vector<std::size_t> cursors(n, 0);
    const auto step_lockstep = [&](std::size_t j,
                                   std::uint64_t chunk) {
        const std::size_t lead = leader_of[j];
        if (lead == j) {
            if (group_size[j] > 1) {
                logs[j].clear();
                return sims[j]->stepRecording(replays[j], chunk,
                                              logs[j]);
            }
            return sims[j]->step(replays[j], chunk);
        }
        cursors[j] = 0;
        return sims[j]->stepImporting(replays[j], chunk, logs[lead],
                                      cursors[j]);
    };

    // Lockstep warmup: all points consume the same arena slice chunk
    // by chunk, splitting exactly at the warmup boundary. Batch-size
    // invariance makes the chunking result-neutral.
    std::vector<counters::CounterSet> warm(n);
    std::vector<double> warm_cycles(n, 0.0);
    std::uint64_t warmed = 0;
    while (warmed < base.warmupOps) {
        const std::uint64_t chunk =
            std::min(kLockstepOps, base.warmupOps - warmed);
        for (std::size_t j = 0; j < n; ++j) {
            if (failed[j])
                continue;
            if (leader_of[j] != j && failed[leader_of[j]]) {
                failed[j] = 1;
                continue;
            }
            try {
                step_lockstep(j, chunk);
            } catch (...) {
                failed[j] = 1;
            }
        }
        warmed += chunk;
    }
    for (std::size_t j = 0; j < n; ++j) {
        if (failed[j])
            continue;
        warm[j] = sims[j]->snapshot();
        warm_cycles[j] = sims[j]->core().cycles();
    }

    // Lockstep measurement until every replay cursor drains. All
    // cursors walk the same arena, so the points stay within one
    // chunk of each other and each slice is read while still hot.
    // Siblings drain exactly when their leader does (identical
    // sources), so a live sibling never outruns its leader's log.
    bool all_drained = false;
    std::vector<char> drained(n, 0);
    while (!all_drained) {
        all_drained = true;
        for (std::size_t j = 0; j < n; ++j) {
            if (failed[j] || drained[j])
                continue;
            if (leader_of[j] != j && failed[leader_of[j]]) {
                failed[j] = 1;
                continue;
            }
            try {
                const std::uint64_t got =
                    step_lockstep(j, kLockstepOps);
                if (got < kLockstepOps)
                    drained[j] = 1;
                else
                    all_drained = false;
            } catch (...) {
                failed[j] = 1;
            }
        }
    }

    for (std::size_t j = 0; j < n; ++j) {
        if (failed[j])
            continue;
        const std::size_t p = active[j];
        try {
            // The exact measurement tail of the runner's single-core
            // attempt: finalize, un-diff VSZ, subtract the warm
            // baseline, override the footprint gauges, scale.
            sim::SimResult sim_result = sims[j]->finish(replays[j]);
            const std::uint64_t vsz =
                sim_result.counters.get(PerfEvent::VszBytes);
            sim_result.counters = sim_result.counters.diff(warm[j]);
            sim_result.counters.set(PerfEvent::VszBytes, vsz);
            sim_result.counters.set(PerfEvent::RssBytes,
                                    sims[j]->footprint().rssBytes());
            sim_result.cycles -= warm_cycles[j];

            PairResult result = makePairResult(pair);
            finalizePairResult(sessions[p].runner, sim_result, result);
            row[p].fresh = true;
            row[p].result = std::move(result);
        } catch (...) {
            failed[j] = 1;
        }
    }

    // Faulted cells rerun on the ordinary per-point path, which
    // reproduces the failure containment (retries, failure records,
    // errored results) byte-identically -- the fault is
    // deterministic, so the rerun diagnoses what the cell hit.
    for (std::size_t j = 0; j < n; ++j) {
        if (failed[j])
            fallback(active[j]);
    }

    donors.give(std::move(sims));
}

} // namespace

std::string
hierarchyCloneKey(const sim::HierarchyConfig &hierarchy)
{
    std::ostringstream os;
    appendCacheConfig(os, hierarchy.l1i);
    appendCacheConfig(os, hierarchy.l1d);
    appendCacheConfig(os, hierarchy.l2);
    appendCacheConfig(os, hierarchy.l3);
    os << hierarchy.memLatency << ";" << hierarchy.prefetcher << ";"
       << hierarchy.l2Prefetcher << ";" << hierarchy.streamDegree << ","
       << hierarchy.streamDistance;
    return os.str();
}

bool
fanoutEligible(const RunnerOptions &options)
{
    return options.arenaStore != nullptr
        && options.sampleIntervalOps == 0
        && options.telemetrySink == nullptr
        && options.faultInjector == nullptr && !options.unbatchedStepping
        && options.pairDeadlineOps == 0 && options.pairDeadlineMs == 0;
}

std::vector<std::vector<PairResult>>
runFanoutSweep(const std::vector<FanoutSession> &sessions,
               const std::vector<WorkloadProfile> &suite,
               workloads::InputSize size, const FanoutOptions &options)
{
    SPEC17_ASSERT(!sessions.empty(), "fan-out sweep without points");
    for (const FanoutSession &session : sessions) {
        SPEC17_ASSERT(fanoutEligible(session.runner),
                      "fan-out session is not eligible "
                      "(see fanoutEligible)");
        SPEC17_ASSERT(session.runner.arenaStore
                          == sessions.front().runner.arenaStore,
                      "fan-out sessions must share one arena store");
    }

    const std::size_t m = sessions.size();
    std::vector<std::vector<PairResult>> out(m);

    const auto all_pairs = suite.empty()
        ? std::vector<AppInputPair>{}
        : enumeratePairs(suite, size);
    const auto pairs = shardPairs(all_pairs, options.shard);
    const std::size_t total = pairs.size();

    // Per-point sweep sessions: runner, journal, replayed prefix.
    // Each journal behaves exactly as its own runOrLoad would --
    // complete journals contribute without observer calls, partial
    // prefixes replay through the observer, and fresh pairs are
    // checkpointed in canonical order as the shared pass advances.
    std::vector<std::unique_ptr<SuiteRunner>> runners;
    std::vector<std::unique_ptr<ResultCache>> caches;
    std::vector<std::size_t> have(m, 0);
    std::vector<char> complete(m, 0);
    runners.reserve(m);
    caches.reserve(m);
    for (std::size_t p = 0; p < m; ++p) {
        runners.push_back(
            std::make_unique<SuiteRunner>(sessions[p].runner));
        if (sessions[p].cachePath.empty()) {
            caches.push_back(nullptr);
            continue;
        }
        auto cache = std::make_unique<ResultCache>(
            sessions[p].cachePath, options.resume);
        cache->setShard(options.shard);
        ResultCache::SweepPrefix prefix =
            cache->beginSweep(*runners[p], suite, size, pairs);
        out[p] = std::move(prefix.rows);
        have[p] = out[p].size();
        complete[p] = prefix.complete ? 1 : 0;
        caches.push_back(std::move(cache));
        if (!complete[p] && sessions[p].observer) {
            for (std::size_t i = 0; i < have[p]; ++i)
                sessions[p].observer(out[p][i], i, total);
        }
    }

    // The shared pass starts at the first index any point still
    // needs; earlier indices are fully journal-covered.
    std::size_t start = total;
    for (std::size_t p = 0; p < m; ++p) {
        if (!complete[p])
            start = std::min(start, have[p]);
    }
    const std::size_t count = total - start;

    DonorPool donors(m);
    const unsigned jobs = sessions.front().runner.jobs;
    runOrderedPool<Row>(
        count, jobs,
        [&](std::size_t k) {
            const std::size_t i = start + k;
            Row row(m);
            std::vector<std::size_t> active;
            for (std::size_t p = 0; p < m; ++p) {
                if (!complete[p] && have[p] <= i)
                    active.push_back(p);
            }
            if (!active.empty())
                runFanoutPair(pairs[i], sessions, runners, active, row,
                              donors);
            return row;
        },
        [&](const Row &row, std::size_t k) {
            const std::size_t i = start + k;
            for (std::size_t p = 0; p < m; ++p) {
                if (!row[p].fresh)
                    continue;
                out[p].push_back(row[p].result);
                if (caches[p] != nullptr)
                    caches[p]->checkpoint(*runners[p], suite, size,
                                          out[p]);
                if (sessions[p].observer)
                    sessions[p].observer(row[p].result, i, total);
            }
        });

    for (std::size_t p = 0; p < m; ++p) {
        if (!complete[p] && caches[p] != nullptr)
            caches[p]->finish(*runners[p], suite, size, out[p]);
    }
    return out;
}

} // namespace suite
} // namespace spec17
