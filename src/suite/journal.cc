#include "suite/journal.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace spec17 {
namespace suite {

namespace {

/** Cells of one CSV line (trailing empty cell preserved). */
std::size_t
countCells(const std::string &line)
{
    std::size_t cells = 1;
    for (char c : line)
        cells += c == ',';
    return cells;
}

bool
isHex16(const std::string &text)
{
    if (text.size() != 16)
        return false;
    for (char c : text) {
        if (!std::isxdigit(static_cast<unsigned char>(c))
            || (std::isalpha(static_cast<unsigned char>(c))
                && !std::islower(static_cast<unsigned char>(c))))
            return false;
    }
    return true;
}

std::optional<unsigned>
parseUnsigned(const std::string &cell)
{
    if (cell.empty())
        return std::nullopt;
    unsigned value = 0;
    for (char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        const unsigned digit = static_cast<unsigned>(c - '0');
        if (value > (0xffffffffu - digit) / 10)
            return std::nullopt;
        value = value * 10 + digit;
    }
    return value;
}

/** Atomically writes @p content to @p path (temp + rename). */
bool
commitFile(const std::string &path, const std::string &content,
           std::string &error)
{
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out) {
            error = "cannot write " + temp;
            return false;
        }
        out << content;
        out.flush();
        if (!out) {
            error = "short write to " + temp;
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        error = "cannot rename " + temp + " to " + path + ": "
            + std::strerror(errno);
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

} // namespace

std::uint64_t
fnv1a(std::string_view data, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
hex16(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
recordHash(const std::string &config_fingerprint,
           const std::string &payload)
{
    return hex16(fnv1a(payload, fnv1a("|", fnv1a(config_fingerprint))));
}

std::string
JournalHeader::serialize() const
{
    std::ostringstream os;
    os << "spec17-journal-v" << version << ",config="
       << configFingerprint << ",pairs=" << pairsDigest << ",shard="
       << shardIndex << "/" << shardCount;
    return os.str();
}

std::string
JournalHeader::shardLabel() const
{
    return std::to_string(shardIndex) + "/"
        + std::to_string(shardCount);
}

std::optional<JournalHeader>
JournalHeader::parse(const std::string &line, std::string &reason)
{
    static constexpr const char *kMagic = "spec17-journal-v";
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ','))
        cells.push_back(cell);
    if (cells.empty() || cells[0].rfind(kMagic, 0) != 0) {
        reason = "not a spec17 journal header (legacy v1 journals "
                 "carry no campaign header and cannot be verified)";
        return std::nullopt;
    }
    JournalHeader header;
    const auto version =
        parseUnsigned(cells[0].substr(std::strlen(kMagic)));
    if (!version) {
        reason = "unparsable format version in '" + cells[0] + "'";
        return std::nullopt;
    }
    header.version = *version;
    if (header.version != kJournalFormatVersion) {
        reason = "unsupported journal format version "
            + std::to_string(header.version) + " (this build reads v"
            + std::to_string(kJournalFormatVersion) + ")";
        return std::nullopt;
    }
    if (cells.size() != 4) {
        reason = "expected 4 header fields, got "
            + std::to_string(cells.size());
        return std::nullopt;
    }
    if (cells[1].rfind("config=", 0) != 0
        || !isHex16(cells[1].substr(7))) {
        reason = "malformed config fingerprint '" + cells[1] + "'";
        return std::nullopt;
    }
    header.configFingerprint = cells[1].substr(7);
    if (cells[2].rfind("pairs=", 0) != 0
        || !isHex16(cells[2].substr(6))) {
        reason = "malformed pair-set digest '" + cells[2] + "'";
        return std::nullopt;
    }
    header.pairsDigest = cells[2].substr(6);
    if (cells[3].rfind("shard=", 0) != 0) {
        reason = "malformed shard field '" + cells[3] + "'";
        return std::nullopt;
    }
    const std::string shard = cells[3].substr(6);
    const auto slash = shard.find('/');
    if (slash == std::string::npos) {
        reason = "malformed shard field '" + cells[3] + "'";
        return std::nullopt;
    }
    const auto index = parseUnsigned(shard.substr(0, slash));
    const auto count = parseUnsigned(shard.substr(slash + 1));
    if (!index || !count || *count == 0 || *index == 0
        || *index > *count) {
        reason = "invalid shard identity '" + shard + "'";
        return std::nullopt;
    }
    header.shardIndex = *index;
    header.shardCount = *count;
    return header;
}

JournalScan
scanJournalContent(const std::string &content, bool file_ok)
{
    JournalScan scan;
    scan.fileOk = file_ok;
    if (!file_ok) {
        scan.headerError = "cannot read journal file";
        return scan;
    }
    std::istringstream in(content);
    std::string line;
    if (!std::getline(in, line)) {
        scan.headerError = "empty file (no campaign header)";
        return scan;
    }
    std::string reason;
    const auto header = JournalHeader::parse(line, reason);
    if (!header) {
        scan.headerError = reason;
        return scan;
    }
    scan.header = *header;
    if (!std::getline(in, scan.columnHeader)
        || scan.columnHeader.empty()) {
        scan.headerError = "missing column header";
        return scan;
    }
    static constexpr const char *kHashColumn = ",record_hash";
    if (scan.columnHeader.size() <= std::strlen(kHashColumn)
        || scan.columnHeader.compare(
               scan.columnHeader.size() - std::strlen(kHashColumn),
               std::strlen(kHashColumn), kHashColumn)
            != 0) {
        scan.headerError =
            "column header lacks the record_hash column";
        return scan;
    }
    scan.headerOk = true;

    const std::size_t payload_cells =
        countCells(scan.columnHeader) - 1;
    std::map<std::string, std::size_t> seen;
    std::size_t index = 0;
    while (std::getline(in, line)) {
        std::string why;
        const auto comma = line.rfind(',');
        const std::string hash =
            comma == std::string::npos ? "" : line.substr(comma + 1);
        const std::string payload =
            comma == std::string::npos ? line : line.substr(0, comma);
        if (comma == std::string::npos || !isHex16(hash)) {
            why = "missing or malformed record hash";
        } else if (recordHash(scan.header.configFingerprint, payload)
                   != hash) {
            why = "record hash mismatch (payload altered or torn)";
        } else if (countCells(payload) != payload_cells) {
            why = "expected " + std::to_string(payload_cells)
                + " payload fields, got "
                + std::to_string(countCells(payload));
        } else {
            const std::string name =
                payload.substr(0, payload.find(','));
            const auto prior = seen.find(name);
            if (prior != seen.end()) {
                why = "duplicate record for pair '" + name
                    + "' (first at record "
                    + std::to_string(prior->second) + ")";
            } else {
                seen.emplace(name, index);
                scan.records.push_back(line);
                scan.names.push_back(name);
                ++index;
                continue;
            }
        }
        scan.corrupt = true;
        scan.corruptRecord = index;
        scan.corruptReason = why;
        break;
    }
    return scan;
}

JournalScan
scanJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return scanJournalContent("", /*file_ok=*/false);
    std::ostringstream content;
    content << in.rdbuf();
    return scanJournalContent(content.str(), /*file_ok=*/true);
}

bool
repairJournal(const std::string &path, std::string &error)
{
    const JournalScan scan = scanJournal(path);
    if (!scan.headerOk) {
        error = "unrepairable journal (" + scan.headerError
            + "): the campaign header is the root of trust, and it "
              "is damaged";
        return false;
    }
    std::ostringstream out;
    out << scan.header.serialize() << "\n" << scan.columnHeader
        << "\n";
    for (const std::string &record : scan.records)
        out << record << "\n";
    return commitFile(path, out.str(), error);
}

MergeOutcome
mergeJournals(const std::vector<std::string> &shard_paths,
              const std::string &out_path, bool allow_partial)
{
    MergeOutcome outcome;
    if (shard_paths.empty()) {
        outcome.error = "no shard journals to merge";
        return outcome;
    }

    // Pass 1: scan and cross-validate every shard. Merge is strict
    // about integrity -- a corrupt shard must be fsck'd (and
    // possibly --repair'd) first, so damage is an explicit operator
    // decision instead of silently shortening the campaign.
    std::vector<JournalScan> scans;
    scans.reserve(shard_paths.size());
    for (const std::string &path : shard_paths) {
        JournalScan scan = scanJournal(path);
        if (!scan.headerOk) {
            outcome.error = path + ": " + scan.headerError;
            return outcome;
        }
        if (scan.corrupt) {
            outcome.error = path + ": record "
                + std::to_string(scan.corruptRecord) + " is damaged ("
                + scan.corruptReason
                + "); run `spec17 fsck --repair` first";
            return outcome;
        }
        scans.push_back(std::move(scan));
    }
    const JournalScan &first = scans.front();
    for (std::size_t i = 1; i < scans.size(); ++i) {
        const JournalScan &scan = scans[i];
        if (scan.header.configFingerprint
            != first.header.configFingerprint) {
            outcome.error = shard_paths[i]
                + ": config fingerprint "
                + scan.header.configFingerprint
                + " does not match " + shard_paths[0] + " ("
                + first.header.configFingerprint
                + "); shards come from different campaigns";
            return outcome;
        }
        if (scan.header.pairsDigest != first.header.pairsDigest) {
            outcome.error = shard_paths[i]
                + ": pair-set digest does not match "
                + shard_paths[0]
                + "; shards enumerate different pair sets";
            return outcome;
        }
        if (scan.header.shardCount != first.header.shardCount) {
            outcome.error = shard_paths[i] + ": shard count "
                + std::to_string(scan.header.shardCount)
                + " does not match "
                + std::to_string(first.header.shardCount);
            return outcome;
        }
        if (scan.columnHeader != first.columnHeader) {
            outcome.error = shard_paths[i]
                + ": column header differs from " + shard_paths[0]
                + " (mixed builds?)";
            return outcome;
        }
    }

    // Pass 2: place every record at its canonical index. Record j of
    // shard K/N is canonical pair j*N + (K-1) -- the round-robin
    // partition is what lets the merge reconstruct total order
    // without re-enumerating the suite.
    const unsigned shard_count = first.header.shardCount;
    std::map<std::size_t, std::pair<std::string, std::size_t>> slots;
    std::map<std::string, std::size_t> name_slots;
    std::map<unsigned, std::size_t> shard_sources;
    for (std::size_t s = 0; s < scans.size(); ++s) {
        const JournalScan &scan = scans[s];
        const unsigned k = scan.header.shardIndex;
        const auto prior = shard_sources.find(k);
        if (prior != shard_sources.end()) {
            // The same shard delivered twice (e.g. a retried upload):
            // tolerated only when byte-identical.
            const JournalScan &other = scans[prior->second];
            if (scan.records != other.records) {
                std::size_t at = 0;
                const std::size_t limit = std::min(
                    scan.records.size(), other.records.size());
                while (at < limit
                       && scan.records[at] == other.records[at])
                    ++at;
                outcome.error = "divergent duplicate of shard "
                    + scan.header.shardLabel() + ": "
                    + shard_paths[s] + " and "
                    + shard_paths[prior->second]
                    + " disagree at record " + std::to_string(at);
                return outcome;
            }
            continue;
        }
        shard_sources.emplace(k, s);
        for (std::size_t j = 0; j < scan.records.size(); ++j) {
            const std::size_t canonical = j * shard_count + (k - 1);
            const std::string &name = scan.names[j];
            const auto name_prior = name_slots.find(name);
            if (name_prior != name_slots.end()
                && name_prior->second != canonical) {
                outcome.error = "overlapping shards: pair '" + name
                    + "' appears at canonical index "
                    + std::to_string(name_prior->second)
                    + " and again at "
                    + std::to_string(canonical) + " (from "
                    + shard_paths[s] + ")";
                return outcome;
            }
            name_slots.emplace(name, canonical);
            slots.emplace(canonical,
                          std::make_pair(scan.records[j], s));
        }
    }
    outcome.shardsMerged = shard_sources.size();

    // Pass 3: the union must form a gap-free canonical prefix --
    // the defining journal invariant (resume and readers rely on it).
    std::vector<const std::string *> ordered;
    ordered.reserve(slots.size());
    std::size_t expected = 0;
    for (const auto &[canonical, entry] : slots) {
        if (canonical != expected) {
            if (!allow_partial) {
                const unsigned missing_shard = static_cast<unsigned>(
                    expected % shard_count) + 1;
                outcome.error = "gap at canonical record "
                    + std::to_string(expected) + " (shard "
                    + std::to_string(missing_shard) + "/"
                    + std::to_string(shard_count)
                    + " is missing or partial); pass --allow-partial "
                      "to keep the contiguous prefix";
                return outcome;
            }
            break;
        }
        ordered.push_back(&entry.first);
        ++expected;
    }
    outcome.recordsDropped = slots.size() - ordered.size();

    JournalHeader merged = first.header;
    merged.shardIndex = 1;
    merged.shardCount = 1;
    std::ostringstream out;
    out << merged.serialize() << "\n" << first.columnHeader << "\n";
    for (const std::string *record : ordered)
        out << *record << "\n";
    if (!commitFile(out_path, out.str(), outcome.error))
        return outcome;
    outcome.recordsWritten = ordered.size();
    outcome.ok = true;
    return outcome;
}

} // namespace suite
} // namespace spec17
