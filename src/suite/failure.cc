#include "suite/failure.hh"

#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace spec17 {
namespace suite {

const char *
failureCategoryName(FailureCategory category)
{
    switch (category) {
      case FailureCategory::Exception: return "exception";
      case FailureCategory::Invariant: return "invariant";
      case FailureCategory::BadProfile: return "bad_profile";
      case FailureCategory::Deadline: return "deadline";
      case FailureCategory::Injected: return "injected";
    }
    SPEC17_PANIC("unknown FailureCategory");
}

std::optional<FailureCategory>
failureCategoryFromName(std::string_view name)
{
    for (auto category : {
             FailureCategory::Exception, FailureCategory::Invariant,
             FailureCategory::BadProfile, FailureCategory::Deadline,
             FailureCategory::Injected}) {
        if (name == failureCategoryName(category))
            return category;
    }
    return std::nullopt;
}

std::string
sanitizeFailureMessage(std::string message)
{
    for (char &c : message) {
        if (c == ',' || c == '|' || c == '@' || c == '\n' || c == '\r')
            c = '_';
    }
    return message;
}

std::string
serializeFailures(const std::vector<FailureRecord> &failures)
{
    if (failures.empty())
        return "-";
    std::ostringstream os;
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const FailureRecord &f = failures[i];
        if (i > 0)
            os << "|";
        os << failureCategoryName(f.category) << "@" << f.attempt << "@"
           << f.opsCompleted << "@" << sanitizeFailureMessage(f.message);
    }
    return os.str();
}

namespace {

/** Parses one 'category@attempt@ops@message' record. */
std::optional<FailureRecord>
parseOneFailure(const std::string &text)
{
    std::size_t pos = 0;
    std::string fields[3];
    for (auto &field : fields) {
        const std::size_t at = text.find('@', pos);
        if (at == std::string::npos)
            return std::nullopt;
        field = text.substr(pos, at - pos);
        pos = at + 1;
    }
    FailureRecord record;
    const auto category = failureCategoryFromName(fields[0]);
    if (!category)
        return std::nullopt;
    record.category = *category;
    char *end = nullptr;
    record.attempt =
        static_cast<unsigned>(std::strtoul(fields[1].c_str(), &end, 10));
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    record.opsCompleted = std::strtoull(fields[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    record.message = text.substr(pos);
    return record;
}

} // namespace

std::optional<std::vector<FailureRecord>>
parseFailures(const std::string &cell)
{
    std::vector<FailureRecord> failures;
    if (cell == "-")
        return failures;
    std::size_t pos = 0;
    while (pos <= cell.size()) {
        std::size_t bar = cell.find('|', pos);
        if (bar == std::string::npos)
            bar = cell.size();
        const auto record = parseOneFailure(cell.substr(pos, bar - pos));
        if (!record)
            return std::nullopt;
        failures.push_back(*record);
        pos = bar + 1;
        if (bar == cell.size())
            break;
    }
    return failures;
}

} // namespace suite
} // namespace spec17
