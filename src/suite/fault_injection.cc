#include "suite/fault_injection.hh"

namespace spec17 {
namespace suite {

FaultInjector::~FaultInjector() = default;

void
ScriptedFaultInjector::set(const std::string &pair, unsigned attempt,
                           Action action)
{
    plan_[{pair, attempt}] = action;
}

void
ScriptedFaultInjector::failFirstAttempts(const std::string &pair,
                                         unsigned fail_count)
{
    for (unsigned attempt = 0; attempt < fail_count; ++attempt)
        set(pair, attempt, Action::Throw);
}

FaultInjector::Action
ScriptedFaultInjector::onAttempt(const std::string &pair,
                                 unsigned attempt)
{
    std::lock_guard<std::mutex> lock(mutex_);
    consulted_.emplace_back(pair, attempt);
    const auto it = plan_.find({pair, attempt});
    return it == plan_.end() ? Action::None : it->second;
}

} // namespace suite
} // namespace spec17
