#include "suite/fault_injection.hh"

namespace spec17 {
namespace suite {

FaultInjector::~FaultInjector() = default;

void
ScriptedFaultInjector::set(const std::string &pair, unsigned attempt,
                           Action action)
{
    plan_[{pair, attempt}] = action;
}

void
ScriptedFaultInjector::failFirstAttempts(const std::string &pair,
                                         unsigned fail_count)
{
    for (unsigned attempt = 0; attempt < fail_count; ++attempt)
        set(pair, attempt, Action::Throw);
}

FaultInjector::Action
ScriptedFaultInjector::onAttempt(const std::string &pair,
                                 unsigned attempt)
{
    std::lock_guard<std::mutex> lock(mutex_);
    consulted_.emplace_back(pair, attempt);
    const auto it = plan_.find({pair, attempt});
    return it == plan_.end() ? Action::None : it->second;
}

JournalIoFaultInjector::~JournalIoFaultInjector() = default;

void
ScriptedJournalIoFaults::tornWriteAt(unsigned commit_index,
                                     std::size_t keep_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    writePlan_[commit_index] = {WriteFault::Kind::TornWrite,
                                keep_bytes};
}

void
ScriptedJournalIoFaults::enospcAt(unsigned commit_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    writePlan_[commit_index] = {WriteFault::Kind::Enospc, 0};
}

void
ScriptedJournalIoFaults::enospcFrom(unsigned commit_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enospcFrom_ = commit_index;
}

void
ScriptedJournalIoFaults::shortReadNext(std::size_t keep_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ReadFault fault;
    fault.kind = ReadFault::Kind::ShortRead;
    fault.keepBytes = keep_bytes;
    readPlan_.push_back(fault);
}

void
ScriptedJournalIoFaults::bitFlipNext(std::size_t offset, unsigned bit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ReadFault fault;
    fault.kind = ReadFault::Kind::BitFlip;
    fault.offset = offset;
    fault.bit = bit;
    readPlan_.push_back(fault);
}

JournalIoFaultInjector::WriteFault
ScriptedJournalIoFaults::onJournalWrite(const std::string &,
                                        unsigned commit_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++writes_;
    const auto it = writePlan_.find(commit_index);
    if (it != writePlan_.end())
        return it->second;
    if (commit_index >= enospcFrom_)
        return {WriteFault::Kind::Enospc, 0};
    return {};
}

JournalIoFaultInjector::ReadFault
ScriptedJournalIoFaults::onJournalRead(const std::string &)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++reads_;
    if (readPlan_.empty())
        return {};
    const ReadFault fault = readPlan_.front();
    readPlan_.pop_front();
    return fault;
}

unsigned
ScriptedJournalIoFaults::writesConsulted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return writes_;
}

unsigned
ScriptedJournalIoFaults::readsConsulted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reads_;
}

} // namespace suite
} // namespace spec17
