/**
 * @file
 * Microarchitecture sweep: use the characterization framework the
 * way an architect would -- hold the workload fixed and sweep a
 * design parameter. This example sweeps L3 capacity and core width
 * for three behaviourally distinct CPU2017 applications and prints
 * IPC scaling curves, showing which paper metrics predict the
 * sensitivity.
 *
 *   ./build/examples/uarch_sweep
 */

#include <cstdio>

#include "core/metrics.hh"
#include "suite/runner.hh"

using namespace spec17;

namespace {

double
ipcWith(const sim::SystemConfig &system, const char *app)
{
    suite::RunnerOptions options;
    options.system = system;
    options.sampleOps = 400'000;
    options.warmupOps = 150'000;
    suite::SuiteRunner runner(options);
    const auto &profile =
        workloads::findProfile(workloads::cpu2017Suite(), app);
    return runner
        .runPair({&profile, workloads::InputSize::Ref, 0})
        .ipc();
}

} // namespace

int
main()
{
    const char *const apps[] = {"505.mcf_r", "531.deepsjeng_r",
                                "525.x264_r"};

    std::printf("--- L3 capacity sweep (IPC) ---\n");
    std::printf("%-16s", "L3 size");
    for (const char *app : apps)
        std::printf("  %-16s", app);
    std::printf("\n");
    for (std::uint64_t mib : {2, 8, 30, 64}) {
        auto system = sim::SystemConfig::haswellXeonE52650Lv3();
        system.hierarchy.l3.sizeBytes = mib * 1024 * 1024;
        system.hierarchy.l3.assoc = 16;
        std::printf("%3llu MiB         ",
                    static_cast<unsigned long long>(mib));
        for (const char *app : apps)
            std::printf("  %-16.3f", ipcWith(system, app));
        std::printf("\n");
    }
    std::printf("expected: the L3-miss-bound chess engine "
                "(531.deepsjeng_r) moves most;\nthe DRAM-latency-bound "
                "505.mcf_r barely responds; 525.x264_r never "
                "needed\nthe capacity.\n\n");

    std::printf("--- core width sweep (IPC) ---\n");
    std::printf("%-16s", "dispatch width");
    for (const char *app : apps)
        std::printf("  %-16s", app);
    std::printf("\n");
    for (unsigned width : {2u, 4u, 6u, 8u}) {
        auto system = sim::SystemConfig::haswellXeonE52650Lv3();
        system.core.dispatchWidth = width;
        system.core.robSize = 48 * width;
        std::printf("%-16u", width);
        for (const char *app : apps)
            std::printf("  %-16.3f", ipcWith(system, app));
        std::printf("\n");
    }
    std::printf("expected: 525.x264_r scales with width (the paper's "
                "high-IPC corner);\nthe memory-bound applications "
                "saturate early -- the Fig. 1 / Fig. 5\ncorrelation "
                "in action.\n");
    return 0;
}
