/**
 * @file
 * Phase analysis example: find simulation points in a program whose
 * behaviour changes over time, and see how little of it you need to
 * simulate. This demonstrates the framework's implementation of the
 * paper's future-work direction.
 *
 *   ./build/examples/phase_analysis
 */

#include <cstdio>

#include "core/phase.hh"
#include "trace/phased.hh"
#include "trace/synthetic.hh"

using namespace spec17;

namespace {

std::shared_ptr<trace::TraceSource>
phaseOf(const char *what, std::uint64_t ops, std::uint64_t seed)
{
    trace::SyntheticTraceParams params;
    params.numOps = ops;
    params.seed = seed;
    if (std::string(what) == "compute") {
        params.loadFrac = 0.15;
        params.branchFrac = 0.08;
        params.regions = {
            {trace::AccessPattern::Random, 24 * 1024, 64, 1.0, 1.0}};
    } else { // "memory"
        params.loadFrac = 0.40;
        params.branchFrac = 0.10;
        params.regions = {{trace::AccessPattern::PointerChase,
                           96 * 1024 * 1024, 64, 1.0, 1.0}};
    }
    return std::make_shared<trace::SyntheticTraceGenerator>(params);
}

} // namespace

int
main()
{
    // A program that alternates: setup, crunch, gather, crunch.
    trace::PhasedTrace program({
        phaseOf("memory", 300000, 1),
        phaseOf("compute", 600000, 2),
        phaseOf("memory", 300000, 3),
        phaseOf("compute", 400000, 4),
    });

    core::PhaseOptions options;
    options.intervalOps = 80'000;
    options.warmupOps = 80'000;
    const core::PhaseAnalysis analysis = core::analyzePhases(
        program, sim::SystemConfig::haswellXeonE52650Lv3(), options);

    std::printf("interval timeline (one char per interval):\n  ");
    for (std::size_t label : analysis.labels)
        std::printf("%c", 'A' + static_cast<char>(label));
    std::printf("\n\n");

    for (const auto &phase : analysis.phases) {
        std::printf("phase %c: %5.1f%% of the run, mean IPC %5.2f, "
                    "simulation point = interval %zu\n",
                    'A' + static_cast<char>(phase.id),
                    100.0 * phase.weight, phase.meanIpc,
                    phase.representative);
    }
    std::printf("\nwhole-run IPC %.3f; estimate from %zu simulation "
                "points: %.3f\n",
                analysis.fullIpc(), analysis.phases.size(),
                analysis.sampledIpcEstimate());
    return 0;
}
