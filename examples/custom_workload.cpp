/**
 * @file
 * Custom workload: characterize YOUR application against the suite.
 *
 * The framework is not limited to the built-in SPEC profiles: any
 * micro-op trace source can be run under the simulated perf monitor.
 * This example builds three workloads -- a hand-written pointer-chase
 * kernel, a hand-written streaming kernel, and a custom statistical
 * profile ("my-olap-engine") -- and compares their metrics against
 * two SPEC anchors to see which suite corner they resemble.
 *
 *   ./build/examples/custom_workload
 */

#include <cstdio>

#include "core/metrics.hh"
#include "sim/simulator.hh"
#include "suite/runner.hh"
#include "trace/kernels.hh"
#include "trace/synthetic.hh"

using namespace spec17;

namespace {

/** Runs any trace source on the Table-I machine; prints key rates. */
void
characterize(const char *label, trace::TraceSource &source)
{
    sim::CpuSimulator simulator(
        sim::SystemConfig::haswellXeonE52650Lv3());
    const sim::SimResult result = simulator.run(source);
    using counters::PerfEvent;
    const double loads = static_cast<double>(
        result.counters.get(PerfEvent::MemUopsRetiredAllLoads));
    const double l1m = static_cast<double>(
        result.counters.get(PerfEvent::MemLoadUopsRetiredL1Miss));
    const double branches = static_cast<double>(
        result.counters.get(PerfEvent::BrInstExecAllBranches));
    const double misp = static_cast<double>(
        result.counters.get(PerfEvent::BrMispExecAllBranches));
    std::printf("  %-18s IPC %5.2f   L1 miss %5.1f%%   mispredict "
                "%5.2f%%\n",
                label, result.ipc(),
                loads > 0 ? 100.0 * l1m / loads : 0.0,
                branches > 0 ? 100.0 * misp / branches : 0.0);
}

} // namespace

int
main()
{
    std::printf("hand-written kernels on the Table-I machine:\n");
    trace::PointerChaseKernel chase(64 * 1024 * 1024, 200'000);
    characterize("pointer-chase", chase);
    trace::StreamKernel stream(64 * 1024 * 1024, 400'000, true);
    characterize("stream", stream);
    trace::MatrixWalkKernel column_walk(512, 4096, /*row_major=*/false,
                                        2);
    characterize("column-walk", column_walk);

    // A custom statistical profile: say, an OLAP engine -- scan-heavy
    // loads over a large heap, few branches, moderate ILP.
    trace::SyntheticTraceParams olap;
    olap.numOps = 1'000'000;
    olap.loadFrac = 0.34;
    olap.storeFrac = 0.04;
    olap.branchFrac = 0.10;
    olap.computeDepFrac = 0.15;
    olap.hardBranchFrac = 0.02;
    olap.regions = {
        {trace::AccessPattern::Random, 16 * 1024, 64, 0.55, 1.0},
        {trace::AccessPattern::Strided, 96 * 1024 * 1024, 64, 0.40,
         0.0},
        {trace::AccessPattern::PointerChase, 4 * 1024 * 1024, 64, 0.05,
         0.0},
    };
    trace::SyntheticTraceGenerator engine(olap);
    std::printf("\ncustom statistical profile:\n");
    characterize("my-olap-engine", engine);

    // Anchors from the suite for context.
    std::printf("\nSPEC anchors (same machine, sampled runs):\n");
    suite::RunnerOptions options;
    options.sampleOps = 500'000;
    suite::SuiteRunner runner(options);
    for (const char *name : {"505.mcf_r", "525.x264_r"}) {
        const auto &profile =
            workloads::findProfile(workloads::cpu2017Suite(), name);
        const auto result = runner.runPair(
            {&profile, workloads::InputSize::Ref, 0});
        const auto metrics = core::deriveMetrics(result);
        std::printf("  %-18s IPC %5.2f   L1 miss %5.1f%%   mispredict "
                    "%5.2f%%\n",
                    name, metrics.ipc, metrics.l1MissPct,
                    metrics.mispredictPct);
    }
    std::printf("\nreading: if your engine tracks 505.mcf_r, budget "
                "for memory latency;\nif it tracks 525.x264_r, it "
                "will scale with core width instead.\n");
    return 0;
}
