/**
 * @file
 * Quickstart: characterize one benchmark pair end to end.
 *
 * Runs 505.mcf_r (the paper's classic low-IPC pointer chaser) on the
 * Table-I Haswell model, reads the perf-style counters, and prints
 * the Section-IV metrics. ~2 seconds, no cache files.
 *
 *   ./build/examples/quickstart [app-name]
 */

#include <cstdio>

#include "core/metrics.hh"
#include "suite/runner.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "505.mcf_r";

    // 1. Pick an application profile and an input.
    const workloads::WorkloadProfile &profile =
        workloads::findProfile(workloads::cpu2017Suite(), app);
    const workloads::AppInputPair pair{&profile,
                                       workloads::InputSize::Ref, 0};

    // 2. Configure the machine (defaults = the paper's Table I) and
    //    run the pair under the simulated perf monitor.
    suite::RunnerOptions options;
    options.sampleOps = 1'000'000;
    suite::SuiteRunner runner(options);
    std::printf("%s", options.system.describe().c_str());
    const suite::PairResult result = runner.runPair(pair);

    // 3. Raw counters, exactly the flags the paper lists.
    std::printf("\nraw counters for %s (%s input):\n",
                result.name.c_str(),
                workloads::inputSizeName(pair.size).c_str());
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<counters::PerfEvent>(e);
        std::printf("  %-46s %llu\n",
                    counters::perfEventName(event).c_str(),
                    static_cast<unsigned long long>(
                        result.counters.get(event)));
    }

    // 4. Derived Section-IV metrics.
    const core::Metrics m = core::deriveMetrics(result);
    std::printf("\nderived metrics:\n");
    std::printf("  IPC              %8.3f\n", m.ipc);
    std::printf("  %% loads          %8.3f\n", m.loadPct);
    std::printf("  %% stores         %8.3f\n", m.storePct);
    std::printf("  %% branches       %8.3f\n", m.branchPct);
    std::printf("  L1 miss rate     %8.3f %%\n", m.l1MissPct);
    std::printf("  L2 miss rate     %8.3f %%\n", m.l2MissPct);
    std::printf("  L3 miss rate     %8.3f %%\n", m.l3MissPct);
    std::printf("  mispredict rate  %8.3f %%\n", m.mispredictPct);
    std::printf("  RSS              %8.3f GiB\n", m.rssGiB);
    std::printf("  VSZ              %8.3f GiB\n", m.vszGiB);
    std::printf("  est. full run    %8.1f s (%.0f billion instrs)\n",
                m.seconds, m.instrBillions);
    return 0;
}
