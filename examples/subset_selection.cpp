/**
 * @file
 * Subset selection: the paper's headline use case. A researcher with
 * limited simulation time wants a handful of CPU2017 pairs that
 * still span the suite's behaviour. This example runs the Section-V
 * pipeline (PCA -> hierarchical clustering -> Pareto knee ->
 * cheapest-representative) over the rate pairs and prints a
 * ready-to-use list, plus what choosing fewer/more clusters would
 * trade.
 *
 *   ./build/examples/subset_selection [--budget-seconds=N]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/characterizer.hh"
#include "core/subset.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    double budget_seconds = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--budget-seconds=", 0) == 0)
            budget_seconds = std::stod(arg.substr(17));
    }

    core::CharacterizerOptions options;
    options.runner.sampleOps = 600'000;
    options.runner.warmupOps = 200'000;
    options.cachePath.clear(); // self-contained example
    core::Characterizer session(options);

    std::printf("analyzing the CPU2017 rate pairs (ref inputs)...\n");
    const auto analysis = session.redundancyFor(/*speed=*/false);
    std::printf("PCA kept %zu components explaining %.1f%% of "
                "variance over %zu pairs\n\n",
                analysis.numComponents,
                100.0
                    * analysis.pca.cumulativeVariance
                          [analysis.numComponents - 1],
                analysis.pairNames.size());

    core::SubsetSuggestion subset = core::suggestSubset(analysis);
    if (budget_seconds > 0.0) {
        // Walk down the sweep until the subset fits the budget.
        for (std::size_t k = subset.numClusters(); k >= 1; --k) {
            const auto candidate = core::suggestSubset(analysis, k);
            if (candidate.subsetSeconds <= budget_seconds
                || k == 1) {
                subset = candidate;
                break;
            }
        }
        std::printf("constrained to <= %.0f s of (estimated native) "
                    "execution time\n",
                    budget_seconds);
    }

    std::printf("suggested subset: %zu of %zu pairs, %.1f%% of the "
                "full execution time saved\n\n",
                subset.numClusters(), analysis.pairNames.size(),
                subset.savingPct());
    for (const auto &rep : subset.representatives) {
        std::printf("  run %-22s (%7.1f s)", rep.name.c_str(),
                    rep.seconds);
        if (!rep.covers.empty()) {
            std::printf("  stands in for:");
            for (const auto &covered : rep.covers)
                std::printf(" %s", covered.c_str());
        }
        std::printf("\n");
    }

    std::printf("\ntrade-off around the chosen point:\n");
    const std::size_t chosen = subset.sweep[subset.chosen].numClusters;
    for (const auto &tp : subset.sweep) {
        if (tp.numClusters + 3 < chosen || tp.numClusters > chosen + 3)
            continue;
        std::printf("  k=%2zu  SSE=%8.2f  subset time=%8.1f s%s\n",
                    tp.numClusters, tp.sse, tp.cost,
                    tp.numClusters == chosen ? "   <== chosen" : "");
    }
    return 0;
}
