/**
 * @file
 * Design-space explorer tests: axis planning and storage-cost models,
 * Pareto dominance/knee marking on synthetic points, and the golden
 * determinism guarantees -- the scored table is identical at any job
 * count and across a mid-sweep resume.
 */

#include "explore/plan.hh"
#include "explore/runner.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace spec17 {
namespace explore {
namespace {

using sim::SystemConfig;
using workloads::InputSize;
using workloads::SuiteGeneration;

TEST(Plan, AxisNamesRoundTrip)
{
    const std::vector<std::string> expected = {
        "predictor", "prefetcher", "l2-prefetcher", "way-predictor"};
    EXPECT_EQ(axisNames(), expected);
    for (const std::string &axis : axisNames())
        EXPECT_TRUE(isAxis(axis)) << axis;
    EXPECT_FALSE(isAxis("voltage"));
    EXPECT_FALSE(isAxis(""));
}

TEST(Plan, EachPointChangesExactlyItsOwnKnob)
{
    const SystemConfig base = SystemConfig::haswellXeonE52650Lv3();
    for (const std::string &axis : axisNames()) {
        const auto points = planAxis(axis, base);
        ASSERT_GE(points.size(), 3u) << axis;
        for (const auto &point : points) {
            EXPECT_EQ(point.axis, axis);
            EXPECT_GE(point.costBits, 0.0) << point.label;
        }
        // The axis always contains the baseline setting, and that
        // point's config is byte-for-byte the baseline config.
        bool found_base = false;
        for (const auto &point : points)
            found_base |= point.system.describe() == base.describe();
        EXPECT_TRUE(found_base) << axis;
    }
}

TEST(Plan, PointLabelsAreUniquePerAxis)
{
    const SystemConfig base = SystemConfig::haswellXeonE52650Lv3();
    for (const std::string &axis : axisNames()) {
        const auto points = planAxis(axis, base);
        for (std::size_t i = 0; i < points.size(); ++i)
            for (std::size_t j = i + 1; j < points.size(); ++j)
                EXPECT_NE(points[i].label, points[j].label) << axis;
    }
}

TEST(Plan, StorageCostModels)
{
    const sim::TageConfig tage;
    EXPECT_DOUBLE_EQ(predictorStorageBits("static-taken", tage), 0.0);
    EXPECT_DOUBLE_EQ(predictorStorageBits("bimodal", tage),
                     double(1u << 14) * 2.0);
    EXPECT_DOUBLE_EQ(predictorStorageBits("gshare", tage),
                     double(1u << 14) * 2.0 + 12.0);
    // TAGE default geometry: 4 tables x 2^10 entries x (9-bit tag +
    // 3-bit ctr + 2-bit useful + valid) + 2^12 x 2-bit base + 64-bit
    // history.
    EXPECT_DOUBLE_EQ(predictorStorageBits("tage", tage),
                     4.0 * 1024.0 * 15.0 + 4096.0 * 2.0 + 64.0);

    const sim::StreamConfig stream;
    EXPECT_DOUBLE_EQ(prefetcherStorageBits("none", stream), 0.0);
    EXPECT_DOUBLE_EQ(prefetcherStorageBits("next-line", stream), 58.0);
    // 8 streams x (two 58-bit line addresses + 3-bit LRU pointer +
    // 2-bit dir + 2-bit confidence + valid).
    EXPECT_DOUBLE_EQ(prefetcherStorageBits("stream", stream),
                     8.0 * (116.0 + 3.0 + 5.0));

    sim::CacheConfig l1d{"l1d", 32 * 1024, 8, 64,
                         sim::ReplacementPolicy::Lru, 4};
    // 64 sets: MRU keeps a 3-bit way pointer per set, utag an 8-bit
    // partial tag per way.
    EXPECT_DOUBLE_EQ(
        wayPredictorStorageBits(sim::WayPredictor::None, l1d), 0.0);
    EXPECT_DOUBLE_EQ(
        wayPredictorStorageBits(sim::WayPredictor::Mru, l1d),
        64.0 * 3.0);
    EXPECT_DOUBLE_EQ(
        wayPredictorStorageBits(sim::WayPredictor::Utag, l1d),
        64.0 * 8.0 * 8.0);
}

PointResult
syntheticPoint(const char *label, double sse, double cost)
{
    PointResult result;
    result.point.axis = "synthetic";
    result.point.label = label;
    result.point.costBits = cost;
    result.sse = sse;
    return result;
}

TEST(Pareto, MarksDominatedPointsAndTheKnee)
{
    std::vector<PointResult> points = {
        syntheticPoint("cheap", 10.0, 0.0),
        syntheticPoint("balanced", 5.0, 100.0),
        syntheticPoint("wasteful", 7.0, 200.0), // dominated by balanced
        syntheticPoint("accurate", 4.0, 1000.0),
    };
    markPareto(points);
    EXPECT_FALSE(points[0].dominated);
    EXPECT_FALSE(points[1].dominated);
    EXPECT_TRUE(points[2].dominated);
    EXPECT_FALSE(points[3].dominated);
    // Exactly one knee, and never a dominated point.
    int knees = 0;
    for (const auto &point : points) {
        knees += point.knee;
        if (point.knee)
            EXPECT_FALSE(point.dominated) << point.point.label;
    }
    EXPECT_EQ(knees, 1);
}

TEST(Pareto, EqualPointsDominateNeither)
{
    std::vector<PointResult> points = {
        syntheticPoint("a", 5.0, 100.0),
        syntheticPoint("b", 5.0, 100.0),
    };
    markPareto(points);
    EXPECT_FALSE(points[0].dominated);
    EXPECT_FALSE(points[1].dominated);
}

/** Tiny-sweep options: cpu2006/test keeps the sweep fast. */
ExploreOptions
tinyOptions()
{
    ExploreOptions options;
    options.runner.sampleOps = 2000;
    options.runner.warmupOps = 500;
    options.generation = SuiteGeneration::Cpu2006;
    options.size = InputSize::Test;
    options.cachePath.clear(); // no journals unless a test opts in
    return options;
}

void
expectSameTable(const std::vector<PointResult> &a,
                const std::vector<PointResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point.label, b[i].point.label);
        // Bit-exact, not approximately equal: the Pareto table is a
        // deterministic artifact.
        EXPECT_EQ(a[i].sse, b[i].sse) << a[i].point.label;
        EXPECT_EQ(a[i].meanIpc, b[i].meanIpc) << a[i].point.label;
        EXPECT_EQ(a[i].pairs, b[i].pairs) << a[i].point.label;
        EXPECT_EQ(a[i].errored, b[i].errored) << a[i].point.label;
        EXPECT_EQ(a[i].dominated, b[i].dominated) << a[i].point.label;
        EXPECT_EQ(a[i].knee, b[i].knee) << a[i].point.label;
    }
}

TEST(ExploreGolden, TableIsIdenticalAtAnyJobCount)
{
    ExploreOptions serial = tinyOptions();
    serial.runner.jobs = 1;
    const auto baseline =
        ExploreRunner(serial).runAxis("way-predictor");
    ASSERT_EQ(baseline.size(), 3u);
    for (const auto &point : baseline)
        EXPECT_GT(point.pairs, 0u) << point.point.label;

    ExploreOptions parallel_opts = tinyOptions();
    parallel_opts.runner.jobs = 8;
    expectSameTable(baseline,
                    ExploreRunner(parallel_opts).runAxis("way-predictor"));
}

TEST(ExploreGolden, TableIsIdenticalAcrossMidSweepResume)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/explore_resume";

    ExploreOptions plain = tinyOptions();
    const auto baseline = ExploreRunner(plain).runAxis("way-predictor");

    // Full journaled sweep, then forget one point's journal: the
    // resumed run replays two points from disk and re-runs the third.
    ExploreOptions journaled = tinyOptions();
    journaled.cachePath = base;
    journaled.runner.jobs = 4;
    ExploreRunner first(journaled);
    expectSameTable(baseline, first.runAxis("way-predictor"));

    const auto points =
        planAxis("way-predictor", journaled.runner.system);
    std::vector<std::string> journals;
    for (const auto &point : points)
        journals.push_back(first.pointCachePath(point)
                           + ".cpu2006.test.csv");
    ASSERT_EQ(std::remove(journals[1].c_str()), 0)
        << "expected a journal at " << journals[1];

    ExploreOptions resumed = tinyOptions();
    resumed.cachePath = base;
    resumed.resume = true;
    resumed.runner.jobs = 2;
    expectSameTable(baseline,
                    ExploreRunner(resumed).runAxis("way-predictor"));

    for (const std::string &journal : journals)
        std::remove(journal.c_str());
}

} // namespace
} // namespace explore
} // namespace spec17
