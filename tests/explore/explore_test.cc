/**
 * @file
 * Design-space explorer tests: axis planning and storage-cost models,
 * Pareto dominance/knee marking on synthetic points, and the golden
 * determinism guarantees -- the scored table is identical at any job
 * count and across a mid-sweep resume.
 */

#include "explore/plan.hh"
#include "explore/runner.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "suite/arena_store.hh"
#include "suite/fanout.hh"
#include "util/units.hh"

namespace spec17 {
namespace explore {
namespace {

using sim::SystemConfig;
using workloads::InputSize;
using workloads::SuiteGeneration;

TEST(Plan, AxisNamesRoundTrip)
{
    const std::vector<std::string> expected = {
        "predictor", "prefetcher", "l2-prefetcher", "way-predictor"};
    EXPECT_EQ(axisNames(), expected);
    for (const std::string &axis : axisNames())
        EXPECT_TRUE(isAxis(axis)) << axis;
    EXPECT_FALSE(isAxis("voltage"));
    EXPECT_FALSE(isAxis(""));
}

TEST(Plan, EachPointChangesExactlyItsOwnKnob)
{
    const SystemConfig base = SystemConfig::haswellXeonE52650Lv3();
    for (const std::string &axis : axisNames()) {
        const auto points = planAxis(axis, base);
        ASSERT_GE(points.size(), 3u) << axis;
        for (const auto &point : points) {
            EXPECT_EQ(point.axis, axis);
            EXPECT_GE(point.costBits, 0.0) << point.label;
        }
        // The axis always contains the baseline setting, and that
        // point's config is byte-for-byte the baseline config.
        bool found_base = false;
        for (const auto &point : points)
            found_base |= point.system.describe() == base.describe();
        EXPECT_TRUE(found_base) << axis;
    }
}

TEST(Plan, PointLabelsAreUniquePerAxis)
{
    const SystemConfig base = SystemConfig::haswellXeonE52650Lv3();
    for (const std::string &axis : axisNames()) {
        const auto points = planAxis(axis, base);
        for (std::size_t i = 0; i < points.size(); ++i)
            for (std::size_t j = i + 1; j < points.size(); ++j)
                EXPECT_NE(points[i].label, points[j].label) << axis;
    }
}

TEST(Plan, StorageCostModels)
{
    const sim::TageConfig tage;
    EXPECT_DOUBLE_EQ(predictorStorageBits("static-taken", tage), 0.0);
    EXPECT_DOUBLE_EQ(predictorStorageBits("bimodal", tage),
                     double(1u << 14) * 2.0);
    EXPECT_DOUBLE_EQ(predictorStorageBits("gshare", tage),
                     double(1u << 14) * 2.0 + 12.0);
    // TAGE default geometry: 4 tables x 2^10 entries x (9-bit tag +
    // 3-bit ctr + 2-bit useful + valid) + 2^12 x 2-bit base + 64-bit
    // history.
    EXPECT_DOUBLE_EQ(predictorStorageBits("tage", tage),
                     4.0 * 1024.0 * 15.0 + 4096.0 * 2.0 + 64.0);

    const sim::StreamConfig stream;
    EXPECT_DOUBLE_EQ(prefetcherStorageBits("none", stream), 0.0);
    EXPECT_DOUBLE_EQ(prefetcherStorageBits("next-line", stream), 58.0);
    // 8 streams x (two 58-bit line addresses + 3-bit LRU pointer +
    // 2-bit dir + 2-bit confidence + valid).
    EXPECT_DOUBLE_EQ(prefetcherStorageBits("stream", stream),
                     8.0 * (116.0 + 3.0 + 5.0));

    sim::CacheConfig l1d{"l1d", 32 * 1024, 8, 64,
                         sim::ReplacementPolicy::Lru, 4};
    // 64 sets: MRU keeps a 3-bit way pointer per set, utag an 8-bit
    // partial tag per way.
    EXPECT_DOUBLE_EQ(
        wayPredictorStorageBits(sim::WayPredictor::None, l1d), 0.0);
    EXPECT_DOUBLE_EQ(
        wayPredictorStorageBits(sim::WayPredictor::Mru, l1d),
        64.0 * 3.0);
    EXPECT_DOUBLE_EQ(
        wayPredictorStorageBits(sim::WayPredictor::Utag, l1d),
        64.0 * 8.0 * 8.0);
}

PointResult
syntheticPoint(const char *label, double sse, double cost)
{
    PointResult result;
    result.point.axis = "synthetic";
    result.point.label = label;
    result.point.costBits = cost;
    result.sse = sse;
    return result;
}

TEST(Plan, CrossProductIsRowMajorWithSummedCosts)
{
    const SystemConfig base = SystemConfig::haswellXeonE52650Lv3();
    const std::vector<std::string> axes = {"way-predictor",
                                           "predictor"};
    const auto way = planAxis("way-predictor", base);
    const auto pred = planAxis("predictor", base);
    const auto cross = planCross(axes, base);
    ASSERT_EQ(cross.size(), way.size() * pred.size());
    for (std::size_t i = 0; i < cross.size(); ++i) {
        const auto &outer = way[i / pred.size()];
        const auto &inner = pred[i % pred.size()];
        EXPECT_EQ(cross[i].axis, "way-predictor+predictor");
        // Row-major in the given axis order, labels joined with ','.
        EXPECT_EQ(cross[i].label, outer.label + "," + inner.label);
        EXPECT_DOUBLE_EQ(cross[i].costBits,
                         outer.costBits + inner.costBits)
            << cross[i].label;
        // Both knobs land on the combined config.
        EXPECT_EQ(cross[i].system.hierarchy.l1d.wayPredictor,
                  outer.system.hierarchy.l1d.wayPredictor);
        EXPECT_EQ(cross[i].system.branchPredictor,
                  inner.system.branchPredictor);
    }
}

TEST(Plan, GeometryAxesGateOnTheirMechanism)
{
    SystemConfig base = SystemConfig::haswellXeonE52650Lv3();
    ASSERT_NE(base.branchPredictor, "tage");
    EXPECT_FALSE(axisPlanError("tage-geometry", base).empty());
    EXPECT_FALSE(axisPlanError("stream-geometry", base).empty());
    // Mechanism axes always plan.
    for (const std::string &axis : axisNames())
        EXPECT_EQ(axisPlanError(axis, base), "") << axis;

    base.branchPredictor = "tage";
    EXPECT_EQ(axisPlanError("tage-geometry", base), "");
    base.hierarchy.l2Prefetcher = "stream";
    EXPECT_EQ(axisPlanError("stream-geometry", base), "");

    // The grids themselves: every point varies only its own geometry.
    const auto tables = planAnyAxis("tage-geometry", base);
    ASSERT_GE(tables.size(), 3u);
    for (const auto &point : tables) {
        EXPECT_EQ(point.system.branchPredictor, "tage");
        EXPECT_GT(point.costBits, 0.0) << point.label;
    }
    const auto streams = planAnyAxis("stream-geometry", base);
    for (const auto &point : streams) {
        EXPECT_LE(point.system.hierarchy.streamDegree,
                  point.system.hierarchy.streamDistance)
            << point.label;
    }
}

TEST(Pareto, MarksDominatedPointsAndTheKnee)
{
    std::vector<PointResult> points = {
        syntheticPoint("cheap", 10.0, 0.0),
        syntheticPoint("balanced", 5.0, 100.0),
        syntheticPoint("wasteful", 7.0, 200.0), // dominated by balanced
        syntheticPoint("accurate", 4.0, 1000.0),
    };
    markPareto(points);
    EXPECT_FALSE(points[0].dominated);
    EXPECT_FALSE(points[1].dominated);
    EXPECT_TRUE(points[2].dominated);
    EXPECT_FALSE(points[3].dominated);
    // Exactly one knee, and never a dominated point.
    int knees = 0;
    for (const auto &point : points) {
        knees += point.knee;
        if (point.knee)
            EXPECT_FALSE(point.dominated) << point.point.label;
    }
    EXPECT_EQ(knees, 1);
}

TEST(Pareto, EqualPointsDominateNeither)
{
    std::vector<PointResult> points = {
        syntheticPoint("a", 5.0, 100.0),
        syntheticPoint("b", 5.0, 100.0),
    };
    markPareto(points);
    EXPECT_FALSE(points[0].dominated);
    EXPECT_FALSE(points[1].dominated);
}

/** Tiny-sweep options: cpu2006/test keeps the sweep fast. */
ExploreOptions
tinyOptions()
{
    ExploreOptions options;
    options.runner.sampleOps = 2000;
    options.runner.warmupOps = 500;
    options.generation = SuiteGeneration::Cpu2006;
    options.size = InputSize::Test;
    options.cachePath.clear(); // no journals unless a test opts in
    return options;
}

void
expectSameTable(const std::vector<PointResult> &a,
                const std::vector<PointResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point.label, b[i].point.label);
        // Bit-exact, not approximately equal: the Pareto table is a
        // deterministic artifact.
        EXPECT_EQ(a[i].sse, b[i].sse) << a[i].point.label;
        EXPECT_EQ(a[i].meanIpc, b[i].meanIpc) << a[i].point.label;
        EXPECT_EQ(a[i].pairs, b[i].pairs) << a[i].point.label;
        EXPECT_EQ(a[i].errored, b[i].errored) << a[i].point.label;
        EXPECT_EQ(a[i].dominated, b[i].dominated) << a[i].point.label;
        EXPECT_EQ(a[i].knee, b[i].knee) << a[i].point.label;
    }
}

TEST(ExploreGolden, TableIsIdenticalAtAnyJobCount)
{
    ExploreOptions serial = tinyOptions();
    serial.runner.jobs = 1;
    const auto baseline =
        ExploreRunner(serial).runAxis("way-predictor");
    ASSERT_EQ(baseline.size(), 3u);
    for (const auto &point : baseline)
        EXPECT_GT(point.pairs, 0u) << point.point.label;

    ExploreOptions parallel_opts = tinyOptions();
    parallel_opts.runner.jobs = 8;
    expectSameTable(baseline,
                    ExploreRunner(parallel_opts).runAxis("way-predictor"));
}

TEST(ExploreGolden, TableIsIdenticalAcrossMidSweepResume)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/explore_resume";

    ExploreOptions plain = tinyOptions();
    const auto baseline = ExploreRunner(plain).runAxis("way-predictor");

    // Full journaled sweep, then forget one point's journal: the
    // resumed run replays two points from disk and re-runs the third.
    ExploreOptions journaled = tinyOptions();
    journaled.cachePath = base;
    journaled.runner.jobs = 4;
    ExploreRunner first(journaled);
    expectSameTable(baseline, first.runAxis("way-predictor"));

    const auto points =
        planAxis("way-predictor", journaled.runner.system);
    std::vector<std::string> journals;
    for (const auto &point : points)
        journals.push_back(first.pointCachePath(point)
                           + ".cpu2006.test.csv");
    ASSERT_EQ(std::remove(journals[1].c_str()), 0)
        << "expected a journal at " << journals[1];

    ExploreOptions resumed = tinyOptions();
    resumed.cachePath = base;
    resumed.resume = true;
    resumed.runner.jobs = 2;
    expectSameTable(baseline,
                    ExploreRunner(resumed).runAxis("way-predictor"));

    for (const std::string &journal : journals)
        std::remove(journal.c_str());
}

TEST(ExploreGolden, CrossTableIdenticalAcrossFanoutAndJobs)
{
    // Reference: per-point sessions (no arena store), jobs 1.
    ExploreOptions per_point = tinyOptions();
    const std::vector<std::string> axes = {"way-predictor",
                                           "l2-prefetcher"};
    const auto baseline = ExploreRunner(per_point).runCross(axes);
    ASSERT_EQ(baseline.size(), 12u);

    // The shared-arena fan-out engine must score the bit-identical
    // table, at any job count: one capture per pair feeding all 12
    // points is an execution strategy, never semantics.
    for (const unsigned jobs : {1u, 8u}) {
        SCOPED_TRACE(::testing::Message() << "jobs=" << jobs);
        suite::TraceArenaStore store(512 * kMiB);
        ExploreOptions fanout = tinyOptions();
        fanout.runner.jobs = jobs;
        fanout.runner.arenaStore = &store;
        ASSERT_TRUE(suite::fanoutEligible(fanout.runner));
        expectSameTable(baseline, ExploreRunner(fanout).runCross(axes));
        // The engine captured each pair's trace once; the points
        // replayed it rather than re-acquiring through the store.
        EXPECT_GT(store.stats().captures, 0u);
    }
}

TEST(ExploreGolden, DescentFoldsEachStagesKneeIntoTheBase)
{
    ExploreOptions options = tinyOptions();
    suite::TraceArenaStore store(512 * kMiB);
    options.runner.arenaStore = &store;
    const auto steps = ExploreRunner(options).runDescent(
        {"way-predictor", "l2-prefetcher"});
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0].axis, "way-predictor");
    EXPECT_EQ(steps[1].axis, "l2-prefetcher");
    for (const auto &step : steps) {
        ASSERT_LT(step.chosen, step.points.size());
        EXPECT_TRUE(step.points[step.chosen].knee);
    }
    // Stage 2 swept from stage 1's winner: every stage-2 point
    // carries the folded way-predictor pick.
    const auto picked = steps[0]
                            .points[steps[0].chosen]
                            .point.system.hierarchy.l1d.wayPredictor;
    for (const auto &point : steps[1].points) {
        EXPECT_EQ(point.point.system.hierarchy.l1d.wayPredictor,
                  picked)
            << point.point.label;
    }

    // A geometry axis whose mechanism the base disables is skipped,
    // not swept: the descent yields no stage for it.
    const auto skipped =
        ExploreRunner(options).runDescent({"tage-geometry"});
    EXPECT_TRUE(skipped.empty());
}

} // namespace
} // namespace explore
} // namespace spec17
