#include "isa/uop.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace isa {
namespace {

TEST(Uop, FactoryLoad)
{
    const MicroOp op = makeLoad(0x400000, 0xdeadbeef, 4, true);
    EXPECT_TRUE(op.isLoad());
    EXPECT_TRUE(op.isMemory());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isBranch());
    EXPECT_EQ(op.effAddr, 0xdeadbeefu);
    EXPECT_EQ(op.size, 4);
    EXPECT_TRUE(op.depOnLoad);
}

TEST(Uop, FactoryStore)
{
    const MicroOp op = makeStore(0x400004, 0x1000);
    EXPECT_TRUE(op.isStore());
    EXPECT_TRUE(op.isMemory());
    EXPECT_FALSE(op.isLoad());
    EXPECT_EQ(op.size, 8);
}

TEST(Uop, FactoryBranch)
{
    const MicroOp op =
        makeBranch(0x400008, BranchKind::Conditional, true, 0x400000);
    EXPECT_TRUE(op.isBranch());
    EXPECT_TRUE(op.isConditionalBranch());
    EXPECT_FALSE(op.isMemory());
    EXPECT_TRUE(op.taken);
    EXPECT_EQ(op.target, 0x400000u);
}

TEST(Uop, FactoryAluDefaultsAndClasses)
{
    const MicroOp alu = makeAlu(0x40000c);
    EXPECT_EQ(alu.cls, UopClass::IntAlu);
    EXPECT_EQ(alu.branch, BranchKind::None);
    EXPECT_FALSE(alu.isMemory());
    const MicroOp fp = makeAlu(0x400010, UopClass::FpMul);
    EXPECT_EQ(fp.cls, UopClass::FpMul);
}

TEST(UopDeathTest, FactoriesRejectMisuse)
{
    EXPECT_DEATH(makeAlu(0, UopClass::Load), "non-ALU");
    EXPECT_DEATH(makeAlu(0, UopClass::Branch), "non-ALU");
    EXPECT_DEATH(makeBranch(0, BranchKind::None, false, 0), "real kind");
}

TEST(Uop, NamesAreStable)
{
    EXPECT_EQ(uopClassName(UopClass::Load), "load");
    EXPECT_EQ(uopClassName(UopClass::FpDiv), "fp_div");
    EXPECT_EQ(branchKindName(BranchKind::Conditional), "conditional");
    EXPECT_EQ(branchKindName(BranchKind::IndirectJumpNonCallRet),
              "indirect_jump_non_call_ret");
}

} // namespace
} // namespace isa
} // namespace spec17
