/**
 * @file
 * SharedMemo unit tests: the compute-once/reuse-many primitive behind
 * the co-run solo-baseline memo and the trace-arena store. Pins the
 * first-write-wins contract -- losers of a publish race adopt the
 * winner's value -- and that getOrCompute() computes outside the lock
 * exactly when the key is absent.
 */

#include "suite/memo.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace spec17 {
namespace suite {
namespace {

TEST(SharedMemo, TryGetMissesUntilPublished)
{
    SharedMemo<std::string, int> memo;
    EXPECT_FALSE(memo.tryGet("a").has_value());
    EXPECT_EQ(memo.size(), 0u);

    EXPECT_EQ(memo.publish("a", 7), 7);
    ASSERT_TRUE(memo.tryGet("a").has_value());
    EXPECT_EQ(*memo.tryGet("a"), 7);
    EXPECT_EQ(memo.size(), 1u);
}

TEST(SharedMemo, PublishIsFirstWriteWins)
{
    SharedMemo<std::string, int> memo;
    EXPECT_EQ(memo.publish("key", 1), 1);
    // The second writer lost the race: it gets the winner's value
    // back and the stored value is unchanged.
    EXPECT_EQ(memo.publish("key", 2), 1);
    EXPECT_EQ(*memo.tryGet("key"), 1);
}

TEST(SharedMemo, GetOrComputeComputesOnlyOnMiss)
{
    SharedMemo<int, int> memo;
    int computed = 0;
    const auto compute = [&computed] { return ++computed * 10; };
    EXPECT_EQ(memo.getOrCompute(5, compute), 10);
    EXPECT_EQ(memo.getOrCompute(5, compute), 10);
    EXPECT_EQ(computed, 1);
}

TEST(SharedMemo, EraseDropsExactlyTheKey)
{
    SharedMemo<int, int> memo;
    memo.publish(1, 10);
    memo.publish(2, 20);
    EXPECT_TRUE(memo.erase(1));
    EXPECT_FALSE(memo.erase(1));
    EXPECT_FALSE(memo.tryGet(1).has_value());
    EXPECT_EQ(*memo.tryGet(2), 20);

    memo.clear();
    EXPECT_EQ(memo.size(), 0u);
}

TEST(SharedMemo, ForEachVisitsInKeyOrder)
{
    SharedMemo<int, int> memo;
    memo.publish(3, 30);
    memo.publish(1, 10);
    memo.publish(2, 20);
    std::vector<int> keys;
    memo.forEach([&keys](int key, int) { keys.push_back(key); });
    EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));
}

TEST(SharedMemo, RacingComputationsAgreeOnOneValue)
{
    // Every racer computes its own candidate; whatever publishes
    // first wins and every thread ends up holding that one value --
    // the deterministic-computation contract the solo-baseline memo
    // and the arena store rely on.
    SharedMemo<int, int> memo;
    std::atomic<int> next{0};
    std::vector<int> seen(8, -1);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            seen[static_cast<std::size_t>(t)] = memo.getOrCompute(
                0, [&next] { return 100 + next.fetch_add(1); });
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    ASSERT_TRUE(memo.tryGet(0).has_value());
    const int winner = *memo.tryGet(0);
    for (int value : seen)
        EXPECT_EQ(value, winner);
    EXPECT_EQ(memo.size(), 1u);
}

} // namespace
} // namespace suite
} // namespace spec17
