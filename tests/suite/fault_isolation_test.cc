/**
 * @file
 * Fault-isolated suite execution: one bad pair must never sink a
 * sweep. Exercises the failure boundary (injected throws, watchdog
 * expiry), the retry policy (transient failures, attempt history,
 * determinism), and crash-safe checkpointed sweeps (resume from the
 * journal, torn-tail quarantine, byte-identical final results).
 */

#include "suite/result_cache.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/metrics.hh"

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.sampleOps = 60000;
    options.warmupOps = 20000;
    return options;
}

std::string
tempBase(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_fault_" + tag;
}

std::vector<std::string>
pairNames(InputSize size)
{
    std::vector<std::string> names;
    for (const auto &pair :
         enumeratePairs(workloads::cpu2006Suite(), size))
        names.push_back(pair.displayName());
    return names;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(FaultIsolation, InjectedThrowIsContainedToOnePair)
{
    const auto names = pairNames(InputSize::Test);
    const std::string &victim = names[names.size() / 2];

    ScriptedFaultInjector injector;
    injector.set(victim, 0, FaultInjector::Action::Throw);
    RunnerOptions options = fastOptions();
    options.faultInjector = &injector;
    SuiteRunner runner(options);

    const auto results =
        runner.runAll(workloads::cpu2006Suite(), InputSize::Test);
    ASSERT_EQ(results.size(), names.size());
    for (const auto &result : results) {
        if (result.name == victim) {
            EXPECT_TRUE(result.errored);
            EXPECT_EQ(result.attempts, 1u);
            ASSERT_NE(result.finalFailure(), nullptr);
            EXPECT_EQ(result.finalFailure()->category,
                      FailureCategory::Injected);
            EXPECT_FALSE(result.finalFailure()->message.empty());
        } else {
            EXPECT_FALSE(result.errored) << result.name;
            EXPECT_TRUE(result.failures.empty()) << result.name;
            EXPECT_GT(result.counters.get(
                          counters::PerfEvent::InstRetiredAny),
                      0u)
                << result.name;
        }
    }

    // Downstream, the errored pair drops out of aggregate analysis
    // exactly like the paper's uncollectable benchmarks.
    const auto aggregate =
        core::withoutErrored(core::deriveMetrics(results));
    EXPECT_EQ(aggregate.size(), names.size() - 1);
    for (const auto &m : aggregate)
        EXPECT_NE(m.name, victim);
}

TEST(FaultIsolation, RetryRecoversTransientFailure)
{
    const auto names = pairNames(InputSize::Test);
    const std::string &flaky = names.front();

    ScriptedFaultInjector injector;
    injector.failFirstAttempts(flaky, 1);
    RunnerOptions options = fastOptions();
    options.faultInjector = &injector;
    options.maxRetries = 2;
    SuiteRunner runner(options);

    const auto results =
        runner.runAll(workloads::cpu2006Suite(), InputSize::Test);
    const auto &recovered = results.front();
    ASSERT_EQ(recovered.name, flaky);
    EXPECT_FALSE(recovered.errored);
    EXPECT_TRUE(recovered.recovered());
    EXPECT_EQ(recovered.attempts, 2u);
    ASSERT_EQ(recovered.failures.size(), 1u);
    EXPECT_EQ(recovered.failures[0].attempt, 0u);
    EXPECT_EQ(recovered.failures[0].category,
              FailureCategory::Injected);
    EXPECT_GT(recovered.counters.get(
                  counters::PerfEvent::InstRetiredAny),
              0u);
}

TEST(FaultIsolation, ExhaustedRetriesErrorThePairWithFullHistory)
{
    const auto names = pairNames(InputSize::Test);
    const std::string &doomed = names.back();

    ScriptedFaultInjector injector;
    injector.failFirstAttempts(doomed, 5);
    RunnerOptions options = fastOptions();
    options.faultInjector = &injector;
    options.maxRetries = 1;
    SuiteRunner runner(options);

    const auto result = runner.runPair(
        enumeratePairs(workloads::cpu2006Suite(), InputSize::Test)
            .back());
    EXPECT_TRUE(result.errored);
    EXPECT_EQ(result.attempts, 2u);
    ASSERT_EQ(result.failures.size(), 2u);
    EXPECT_EQ(result.failures[0].attempt, 0u);
    EXPECT_EQ(result.failures[1].attempt, 1u);
    ASSERT_NE(result.finalFailure(), nullptr);
    EXPECT_EQ(result.finalFailure(), &result.failures.back());
}

TEST(FaultIsolation, BadProfileFailsFastWithoutRetries)
{
    // A malformed profile fails every attempt identically, so the
    // runner must not burn the retry budget (or sleep its backoff)
    // re-diagnosing it.
    workloads::WorkloadProfile broken = workloads::cpu2017Suite().front();
    broken.loadFrac = 1.5;
    RunnerOptions options = fastOptions();
    options.maxRetries = 3;
    options.retryBackoffMs = 10;
    SuiteRunner runner(options);

    const auto result =
        runner.runPair({&broken, InputSize::Test, 0});
    EXPECT_TRUE(result.errored);
    EXPECT_EQ(result.attempts, 1u);
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].category,
              FailureCategory::BadProfile);
    ASSERT_NE(result.finalFailure(), nullptr);
    EXPECT_NE(result.finalFailure()->message.find("loadFrac"),
              std::string::npos);
}

TEST(FaultIsolation, StalledGenerationTripsTheOpBudgetWatchdog)
{
    const auto pairs =
        enumeratePairs(workloads::cpu2006Suite(), InputSize::Test);
    const std::string victim = pairs.front().displayName();

    ScriptedFaultInjector injector;
    injector.set(victim, 0, FaultInjector::Action::Stall);
    RunnerOptions options = fastOptions();
    options.faultInjector = &injector;
    options.pairDeadlineOps = 200000; // > sample + warmup
    SuiteRunner runner(options);

    const auto result = runner.runPair(pairs.front());
    EXPECT_TRUE(result.errored);
    ASSERT_NE(result.finalFailure(), nullptr);
    EXPECT_EQ(result.finalFailure()->category,
              FailureCategory::Deadline);
    EXPECT_GT(result.finalFailure()->opsCompleted,
              options.pairDeadlineOps);

    // The same budget leaves healthy pairs untouched.
    const auto healthy = runner.runPair(pairs.back());
    EXPECT_FALSE(healthy.errored);
}

TEST(FaultIsolation, RetryConfigDoesNotPerturbFaultFreeResults)
{
    // Attempt 0 always runs with the unperturbed seed, so enabling
    // the fault-isolation machinery must be invisible to a healthy
    // sweep.
    SuiteRunner plain(fastOptions());
    RunnerOptions guarded_options = fastOptions();
    guarded_options.maxRetries = 3;
    guarded_options.pairDeadlineOps = 100'000'000;
    SuiteRunner guarded(guarded_options);

    const auto baseline =
        plain.runAll(workloads::cpu2006Suite(), InputSize::Test);
    const auto isolated =
        guarded.runAll(workloads::cpu2006Suite(), InputSize::Test);
    ASSERT_EQ(baseline.size(), isolated.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(baseline[i].name, isolated[i].name);
        EXPECT_EQ(isolated[i].attempts, 1u);
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(baseline[i].counters.get(event),
                      isolated[i].counters.get(event))
                << baseline[i].name;
        }
    }
}

/** Truncates the journal at @p base to its first @p keep_rows rows. */
void
truncateJournal(const std::string &file, std::size_t keep_rows)
{
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::string line, kept;
    for (std::size_t i = 0; i < keep_rows + 2; ++i) {
        ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
        kept += line + "\n";
    }
    in.close();
    std::ofstream out(file, std::ios::trunc);
    out << kept;
}

TEST(FaultIsolation, ResumeReplaysJournalWithoutResimulating)
{
    const std::string base = tempBase("resume");
    const std::string file = base + ".cpu2006.test.csv";
    const auto &suite = workloads::cpu2006Suite();
    SuiteRunner runner(fastOptions());

    ResultCache cache(base);
    cache.invalidate();
    const auto golden = cache.runOrLoad(runner, suite, InputSize::Test);
    const std::string golden_bytes = fileBytes(file);
    ASSERT_FALSE(golden_bytes.empty());

    // Simulate a sweep killed after 11 completed pairs: thanks to the
    // per-pair atomic commits, the survivor file is exactly a valid
    // prefix of the journal.
    constexpr std::size_t kCompleted = 11;
    truncateJournal(file, kCompleted);

    // The probe injector never fires; its consultation log records
    // which pairs the resumed sweep actually simulated.
    ScriptedFaultInjector probe;
    RunnerOptions probe_options = fastOptions();
    probe_options.faultInjector = &probe;
    SuiteRunner probe_runner(probe_options);

    ResultCache resumed(base, /*resume=*/true);
    const auto results =
        resumed.runOrLoad(probe_runner, suite, InputSize::Test);

    const auto names = pairNames(InputSize::Test);
    ASSERT_EQ(results.size(), names.size());
    ASSERT_EQ(probe.consulted().size(), names.size() - kCompleted);
    for (std::size_t i = 0; i < probe.consulted().size(); ++i)
        EXPECT_EQ(probe.consulted()[i].first, names[kCompleted + i]);

    // Replayed prefix + re-simulated suffix must be byte-identical to
    // the uninterrupted sweep -- results and journal alike.
    EXPECT_EQ(fileBytes(file), golden_bytes);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].name, golden[i].name);
        EXPECT_DOUBLE_EQ(results[i].seconds, golden[i].seconds);
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(results[i].counters.get(event),
                      golden[i].counters.get(event));
        }
    }
    resumed.invalidate();
}

TEST(FaultIsolation, TornJournalTailIsQuarantinedOnResume)
{
    const std::string base = tempBase("torn");
    const std::string file = base + ".cpu2006.test.csv";
    const auto &suite = workloads::cpu2006Suite();
    SuiteRunner runner(fastOptions());

    ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(runner, suite, InputSize::Test);
    const std::string golden_bytes = fileBytes(file);

    // A crash mid-write of pre-atomic-commit vintage: valid rows
    // followed by half a row.
    truncateJournal(file, 7);
    {
        std::ofstream out(file, std::ios::app);
        out << "458.sjeng,0,0,1,-,73";
    }

    ScriptedFaultInjector probe;
    RunnerOptions probe_options = fastOptions();
    probe_options.faultInjector = &probe;
    SuiteRunner probe_runner(probe_options);
    ResultCache resumed(base, /*resume=*/true);
    const auto results =
        resumed.runOrLoad(probe_runner, suite, InputSize::Test);

    const auto names = pairNames(InputSize::Test);
    ASSERT_EQ(results.size(), names.size());
    // The 7 intact rows resumed; the torn eighth re-simulated.
    EXPECT_EQ(probe.consulted().size(), names.size() - 7);
    EXPECT_EQ(fileBytes(file), golden_bytes);
    resumed.invalidate();
}

TEST(FaultIsolation, ErroredPairsRoundTripThroughTheJournal)
{
    const std::string base = tempBase("errored_rt");
    const auto &suite = workloads::cpu2006Suite();
    const auto names = pairNames(InputSize::Test);
    const std::string &victim = names[3];

    ScriptedFaultInjector injector;
    injector.failFirstAttempts(victim, 2);
    RunnerOptions options = fastOptions();
    options.faultInjector = &injector;
    options.maxRetries = 1;
    SuiteRunner runner(options);

    ResultCache cache(base);
    cache.invalidate();
    const auto fresh = cache.runOrLoad(runner, suite, InputSize::Test);
    const auto reloaded =
        cache.runOrLoad(runner, suite, InputSize::Test);

    ASSERT_EQ(fresh.size(), reloaded.size());
    const auto &cached_victim = reloaded[3];
    ASSERT_EQ(cached_victim.name, victim);
    EXPECT_TRUE(cached_victim.errored);
    EXPECT_EQ(cached_victim.attempts, 2u);
    ASSERT_EQ(cached_victim.failures.size(), 2u);
    EXPECT_EQ(cached_victim.failures[1].category,
              FailureCategory::Injected);
    EXPECT_EQ(cached_victim.failures[1].attempt, 1u);
    cache.invalidate();
}

TEST(FaultIsolation, FailureHistorySerializationRoundTrips)
{
    std::vector<FailureRecord> records = {
        {FailureCategory::Deadline, "op budget expired: 9 > 8", 0, 9},
        {FailureCategory::Exception, "weird, chars | here @ end", 1, 0},
    };
    const std::string cell = serializeFailures(records);
    EXPECT_EQ(cell.find(','), std::string::npos);
    const auto parsed = parseFailures(cell);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->size(), 2u);
    EXPECT_EQ((*parsed)[0].category, FailureCategory::Deadline);
    EXPECT_EQ((*parsed)[0].opsCompleted, 9u);
    EXPECT_EQ((*parsed)[1].attempt, 1u);
    // Sanitized message survives a second round trip unchanged.
    EXPECT_EQ(serializeFailures(*parsed), cell);

    EXPECT_TRUE(parseFailures("-").has_value());
    EXPECT_TRUE(parseFailures("-")->empty());
    EXPECT_FALSE(parseFailures("nonsense").has_value());
    EXPECT_FALSE(parseFailures("deadline@x@0@msg").has_value());
}

} // namespace
} // namespace suite
} // namespace spec17
